//! Ethereum-style wallets: key pairs plus derived addresses.

use crate::keccak::keccak256;
use crate::secp256k1::{PublicKey, SecretKey, Signature};
use parole_primitives::Address;
use std::fmt;

/// A key pair with its derived Ethereum-style address.
///
/// The address is the low 20 bytes of `keccak256(pubkey_x ‖ pubkey_y)`,
/// exactly as Ethereum derives externally-owned-account addresses from
/// uncompressed public keys.
///
/// In the attack workflow (paper §IV-B) the adversarial aggregator is handed
/// "the private wallet information of the IFU" — in this reproduction that is
/// literally a [`Wallet`] value.
///
/// # Example
///
/// ```
/// use parole_crypto::Wallet;
/// let w = Wallet::from_seed(1);
/// let digest = parole_crypto::keccak256(b"hello");
/// let sig = w.sign(digest.as_bytes());
/// assert!(w.public_key().verify(digest.as_bytes(), &sig));
/// ```
#[derive(Debug, Clone)]
pub struct Wallet {
    secret: SecretKey,
    public: PublicKey,
    address: Address,
}

impl Wallet {
    /// Derives a wallet deterministically from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        let secret = SecretKey::from_seed(seed);
        Wallet::from_secret(secret)
    }

    /// Builds a wallet from an existing secret key.
    pub fn from_secret(secret: SecretKey) -> Self {
        let public = secret.public_key();
        let digest = keccak256(&public.to_bytes());
        let mut addr = [0u8; 20];
        addr.copy_from_slice(&digest.as_bytes()[12..]);
        Wallet {
            secret,
            public,
            address: Address::from_bytes(addr),
        }
    }

    /// The wallet's address.
    pub fn address(&self) -> Address {
        self.address
    }

    /// The wallet's public key.
    pub fn public_key(&self) -> &PublicKey {
        &self.public
    }

    /// Signs a 32-byte digest with the wallet's secret key.
    pub fn sign(&self, digest: &[u8; 32]) -> Signature {
        self.secret.sign(digest)
    }
}

impl fmt::Display for Wallet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Wallet({})", self.address)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_seeds_distinct_addresses() {
        let a = Wallet::from_seed(1);
        let b = Wallet::from_seed(2);
        assert_ne!(a.address(), b.address());
    }

    #[test]
    fn same_seed_same_address() {
        assert_eq!(
            Wallet::from_seed(5).address(),
            Wallet::from_seed(5).address()
        );
    }

    #[test]
    fn address_is_nonzero() {
        assert!(!Wallet::from_seed(3).address().is_zero());
    }

    #[test]
    fn signature_binds_to_wallet() {
        let w1 = Wallet::from_seed(1);
        let w2 = Wallet::from_seed(2);
        let digest = keccak256(b"tx payload").into_bytes();
        let sig = w1.sign(&digest);
        assert!(w1.public_key().verify(&digest, &sig));
        assert!(!w2.public_key().verify(&digest, &sig));
    }
}
