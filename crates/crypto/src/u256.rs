//! 256-bit unsigned integer arithmetic.
//!
//! A minimal big-integer type sized for secp256k1 field and scalar math.
//! Limbs are `u64`, little-endian (`limbs[0]` is least significant).
//! Modular reduction of 512-bit products uses binary long division — not the
//! fastest approach, but simple, constant-free and plenty fast for a
//! simulation signing a few thousand transactions.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A 256-bit unsigned integer.
///
/// # Example
///
/// ```
/// use parole_crypto::U256;
/// let a = U256::from_u64(7);
/// let b = U256::from_u64(5);
/// let m = U256::from_u64(11);
/// assert_eq!(a.mul_mod(&b, &m), U256::from_u64(2)); // 35 mod 11
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct U256 {
    limbs: [u64; 4],
}

impl U256 {
    /// Zero.
    pub const ZERO: U256 = U256 { limbs: [0; 4] };
    /// One.
    pub const ONE: U256 = U256 {
        limbs: [1, 0, 0, 0],
    };

    /// Constructs from little-endian limbs.
    pub const fn from_limbs(limbs: [u64; 4]) -> Self {
        U256 { limbs }
    }

    /// Constructs from a single `u64`.
    pub const fn from_u64(v: u64) -> Self {
        U256 {
            limbs: [v, 0, 0, 0],
        }
    }

    /// Parses a 32-byte big-endian representation.
    pub fn from_be_bytes(bytes: &[u8; 32]) -> Self {
        let mut limbs = [0u64; 4];
        for (i, limb) in limbs.iter_mut().enumerate() {
            let start = 32 - (i + 1) * 8;
            *limb = u64::from_be_bytes(bytes[start..start + 8].try_into().expect("8"));
        }
        U256 { limbs }
    }

    /// Serializes to 32 big-endian bytes.
    pub fn to_be_bytes(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for (i, limb) in self.limbs.iter().enumerate() {
            let start = 32 - (i + 1) * 8;
            out[start..start + 8].copy_from_slice(&limb.to_be_bytes());
        }
        out
    }

    /// Parses a (possibly `0x`-prefixed) hex string of up to 64 digits.
    ///
    /// # Panics
    ///
    /// Panics on invalid hex; intended for compile-time style constants in
    /// tests and curve parameters.
    pub fn from_hex(s: &str) -> Self {
        let hex = s.strip_prefix("0x").unwrap_or(s);
        assert!(hex.len() <= 64, "hex literal too long");
        let mut bytes = [0u8; 32];
        let padded = format!("{hex:0>64}");
        for (i, chunk) in padded.as_bytes().chunks(2).enumerate() {
            let hi = (chunk[0] as char).to_digit(16).expect("hex digit");
            let lo = (chunk[1] as char).to_digit(16).expect("hex digit");
            bytes[i] = (hi * 16 + lo) as u8;
        }
        U256::from_be_bytes(&bytes)
    }

    /// `true` when the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs == [0; 4]
    }

    /// `true` when the value is odd.
    pub fn is_odd(&self) -> bool {
        self.limbs[0] & 1 == 1
    }

    /// Value of bit `i` (0 = least significant).
    pub fn bit(&self, i: usize) -> bool {
        debug_assert!(i < 256);
        self.limbs[i / 64] >> (i % 64) & 1 == 1
    }

    /// Number of significant bits (0 for zero).
    pub fn bits(&self) -> usize {
        for i in (0..4).rev() {
            if self.limbs[i] != 0 {
                return 64 * i + (64 - self.limbs[i].leading_zeros() as usize);
            }
        }
        0
    }

    /// Low 64 bits.
    pub fn low_u64(&self) -> u64 {
        self.limbs[0]
    }

    /// Wrapping addition, returning the carry-out.
    #[allow(clippy::needless_range_loop)] // limb index couples out/self/rhs
    pub fn overflowing_add(&self, rhs: &U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut carry = false;
        for i in 0..4 {
            let (s1, c1) = self.limbs[i].overflowing_add(rhs.limbs[i]);
            let (s2, c2) = s1.overflowing_add(carry as u64);
            out[i] = s2;
            carry = c1 || c2;
        }
        (U256 { limbs: out }, carry)
    }

    /// Wrapping subtraction, returning the borrow-out.
    #[allow(clippy::needless_range_loop)] // limb index couples out/self/rhs
    pub fn overflowing_sub(&self, rhs: &U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut borrow = false;
        for i in 0..4 {
            let (d1, b1) = self.limbs[i].overflowing_sub(rhs.limbs[i]);
            let (d2, b2) = d1.overflowing_sub(borrow as u64);
            out[i] = d2;
            borrow = b1 || b2;
        }
        (U256 { limbs: out }, borrow)
    }

    /// Full 256×256 → 512-bit multiplication.
    pub fn widening_mul(&self, rhs: &U256) -> [u64; 8] {
        let mut out = [0u64; 8];
        for i in 0..4 {
            let mut carry: u128 = 0;
            for j in 0..4 {
                let cur = out[i + j] as u128 + self.limbs[i] as u128 * rhs.limbs[j] as u128 + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            out[i + 4] = carry as u64;
        }
        out
    }

    /// Reduces a 512-bit value (little-endian limbs) modulo `m` by binary
    /// long division.
    fn reduce_wide(wide: [u64; 8], m: &U256) -> U256 {
        assert!(!m.is_zero(), "modulus must be non-zero");
        // Find the highest set bit of the 512-bit value.
        let mut top = 0usize;
        for i in (0..8).rev() {
            if wide[i] != 0 {
                top = 64 * i + (64 - wide[i].leading_zeros() as usize);
                break;
            }
        }
        let mut rem = U256::ZERO;
        for i in (0..top).rev() {
            // rem = rem << 1 | bit_i. Since rem < m and m may exceed 2^255,
            // the shifted value can be a 257-bit quantity; `spill` records
            // the dropped 2^256 bit.
            let spill = rem.bit(255);
            let mut shifted = rem.shl1();
            if wide[i / 64] >> (i % 64) & 1 == 1 {
                shifted.limbs[0] |= 1;
            }
            rem = if spill {
                // True value is 2^256 + shifted, which is guaranteed to be in
                // [m, 2m) because rem < m; subtracting m once lands in [0, m)
                // and the wrapping subtraction absorbs the spilled bit.
                shifted.overflowing_sub(m).0
            } else {
                let (sub, borrow) = shifted.overflowing_sub(m);
                if borrow {
                    shifted
                } else {
                    sub
                }
            };
        }
        rem
    }

    /// Logical left shift by one bit (drops the top bit).
    #[allow(clippy::needless_range_loop)] // limb index couples out/self/rhs
    fn shl1(&self) -> U256 {
        let mut out = [0u64; 4];
        let mut carry = 0u64;
        for i in 0..4 {
            out[i] = self.limbs[i] << 1 | carry;
            carry = self.limbs[i] >> 63;
        }
        U256 { limbs: out }
    }

    /// `self mod m`.
    pub fn rem(&self, m: &U256) -> U256 {
        if self < m {
            return *self;
        }
        let mut wide = [0u64; 8];
        wide[..4].copy_from_slice(&self.limbs);
        U256::reduce_wide(wide, m)
    }

    /// `(self + rhs) mod m`; inputs must already be `< m`.
    pub fn add_mod(&self, rhs: &U256, m: &U256) -> U256 {
        debug_assert!(self < m && rhs < m);
        let (sum, carry) = self.overflowing_add(rhs);
        if carry || &sum >= m {
            let (red, _) = sum.overflowing_sub(m);
            red
        } else {
            sum
        }
    }

    /// `(self - rhs) mod m`; inputs must already be `< m`.
    pub fn sub_mod(&self, rhs: &U256, m: &U256) -> U256 {
        debug_assert!(self < m && rhs < m);
        let (diff, borrow) = self.overflowing_sub(rhs);
        if borrow {
            let (wrapped, _) = diff.overflowing_add(m);
            wrapped
        } else {
            diff
        }
    }

    /// `(self × rhs) mod m`.
    pub fn mul_mod(&self, rhs: &U256, m: &U256) -> U256 {
        U256::reduce_wide(self.widening_mul(rhs), m)
    }

    /// `self^exp mod m` by square-and-multiply.
    pub fn pow_mod(&self, exp: &U256, m: &U256) -> U256 {
        let mut result = U256::ONE.rem(m);
        let base = self.rem(m);
        let nbits = exp.bits();
        let mut acc = base;
        for i in 0..nbits {
            if exp.bit(i) {
                result = result.mul_mod(&acc, m);
            }
            acc = acc.mul_mod(&acc, m);
        }
        result
    }

    /// Modular inverse via Fermat's little theorem (`m` must be prime and
    /// `self` non-zero mod `m`).
    pub fn inv_mod_prime(&self, m: &U256) -> U256 {
        // a^(m-2) mod m
        let (m_minus_2, _) = m.overflowing_sub(&U256::from_u64(2));
        self.pow_mod(&m_minus_2, m)
    }
}

impl PartialOrd for U256 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for U256 {
    fn cmp(&self, other: &Self) -> Ordering {
        for i in (0..4).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl fmt::Display for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x")?;
        for b in self.to_be_bytes() {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

impl From<u64> for U256 {
    fn from(v: u64) -> Self {
        U256::from_u64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn be_bytes_roundtrip() {
        let v = U256::from_hex(
            "0x0123456789abcdef_fedcba9876543210"
                .replace('_', "")
                .as_str(),
        );
        assert_eq!(U256::from_be_bytes(&v.to_be_bytes()), v);
    }

    #[test]
    fn hex_parse_and_display() {
        let v = U256::from_hex("ff");
        assert_eq!(v, U256::from_u64(255));
        assert!(v.to_string().ends_with("ff"));
    }

    #[test]
    fn add_sub_carry_borrow() {
        let max = U256::from_limbs([u64::MAX; 4]);
        let (sum, carry) = max.overflowing_add(&U256::ONE);
        assert!(carry);
        assert_eq!(sum, U256::ZERO);
        let (diff, borrow) = U256::ZERO.overflowing_sub(&U256::ONE);
        assert!(borrow);
        assert_eq!(diff, max);
    }

    #[test]
    fn widening_mul_small() {
        let a = U256::from_u64(u64::MAX);
        let wide = a.widening_mul(&a);
        // (2^64-1)^2 = 2^128 - 2^65 + 1
        assert_eq!(wide[0], 1);
        assert_eq!(wide[1], u64::MAX - 1);
        assert_eq!(wide[2..], [0, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn mod_arith_small_numbers() {
        let m = U256::from_u64(97);
        let a = U256::from_u64(60);
        let b = U256::from_u64(50);
        assert_eq!(a.add_mod(&b, &m), U256::from_u64(13));
        assert_eq!(b.sub_mod(&a, &m), U256::from_u64(87));
        assert_eq!(a.mul_mod(&b, &m), U256::from_u64(3000 % 97));
        assert_eq!(a.pow_mod(&U256::from_u64(96), &m), U256::ONE); // Fermat
        let inv = a.inv_mod_prime(&m);
        assert_eq!(a.mul_mod(&inv, &m), U256::ONE);
    }

    #[test]
    fn rem_reduces_large_values() {
        let m = U256::from_hex("fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141");
        let big = U256::from_limbs([u64::MAX; 4]);
        let r = big.rem(&m);
        assert!(r < m);
        // big - m < m here, so r should equal big - m.
        let (expect, _) = big.overflowing_sub(&m);
        assert_eq!(r, expect);
    }

    #[test]
    fn bits_and_bit_access() {
        assert_eq!(U256::ZERO.bits(), 0);
        assert_eq!(U256::ONE.bits(), 1);
        let v = U256::from_limbs([0, 0, 0, 1]);
        assert_eq!(v.bits(), 193);
        assert!(v.bit(192));
        assert!(!v.bit(0));
    }

    #[test]
    fn pow_mod_identity_cases() {
        let m = U256::from_u64(101);
        assert_eq!(U256::from_u64(5).pow_mod(&U256::ZERO, &m), U256::ONE);
        assert_eq!(U256::from_u64(5).pow_mod(&U256::ONE, &m), U256::from_u64(5));
    }
}
