//! Incrementally-maintained Merkle commitment trees.
//!
//! [`MerkleTree`](crate::MerkleTree) is rebuilt from scratch on every call —
//! fine for fraud-proof generation, ruinous for the state-root hot path,
//! which recommits the whole world after every window evaluation. A
//! [`CommitTree`] keeps the same level structure resident and repairs it
//! after point edits:
//!
//! - [`CommitTree::update`] recomputes only the leaf-to-root path —
//!   O(log n) hashes;
//! - [`CommitTree::update_batch`] repairs Δ dirty leaves level by level,
//!   deduplicating shared ancestors — O(Δ · log n) hashes with the constant
//!   shrinking as dirty paths merge;
//! - [`CommitTree::insert`] / [`CommitTree::remove`] splice the leaf level
//!   and rehash only the suffix whose positions shifted.
//!
//! The root is **bit-identical** to
//! `MerkleTree::from_leaves(leaves).root()` for the same leaf sequence at
//! every point — the equivalence proptests in `tests/prop.rs` replay random
//! edit scripts against a from-scratch rebuild to pin that down. The fraud
//! proof game and every existing on-chain commitment are therefore
//! unchanged by callers switching to the incremental tree.

use crate::keccak::keccak256_concat;
use crate::merkle::{prove_levels, MerkleProof};
use parole_primitives::Hash32;

/// A binary Merkle tree over pre-hashed 32-byte leaves that supports
/// in-place point edits.
///
/// Structure (levels, unpaired-node promotion, empty-tree sentinel root) is
/// identical to [`MerkleTree`](crate::MerkleTree); only the maintenance
/// strategy differs.
///
/// # Example
///
/// ```
/// use parole_crypto::{keccak256, CommitTree, MerkleTree};
/// let leaves: Vec<_> = (0..5u64).map(|i| keccak256(&i.to_be_bytes())).collect();
/// let mut tree = CommitTree::from_leaves(leaves.clone());
/// assert_eq!(tree.root(), MerkleTree::from_leaves(leaves.clone()).root());
///
/// let new_leaf = keccak256(b"updated");
/// tree.update(2, new_leaf);
/// let mut rebuilt = leaves.clone();
/// rebuilt[2] = new_leaf;
/// assert_eq!(tree.root(), MerkleTree::from_leaves(rebuilt).root());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitTree {
    /// `levels[0]` is the leaf level; the last level holds the single root
    /// (or is empty for an empty tree).
    levels: Vec<Vec<Hash32>>,
}

impl CommitTree {
    /// Builds the tree from pre-hashed leaves (same cost and result as
    /// [`MerkleTree::from_leaves`](crate::MerkleTree::from_leaves)).
    pub fn from_leaves(leaves: Vec<Hash32>) -> Self {
        let mut levels = vec![leaves];
        while levels.last().expect("non-empty").len() > 1 {
            let prev = levels.last().expect("non-empty");
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for pair in prev.chunks(2) {
                if pair.len() == 2 {
                    next.push(keccak256_concat(pair[0].as_bytes(), pair[1].as_bytes()));
                } else {
                    next.push(pair[0]);
                }
            }
            levels.push(next);
        }
        CommitTree { levels }
    }

    /// The Merkle root ([`Hash32::ZERO`] for an empty tree).
    pub fn root(&self) -> Hash32 {
        self.levels
            .last()
            .and_then(|l| l.first())
            .copied()
            .unwrap_or(Hash32::ZERO)
    }

    /// The number of leaves.
    pub fn len(&self) -> usize {
        self.levels.first().map_or(0, Vec::len)
    }

    /// Returns `true` when the tree has no leaves.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The leaf hash at `index`, if in bounds.
    pub fn leaf(&self, index: usize) -> Option<Hash32> {
        self.levels.first().and_then(|l| l.get(index)).copied()
    }

    /// Recomputes the parent node at `levels[level + 1][parent]` from its
    /// children. The parent slot must already exist.
    fn rehash_parent(&mut self, level: usize, parent: usize) {
        let (children, parents) = self.levels.split_at_mut(level + 1);
        let children = &children[level];
        let left = 2 * parent;
        let node = if left + 1 < children.len() {
            keccak256_concat(children[left].as_bytes(), children[left + 1].as_bytes())
        } else {
            // Unpaired node promoted unchanged.
            children[left]
        };
        parents[0][parent] = node;
    }

    /// Replaces the leaf at `index`, repairing the path to the root:
    /// O(log n) hashes.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of bounds.
    pub fn update(&mut self, index: usize, leaf: Hash32) {
        assert!(index < self.len(), "leaf index {index} out of bounds");
        self.levels[0][index] = leaf;
        let mut idx = index;
        for level in 0..self.levels.len() - 1 {
            idx /= 2;
            self.rehash_parent(level, idx);
        }
    }

    /// Applies a batch of leaf replacements, then repairs all affected paths
    /// level by level with shared ancestors hashed once: O(Δ · log n)
    /// hashes for Δ distinct dirty leaves, less when their paths merge.
    ///
    /// Later entries for the same index win, matching sequential
    /// [`CommitTree::update`] calls.
    ///
    /// # Panics
    ///
    /// Panics when any index is out of bounds.
    pub fn update_batch(&mut self, updates: &[(usize, Hash32)]) {
        if updates.is_empty() {
            return;
        }
        let len = self.len();
        let mut dirty: Vec<usize> = Vec::with_capacity(updates.len());
        for &(index, leaf) in updates {
            assert!(index < len, "leaf index {index} out of bounds");
            self.levels[0][index] = leaf;
            dirty.push(index);
        }
        dirty.sort_unstable();
        dirty.dedup();
        for level in 0..self.levels.len() - 1 {
            // Parents of the dirty nodes; consecutive duplicates collapse
            // because `dirty` stays sorted.
            let mut parents = Vec::with_capacity(dirty.len());
            for &i in &dirty {
                let p = i / 2;
                if parents.last() != Some(&p) {
                    parents.push(p);
                }
            }
            for &p in &parents {
                self.rehash_parent(level, p);
            }
            dirty = parents;
        }
    }

    /// Inserts a leaf before position `index` (`index == len` appends),
    /// shifting later leaves right. Hashes only the suffix whose positions
    /// changed: O(log n) for appends, O((n − index) + log n) in general.
    ///
    /// # Panics
    ///
    /// Panics when `index > len`.
    pub fn insert(&mut self, index: usize, leaf: Hash32) {
        assert!(index <= self.len(), "insert index {index} out of bounds");
        self.levels[0].insert(index, leaf);
        self.rebuild_from(index);
    }

    /// Removes the leaf at `index`, shifting later leaves left. Cost profile
    /// as [`CommitTree::insert`].
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of bounds.
    pub fn remove(&mut self, index: usize) {
        assert!(index < self.len(), "remove index {index} out of bounds");
        self.levels[0].remove(index);
        self.rebuild_from(index);
    }

    /// Repairs every level above the leaves after a splice at leaf position
    /// `from`: all parents from `from / 2` onward are recomputed and level
    /// lengths are re-established (the tree may have grown or shrunk a
    /// level).
    fn rebuild_from(&mut self, from: usize) {
        let mut level = 0;
        let mut from = from;
        while self.levels[level].len() > 1 {
            let child_len = self.levels[level].len();
            let parent_len = child_len.div_ceil(2);
            if self.levels.len() == level + 1 {
                self.levels.push(Vec::with_capacity(parent_len));
            }
            let start = (from / 2).min(parent_len.saturating_sub(1));
            {
                let (children, parents) = self.levels.split_at_mut(level + 1);
                let children = &children[level];
                let parents = &mut parents[0];
                parents.truncate(parent_len);
                for p in start..parent_len {
                    let left = 2 * p;
                    let node = if left + 1 < child_len {
                        keccak256_concat(children[left].as_bytes(), children[left + 1].as_bytes())
                    } else {
                        children[left]
                    };
                    if p < parents.len() {
                        parents[p] = node;
                    } else {
                        parents.push(node);
                    }
                }
            }
            from = start;
            level += 1;
        }
        // The tree may have shrunk: drop now-meaningless upper levels.
        self.levels.truncate(level + 1);
    }

    /// The leaf level as a slice (primarily for tests and rebuild
    /// cross-checks).
    pub fn leaves(&self) -> &[Hash32] {
        self.levels.first().map_or(&[], Vec::as_slice)
    }

    /// Generates an inclusion proof for the leaf at `index` directly from
    /// the resident levels — no rebuild, O(log n) copies. The proof is
    /// byte-identical to what [`MerkleTree::prove`](crate::MerkleTree::prove)
    /// produces for the same leaf sequence, so verifiers need not know which
    /// tree flavor committed the root.
    ///
    /// Returns `None` when `index` is out of bounds.
    pub fn prove(&self, index: usize) -> Option<MerkleProof> {
        prove_levels(&self.levels, index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keccak::keccak256;
    use crate::MerkleTree;

    fn leaves(n: usize) -> Vec<Hash32> {
        (0..n)
            .map(|i| keccak256(&(i as u64).to_be_bytes()))
            .collect()
    }

    fn assert_matches_rebuild(tree: &CommitTree) {
        let want = MerkleTree::from_leaves(tree.leaves().to_vec()).root();
        assert_eq!(tree.root(), want, "incremental root diverged from rebuild");
    }

    #[test]
    fn from_leaves_matches_merkle_tree_all_sizes() {
        for n in 0..=17 {
            let l = leaves(n);
            assert_eq!(
                CommitTree::from_leaves(l.clone()).root(),
                MerkleTree::from_leaves(l).root(),
                "n={n}"
            );
        }
    }

    #[test]
    fn update_repairs_path_for_all_positions() {
        for n in 1..=17 {
            let mut tree = CommitTree::from_leaves(leaves(n));
            for i in 0..n {
                tree.update(i, keccak256(format!("upd-{n}-{i}").as_bytes()));
                assert_matches_rebuild(&tree);
            }
        }
    }

    #[test]
    fn insert_at_every_position() {
        for n in 0..=12 {
            for at in 0..=n {
                let mut tree = CommitTree::from_leaves(leaves(n));
                tree.insert(at, keccak256(b"inserted"));
                assert_matches_rebuild(&tree);
            }
        }
    }

    #[test]
    fn remove_at_every_position() {
        for n in 1..=12 {
            for at in 0..n {
                let mut tree = CommitTree::from_leaves(leaves(n));
                tree.remove(at);
                assert_matches_rebuild(&tree);
            }
        }
    }

    #[test]
    fn remove_to_empty_restores_sentinel() {
        let mut tree = CommitTree::from_leaves(leaves(3));
        tree.remove(2);
        tree.remove(0);
        tree.remove(0);
        assert!(tree.is_empty());
        assert_eq!(tree.root(), Hash32::ZERO);
        // And the tree grows back correctly.
        tree.insert(0, keccak256(b"reborn"));
        assert_matches_rebuild(&tree);
    }

    #[test]
    fn update_batch_matches_sequential_updates() {
        let mut batched = CommitTree::from_leaves(leaves(13));
        let mut sequential = batched.clone();
        let updates: Vec<(usize, Hash32)> = [(0usize, 7u64), (12, 8), (5, 9), (6, 10), (5, 11)]
            .iter()
            .map(|&(i, tag)| (i, keccak256(&tag.to_be_bytes())))
            .collect();
        for &(i, h) in &updates {
            sequential.update(i, h);
        }
        batched.update_batch(&updates);
        assert_eq!(batched, sequential);
        assert_matches_rebuild(&batched);
    }

    #[test]
    fn mixed_edit_script_stays_consistent() {
        let mut tree = CommitTree::from_leaves(leaves(4));
        for step in 0u64..64 {
            let h = keccak256(&step.to_be_bytes());
            let n = tree.len();
            match step % 4 {
                0 => tree.insert((step as usize * 7) % (n + 1), h),
                1 if n > 0 => tree.update((step as usize * 5) % n, h),
                2 if n > 0 => tree.remove((step as usize * 3) % n),
                _ => tree.insert(n, h),
            }
            assert_matches_rebuild(&tree);
        }
    }
}
