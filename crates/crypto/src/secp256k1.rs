//! The secp256k1 elliptic curve and ECDSA, from scratch.
//!
//! Implements the curve `y² = x³ + 7` over the prime field
//! `p = 2^256 − 2^32 − 977`, with group order `n`, Jacobian-coordinate point
//! arithmetic, and ECDSA with deterministic (RFC-6979-style, Keccak-based)
//! nonces.
//!
//! Field multiplication uses the fast "fold" reduction enabled by the special
//! form of `p` (`2^256 ≡ 2^32 + 977 (mod p)`); scalar arithmetic modulo `n`
//! falls back to the generic [`U256`] reduction, which is fine because a
//! signature needs only a handful of mod-`n` operations.
//!
//! This is an educational implementation: it is *not* constant-time and must
//! never guard real funds. Within the simulation it provides authentic
//! transaction authentication semantics (unforgeability against the
//! simulated adversaries, who do not mount timing attacks).

use crate::keccak::Keccak256;
use crate::u256::U256;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::OnceLock;

/// The field prime `p = 2^256 − 2^32 − 977`.
pub fn field_prime() -> &'static U256 {
    static P: OnceLock<U256> = OnceLock::new();
    P.get_or_init(|| {
        U256::from_hex("fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f")
    })
}

/// The group order `n`.
pub fn group_order() -> &'static U256 {
    static N: OnceLock<U256> = OnceLock::new();
    N.get_or_init(|| {
        U256::from_hex("fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141")
    })
}

/// The generator point `G`.
pub fn generator() -> &'static AffinePoint {
    static G: OnceLock<AffinePoint> = OnceLock::new();
    G.get_or_init(|| AffinePoint {
        x: U256::from_hex("79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798"),
        y: U256::from_hex("483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8"),
        infinity: false,
    })
}

const FOLD: u64 = 977;

/// Multiplies two field elements modulo `p` using the fold reduction.
fn fmul(a: &U256, b: &U256) -> U256 {
    let wide = a.widening_mul(b);
    reduce_fold(wide)
}

/// Squares a field element.
fn fsqr(a: &U256) -> U256 {
    fmul(a, a)
}

/// Reduces a 512-bit product modulo `p` by folding the high half twice:
/// `2^256 ≡ 2^32 + 977 (mod p)`.
fn reduce_fold(wide: [u64; 8]) -> U256 {
    // Split into low and high 256-bit halves.
    let lo = U256::from_limbs([wide[0], wide[1], wide[2], wide[3]]);
    let hi = U256::from_limbs([wide[4], wide[5], wide[6], wide[7]]);
    // hi * (2^32 + 977) fits in 512-33 bits; compute as 320-bit value.
    let folded = mul_small(&hi, FOLD, 32);
    let (sum, carry) = lo.overflowing_add(&folded.0);
    // Residual carries: folded.1 holds limb-4 overflow of the fold; `carry`
    // holds the add carry. Fold them again (each represents 2^256).
    let mut acc = sum;
    let extra = folded.1 + carry as u64;
    if extra > 0 {
        // extra * (2^32 + 977) is tiny; add directly.
        let (f2, of2) = mul_small(&U256::from_u64(extra), FOLD, 32);
        debug_assert_eq!(of2, 0);
        let (s2, c2) = acc.overflowing_add(&f2);
        acc = s2;
        if c2 {
            let (f3, _) = mul_small(&U256::ONE, FOLD, 32);
            let (s3, _) = acc.overflowing_add(&f3);
            acc = s3;
        }
    }
    // Final conditional subtractions.
    let p = field_prime();
    while &acc >= p {
        let (d, _) = acc.overflowing_sub(p);
        acc = d;
    }
    acc
}

/// Computes `v * (2^shift + small)`, returning (low 256 bits, limb-4 carry).
fn mul_small(v: &U256, small: u64, shift: u32) -> (U256, u64) {
    let limbs = [v.low_u64(), limb(v, 1), limb(v, 2), limb(v, 3)];
    let mut out = [0u64; 5];
    // v * small
    let mut carry: u128 = 0;
    for i in 0..4 {
        let cur = limbs[i] as u128 * small as u128 + carry;
        out[i] = cur as u64;
        carry = cur >> 64;
    }
    out[4] = carry as u64;
    // + v << shift (shift < 64)
    let mut carry2: u128 = 0;
    for i in 0..4 {
        let shifted = (limbs[i] as u128) << shift;
        let cur = out[i] as u128 + (shifted & 0xFFFF_FFFF_FFFF_FFFF) + carry2;
        out[i] = cur as u64;
        carry2 = (cur >> 64) + (shifted >> 64);
    }
    let cur = out[4] as u128 + carry2;
    out[4] = cur as u64;
    debug_assert_eq!(cur >> 64, 0);
    (U256::from_limbs([out[0], out[1], out[2], out[3]]), out[4])
}

fn limb(v: &U256, i: usize) -> u64 {
    let bytes = v.to_be_bytes();
    let start = 32 - (i + 1) * 8;
    u64::from_be_bytes(bytes[start..start + 8].try_into().expect("8"))
}

fn fadd(a: &U256, b: &U256) -> U256 {
    a.add_mod(b, field_prime())
}

fn fsub(a: &U256, b: &U256) -> U256 {
    a.sub_mod(b, field_prime())
}

fn finv(a: &U256) -> U256 {
    a.inv_mod_prime(field_prime())
}

/// A point on secp256k1 in affine coordinates (or the point at infinity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AffinePoint {
    /// x-coordinate.
    pub x: U256,
    /// y-coordinate.
    pub y: U256,
    /// Whether this is the identity element.
    pub infinity: bool,
}

impl AffinePoint {
    /// The point at infinity (group identity).
    pub const INFINITY: AffinePoint = AffinePoint {
        x: U256::ZERO,
        y: U256::ZERO,
        infinity: true,
    };

    /// Checks the curve equation `y² = x³ + 7 (mod p)`.
    pub fn is_on_curve(&self) -> bool {
        if self.infinity {
            return true;
        }
        let lhs = fsqr(&self.y);
        let rhs = fadd(&fmul(&fsqr(&self.x), &self.x), &U256::from_u64(7));
        lhs == rhs
    }

    /// Serializes as 64 bytes (x ‖ y, big-endian). Infinity is all zeros.
    pub fn to_bytes(&self) -> [u8; 64] {
        let mut out = [0u8; 64];
        if !self.infinity {
            out[..32].copy_from_slice(&self.x.to_be_bytes());
            out[32..].copy_from_slice(&self.y.to_be_bytes());
        }
        out
    }
}

impl fmt::Display for AffinePoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.infinity {
            write!(f, "Point(infinity)")
        } else {
            write!(f, "Point({}, {})", self.x, self.y)
        }
    }
}

/// A point in Jacobian projective coordinates `(X, Y, Z)` with
/// `x = X/Z²`, `y = Y/Z³`.
#[derive(Debug, Clone, Copy)]
struct JacobianPoint {
    x: U256,
    y: U256,
    z: U256,
}

impl JacobianPoint {
    const INFINITY: JacobianPoint = JacobianPoint {
        x: U256::ONE,
        y: U256::ONE,
        z: U256::ZERO,
    };

    fn from_affine(p: &AffinePoint) -> Self {
        if p.infinity {
            JacobianPoint::INFINITY
        } else {
            JacobianPoint {
                x: p.x,
                y: p.y,
                z: U256::ONE,
            }
        }
    }

    fn is_infinity(&self) -> bool {
        self.z.is_zero()
    }

    fn to_affine(self) -> AffinePoint {
        if self.is_infinity() {
            return AffinePoint::INFINITY;
        }
        let zinv = finv(&self.z);
        let zinv2 = fsqr(&zinv);
        let zinv3 = fmul(&zinv2, &zinv);
        AffinePoint {
            x: fmul(&self.x, &zinv2),
            y: fmul(&self.y, &zinv3),
            infinity: false,
        }
    }

    /// Point doubling (dbl-2009-l formulas, a = 0).
    fn double(&self) -> JacobianPoint {
        if self.is_infinity() || self.y.is_zero() {
            return JacobianPoint::INFINITY;
        }
        let a = fsqr(&self.x);
        let b = fsqr(&self.y);
        let c = fsqr(&b);
        // d = 2*((x + b)^2 - a - c)
        let t = fsqr(&fadd(&self.x, &b));
        let d = {
            let inner = fsub(&fsub(&t, &a), &c);
            fadd(&inner, &inner)
        };
        // e = 3a
        let e = fadd(&fadd(&a, &a), &a);
        let f = fsqr(&e);
        // x3 = f - 2d
        let x3 = fsub(&f, &fadd(&d, &d));
        // y3 = e*(d - x3) - 8c
        let c8 = {
            let c2 = fadd(&c, &c);
            let c4 = fadd(&c2, &c2);
            fadd(&c4, &c4)
        };
        let y3 = fsub(&fmul(&e, &fsub(&d, &x3)), &c8);
        // z3 = 2*y*z
        let yz = fmul(&self.y, &self.z);
        let z3 = fadd(&yz, &yz);
        JacobianPoint {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Mixed addition of a Jacobian point and an affine point
    /// (madd-2007-bl formulas).
    fn add_affine(&self, q: &AffinePoint) -> JacobianPoint {
        if q.infinity {
            return *self;
        }
        if self.is_infinity() {
            return JacobianPoint::from_affine(q);
        }
        let z1z1 = fsqr(&self.z);
        let u2 = fmul(&q.x, &z1z1);
        let s2 = fmul(&fmul(&q.y, &self.z), &z1z1);
        if u2 == self.x {
            if s2 == self.y {
                return self.double();
            }
            return JacobianPoint::INFINITY;
        }
        let h = fsub(&u2, &self.x);
        let hh = fsqr(&h);
        // i = 4*hh
        let i = {
            let hh2 = fadd(&hh, &hh);
            fadd(&hh2, &hh2)
        };
        let j = fmul(&h, &i);
        // r = 2*(s2 - y1)
        let r = {
            let d = fsub(&s2, &self.y);
            fadd(&d, &d)
        };
        let v = fmul(&self.x, &i);
        // x3 = r^2 - j - 2v
        let x3 = fsub(&fsub(&fsqr(&r), &j), &fadd(&v, &v));
        // y3 = r*(v - x3) - 2*y1*j
        let y1j = fmul(&self.y, &j);
        let y3 = fsub(&fmul(&r, &fsub(&v, &x3)), &fadd(&y1j, &y1j));
        // z3 = 2*z1*h  ( (z1+h)^2 - z1z1 - hh )
        let z3 = fsub(&fsub(&fsqr(&fadd(&self.z, &h)), &z1z1), &hh);
        JacobianPoint {
            x: x3,
            y: y3,
            z: z3,
        }
    }
}

/// Scalar multiplication `k·P` by double-and-add.
pub fn scalar_mul(k: &U256, p: &AffinePoint) -> AffinePoint {
    let k = k.rem(group_order());
    let mut acc = JacobianPoint::INFINITY;
    let nbits = k.bits();
    for i in (0..nbits).rev() {
        acc = acc.double();
        if k.bit(i) {
            acc = acc.add_affine(p);
        }
    }
    acc.to_affine()
}

/// An ECDSA secret key (a non-zero scalar modulo `n`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SecretKey {
    scalar: U256,
}

impl SecretKey {
    /// Creates a secret key from a scalar, reducing modulo `n`.
    ///
    /// Returns `None` for the zero scalar.
    pub fn from_scalar(scalar: U256) -> Option<Self> {
        let reduced = scalar.rem(group_order());
        if reduced.is_zero() {
            None
        } else {
            Some(SecretKey { scalar: reduced })
        }
    }

    /// Derives a key deterministically from a 64-bit seed (test/simulation
    /// convenience; hashes the seed so nearby seeds give unrelated keys).
    pub fn from_seed(seed: u64) -> Self {
        let mut h = Keccak256::new();
        h.update(b"parole-secret-key");
        h.update(&seed.to_be_bytes());
        let digest = h.finalize();
        SecretKey::from_scalar(U256::from_be_bytes(digest.as_bytes()))
            .expect("hash output is astronomically unlikely to be 0 mod n")
    }

    /// The corresponding public key `d·G`.
    pub fn public_key(&self) -> PublicKey {
        PublicKey {
            point: scalar_mul(&self.scalar, generator()),
        }
    }

    /// Signs a 32-byte message digest with a deterministic nonce.
    ///
    /// The nonce is `keccak(d ‖ z ‖ ctr) mod n`, retried on the (negligible)
    /// degenerate cases — the same determinism benefit as RFC 6979 without
    /// the full HMAC-DRBG construction.
    pub fn sign(&self, digest: &[u8; 32]) -> Signature {
        let n = group_order();
        let z = U256::from_be_bytes(digest).rem(n);
        let mut ctr: u64 = 0;
        loop {
            let mut h = Keccak256::new();
            h.update(&self.scalar.to_be_bytes());
            h.update(digest);
            h.update(&ctr.to_be_bytes());
            let k = U256::from_be_bytes(h.finalize().as_bytes()).rem(n);
            ctr += 1;
            if k.is_zero() {
                continue;
            }
            let rp = scalar_mul(&k, generator());
            let r = rp.x.rem(n);
            if r.is_zero() {
                continue;
            }
            let kinv = k.inv_mod_prime(n);
            let s = kinv.mul_mod(&z.add_mod(&r.mul_mod(&self.scalar, n), n), n);
            if s.is_zero() {
                continue;
            }
            return Signature { r, s };
        }
    }
}

/// An ECDSA public key (a curve point).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PublicKey {
    point: AffinePoint,
}

impl PublicKey {
    /// The underlying curve point.
    pub fn point(&self) -> &AffinePoint {
        &self.point
    }

    /// Uncompressed 64-byte encoding (x ‖ y).
    pub fn to_bytes(&self) -> [u8; 64] {
        self.point.to_bytes()
    }

    /// Verifies an ECDSA signature over a 32-byte digest.
    pub fn verify(&self, digest: &[u8; 32], sig: &Signature) -> bool {
        let n = group_order();
        if sig.r.is_zero() || sig.s.is_zero() || &sig.r >= n || &sig.s >= n {
            return false;
        }
        if self.point.infinity || !self.point.is_on_curve() {
            return false;
        }
        let z = U256::from_be_bytes(digest).rem(n);
        let sinv = sig.s.inv_mod_prime(n);
        let u1 = z.mul_mod(&sinv, n);
        let u2 = sig.r.mul_mod(&sinv, n);
        // R = u1*G + u2*Q
        let p1 = JacobianPoint::from_affine(&scalar_mul(&u1, generator()));
        let sum = p1.add_affine(&scalar_mul(&u2, &self.point)).to_affine();
        if sum.infinity {
            return false;
        }
        sum.x.rem(n) == sig.r
    }
}

/// An ECDSA signature `(r, s)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Signature {
    /// The `r` component.
    pub r: U256,
    /// The `s` component.
    pub s: U256,
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sig(r={}, s={})", self.r, self.s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_on_curve() {
        assert!(generator().is_on_curve());
    }

    #[test]
    fn two_g_matches_known_vector() {
        let two_g = scalar_mul(&U256::from_u64(2), generator());
        assert_eq!(
            two_g.x,
            U256::from_hex("c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5")
        );
        assert_eq!(
            two_g.y,
            U256::from_hex("1ae168fea63dc339a3c58419466ceaeef7f632653266d0e1236431a950cfe52a")
        );
        assert!(two_g.is_on_curve());
    }

    #[test]
    fn scalar_one_is_generator() {
        let p = scalar_mul(&U256::ONE, generator());
        assert_eq!(&p, generator());
    }

    #[test]
    fn order_times_g_is_infinity() {
        // n·G = O. scalar_mul reduces k mod n, so use composition instead:
        // (n-1)·G + G = O.
        let (n_minus_1, _) = group_order().overflowing_sub(&U256::ONE);
        let p = scalar_mul(&n_minus_1, generator());
        let sum = JacobianPoint::from_affine(&p)
            .add_affine(generator())
            .to_affine();
        assert!(sum.infinity);
    }

    #[test]
    fn scalar_mul_distributes() {
        // 5G == 2G + 3G
        let five = scalar_mul(&U256::from_u64(5), generator());
        let two = scalar_mul(&U256::from_u64(2), generator());
        let three = scalar_mul(&U256::from_u64(3), generator());
        let sum = JacobianPoint::from_affine(&two)
            .add_affine(&three)
            .to_affine();
        assert_eq!(five, sum);
        assert!(five.is_on_curve());
    }

    #[test]
    fn sign_verify_roundtrip() {
        let sk = SecretKey::from_seed(7);
        let pk = sk.public_key();
        assert!(pk.point().is_on_curve());
        let digest = crate::keccak::keccak256(b"attack at dawn").into_bytes();
        let sig = sk.sign(&digest);
        assert!(pk.verify(&digest, &sig));
    }

    #[test]
    fn verify_rejects_tampered_message() {
        let sk = SecretKey::from_seed(8);
        let pk = sk.public_key();
        let digest = crate::keccak::keccak256(b"original").into_bytes();
        let sig = sk.sign(&digest);
        let other = crate::keccak::keccak256(b"tampered").into_bytes();
        assert!(!pk.verify(&other, &sig));
    }

    #[test]
    fn verify_rejects_wrong_key() {
        let sk1 = SecretKey::from_seed(9);
        let sk2 = SecretKey::from_seed(10);
        let digest = crate::keccak::keccak256(b"msg").into_bytes();
        let sig = sk1.sign(&digest);
        assert!(!sk2.public_key().verify(&digest, &sig));
    }

    #[test]
    fn verify_rejects_degenerate_signature() {
        let pk = SecretKey::from_seed(11).public_key();
        let digest = [0u8; 32];
        let zero_sig = Signature {
            r: U256::ZERO,
            s: U256::ZERO,
        };
        assert!(!pk.verify(&digest, &zero_sig));
        let big_sig = Signature {
            r: *group_order(),
            s: U256::ONE,
        };
        assert!(!pk.verify(&digest, &big_sig));
    }

    #[test]
    fn deterministic_signatures() {
        let sk = SecretKey::from_seed(12);
        let digest = crate::keccak::keccak256(b"same message").into_bytes();
        assert_eq!(sk.sign(&digest), sk.sign(&digest));
    }

    #[test]
    fn fold_reduction_agrees_with_generic() {
        let a = U256::from_hex("e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
        let b = U256::from_hex("9c1185a5c5e9fc54612808977ee8f548b2258d31a8d56e7fcf0bdcdd3c5dd2a4");
        let fast = fmul(&a, &b);
        let slow = a.mul_mod(&b, field_prime());
        assert_eq!(fast, slow);
    }
}
