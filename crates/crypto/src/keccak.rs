//! Keccak-256 (the Ethereum variant, with the original `0x01` domain
//! padding rather than NIST SHA-3's `0x06`).
//!
//! Implements the Keccak-f[1600] permutation directly from the reference
//! specification. Validated in the unit tests against the canonical vectors
//! for the empty string and `"abc"` that Ethereum tooling uses.

use parole_primitives::Hash32;

/// Round constants for the ι (iota) step of Keccak-f[1600].
const ROUND_CONSTANTS: [u64; 24] = [
    0x0000000000000001,
    0x0000000000008082,
    0x800000000000808a,
    0x8000000080008000,
    0x000000000000808b,
    0x0000000080000001,
    0x8000000080008081,
    0x8000000000008009,
    0x000000000000008a,
    0x0000000000000088,
    0x0000000080008009,
    0x000000008000000a,
    0x000000008000808b,
    0x800000000000008b,
    0x8000000000008089,
    0x8000000000008003,
    0x8000000000008002,
    0x8000000000000080,
    0x000000000000800a,
    0x800000008000000a,
    0x8000000080008081,
    0x8000000000008080,
    0x0000000080000001,
    0x8000000080008008,
];

/// Rotation offsets for the ρ (rho) step, indexed `[x][y]`.
const ROTATION: [[u32; 5]; 5] = [
    [0, 36, 3, 41, 18],
    [1, 44, 10, 45, 2],
    [62, 6, 43, 15, 61],
    [28, 55, 25, 21, 56],
    [27, 20, 39, 8, 14],
];

/// Rate in bytes for Keccak-256 (1600-bit state, 512-bit capacity).
const RATE: usize = 136;

/// Applies the 24-round Keccak-f[1600] permutation to the state in place.
#[allow(clippy::needless_range_loop)] // x/y lattice indexing mirrors the spec
fn keccak_f(state: &mut [[u64; 5]; 5]) {
    for &rc in ROUND_CONSTANTS.iter() {
        // θ (theta)
        let mut c = [0u64; 5];
        for (x, cx) in c.iter_mut().enumerate() {
            *cx = state[x][0] ^ state[x][1] ^ state[x][2] ^ state[x][3] ^ state[x][4];
        }
        for x in 0..5 {
            let d = c[(x + 4) % 5] ^ c[(x + 1) % 5].rotate_left(1);
            for y in 0..5 {
                state[x][y] ^= d;
            }
        }
        // ρ (rho) and π (pi)
        let mut b = [[0u64; 5]; 5];
        for x in 0..5 {
            for y in 0..5 {
                b[y][(2 * x + 3 * y) % 5] = state[x][y].rotate_left(ROTATION[x][y]);
            }
        }
        // χ (chi)
        for x in 0..5 {
            for y in 0..5 {
                state[x][y] = b[x][y] ^ ((!b[(x + 1) % 5][y]) & b[(x + 2) % 5][y]);
            }
        }
        // ι (iota)
        state[0][0] ^= rc;
    }
}

/// An incremental Keccak-256 hasher.
///
/// # Example
///
/// ```
/// use parole_crypto::Keccak256;
/// let mut h = Keccak256::new();
/// h.update(b"PAR");
/// h.update(b"OLE");
/// assert_eq!(h.finalize(), parole_crypto::keccak256(b"PAROLE"));
/// ```
#[derive(Debug, Clone)]
pub struct Keccak256 {
    state: [[u64; 5]; 5],
    buffer: [u8; RATE],
    buffered: usize,
}

impl Keccak256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Keccak256 {
            state: [[0u64; 5]; 5],
            buffer: [0u8; RATE],
            buffered: 0,
        }
    }

    /// Absorbs `data` into the sponge.
    ///
    /// Rate-aligned full blocks are XOR-absorbed straight from `data`; only
    /// the sub-block tail (and any carried partial block) goes through the
    /// internal buffer, so multi-block preimages pay no memcpy per block.
    pub fn update(&mut self, data: &[u8]) {
        let mut input = data;
        // Top up a partially filled buffer first.
        if self.buffered > 0 {
            let take = (RATE - self.buffered).min(input.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&input[..take]);
            self.buffered += take;
            input = &input[take..];
            if self.buffered < RATE {
                return; // input fully consumed into the partial buffer
            }
            let block = self.buffer;
            self.absorb_block(&block);
            self.buffered = 0;
        }
        // Absorb whole blocks directly from the input slice.
        while input.len() >= RATE {
            let (block, rest) = input.split_at(RATE);
            self.absorb_block(block.try_into().expect("RATE bytes"));
            input = rest;
        }
        // Buffer the tail for the next update / the final padding block.
        self.buffer[..input.len()].copy_from_slice(input);
        self.buffered = input.len();
    }

    fn absorb_block(&mut self, block: &[u8; RATE]) {
        parole_telemetry::counter("crypto.keccak_f", 1);
        for i in 0..RATE / 8 {
            let lane = u64::from_le_bytes(block[i * 8..i * 8 + 8].try_into().expect("8"));
            let (x, y) = (i % 5, i / 5);
            self.state[x][y] ^= lane;
        }
        keccak_f(&mut self.state);
    }

    /// Finishes the hash and returns the 32-byte digest.
    pub fn finalize(mut self) -> Hash32 {
        self.finalize_reset()
    }

    /// Finishes the hash and resets the sponge to its initial state, so one
    /// hasher (and its block buffer) can digest a whole batch of independent
    /// preimages — the batched-absorb path of [`keccak256_batch`].
    fn finalize_reset(&mut self) -> Hash32 {
        parole_telemetry::counter("crypto.keccak256", 1);
        // Keccak (pre-NIST) multi-rate padding: 0x01 ... 0x80.
        let mut block = [0u8; RATE];
        block[..self.buffered].copy_from_slice(&self.buffer[..self.buffered]);
        block[self.buffered] = 0x01;
        block[RATE - 1] |= 0x80;
        self.absorb_block(&block);

        let mut out = [0u8; 32];
        for i in 0..4 {
            let (x, y) = (i % 5, i / 5);
            out[i * 8..i * 8 + 8].copy_from_slice(&self.state[x][y].to_le_bytes());
        }
        self.state = [[0u64; 5]; 5];
        self.buffered = 0;
        Hash32::from_bytes(out)
    }
}

impl Default for Keccak256 {
    fn default() -> Self {
        Keccak256::new()
    }
}

/// Computes the Keccak-256 digest of `data` in one shot.
///
/// # Example
///
/// ```
/// let d = parole_crypto::keccak256(b"");
/// assert!(d.to_string().starts_with("0xc5d24601"));
/// ```
pub fn keccak256(data: &[u8]) -> Hash32 {
    let mut h = Keccak256::new();
    h.update(data);
    h.finalize()
}

/// Computes the Keccak-256 digest of every preimage in a batch through one
/// reused sponge.
///
/// Digests are bit-identical to calling [`keccak256`] per item; the win is
/// operational: a single hasher's state and block buffer are recycled across
/// the whole batch, and multi-block preimages are absorbed rate-aligned
/// straight from their slices. This is the absorption path the incremental
/// state-commitment flush pipes its sorted dirty-leaf preimages through.
///
/// # Example
///
/// ```
/// use parole_crypto::{keccak256, keccak256_batch};
/// let items: Vec<&[u8]> = vec![b"a", b"bb", b""];
/// let digests = keccak256_batch(items.iter().copied());
/// assert_eq!(digests[1], keccak256(b"bb"));
/// ```
pub fn keccak256_batch<'a>(preimages: impl IntoIterator<Item = &'a [u8]>) -> Vec<Hash32> {
    let mut h = Keccak256::new();
    preimages
        .into_iter()
        .map(|data| {
            h.update(data);
            h.finalize_reset()
        })
        .collect()
}

/// Computes `keccak256(a || b)` without allocating a joined buffer.
///
/// This is the node-combining function of the Merkle trees.
pub fn keccak256_concat(a: &[u8], b: &[u8]) -> Hash32 {
    let mut h = Keccak256::new();
    h.update(a);
    h.update(b);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(h: Hash32) -> String {
        h.to_string()[2..].to_string()
    }

    #[test]
    fn empty_string_vector() {
        assert_eq!(
            hex(keccak256(b"")),
            "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"
        );
    }

    #[test]
    fn abc_vector() {
        assert_eq!(
            hex(keccak256(b"abc")),
            "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45"
        );
    }

    #[test]
    fn long_input_crosses_rate_boundary() {
        // 200 bytes > RATE exercises multi-block absorption.
        let data = vec![0x61u8; 200];
        let once = keccak256(&data);
        let mut h = Keccak256::new();
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), once);
    }

    #[test]
    fn exactly_rate_sized_input() {
        let data = vec![0x5au8; super::RATE];
        let mut h = Keccak256::new();
        h.update(&data);
        assert_eq!(h.finalize(), keccak256(&data));
    }

    #[test]
    fn concat_equals_joined() {
        let joined = [b"hello".as_ref(), b"world".as_ref()].concat();
        assert_eq!(keccak256_concat(b"hello", b"world"), keccak256(&joined));
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(keccak256(b"a"), keccak256(b"b"));
    }

    #[test]
    fn batch_matches_one_shot_across_block_boundaries() {
        // Lengths straddling every absorption regime: empty, sub-block,
        // exactly one block, block+tail, multi-block.
        let lens = [0usize, 1, 7, RATE - 1, RATE, RATE + 1, 2 * RATE, 500];
        let inputs: Vec<Vec<u8>> = lens
            .iter()
            .enumerate()
            .map(|(i, &len)| vec![i as u8; len])
            .collect();
        let digests = keccak256_batch(inputs.iter().map(Vec::as_slice));
        assert_eq!(digests.len(), inputs.len());
        for (input, digest) in inputs.iter().zip(&digests) {
            assert_eq!(*digest, keccak256(input), "len {}", input.len());
        }
    }

    #[test]
    fn batch_items_are_independent() {
        // A sponge reset bug would leak state between items: the digest of
        // the second item must not depend on the first.
        let alone = keccak256_batch([b"second".as_ref()]);
        let paired = keccak256_batch([b"first".as_ref(), b"second".as_ref()]);
        assert_eq!(alone[0], paired[1]);
    }

    #[test]
    fn streaming_tail_then_block_sized_update() {
        // A buffered tail followed by an update crossing several blocks
        // exercises the top-up + direct-absorb + re-buffer sequence.
        let data = vec![0x3Cu8; 3 * RATE + 11];
        let mut h = Keccak256::new();
        h.update(&data[..5]);
        h.update(&data[5..]);
        assert_eq!(h.finalize(), keccak256(&data));
    }
}
