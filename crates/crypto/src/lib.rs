//! # parole-crypto
//!
//! The cryptographic substrate for the PAROLE reproduction, implemented from
//! scratch:
//!
//! - [`keccak256`] — the Keccak-256 hash (pre-NIST padding, as used by
//!   Ethereum), validated against published test vectors;
//! - [`MerkleTree`] — binary Merkle trees with inclusion proofs, used for the
//!   L2 state roots and the aggregators' fraud proofs;
//! - [`CommitTree`] — the same tree kept resident and repaired in place
//!   (O(log n) point updates, O(Δ·log n) batches), backing the incremental
//!   state-root cache in `parole-state`;
//! - [`U256`] — 256-bit unsigned integer arithmetic;
//! - [`secp256k1`] — the secp256k1 elliptic curve with ECDSA signing and
//!   verification (deterministic nonces), used to authenticate rollup
//!   transactions;
//! - [`Wallet`] — key management glue deriving Ethereum-style addresses from
//!   public keys.
//!
//! # Example
//!
//! ```
//! use parole_crypto::{keccak256, Wallet};
//!
//! let digest = keccak256(b"PAROLE");
//! let wallet = Wallet::from_seed(42);
//! let sig = wallet.sign(digest.as_bytes());
//! assert!(wallet.public_key().verify(digest.as_bytes(), &sig));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod commit;
mod keccak;
mod merkle;
pub mod secp256k1;
mod u256;
mod wallet;

pub use commit::CommitTree;
pub use keccak::{keccak256, keccak256_batch, keccak256_concat, Keccak256};
pub use merkle::{MerkleProof, MerkleTree};
pub use u256::U256;
pub use wallet::Wallet;

pub use parole_primitives::Hash32;
