//! Binary Merkle trees with inclusion proofs.
//!
//! The rollup uses Merkle roots in two places (paper §II-A, §V-A):
//!
//! 1. the **L2 state root** — a commitment to every account balance and NFT
//!    ownership record after a batch executes, and
//! 2. the **fraud proof** — the aggregate the aggregator submits alongside a
//!    batch, which verifiers re-derive to detect invalid execution.
//!
//! Trees are built over pre-hashed 32-byte leaves. An odd level is handled by
//! promoting the unpaired node unchanged (Bitcoin-style duplication would let
//! an attacker forge two different leaf sets with the same root).

use crate::keccak::keccak256_concat;
use parole_primitives::Hash32;
use serde::{Deserialize, Serialize};

/// A fully-built binary Merkle tree.
///
/// # Example
///
/// ```
/// use parole_crypto::{keccak256, MerkleTree};
/// let leaves: Vec<_> = [b"a", b"b", b"c"].iter().map(|d| keccak256(*d)).collect();
/// let tree = MerkleTree::from_leaves(leaves.clone());
/// let proof = tree.prove(1).unwrap();
/// assert!(proof.verify(leaves[1], tree.root()));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleTree {
    /// `levels[0]` is the leaf level; the last level holds the single root.
    levels: Vec<Vec<Hash32>>,
}

impl MerkleTree {
    /// Builds a tree from pre-hashed leaves.
    ///
    /// An empty leaf set produces the [`Hash32::ZERO`] sentinel root.
    pub fn from_leaves(leaves: Vec<Hash32>) -> Self {
        let mut levels = vec![leaves];
        while levels.last().expect("non-empty").len() > 1 {
            let prev = levels.last().expect("non-empty");
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for pair in prev.chunks(2) {
                if pair.len() == 2 {
                    next.push(keccak256_concat(pair[0].as_bytes(), pair[1].as_bytes()));
                } else {
                    // Unpaired node is promoted unchanged.
                    next.push(pair[0]);
                }
            }
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// The Merkle root ([`Hash32::ZERO`] for an empty tree).
    pub fn root(&self) -> Hash32 {
        self.levels
            .last()
            .and_then(|l| l.first())
            .copied()
            .unwrap_or(Hash32::ZERO)
    }

    /// The number of leaves.
    pub fn len(&self) -> usize {
        self.levels.first().map_or(0, Vec::len)
    }

    /// Returns `true` when the tree has no leaves.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Generates an inclusion proof for the leaf at `index`.
    ///
    /// Returns `None` when `index` is out of bounds.
    pub fn prove(&self, index: usize) -> Option<MerkleProof> {
        prove_levels(&self.levels, index)
    }
}

/// Builds the sibling path for the leaf at `index` over resident `levels`
/// (leaf level first, root level last). Shared by [`MerkleTree::prove`] and
/// [`CommitTree::prove`](crate::CommitTree::prove): both keep the identical
/// level structure, so one walk serves both.
pub(crate) fn prove_levels(levels: &[Vec<Hash32>], index: usize) -> Option<MerkleProof> {
    let len = levels.first().map_or(0, Vec::len);
    if index >= len {
        return None;
    }
    let mut path = Vec::new();
    let mut idx = index;
    for level in &levels[..levels.len().saturating_sub(1)] {
        let sibling = idx ^ 1;
        if sibling < level.len() {
            path.push(ProofNode {
                hash: level[sibling],
                is_left: sibling < idx,
            });
        }
        idx /= 2;
    }
    Some(MerkleProof { index, path })
}

/// One step of a Merkle inclusion proof.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct ProofNode {
    hash: Hash32,
    /// Whether the sibling sits to the left of the running hash.
    is_left: bool,
}

/// An inclusion proof binding a leaf to a [`MerkleTree`] root.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MerkleProof {
    index: usize,
    path: Vec<ProofNode>,
}

impl MerkleProof {
    /// The leaf index this proof speaks for.
    pub fn leaf_index(&self) -> usize {
        self.index
    }

    /// The proof depth (number of sibling hashes).
    pub fn depth(&self) -> usize {
        self.path.len()
    }

    /// Folds `leaf` up the sibling path and returns the root it binds to —
    /// the stateless half of [`MerkleProof::verify`], exposed so multi-level
    /// proofs can feed a recomputed sub-tree root into an enclosing leaf
    /// preimage (the token-inclusion proofs in `parole-state` do exactly
    /// that).
    pub fn compute_root(&self, leaf: Hash32) -> Hash32 {
        let mut acc = leaf;
        for node in &self.path {
            acc = if node.is_left {
                keccak256_concat(node.hash.as_bytes(), acc.as_bytes())
            } else {
                keccak256_concat(acc.as_bytes(), node.hash.as_bytes())
            };
        }
        acc
    }

    /// Recomputes the root from `leaf` and checks it against `root`.
    pub fn verify(&self, leaf: Hash32, root: Hash32) -> bool {
        self.compute_root(leaf) == root
    }

    /// Test-only sabotage: flips bit `bit % 256` of the sibling hash at path
    /// position `node % depth`. Returns `false` for a depth-0 proof (a
    /// single-leaf tree has no path to tamper). Never call outside tests.
    #[doc(hidden)]
    pub fn tamper_path_bit_for_tests(&mut self, node: usize, bit: usize) -> bool {
        if self.path.is_empty() {
            return false;
        }
        let node = node % self.path.len();
        let mut bytes = *self.path[node].hash.as_bytes();
        bytes[(bit % 256) / 8] ^= 1 << (bit % 8);
        self.path[node].hash = Hash32::from_bytes(bytes);
        true
    }

    /// Test-only sabotage: flips the left/right orientation of the sibling
    /// at path position `node % depth`. Returns `false` for a depth-0
    /// proof. Never call outside tests.
    #[doc(hidden)]
    pub fn tamper_direction_for_tests(&mut self, node: usize) -> bool {
        if self.path.is_empty() {
            return false;
        }
        let node = node % self.path.len();
        self.path[node].is_left = !self.path[node].is_left;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keccak::keccak256;

    fn leaves(n: usize) -> Vec<Hash32> {
        (0..n)
            .map(|i| keccak256(&(i as u64).to_be_bytes()))
            .collect()
    }

    #[test]
    fn empty_tree_has_zero_root() {
        let tree = MerkleTree::from_leaves(Vec::new());
        assert!(tree.is_empty());
        assert_eq!(tree.root(), Hash32::ZERO);
        assert!(tree.prove(0).is_none());
    }

    #[test]
    fn single_leaf_root_is_the_leaf() {
        let l = leaves(1);
        let tree = MerkleTree::from_leaves(l.clone());
        assert_eq!(tree.root(), l[0]);
        let proof = tree.prove(0).unwrap();
        assert_eq!(proof.depth(), 0);
        assert!(proof.verify(l[0], tree.root()));
    }

    #[test]
    fn proofs_verify_for_all_sizes() {
        for n in 2..=17 {
            let l = leaves(n);
            let tree = MerkleTree::from_leaves(l.clone());
            for (i, leaf) in l.iter().enumerate() {
                let proof = tree.prove(i).unwrap();
                assert!(proof.verify(*leaf, tree.root()), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn proof_rejects_wrong_leaf() {
        let l = leaves(8);
        let tree = MerkleTree::from_leaves(l.clone());
        let proof = tree.prove(3).unwrap();
        assert!(!proof.verify(l[4], tree.root()));
        assert!(!proof.verify(keccak256(b"forged"), tree.root()));
    }

    #[test]
    fn proof_rejects_wrong_root() {
        let l = leaves(8);
        let tree = MerkleTree::from_leaves(l.clone());
        let proof = tree.prove(3).unwrap();
        assert!(!proof.verify(l[3], keccak256(b"other root")));
    }

    #[test]
    fn root_changes_with_any_leaf() {
        let l = leaves(9);
        let base = MerkleTree::from_leaves(l.clone()).root();
        for i in 0..l.len() {
            let mut tampered = l.clone();
            tampered[i] = keccak256(b"tamper");
            assert_ne!(MerkleTree::from_leaves(tampered).root(), base, "leaf {i}");
        }
    }

    #[test]
    fn odd_promotion_is_not_duplication() {
        // With unpaired-promotion, [a, b, b] must differ from [a, b]
        // even though duplication-style trees would conflate them... the
        // roots differ because level sizes differ.
        let two = MerkleTree::from_leaves(leaves(2)).root();
        let mut three = leaves(2);
        three.push(leaves(2)[1]);
        assert_ne!(MerkleTree::from_leaves(three).root(), two);
    }
}
