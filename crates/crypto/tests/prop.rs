//! Property-based tests for the cryptographic substrate.

use parole_crypto::secp256k1::{self, SecretKey};
use parole_crypto::{keccak256, CommitTree, MerkleTree, U256};
use proptest::prelude::*;

/// One step of a random [`CommitTree`] edit script.
#[derive(Debug, Clone)]
enum TreeEdit {
    Insert { at: u64, tag: u64 },
    Update { at: u64, tag: u64 },
    Remove { at: u64 },
    Batch { edits: Vec<(u64, u64)> },
}

fn arb_tree_edit() -> impl Strategy<Value = TreeEdit> {
    prop_oneof![
        (any::<u64>(), any::<u64>()).prop_map(|(at, tag)| TreeEdit::Insert { at, tag }),
        (any::<u64>(), any::<u64>()).prop_map(|(at, tag)| TreeEdit::Update { at, tag }),
        any::<u64>().prop_map(|at| TreeEdit::Remove { at }),
        prop::collection::vec((any::<u64>(), any::<u64>()), 1..8)
            .prop_map(|edits| TreeEdit::Batch { edits }),
    ]
}

fn arb_u256() -> impl Strategy<Value = U256> {
    prop::array::uniform4(any::<u64>()).prop_map(U256::from_limbs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Batched keccak digests equal the per-item one-shot digests for any
    /// mix of preimage lengths (the sponge-reuse path must leak no state).
    #[test]
    fn keccak_batch_agrees_with_one_shot(
        items in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..400), 0..12),
    ) {
        let digests = parole_crypto::keccak256_batch(items.iter().map(Vec::as_slice));
        prop_assert_eq!(digests.len(), items.len());
        for (item, digest) in items.iter().zip(&digests) {
            prop_assert_eq!(*digest, keccak256(item));
        }
    }

    /// Keccak over split inputs equals keccak over the joined input.
    #[test]
    fn keccak_incremental_agrees(data in prop::collection::vec(any::<u8>(), 0..512), split in 0usize..512) {
        let split = split.min(data.len());
        let joined = keccak256(&data);
        let mut h = parole_crypto::Keccak256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), joined);
    }

    /// U256 big-endian byte round-trip.
    #[test]
    fn u256_bytes_roundtrip(v in arb_u256()) {
        prop_assert_eq!(U256::from_be_bytes(&v.to_be_bytes()), v);
    }

    /// Modular addition is commutative and subtraction inverts it.
    #[test]
    fn mod_add_sub_inverse(a in arb_u256(), b in arb_u256()) {
        let n = secp256k1::group_order();
        let ar = a.rem(n);
        let br = b.rem(n);
        let sum = ar.add_mod(&br, n);
        prop_assert_eq!(sum, br.add_mod(&ar, n));
        prop_assert_eq!(sum.sub_mod(&br, n), ar);
    }

    /// Fermat inverse is a genuine inverse modulo the field prime.
    #[test]
    fn field_inverse(a in arb_u256()) {
        let p = secp256k1::field_prime();
        let ar = a.rem(p);
        prop_assume!(!ar.is_zero());
        let inv = ar.inv_mod_prime(p);
        prop_assert_eq!(ar.mul_mod(&inv, p), U256::ONE);
    }

    /// A [`CommitTree`] driven by a random edit script (point updates,
    /// inserts, removes, batched updates) always reports the same root as a
    /// from-scratch [`MerkleTree`] rebuild of its current leaf sequence —
    /// the bit-identity contract the incremental state-root cache rests on.
    #[test]
    fn commit_tree_matches_rebuild_under_edits(
        initial in 0usize..24,
        script in prop::collection::vec(arb_tree_edit(), 1..40),
    ) {
        let leaves: Vec<_> = (0..initial).map(|i| keccak256(&(i as u64).to_be_bytes())).collect();
        let mut tree = CommitTree::from_leaves(leaves);
        for edit in &script {
            let n = tree.len();
            match edit {
                TreeEdit::Insert { at, tag } => {
                    tree.insert(*at as usize % (n + 1), keccak256(&tag.to_be_bytes()));
                }
                TreeEdit::Update { at, tag } if n > 0 => {
                    tree.update(*at as usize % n, keccak256(&tag.to_be_bytes()));
                }
                TreeEdit::Remove { at } if n > 0 => {
                    tree.remove(*at as usize % n);
                }
                TreeEdit::Batch { edits } if n > 0 => {
                    let batch: Vec<_> = edits
                        .iter()
                        .map(|&(at, tag)| (at as usize % n, keccak256(&tag.to_be_bytes())))
                        .collect();
                    tree.update_batch(&batch);
                }
                _ => {}
            }
            let want = MerkleTree::from_leaves(tree.leaves().to_vec()).root();
            prop_assert_eq!(tree.root(), want);
        }
    }

    /// [`CommitTree::prove`] over the resident levels yields proofs
    /// byte-identical to [`MerkleTree::prove`] over the same leaf sequence —
    /// even after an arbitrary edit script has grown, shrunk and repaired
    /// the resident tree in place.
    #[test]
    fn commit_tree_proofs_match_merkle_proofs(
        initial in 0usize..24,
        script in prop::collection::vec(arb_tree_edit(), 1..16),
    ) {
        let leaves: Vec<_> = (0..initial).map(|i| keccak256(&(i as u64).to_be_bytes())).collect();
        let mut tree = CommitTree::from_leaves(leaves);
        for edit in &script {
            let n = tree.len();
            match edit {
                TreeEdit::Insert { at, tag } => {
                    tree.insert(*at as usize % (n + 1), keccak256(&tag.to_be_bytes()));
                }
                TreeEdit::Update { at, tag } if n > 0 => {
                    tree.update(*at as usize % n, keccak256(&tag.to_be_bytes()));
                }
                TreeEdit::Remove { at } if n > 0 => {
                    tree.remove(*at as usize % n);
                }
                _ => {}
            }
            let rebuilt = MerkleTree::from_leaves(tree.leaves().to_vec());
            prop_assert_eq!(tree.prove(tree.len()), None);
            for i in 0..tree.len() {
                let incremental = tree.prove(i).unwrap();
                prop_assert_eq!(&incremental, &rebuilt.prove(i).unwrap());
                prop_assert!(incremental.verify(tree.leaves()[i], tree.root()));
            }
        }
    }

    /// A single-bit tamper anywhere in a proof's sibling path — or a flipped
    /// left/right orientation — makes verification fail.
    #[test]
    fn tampered_proof_path_rejected(
        n in 2usize..40,
        at in any::<usize>(),
        node in any::<usize>(),
        bit in any::<usize>(),
    ) {
        let leaves: Vec<_> = (0..n).map(|i| keccak256(&(i as u64).to_be_bytes())).collect();
        let tree = CommitTree::from_leaves(leaves.clone());
        let at = at % n;
        let honest = tree.prove(at).unwrap();
        prop_assert!(honest.verify(leaves[at], tree.root()));

        let mut bitflipped = honest.clone();
        if bitflipped.tamper_path_bit_for_tests(node, bit) {
            prop_assert!(!bitflipped.verify(leaves[at], tree.root()));
        }
        let mut misdirected = honest.clone();
        if misdirected.tamper_direction_for_tests(node) {
            prop_assert!(!misdirected.verify(leaves[at], tree.root()));
        }
    }

    /// Merkle proofs verify for every leaf, and fail against a different root.
    #[test]
    fn merkle_proof_sound(n in 1usize..40, tamper in any::<u64>()) {
        let leaves: Vec<_> = (0..n).map(|i| keccak256(&(i as u64).to_be_bytes())).collect();
        let tree = MerkleTree::from_leaves(leaves.clone());
        for (i, leaf) in leaves.iter().enumerate() {
            let proof = tree.prove(i).unwrap();
            prop_assert!(proof.verify(*leaf, tree.root()));
            prop_assert!(!proof.verify(keccak256(&tamper.to_be_bytes()), tree.root())
                || keccak256(&tamper.to_be_bytes()) == *leaf);
        }
    }
}

proptest! {
    // Signing is expensive; keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// ECDSA sign/verify round-trips and rejects a flipped digest bit.
    #[test]
    fn ecdsa_roundtrip(seed in 1u64..1_000_000, msg in prop::collection::vec(any::<u8>(), 1..64)) {
        let sk = SecretKey::from_seed(seed);
        let pk = sk.public_key();
        let digest = keccak256(&msg).into_bytes();
        let sig = sk.sign(&digest);
        prop_assert!(pk.verify(&digest, &sig));
        let mut flipped = digest;
        flipped[0] ^= 1;
        prop_assert!(!pk.verify(&flipped, &sig));
    }
}
