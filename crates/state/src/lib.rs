//! # parole-state
//!
//! The L2 world state of the optimistic rollup: account balances, deployed
//! limited-edition ERC-721 collections, and the Merkle state root the
//! aggregators commit to as part of their fraud proof (paper §II-A, §V-A).
//!
//! [`L2State`] is a plain value type — cloning it is the speculative-execution
//! primitive. The GENTRANSEQ module's DQN environment forks the state once
//! per candidate ordering, executes the sequence against the fork, reads the
//! IFU's final balance, and discards the fork; nothing ever mutates the
//! canonical state until the adversarial aggregator commits the chosen order.
//!
//! # Example
//!
//! ```
//! use parole_state::L2State;
//! use parole_nft::CollectionConfig;
//! use parole_primitives::{Address, Wei};
//!
//! let mut state = L2State::new();
//! let user = Address::from_low_u64(1);
//! state.credit(user, Wei::from_eth(2));
//! let pt = state.deploy_collection(CollectionConfig::parole_token());
//! assert_eq!(state.balance_of(user), Wei::from_eth(2));
//! assert!(state.collection(pt).is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod account;
mod commit;
mod journal;
mod proofs;
mod tables;
mod world;

pub use account::AccountState;
pub use commit::CollectionHeader;
pub use journal::{key_sets_conflict, Checkpoint, RecordKey};
pub use proofs::{
    AccountInclusionProof, CollectionInclusionProof, RecordProof, TokenInclusionProof,
};
pub use world::{L2State, StateError};
