//! Dual-backend hot-state tables: accounts and collections.
//!
//! The million-account hot path stores both world-state maps as
//! handle-interned arenas ([`parole_primitives::FlatMap`]): the address
//! interner is the flat map's open-addressing index (`Address → slot(u32)`),
//! and the account records live in a dense `Vec` slab behind it. The
//! original `BTreeMap` layout is retained as an in-process baseline variant
//! so the traffic harness and the differential test suites can A/B both
//! layouts in a single run (`PAROLE_STATE_BACKEND` picks the process
//! default; explicit constructors override it per state).
//!
//! Both variants expose the same deterministic, address-sorted iteration —
//! the order the commitment layer hashes — so `state_root()`,
//! `state_root_naive()`, proofs and the dirty-tracking cache produce
//! bit-identical roots on either backend. Equality and serialization are
//! content-based and backend-independent for the same reason.

use crate::AccountState;
use parole_nft::Collection;
use parole_primitives::{Address, FlatMap, StorageBackend};
use serde::{DeError, Deserialize, Serialize, Value};
use std::collections::BTreeMap;

/// Generates the shared table plumbing for a `(Address → V)` world-state
/// map with flat-arena and BTreeMap variants.
macro_rules! table_impl {
    ($name:ident, $val:ty) => {
        impl $name {
            /// An empty table on the requested backend.
            pub(crate) fn new(backend: StorageBackend) -> Self {
                match backend {
                    StorageBackend::Arena => $name::Flat(FlatMap::new()),
                    StorageBackend::BTree => $name::BTree(BTreeMap::new()),
                }
            }

            /// Which layout this table uses.
            pub(crate) fn backend(&self) -> StorageBackend {
                match self {
                    $name::Flat(_) => StorageBackend::Arena,
                    $name::BTree(_) => StorageBackend::BTree,
                }
            }

            /// Number of records.
            pub(crate) fn len(&self) -> usize {
                match self {
                    $name::Flat(m) => m.len(),
                    $name::BTree(m) => m.len(),
                }
            }

            /// Whether `key` is present.
            #[allow(dead_code)] // used by only one of the two instantiations
            pub(crate) fn contains_key(&self, key: &Address) -> bool {
                match self {
                    $name::Flat(m) => m.contains_key(key),
                    $name::BTree(m) => m.contains_key(key),
                }
            }

            /// Shared reference to the record for `key`.
            pub(crate) fn get(&self, key: &Address) -> Option<&$val> {
                match self {
                    $name::Flat(m) => m.get(key),
                    $name::BTree(m) => m.get(key),
                }
            }

            /// Mutable reference to the record for `key`.
            #[allow(dead_code)] // used by only one of the two instantiations
            pub(crate) fn get_mut(&mut self, key: &Address) -> Option<&mut $val> {
                match self {
                    $name::Flat(m) => m.get_mut(key),
                    $name::BTree(m) => m.get_mut(key),
                }
            }

            /// Inserts or replaces the record for `key`.
            pub(crate) fn insert(&mut self, key: Address, val: $val) {
                match self {
                    $name::Flat(m) => {
                        m.insert(key, val);
                    }
                    $name::BTree(m) => {
                        m.insert(key, val);
                    }
                }
            }

            /// Removes the record for `key`.
            pub(crate) fn remove(&mut self, key: &Address) {
                match self {
                    $name::Flat(m) => {
                        m.remove(key);
                    }
                    $name::BTree(m) => {
                        m.remove(key);
                    }
                }
            }

            /// `(address, record)` pairs in address order — the iteration
            /// the commitment layer hashes, identical on both backends.
            pub(crate) fn iter_sorted(&self) -> Box<dyn Iterator<Item = (Address, &$val)> + '_> {
                match self {
                    $name::Flat(m) => Box::new(m.iter_sorted().map(|(&k, v)| (k, v))),
                    $name::BTree(m) => Box::new(m.iter().map(|(&k, v)| (k, v))),
                }
            }

            /// Record scan in unspecified order (dense-slab linear on the
            /// arena backend) — for order-insensitive folds only.
            pub(crate) fn values_unordered(&self) -> Box<dyn Iterator<Item = &$val> + '_> {
                match self {
                    $name::Flat(m) => Box::new(m.values_unordered()),
                    $name::BTree(m) => Box::new(m.values()),
                }
            }
        }

        impl Default for $name {
            fn default() -> Self {
                $name::new(parole_primitives::storage_backend())
            }
        }

        impl PartialEq for $name {
            /// Content equality across backends: same sorted `(key, value)`
            /// sequence, regardless of layout.
            fn eq(&self, other: &Self) -> bool {
                self.len() == other.len() && self.iter_sorted().eq(other.iter_sorted())
            }
        }

        impl Serialize for $name {
            /// Address-sorted `[k, v]` entries — the same shape the vendored
            /// serde renders a `BTreeMap` as, so the L2State wire format is
            /// unchanged by the arena layout.
            fn to_value(&self) -> Value {
                Value::Map(
                    self.iter_sorted()
                        .map(|(k, v)| (k.to_value(), v.to_value()))
                        .collect(),
                )
            }
        }

        impl Deserialize for $name {
            /// Rebuilds on the process-default backend; equality is
            /// content-based, so round-trips compare equal either way.
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let entries = BTreeMap::<Address, $val>::from_value(value)?;
                let mut out = Self::new(parole_primitives::storage_backend());
                for (k, v) in entries {
                    out.insert(k, v);
                }
                Ok(out)
            }
        }
    };
}

/// The account ledger: `Address → AccountState` (balance + nonce).
///
/// The arena variant is the ISSUE's "address interner + dense
/// `Vec<AccountState>` slab": the flat map's index interns each address to a
/// `u32` slot, and the 24-byte account records pack contiguously.
#[derive(Debug, Clone)]
pub(crate) enum AccountTable {
    /// Dense slab + open-addressing interner.
    Flat(FlatMap<Address, AccountState>),
    /// Baseline map-of-structs layout.
    BTree(BTreeMap<Address, AccountState>),
}

table_impl!(AccountTable, AccountState);

impl AccountTable {
    /// Mutable record for `key`, inserting the default (zero balance, zero
    /// nonce) first if absent — the `entry().or_default()` of the hot
    /// credit/nonce paths.
    pub(crate) fn or_default_mut(&mut self, key: Address) -> &mut AccountState {
        match self {
            AccountTable::Flat(m) => m.get_or_insert_with(key, AccountState::default),
            AccountTable::BTree(m) => m.entry(key).or_default(),
        }
    }
}

/// The collection registry: `Address → Collection`.
#[derive(Debug, Clone)]
pub(crate) enum CollTable {
    /// Dense slab + open-addressing interner.
    Flat(FlatMap<Address, Collection>),
    /// Baseline map-of-structs layout.
    BTree(BTreeMap<Address, Collection>),
}

table_impl!(CollTable, Collection);

#[cfg(test)]
mod tests {
    use super::*;
    use parole_primitives::Wei;

    fn addr(v: u64) -> Address {
        Address::from_low_u64(v)
    }

    #[test]
    fn account_tables_agree_across_backends() {
        let mut flat = AccountTable::new(StorageBackend::Arena);
        let mut tree = AccountTable::new(StorageBackend::BTree);
        for v in [7u64, 3, 9, 1, 100, 42] {
            flat.or_default_mut(addr(v)).balance += Wei::from_eth(v);
            tree.or_default_mut(addr(v)).balance += Wei::from_eth(v);
        }
        flat.remove(&addr(9));
        tree.remove(&addr(9));
        assert_eq!(flat, tree, "cross-backend content equality");
        let f: Vec<_> = flat.iter_sorted().map(|(k, v)| (k, *v)).collect();
        let t: Vec<_> = tree.iter_sorted().map(|(k, v)| (k, *v)).collect();
        assert_eq!(f, t, "identical sorted iteration");
        assert_eq!(
            serde_json::to_string(&flat.to_value()),
            serde_json::to_string(&tree.to_value()),
            "identical wire format"
        );
    }

    #[test]
    fn account_table_roundtrips_through_serde() {
        let mut flat = AccountTable::new(StorageBackend::Arena);
        flat.or_default_mut(addr(5)).balance = Wei::from_eth(2);
        let back = AccountTable::from_value(&flat.to_value()).unwrap();
        assert_eq!(flat, back);
    }
}
