//! Undo-log journaling for cheap speculative forks of [`crate::L2State`].
//!
//! The GENTRANSEQ hot path evaluates thousands of candidate transaction
//! orderings against the same base state. Cloning the full state per
//! candidate is O(world size); journaling records only what each operation
//! actually touched, so rolling back to a [`Checkpoint`] costs O(ops since
//! the checkpoint) — usually a handful of `Copy` account records and small
//! per-token undo entries.
//!
//! See `DESIGN.md` ("Journaled state forks") for why an undo log was chosen
//! over Arc-based copy-on-write.

use crate::AccountState;
use parole_nft::{Collection, CollectionUndo};
use parole_primitives::{Address, BlockNumber};

/// An opaque position in the undo log, produced by
/// [`crate::L2State::checkpoint`] and consumed by
/// [`crate::L2State::revert_to`].
///
/// Checkpoints are only meaningful for the state that produced them, and
/// only while that state has not been reverted past them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Checkpoint(pub(crate) usize);

/// One journaled mutation, storing whatever is needed to undo it.
///
/// Account records are `Copy` (balance + nonce), so the common entries are
/// a few dozen bytes. `CollectionSnapshot` is the escape hatch for raw
/// `collection_mut` access, which can mutate arbitrarily; the OVM hot path
/// never takes it.
#[derive(Debug)]
pub(crate) enum JournalEntry {
    /// An account was created or mutated; `prev: None` means it did not
    /// exist before.
    Account {
        who: Address,
        prev: Option<AccountState>,
    },
    /// The block number advanced.
    Block { prev: BlockNumber },
    /// A collection was deployed at a previously free address.
    CollectionDeployed { addr: Address },
    /// A mint/transfer/burn ran through an undoable collection operation.
    TokenOp { addr: Address, undo: CollectionUndo },
    /// Raw mutable access was handed out; the whole prior collection is
    /// retained (boxed to keep the enum small).
    CollectionSnapshot {
        addr: Address,
        prev: Box<Collection>,
    },
}

/// The undo log attached to an [`crate::L2State`].
///
/// Not serialized and not carried across clones: a checkpoint indexes one
/// particular state's mutation history and is meaningless anywhere else.
#[derive(Debug, Default)]
pub(crate) struct Journal {
    pub(crate) entries: Vec<JournalEntry>,
    pub(crate) recording: bool,
}
