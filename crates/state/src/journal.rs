//! Undo-log journaling for cheap speculative forks of [`crate::L2State`].
//!
//! The GENTRANSEQ hot path evaluates thousands of candidate transaction
//! orderings against the same base state. Cloning the full state per
//! candidate is O(world size); journaling records only what each operation
//! actually touched, so rolling back to a [`Checkpoint`] costs O(ops since
//! the checkpoint) — usually a handful of `Copy` account records and small
//! per-token undo entries.
//!
//! See `DESIGN.md` ("Journaled state forks") for why an undo log was chosen
//! over Arc-based copy-on-write.

use crate::AccountState;
use parole_nft::{Collection, CollectionUndo, OperatorUndo};
use parole_primitives::{Address, BlockNumber, TokenId};
use std::collections::BTreeSet;

/// A conflict-domain key naming one record of the world state — the unit at
/// which the parallel block executor detects read/write conflicts.
///
/// The domains match the commitment tree's leaves (PR 5): one key per
/// account record, one per collection *header* (remaining/active supply and
/// hence the bonding-curve price), and one per `(collection, token)` leaf
/// (owner + approved operator). Header and token keys are disjoint records —
/// a transfer moving a token does not reprice the collection, so a price
/// read must not conflict with it. Whole-collection access (raw
/// `collection_mut` snapshots, the coarse [`crate::L2State::collection`]
/// reference) gets the wildcard [`RecordKey::CollAll`], which
/// [`key_sets_conflict`] treats as overlapping the header *and* every token
/// of that collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RecordKey {
    /// One account record (balance + nonce).
    Acct(Address),
    /// A collection's header: supply counters and therefore its price.
    Coll(Address),
    /// Wildcard: the entire collection — header plus every token leaf and
    /// operator record. Produced by coarse whole-collection reads and
    /// snapshot writes.
    CollAll(Address),
    /// One token's leaf within a collection: owner and approved operator.
    Token(Address, TokenId),
    /// One owner's blanket operator approvals within a collection
    /// (`setApprovalForAll` / `isApprovedForAll`). A distinct record from
    /// the header so approval traffic does not serialize against price
    /// reads, even though both commit through the collection-header leaf.
    Oper(Address, Address),
}

/// Whether two record-key sets overlap under the conflict-domain semantics
/// of [`RecordKey`]: exact key equality, plus the rule that `CollAll(a)`
/// overlaps `Coll(a)` and every `Token(a, _)` (in either direction). The
/// header key `Coll(a)` and the token keys `Token(a, _)` do *not* overlap
/// each other — they are distinct commitment-tree records.
///
/// This is the intersection test the optimistic scheduler runs per
/// transaction; it iterates the smaller set and probes the larger, so the
/// cost is O(small · log large).
pub fn key_sets_conflict(a: &BTreeSet<RecordKey>, b: &BTreeSet<RecordKey>) -> bool {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    for key in small {
        if large.contains(key) {
            return true;
        }
        match *key {
            RecordKey::Acct(_) => {}
            RecordKey::Coll(addr) | RecordKey::Token(addr, _) | RecordKey::Oper(addr, _) => {
                if large.contains(&RecordKey::CollAll(addr)) {
                    return true;
                }
            }
            RecordKey::CollAll(addr) => {
                if large.contains(&RecordKey::Coll(addr)) {
                    return true;
                }
                let tokens = RecordKey::Token(addr, TokenId::new(0))
                    ..=RecordKey::Token(addr, TokenId::new(u64::MAX));
                if large.range(tokens).next().is_some() {
                    return true;
                }
                let opers = RecordKey::Oper(addr, Address::ZERO)
                    ..=RecordKey::Oper(addr, Address::from_bytes([0xff; 20]));
                if large.range(opers).next().is_some() {
                    return true;
                }
            }
        }
    }
    false
}

/// An opaque position in the undo log, produced by
/// [`crate::L2State::checkpoint`] and consumed by
/// [`crate::L2State::revert_to`].
///
/// Checkpoints are only meaningful for the state that produced them, and
/// only while that state has not been reverted past them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Checkpoint(pub(crate) usize);

/// One journaled mutation, storing whatever is needed to undo it.
///
/// Account records are `Copy` (balance + nonce), so the common entries are
/// a few dozen bytes. `CollectionSnapshot` is the escape hatch for raw
/// `collection_mut` access, which can mutate arbitrarily; the OVM hot path
/// never takes it.
#[derive(Debug)]
pub(crate) enum JournalEntry {
    /// An account was created or mutated; `prev: None` means it did not
    /// exist before.
    Account {
        who: Address,
        prev: Option<AccountState>,
    },
    /// The block number advanced.
    Block { prev: BlockNumber },
    /// A collection was deployed at a previously free address.
    CollectionDeployed { addr: Address },
    /// A mint/transfer/burn ran through an undoable collection operation.
    TokenOp { addr: Address, undo: CollectionUndo },
    /// A `set_approval_for_all` ran through its undoable operation.
    OperatorOp { addr: Address, undo: OperatorUndo },
    /// Raw mutable access was handed out; the whole prior collection is
    /// retained (boxed to keep the enum small).
    CollectionSnapshot {
        addr: Address,
        prev: Box<Collection>,
    },
}

/// The undo log attached to an [`crate::L2State`].
///
/// Not serialized and not carried across clones: a checkpoint indexes one
/// particular state's mutation history and is meaningless anywhere else.
#[derive(Debug, Default)]
pub(crate) struct Journal {
    pub(crate) entries: Vec<JournalEntry>,
    pub(crate) recording: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(v: u64) -> Address {
        Address::from_low_u64(v)
    }

    fn set(keys: &[RecordKey]) -> BTreeSet<RecordKey> {
        keys.iter().copied().collect()
    }

    #[test]
    fn exact_keys_conflict_only_with_themselves() {
        let a = set(&[
            RecordKey::Acct(addr(1)),
            RecordKey::Token(addr(7), TokenId::new(3)),
        ]);
        let b = set(&[
            RecordKey::Acct(addr(2)),
            RecordKey::Token(addr(7), TokenId::new(4)),
        ]);
        assert!(!key_sets_conflict(&a, &b));
        let c = set(&[RecordKey::Acct(addr(1))]);
        assert!(key_sets_conflict(&a, &c));
        assert!(key_sets_conflict(&c, &a));
    }

    #[test]
    fn header_and_token_records_are_disjoint() {
        // A price read (header) must not conflict with a transfer's token
        // write — that independence is what lets transfer traffic
        // parallelize at all.
        let header = set(&[RecordKey::Coll(addr(7))]);
        let token = set(&[RecordKey::Token(addr(7), TokenId::new(9))]);
        assert!(!key_sets_conflict(&header, &token));
        assert!(!key_sets_conflict(&token, &header));
        assert!(key_sets_conflict(&header, &header));
        assert!(!key_sets_conflict(&set(&[]), &header));
    }

    #[test]
    fn wildcard_overlaps_header_and_tokens_both_ways() {
        let all = set(&[RecordKey::CollAll(addr(7))]);
        let header = set(&[RecordKey::Coll(addr(7))]);
        let token = set(&[RecordKey::Token(addr(7), TokenId::new(9))]);
        let other = set(&[
            RecordKey::Coll(addr(8)),
            RecordKey::Token(addr(8), TokenId::new(9)),
            RecordKey::CollAll(addr(8)),
        ]);
        assert!(key_sets_conflict(&all, &header));
        assert!(key_sets_conflict(&header, &all));
        assert!(key_sets_conflict(&all, &token));
        assert!(key_sets_conflict(&token, &all));
        assert!(key_sets_conflict(&all, &all));
        assert!(!key_sets_conflict(&all, &other));
    }

    #[test]
    fn operator_records_are_disjoint_from_header_and_tokens() {
        let oper = set(&[RecordKey::Oper(addr(7), addr(1))]);
        let header = set(&[RecordKey::Coll(addr(7))]);
        let token = set(&[RecordKey::Token(addr(7), TokenId::new(9))]);
        let all = set(&[RecordKey::CollAll(addr(7))]);
        let other_owner = set(&[RecordKey::Oper(addr(7), addr(2))]);
        let other_coll = set(&[RecordKey::Oper(addr(8), addr(1))]);
        assert!(!key_sets_conflict(&oper, &header));
        assert!(!key_sets_conflict(&oper, &token));
        assert!(!key_sets_conflict(&oper, &other_owner));
        assert!(!key_sets_conflict(&oper, &other_coll));
        assert!(key_sets_conflict(&oper, &oper));
        assert!(key_sets_conflict(&oper, &all));
        assert!(key_sets_conflict(&all, &oper));
    }
}
