//! Stateless inclusion proofs against a bare state root.
//!
//! These are the record-level openings the fraud-proof game settles with: a
//! challenged single-step re-execution produces a handful of touched
//! records, and each side must *open* its claimed post-root at exactly those
//! records. A proof carries the claimed record values plus the sibling
//! paths binding them to the root — nothing else — so any party holding
//! only the 32-byte root (an L1 contract, the audit oracle, a verifier that
//! never saw the batch) can check it.
//!
//! Three record shapes exist, mirroring the commitment hierarchy
//! (`crate::commit`, DESIGN.md §4g/§4i):
//!
//! - [`AccountInclusionProof`] — one account leaf in the top-level tree;
//! - [`CollectionInclusionProof`] — one collection's 120-byte header leaf
//!   (supply counters + operator digest + committed sub-root) in the
//!   top-level tree;
//! - [`TokenInclusionProof`] — the two-level composition: the token's
//!   52-byte leaf inside the collection sub-tree *plus* the header leaf's
//!   top-level path. Verification recomputes the sub-root from the token
//!   leaf, folds it into the header preimage, and walks the top-level path —
//!   so one proof pins the token's owner **and** approved operator to the
//!   state root.
//!
//! Proof generation ([`crate::L2State::prove_account`] /
//! [`crate::L2State::prove_token`] / [`crate::L2State::prove_collection`])
//! reads the resident [`CommitTree`](parole_crypto::CommitTree) levels
//! directly — O(log n) per path, no rebuild. Verification never touches
//! resident state.

use crate::commit::{acct_preimage, coll_header_preimage, token_preimage, CollectionHeader};
use crate::journal::RecordKey;
use crate::AccountState;
use parole_crypto::{keccak256, Hash32, MerkleProof};
use parole_primitives::{Address, TokenId};

/// An opening of one account record against a bare state root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccountInclusionProof {
    /// The account's address (part of the leaf preimage).
    pub address: Address,
    /// The claimed account record (balance + nonce).
    pub account: AccountState,
    /// Sibling path of the account leaf in the top-level tree.
    pub path: MerkleProof,
}

/// Bytes per serialized path node: a sibling hash plus a direction flag.
const PATH_NODE_BYTES: usize = 33;
/// Bytes for the leaf index each path carries.
const LEAF_INDEX_BYTES: usize = 8;

impl AccountInclusionProof {
    /// Checks the proof against a bare `state_root` — no resident state
    /// consulted.
    pub fn verify(&self, state_root: Hash32) -> bool {
        let leaf = keccak256(&acct_preimage(self.address, &self.account));
        self.path.verify(leaf, state_root)
    }

    /// Wire size: the leaf preimage plus the sibling path.
    pub fn encoded_len(&self) -> usize {
        acct_preimage(self.address, &self.account).len()
            + LEAF_INDEX_BYTES
            + PATH_NODE_BYTES * self.path.depth()
    }
}

/// An opening of one collection's header leaf (supply counters and
/// committed sub-tree root) against a bare state root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollectionInclusionProof {
    /// The collection's address.
    pub collection: Address,
    /// The claimed header fields.
    pub header: CollectionHeader,
    /// The claimed sub-tree root over the collection's token leaves.
    pub sub_root: Hash32,
    /// Sibling path of the header leaf in the top-level tree.
    pub path: MerkleProof,
}

impl CollectionInclusionProof {
    /// Checks the proof against a bare `state_root`.
    pub fn verify(&self, state_root: Hash32) -> bool {
        let leaf = keccak256(&coll_header_preimage(
            self.collection,
            &self.header,
            self.sub_root,
        ));
        self.path.verify(leaf, state_root)
    }

    /// Wire size: the 120-byte header preimage plus the sibling path.
    pub fn encoded_len(&self) -> usize {
        120 + LEAF_INDEX_BYTES + PATH_NODE_BYTES * self.path.depth()
    }
}

/// The two-level opening of one token record: owner and approved operator,
/// bound to the state root through the collection sub-tree *and* the
/// header leaf.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenInclusionProof {
    /// The collection's address.
    pub collection: Address,
    /// The token id.
    pub token: TokenId,
    /// The claimed owner.
    pub owner: Address,
    /// The claimed approved operator ([`Address::ZERO`] when none).
    pub approved: Address,
    /// Sibling path of the token leaf inside the collection sub-tree.
    pub token_path: MerkleProof,
    /// The claimed header fields riding beside the sub-root in the header
    /// leaf preimage.
    pub header: CollectionHeader,
    /// Sibling path of the header leaf in the top-level tree.
    pub header_path: MerkleProof,
}

impl TokenInclusionProof {
    /// Recomputes `token leaf → sub-root → header leaf → top root` and
    /// checks the result against a bare `state_root`. Any single-bit lie —
    /// in the owner, the operator, either path, the header counters, or the
    /// root itself — breaks the keccak chain and fails.
    pub fn verify(&self, state_root: Hash32) -> bool {
        let token_leaf = keccak256(&token_preimage(self.token, self.owner, self.approved));
        let sub_root = self.token_path.compute_root(token_leaf);
        let header_leaf = keccak256(&coll_header_preimage(
            self.collection,
            &self.header,
            sub_root,
        ));
        self.header_path.verify(header_leaf, state_root)
    }

    /// Wire size: the 52-byte token leaf preimage, the 120-byte header
    /// preimage, and both sibling paths.
    pub fn encoded_len(&self) -> usize {
        52 + 120
            + 2 * LEAF_INDEX_BYTES
            + PATH_NODE_BYTES * (self.token_path.depth() + self.header_path.depth())
    }
}

/// Any record opening, keyed like the conflict domains in [`RecordKey`] —
/// the unit the single-step settlement exchanges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordProof {
    /// An account opening.
    Account(AccountInclusionProof),
    /// A collection-header opening (whole-collection keys settle at header
    /// granularity: the header's sub-root commits to every token).
    Collection(CollectionInclusionProof),
    /// A token opening.
    Token(TokenInclusionProof),
}

impl RecordProof {
    /// The conflict-domain key this opening speaks for.
    pub fn key(&self) -> RecordKey {
        match self {
            RecordProof::Account(p) => RecordKey::Acct(p.address),
            RecordProof::Collection(p) => RecordKey::Coll(p.collection),
            RecordProof::Token(p) => RecordKey::Token(p.collection, p.token),
        }
    }

    /// Checks the opening against a bare `state_root`.
    pub fn verify(&self, state_root: Hash32) -> bool {
        match self {
            RecordProof::Account(p) => p.verify(state_root),
            RecordProof::Collection(p) => p.verify(state_root),
            RecordProof::Token(p) => p.verify(state_root),
        }
    }

    /// Wire size of the opening (leaf preimages + sibling paths) — the
    /// quantity the fraud-proof benches report as O(log n).
    pub fn encoded_len(&self) -> usize {
        match self {
            RecordProof::Account(p) => p.encoded_len(),
            RecordProof::Collection(p) => p.encoded_len(),
            RecordProof::Token(p) => p.encoded_len(),
        }
    }
}
