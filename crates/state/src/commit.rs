//! The incremental state-commitment cache.
//!
//! `L2State::state_root()` used to re-encode and re-hash every account and
//! every collection and rebuild the full Merkle tree on each call — O(total
//! world size) — while the fraud-proof game calls it from a dozen sites per
//! window and the reorder search commits thousands of candidate schedules
//! per episode. This module memoizes the commitment:
//!
//! - [`CommitCache`] holds a resident [`CommitTree`] plus the sorted key
//!   vectors mapping each account / collection to its leaf position;
//! - [`CommitSlot`] wraps the cache with the **dirty sets**: every mutation
//!   on `L2State` (credit, debit, nonce bump, mint, transfer, burn, deploy,
//!   raw `collection_mut` access, and every undo-log rollback) marks the
//!   touched record, and the next `state_root()` re-derives only the dirty
//!   leaves — O(dirty · log n) instead of O(total).
//!
//! Forks share the clean cache copy-on-write: the tree and key vectors live
//! behind an [`Arc`], so `L2State::clone` / `L2State::fork` is O(1) for the
//! commitment state and the first post-fork flush pays one memcpy of the
//! levels (no re-hashing) via [`Arc::make_mut`].
//!
//! The resulting root is bit-identical to
//! [`L2State::state_root_naive`](crate::L2State::state_root_naive), the
//! from-scratch rebuild that stays available as the independent side of the
//! audit differential oracle. The replay proptests in `tests/prop.rs`
//! assert the equality after every mutation, fork and rollback.

use crate::AccountState;
use parole_crypto::{keccak256, CommitTree, Hash32};
use parole_nft::Collection;
use parole_primitives::Address;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Hashes one account record into its state-root leaf.
///
/// The preimage is `"acct" ‖ address ‖ len(encoding) ‖ encoding`: the
/// explicit length prefix makes the encoding injective even if the account
/// serialization ever grows variable-width fields, so no two distinct
/// records can share a preimage.
pub(crate) fn acct_leaf(addr: Address, acct: &AccountState) -> Hash32 {
    let encoded = acct.encode();
    let mut buf = Vec::with_capacity(28 + encoded.len());
    buf.extend_from_slice(b"acct");
    buf.extend_from_slice(addr.as_bytes());
    buf.extend_from_slice(&(encoded.len() as u32).to_be_bytes());
    buf.extend_from_slice(&encoded);
    keccak256(&buf)
}

/// Hashes one collection's ownership/supply state into its state-root leaf.
///
/// The preimage is `"coll" ‖ address ‖ remaining-supply ‖ pair-count ‖
/// (token ‖ owner)*`: the explicit pair-count prefix separates the
/// fixed-width header from the variable-length ownership list, so records
/// with different pair counts can never collide byte-for-byte.
pub(crate) fn coll_leaf(addr: Address, coll: &Collection) -> Hash32 {
    let mut buf = Vec::with_capacity(48 + coll.active_supply() as usize * 28);
    buf.extend_from_slice(b"coll");
    buf.extend_from_slice(addr.as_bytes());
    buf.extend_from_slice(&coll.remaining_supply().to_be_bytes());
    buf.extend_from_slice(&coll.active_supply().to_be_bytes());
    for (token, owner) in coll.iter() {
        buf.extend_from_slice(&token.value().to_be_bytes());
        buf.extend_from_slice(owner.as_bytes());
    }
    keccak256(&buf)
}

/// A materialized commitment: the resident tree plus the leaf index maps.
///
/// Leaf order matches the naive rebuild exactly: all account leaves in
/// address order, then all collection leaves in address order.
#[derive(Debug, Clone)]
pub(crate) struct CommitCache {
    tree: CommitTree,
    /// Account addresses in leaf order (sorted); `acct_keys[i]` owns leaf `i`.
    acct_keys: Vec<Address>,
    /// Collection addresses in leaf order; `coll_keys[j]` owns leaf
    /// `acct_keys.len() + j`.
    coll_keys: Vec<Address>,
}

impl CommitCache {
    /// Builds the full commitment from scratch (the one unavoidable O(n)
    /// pass; every later flush is O(dirty · log n)).
    fn build(
        accounts: &BTreeMap<Address, AccountState>,
        collections: &BTreeMap<Address, Collection>,
    ) -> Self {
        let mut leaves = Vec::with_capacity(accounts.len() + collections.len());
        for (addr, acct) in accounts {
            leaves.push(acct_leaf(*addr, acct));
        }
        for (addr, coll) in collections {
            leaves.push(coll_leaf(*addr, coll));
        }
        CommitCache {
            tree: CommitTree::from_leaves(leaves),
            acct_keys: accounts.keys().copied().collect(),
            coll_keys: collections.keys().copied().collect(),
        }
    }

    /// Reconciles the tree with the current world for exactly the dirty
    /// records: created records splice a leaf in, destroyed records splice
    /// one out, surviving records re-derive their leaf hash, and all
    /// affected paths are repaired in one batched O(dirty · log n) pass.
    fn apply(
        &mut self,
        accounts: &BTreeMap<Address, AccountState>,
        collections: &BTreeMap<Address, Collection>,
        dirty_accts: &BTreeSet<Address>,
        dirty_colls: &BTreeSet<Address>,
    ) {
        // Structural pass: create/destroy leaves first so every index used
        // by the batched update below is final.
        for &who in dirty_accts {
            match (accounts.get(&who), self.acct_keys.binary_search(&who)) {
                (Some(acct), Err(pos)) => {
                    self.acct_keys.insert(pos, who);
                    self.tree.insert(pos, acct_leaf(who, acct));
                }
                (None, Ok(pos)) => {
                    self.acct_keys.remove(pos);
                    self.tree.remove(pos);
                }
                _ => {}
            }
        }
        let offset = self.acct_keys.len();
        for &addr in dirty_colls {
            match (collections.get(&addr), self.coll_keys.binary_search(&addr)) {
                (Some(coll), Err(pos)) => {
                    self.coll_keys.insert(pos, addr);
                    self.tree.insert(offset + pos, coll_leaf(addr, coll));
                }
                (None, Ok(pos)) => {
                    self.coll_keys.remove(pos);
                    self.tree.remove(offset + pos);
                }
                _ => {}
            }
        }

        // Content pass: re-derive every surviving dirty leaf and repair the
        // tree in one batch (shared ancestor paths hash once).
        let mut updates = Vec::with_capacity(dirty_accts.len() + dirty_colls.len());
        for &who in dirty_accts {
            if let (Some(acct), Ok(pos)) = (accounts.get(&who), self.acct_keys.binary_search(&who))
            {
                updates.push((pos, acct_leaf(who, acct)));
            }
        }
        for &addr in dirty_colls {
            if let (Some(coll), Ok(pos)) =
                (collections.get(&addr), self.coll_keys.binary_search(&addr))
            {
                updates.push((offset + pos, coll_leaf(addr, coll)));
            }
        }
        self.tree.update_batch(&updates);
    }
}

/// The per-state commitment slot: an optional shared cache plus the dirty
/// sets accumulated since the last flush.
///
/// The cache is `None` until the first `state_root()` call (states that
/// never commit pay nothing). Dirty marking is a no-op while the cache is
/// `None` — there is nothing to invalidate, and the first flush builds from
/// the live maps anyway.
#[derive(Debug, Clone, Default)]
pub(crate) struct CommitSlot {
    cache: Option<Arc<CommitCache>>,
    dirty_accts: BTreeSet<Address>,
    dirty_colls: BTreeSet<Address>,
}

impl CommitSlot {
    /// Marks an account record as touched (created, mutated or destroyed).
    #[inline]
    pub(crate) fn mark_acct(&mut self, who: Address) {
        if self.cache.is_some() {
            self.dirty_accts.insert(who);
        }
    }

    /// Marks a collection record as touched (deployed, mutated or rolled
    /// back).
    #[inline]
    pub(crate) fn mark_coll(&mut self, addr: Address) {
        if self.cache.is_some() {
            self.dirty_colls.insert(addr);
        }
    }

    /// Returns the current state root, building the cache on first use and
    /// otherwise flushing only the dirty records through the resident tree.
    pub(crate) fn root(
        &mut self,
        accounts: &BTreeMap<Address, AccountState>,
        collections: &BTreeMap<Address, Collection>,
    ) -> Hash32 {
        match self.cache.as_mut() {
            None => {
                let cache = CommitCache::build(accounts, collections);
                let root = cache.tree.root();
                self.cache = Some(Arc::new(cache));
                root
            }
            Some(shared) => {
                if self.dirty_accts.is_empty() && self.dirty_colls.is_empty() {
                    return shared.tree.root();
                }
                // Copy-on-write: forks share the parent's clean cache until
                // one side actually flushes new dirt through it.
                let cache = Arc::make_mut(shared);
                cache.apply(accounts, collections, &self.dirty_accts, &self.dirty_colls);
                self.dirty_accts.clear();
                self.dirty_colls.clear();
                cache.tree.root()
            }
        }
    }

    /// Test-only sabotage: tampers with one cached leaf *without* marking it
    /// dirty, emulating a cache whose invalidation hooks missed a mutation.
    /// Returns `false` when there is no materialized leaf to corrupt.
    pub(crate) fn corrupt_for_tests(&mut self) -> bool {
        match self.cache.as_mut() {
            Some(shared) if !shared.tree.is_empty() => {
                Arc::make_mut(shared)
                    .tree
                    .update(0, keccak256(b"deliberately stale leaf"));
                true
            }
            _ => false,
        }
    }
}
