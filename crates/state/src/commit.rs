//! The incremental state-commitment cache.
//!
//! `L2State::state_root()` used to re-encode and re-hash every account and
//! every collection and rebuild the full Merkle tree on each call — O(total
//! world size) — while the fraud-proof game calls it from a dozen sites per
//! window and the reorder search commits thousands of candidate schedules
//! per episode. This module memoizes the commitment:
//!
//! - [`CommitCache`] holds a resident [`CommitTree`] plus the sorted key
//!   vectors mapping each account / collection to its leaf position;
//! - [`CommitSlot`] wraps the cache with the **dirty sets**: every mutation
//!   on `L2State` (credit, debit, nonce bump, mint, transfer, burn, deploy,
//!   raw `collection_mut` access, and every undo-log rollback) marks the
//!   touched record, and the next `state_root()` re-derives only the dirty
//!   leaves — O(dirty · log n) instead of O(total).
//!
//! Forks share the clean cache copy-on-write: the tree and key vectors live
//! behind an [`Arc`], so `L2State::clone` / `L2State::fork` is O(1) for the
//! commitment state and the first post-fork flush pays one memcpy of the
//! levels (no re-hashing) via [`Arc::make_mut`].
//!
//! The resulting root is bit-identical to
//! [`L2State::state_root_naive`](crate::L2State::state_root_naive), the
//! from-scratch rebuild that stays available as the independent side of the
//! audit differential oracle. The replay proptests in `tests/prop.rs`
//! assert the equality after every mutation, fork and rollback.

use crate::AccountState;
use parole_crypto::{keccak256, CommitTree, Hash32};
use parole_nft::Collection;
use parole_primitives::Address;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Sticky dirty count: the record is dirty for reasons the journal cannot
/// account for (mutations journaled before the cache existed, or before the
/// last flush), so undo-log rollbacks must never clean it.
const STICKY: u32 = u32::MAX;

/// Hashes one account record into its state-root leaf.
///
/// The preimage is `"acct" ‖ address ‖ len(encoding) ‖ encoding`: the
/// explicit length prefix makes the encoding injective even if the account
/// serialization ever grows variable-width fields, so no two distinct
/// records can share a preimage.
pub(crate) fn acct_leaf(addr: Address, acct: &AccountState) -> Hash32 {
    let encoded = acct.encode();
    let mut buf = Vec::with_capacity(28 + encoded.len());
    buf.extend_from_slice(b"acct");
    buf.extend_from_slice(addr.as_bytes());
    buf.extend_from_slice(&(encoded.len() as u32).to_be_bytes());
    buf.extend_from_slice(&encoded);
    keccak256(&buf)
}

/// Hashes one collection's ownership/supply state into its state-root leaf.
///
/// The preimage is `"coll" ‖ address ‖ remaining-supply ‖ pair-count ‖
/// (token ‖ owner)*`: the explicit pair-count prefix separates the
/// fixed-width header from the variable-length ownership list, so records
/// with different pair counts can never collide byte-for-byte.
pub(crate) fn coll_leaf(addr: Address, coll: &Collection) -> Hash32 {
    let mut buf = Vec::with_capacity(48 + coll.active_supply() as usize * 28);
    buf.extend_from_slice(b"coll");
    buf.extend_from_slice(addr.as_bytes());
    buf.extend_from_slice(&coll.remaining_supply().to_be_bytes());
    buf.extend_from_slice(&coll.active_supply().to_be_bytes());
    for (token, owner) in coll.iter() {
        buf.extend_from_slice(&token.value().to_be_bytes());
        buf.extend_from_slice(owner.as_bytes());
    }
    keccak256(&buf)
}

/// A materialized commitment: the resident tree plus the leaf index maps.
///
/// Leaf order matches the naive rebuild exactly: all account leaves in
/// address order, then all collection leaves in address order.
#[derive(Debug, Clone)]
pub(crate) struct CommitCache {
    tree: CommitTree,
    /// Account addresses in leaf order (sorted); `acct_keys[i]` owns leaf `i`.
    acct_keys: Vec<Address>,
    /// Collection addresses in leaf order; `coll_keys[j]` owns leaf
    /// `acct_keys.len() + j`.
    coll_keys: Vec<Address>,
}

impl CommitCache {
    /// Builds the full commitment from scratch (the one unavoidable O(n)
    /// pass; every later flush is O(dirty · log n)).
    fn build(
        accounts: &BTreeMap<Address, AccountState>,
        collections: &BTreeMap<Address, Collection>,
    ) -> Self {
        let mut leaves = Vec::with_capacity(accounts.len() + collections.len());
        for (addr, acct) in accounts {
            leaves.push(acct_leaf(*addr, acct));
        }
        for (addr, coll) in collections {
            leaves.push(coll_leaf(*addr, coll));
        }
        CommitCache {
            tree: CommitTree::from_leaves(leaves),
            acct_keys: accounts.keys().copied().collect(),
            coll_keys: collections.keys().copied().collect(),
        }
    }

    /// Reconciles the tree with the current world for exactly the dirty
    /// records: created records splice a leaf in, destroyed records splice
    /// one out, surviving records re-derive their leaf hash, and all
    /// affected paths are repaired in one batched O(dirty · log n) pass.
    ///
    /// Returns the number of leaves flushed (created + destroyed +
    /// re-hashed) — the telemetry quantity the ROADMAP's redundant-dirty
    /// follow-up is measured by.
    fn apply<'a>(
        &mut self,
        accounts: &BTreeMap<Address, AccountState>,
        collections: &BTreeMap<Address, Collection>,
        dirty_accts: impl Iterator<Item = &'a Address> + Clone,
        dirty_colls: impl Iterator<Item = &'a Address> + Clone,
    ) -> usize {
        let mut flushed = 0usize;
        // Structural pass: create/destroy leaves first so every index used
        // by the batched update below is final.
        for &who in dirty_accts.clone() {
            match (accounts.get(&who), self.acct_keys.binary_search(&who)) {
                (Some(acct), Err(pos)) => {
                    self.acct_keys.insert(pos, who);
                    self.tree.insert(pos, acct_leaf(who, acct));
                    flushed += 1;
                }
                (None, Ok(pos)) => {
                    self.acct_keys.remove(pos);
                    self.tree.remove(pos);
                    flushed += 1;
                }
                _ => {}
            }
        }
        let offset = self.acct_keys.len();
        for &addr in dirty_colls.clone() {
            match (collections.get(&addr), self.coll_keys.binary_search(&addr)) {
                (Some(coll), Err(pos)) => {
                    self.coll_keys.insert(pos, addr);
                    self.tree.insert(offset + pos, coll_leaf(addr, coll));
                    flushed += 1;
                }
                (None, Ok(pos)) => {
                    self.coll_keys.remove(pos);
                    self.tree.remove(offset + pos);
                    flushed += 1;
                }
                _ => {}
            }
        }

        // Content pass: re-derive every surviving dirty leaf and repair the
        // tree in one batch (shared ancestor paths hash once). A record
        // created in the structural pass re-derives here too; its leaf hash
        // is already final, so the double-hash on the rare creation path is
        // harmless.
        let mut updates = Vec::new();
        for &who in dirty_accts {
            if let (Some(acct), Ok(pos)) = (accounts.get(&who), self.acct_keys.binary_search(&who))
            {
                updates.push((pos, acct_leaf(who, acct)));
            }
        }
        for &addr in dirty_colls {
            if let (Some(coll), Ok(pos)) =
                (collections.get(&addr), self.coll_keys.binary_search(&addr))
            {
                updates.push((offset + pos, coll_leaf(addr, coll)));
            }
        }
        flushed += updates.len();
        self.tree.update_batch(&updates);
        flushed
    }
}

/// The per-state commitment slot: an optional shared cache plus the dirty
/// records accumulated since the last flush.
///
/// The cache is `None` until the first `state_root()` call (states that
/// never commit pay nothing). Dirty marking is a no-op while the cache is
/// `None` — there is nothing to invalidate, and the first flush builds from
/// the live maps anyway.
///
/// # Rollback-aware dirty tracking
///
/// Dirty records carry a **mutation count**, and the slot remembers a
/// high-water mark `hwm`: the journal length at the moment the cache was
/// last built or flushed. Together they let an undo-log rollback *clean*
/// a record instead of re-dirtying it:
///
/// - a forward mutation increments the record's count;
/// - undoing a journal entry at index `i ≥ hwm` decrements it — that entry's
///   forward mark is still in the map, and when the count hits zero every
///   mutation since the flush has been exactly undone, so the record again
///   equals its committed leaf and needs no re-hash;
/// - undoing an entry at index `i < hwm` pins the count to [`STICKY`]: the
///   entry predates the flush (or the cache itself), its forward mark is
///   gone (or never existed), so the restored value differs from the
///   committed leaf in a way counts cannot track.
///
/// This closes the ROADMAP follow-up where `revert_to` conservatively
/// re-dirtied every record it restored: a speculative window that executes
/// and fully rolls back now flushes **zero** leaves.
#[derive(Debug, Clone, Default)]
pub(crate) struct CommitSlot {
    cache: Option<Arc<CommitCache>>,
    dirty_accts: BTreeMap<Address, u32>,
    dirty_colls: BTreeMap<Address, u32>,
    /// Journal length at the last cache build/flush. Entries below this
    /// index have no live forward mark (see the struct docs).
    hwm: usize,
}

impl CommitSlot {
    /// Marks an account record as touched (created, mutated or destroyed).
    #[inline]
    pub(crate) fn mark_acct(&mut self, who: Address) {
        if self.cache.is_some() {
            let c = self.dirty_accts.entry(who).or_insert(0);
            *c = c.saturating_add(1);
        }
    }

    /// Marks a collection record as touched (deployed, mutated or rolled
    /// back).
    #[inline]
    pub(crate) fn mark_coll(&mut self, addr: Address) {
        if self.cache.is_some() {
            let c = self.dirty_colls.entry(addr).or_insert(0);
            *c = c.saturating_add(1);
        }
    }

    /// Rollback-marks an account: called when `revert_to` undoes the journal
    /// entry at `index` that had mutated `who`.
    #[inline]
    pub(crate) fn unmark_acct(&mut self, who: Address, index: usize) {
        if self.cache.is_some() {
            let below_hwm = index < self.hwm;
            Self::unmark(&mut self.dirty_accts, who, below_hwm);
        }
    }

    /// Rollback-marks a collection (see [`CommitSlot::unmark_acct`]).
    #[inline]
    pub(crate) fn unmark_coll(&mut self, addr: Address, index: usize) {
        if self.cache.is_some() {
            let below_hwm = index < self.hwm;
            Self::unmark(&mut self.dirty_colls, addr, below_hwm);
        }
    }

    fn unmark(dirty: &mut BTreeMap<Address, u32>, key: Address, below_hwm: bool) {
        match dirty.get_mut(&key) {
            Some(c) if *c == STICKY => {} // sticky dirt never cleans
            Some(c) if !below_hwm && *c > 1 => *c -= 1,
            Some(_) if !below_hwm => {
                // Count reaches zero: every post-flush mutation undone, the
                // record matches its committed leaf again.
                dirty.remove(&key);
            }
            _ => {
                // Entry predates the flush (or the map entry is missing —
                // only possible if the invariant broke): pin sticky, which
                // is always safe because a dirty record is merely re-hashed.
                dirty.insert(key, STICKY);
            }
        }
    }

    /// Informs the slot that the journal was truncated to `len` (by a
    /// rollback): marks issued after the truncation point are gone, so the
    /// high-water mark can only move down.
    #[inline]
    pub(crate) fn journal_truncated(&mut self, len: usize) {
        self.hwm = self.hwm.min(len);
    }

    /// Number of records currently marked dirty (telemetry/test hook).
    pub(crate) fn dirty_records(&self) -> usize {
        self.dirty_accts.len() + self.dirty_colls.len()
    }

    /// Resets the high-water mark for a fork: clones get a fresh, empty
    /// journal, so every future journal index is ≥ 0 and carries its own
    /// forward mark.
    pub(crate) fn reset_hwm_for_fork(&mut self) {
        self.hwm = 0;
    }

    /// Returns the current state root, building the cache on first use and
    /// otherwise flushing only the dirty records through the resident tree.
    ///
    /// `journal_len` is the owning state's current journal length; it
    /// becomes the new high-water mark for rollback-aware dirty tracking.
    pub(crate) fn root(
        &mut self,
        accounts: &BTreeMap<Address, AccountState>,
        collections: &BTreeMap<Address, Collection>,
        journal_len: usize,
    ) -> Hash32 {
        let _span = parole_telemetry::span("state.root");
        parole_telemetry::counter("state.root_calls", 1);
        let keccak_before = parole_telemetry::local_counter("crypto.keccak256");
        let root = match self.cache.as_mut() {
            None => {
                parole_telemetry::counter("state.commit_builds", 1);
                let cache = CommitCache::build(accounts, collections);
                let root = cache.tree.root();
                self.cache = Some(Arc::new(cache));
                self.dirty_accts.clear();
                self.dirty_colls.clear();
                self.hwm = journal_len;
                root
            }
            Some(shared) => {
                if self.dirty_accts.is_empty() && self.dirty_colls.is_empty() {
                    parole_telemetry::counter("state.root_clean_hits", 1);
                    return shared.tree.root();
                }
                parole_telemetry::observe(
                    "state.dirty_records",
                    (self.dirty_accts.len() + self.dirty_colls.len()) as u64,
                );
                // Copy-on-write: forks share the parent's clean cache until
                // one side actually flushes new dirt through it.
                let cache = Arc::make_mut(shared);
                let flushed = cache.apply(
                    accounts,
                    collections,
                    self.dirty_accts.keys(),
                    self.dirty_colls.keys(),
                );
                parole_telemetry::observe("state.leaves_flushed", flushed as u64);
                self.dirty_accts.clear();
                self.dirty_colls.clear();
                self.hwm = journal_len;
                cache.tree.root()
            }
        };
        // Both reads happen on this thread with no flush in between, so the
        // delta is exactly this call's digest count.
        let keccak_delta = parole_telemetry::local_counter("crypto.keccak256") - keccak_before;
        parole_telemetry::observe("state.keccak_per_root", keccak_delta);
        root
    }

    /// Test-only sabotage: tampers with one cached leaf *without* marking it
    /// dirty, emulating a cache whose invalidation hooks missed a mutation.
    /// Returns `false` when there is no materialized leaf to corrupt.
    pub(crate) fn corrupt_for_tests(&mut self) -> bool {
        match self.cache.as_mut() {
            Some(shared) if !shared.tree.is_empty() => {
                Arc::make_mut(shared)
                    .tree
                    .update(0, keccak256(b"deliberately stale leaf"));
                true
            }
            _ => false,
        }
    }
}
