//! The incremental, **hierarchical** state-commitment cache.
//!
//! `L2State::state_root()` used to re-encode and re-hash every account and
//! every collection and rebuild the full Merkle tree on each call — O(total
//! world size) — while the fraud-proof game calls it from a dozen sites per
//! window and the reorder search commits thousands of candidate schedules
//! per episode. This module memoizes the commitment as a **two-level tree**:
//!
//! - every collection owns a resident [`CommitTree`] over per-token leaves
//!   (`"tokn" ‖ token ‖ owner ‖ approval`, see [`token_preimage`]); its root,
//!   combined with the supply/config header, forms that collection's leaf in
//!   the **top-level** tree ([`coll_preimage`]);
//! - [`CommitCache`] holds the top-level tree, the sorted key vectors mapping
//!   each account / collection to its leaf position, and one [`CollSub`]
//!   sub-tree per collection;
//! - [`CommitSlot`] wraps the cache with the **dirty sets**: every mutation
//!   on `L2State` (credit, debit, nonce bump, mint, transfer, burn, approve,
//!   deploy, raw `collection_mut` access, and every undo-log rollback) marks
//!   the touched record — token-granular for the per-token NFT ops — and the
//!   next `state_root()` re-derives only the dirty leaves.
//!
//! The hierarchy is what makes NFT-heavy workloads cheap: a single token op
//! in a collection with `n` active tokens re-hashes one 52-byte token leaf
//! plus O(log n) sub-tree nodes plus the 120-byte collection header and its
//! O(log m) top-level path, instead of re-absorbing the entire ownership
//! list (O(n) hashing) into one flat leaf. Dirty-leaf preimages are piped
//! through [`keccak256_batch`], which recycles one sponge across the batch.
//!
//! Forks share the clean cache copy-on-write: the trees and key vectors live
//! behind [`Arc`]s (each sub-tree individually), so `L2State::clone` /
//! `L2State::fork` is O(1) for the commitment state and the first post-fork
//! flush clones only the sub-trees it actually touches via [`Arc::make_mut`].
//!
//! The resulting root is bit-identical to
//! [`L2State::state_root_naive`](crate::L2State::state_root_naive), the
//! from-scratch rebuild that re-derives the same two-level scheme
//! independently (its own preimage construction, one-shot hashing, plain
//! `MerkleTree`s) and stays available as the independent side of the audit
//! differential oracle. The replay proptests in `tests/prop.rs` assert the
//! equality after every mutation, fork and rollback.

use crate::tables::{AccountTable, CollTable};
use crate::AccountState;
use parole_crypto::{keccak256, keccak256_batch, CommitTree, Hash32, MerkleProof};
use parole_nft::Collection;
use parole_primitives::{Address, BlockNumber, TokenId};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Sticky dirty count: the record is dirty for reasons the journal cannot
/// account for (mutations journaled before the cache existed, or before the
/// last flush), so undo-log rollbacks must never clean it.
const STICKY: u32 = u32::MAX;

/// Builds the fixed-width preimage of the chain-metadata leaf — always leaf
/// 0 of the top-level tree: `"meta" ‖ block-number (8B BE)`.
///
/// Committing the block number makes the *whole* L2 transition observable in
/// the root: two parties that execute the same transactions but disagree on
/// whether the batch seal advanced the block now derive different roots, so
/// the verifier/contract `advance_block` convention is pinned by the fraud
/// game itself instead of being silently unobservable.
pub(crate) fn meta_preimage(block: BlockNumber) -> [u8; 12] {
    let mut buf = [0u8; 12];
    buf[..4].copy_from_slice(b"meta");
    buf[4..12].copy_from_slice(&block.value().to_be_bytes());
    buf
}

/// Builds the preimage of one account leaf.
///
/// The preimage is `"acct" ‖ address ‖ len(encoding) ‖ encoding`: the
/// explicit length prefix makes the encoding injective even if the account
/// serialization ever grows variable-width fields, so no two distinct
/// records can share a preimage.
pub(crate) fn acct_preimage(addr: Address, acct: &AccountState) -> Vec<u8> {
    let encoded = acct.encode();
    let mut buf = Vec::with_capacity(28 + encoded.len());
    buf.extend_from_slice(b"acct");
    buf.extend_from_slice(addr.as_bytes());
    buf.extend_from_slice(&(encoded.len() as u32).to_be_bytes());
    buf.extend_from_slice(&encoded);
    buf
}

/// Builds the fixed-width preimage of one token leaf in a collection's
/// sub-tree: `"tokn" ‖ token ‖ owner ‖ approved-operator`.
///
/// The approval slot holds [`Address::ZERO`] when no operator is approved —
/// a faithful encoding, not a collision, because approving the zero address
/// *clears* the approval (ERC-721 semantics), so "approved to zero" and "no
/// approval" are the same state. Every field is fixed-width, so the
/// preimage is injective by construction.
pub(crate) fn token_preimage(token: TokenId, owner: Address, approved: Address) -> [u8; 52] {
    let mut buf = [0u8; 52];
    buf[..4].copy_from_slice(b"tokn");
    buf[4..12].copy_from_slice(&token.value().to_be_bytes());
    buf[12..32].copy_from_slice(owner.as_bytes());
    buf[32..52].copy_from_slice(approved.as_bytes());
    buf
}

/// Builds the fixed-width preimage of one collection's top-level leaf:
/// `"coll" ‖ address ‖ remaining-supply ‖ active-supply ‖ approval-count ‖
/// operator-count ‖ operators-digest ‖ sub-root`.
///
/// The ownership *and per-token approval* content lives entirely in
/// `sub_root`, the root of the collection's per-token sub-tree (approvals
/// exist only for active tokens, so the token leaves cover the whole
/// approvals map); the approval count rides in the header as an explicit
/// prefix so the committed record is count-framed like the supply fields.
/// Blanket operator approvals (`setApprovalForAll`) are not per-token, so
/// they commit through the header directly: a count plus a digest over the
/// sorted `(owner, operator)` pairs (see [`operators_digest`]) — leaving
/// them out would let an aggregator forge operator grants without moving
/// the root, the same soundness hole PR 5 closed for per-token approvals.
pub(crate) fn coll_preimage(addr: Address, coll: &Collection, sub_root: Hash32) -> [u8; 120] {
    coll_header_preimage(addr, &CollectionHeader::of(coll), sub_root)
}

/// Digest of a collection's blanket operator approvals: `keccak("oper" ‖
/// (owner ‖ operator)*)` over the pairs in sorted order. The pairs are
/// fixed-width (20 + 20 bytes) and sorted, so the encoding is injective and
/// deterministic; the empty set digests the bare `"oper"` tag.
pub(crate) fn operators_digest(pairs: impl Iterator<Item = (Address, Address)>) -> Hash32 {
    let mut buf = Vec::with_capacity(4 + 40 * 4);
    buf.extend_from_slice(b"oper");
    for (owner, operator) in pairs {
        buf.extend_from_slice(owner.as_bytes());
        buf.extend_from_slice(operator.as_bytes());
    }
    keccak256(&buf)
}

/// The plain-data view of a collection's header leaf: the counters and the
/// operator digest that ride beside the sub-tree root in the 120-byte
/// preimage.
///
/// This is the piece of a token-inclusion proof a stateless verifier needs
/// to re-derive the header leaf from a recomputed sub-root — it carries no
/// reference into resident state, so proofs built from it verify against a
/// bare root.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollectionHeader {
    /// Tokens still mintable (drives the bonding-curve price).
    pub remaining_supply: u64,
    /// Tokens currently active (minted and not burned).
    pub active_supply: u64,
    /// Tokens with a live approved operator.
    pub approval_count: u64,
    /// Live `(owner, operator)` blanket-approval pairs.
    pub operator_count: u64,
    /// Digest over the sorted blanket-approval pairs ([`operators_digest`]).
    pub operators_digest: Hash32,
}

impl CollectionHeader {
    pub(crate) fn of(coll: &Collection) -> Self {
        CollectionHeader {
            remaining_supply: coll.remaining_supply(),
            active_supply: coll.active_supply(),
            approval_count: coll.approval_count(),
            operator_count: coll.operator_approval_count(),
            operators_digest: operators_digest(coll.operator_pairs()),
        }
    }
}

/// Builds the 120-byte collection header preimage from its raw fields — the
/// stateless twin of [`coll_preimage`], shared with proof verification.
pub(crate) fn coll_header_preimage(
    addr: Address,
    header: &CollectionHeader,
    sub_root: Hash32,
) -> [u8; 120] {
    let mut buf = [0u8; 120];
    buf[..4].copy_from_slice(b"coll");
    buf[4..24].copy_from_slice(addr.as_bytes());
    buf[24..32].copy_from_slice(&header.remaining_supply.to_be_bytes());
    buf[32..40].copy_from_slice(&header.active_supply.to_be_bytes());
    buf[40..48].copy_from_slice(&header.approval_count.to_be_bytes());
    buf[48..56].copy_from_slice(&header.operator_count.to_be_bytes());
    buf[56..88].copy_from_slice(header.operators_digest.as_bytes());
    buf[88..120].copy_from_slice(sub_root.as_bytes());
    buf
}

/// One token's current leaf hash.
fn token_leaf(coll: &Collection, token: TokenId, owner: Address) -> Hash32 {
    let approved = coll.get_approved(token).unwrap_or(Address::ZERO);
    keccak256(&token_preimage(token, owner, approved))
}

/// Leaf-flush accounting for one `CommitCache::apply` pass, feeding the
/// `state.*_flushed` telemetry streams.
#[derive(Debug, Default, Clone, Copy)]
struct FlushStats {
    /// Top-level leaves created, destroyed or re-hashed (accounts plus
    /// collection headers) — the quantity `state.leaves_flushed` has always
    /// measured.
    top_leaves: usize,
    /// Collection headers among `top_leaves` (re-derived because their
    /// sub-root or supply moved).
    coll_leaves: usize,
    /// Token leaves created, destroyed or re-hashed across all sub-trees.
    token_leaves: usize,
}

/// One collection's resident sub-tree: per-token leaves in token-id order.
#[derive(Debug, Clone)]
pub(crate) struct CollSub {
    tree: CommitTree,
    /// Token ids in leaf order (sorted); `tokens[i]` owns sub-leaf `i`.
    tokens: Vec<TokenId>,
}

impl CollSub {
    /// Builds a collection's sub-tree from scratch, batching every token
    /// preimage through one recycled sponge.
    fn build(coll: &Collection) -> CollSub {
        let tokens: Vec<TokenId> = coll.iter().map(|(t, _)| t).collect();
        let preimages: Vec<[u8; 52]> = coll
            .iter()
            .map(|(t, o)| token_preimage(t, o, coll.get_approved(t).unwrap_or(Address::ZERO)))
            .collect();
        let leaves = keccak256_batch(preimages.iter().map(|p| p.as_slice()));
        CollSub {
            tree: CommitTree::from_leaves(leaves),
            tokens,
        }
    }

    /// The sub-tree root (the `sub_root` field of the collection's
    /// top-level leaf preimage).
    fn root(&self) -> Hash32 {
        self.tree.root()
    }

    /// Reconciles the sub-tree with the collection's live state for exactly
    /// the dirty tokens: minted tokens splice a leaf in, burned tokens
    /// splice one out, surviving tokens re-derive their leaf (owner or
    /// approval moved), and all affected paths repair in one batched
    /// O(dirty · log n) pass. Returns the number of token leaves flushed.
    fn reconcile(&mut self, coll: &Collection, dirty: &BTreeMap<TokenId, u32>) -> usize {
        let mut flushed = 0usize;
        // Structural pass first, so every index the batch below uses is
        // final.
        for &token in dirty.keys() {
            match (coll.owner_of(token), self.tokens.binary_search(&token)) {
                (Some(owner), Err(pos)) => {
                    self.tokens.insert(pos, token);
                    self.tree.insert(pos, token_leaf(coll, token, owner));
                    flushed += 1;
                }
                (None, Ok(pos)) => {
                    self.tokens.remove(pos);
                    self.tree.remove(pos);
                    flushed += 1;
                }
                _ => {}
            }
        }
        // Content pass: re-derive every surviving dirty token leaf, hashes
        // batched through one sponge, paths repaired in one batch.
        let mut positions = Vec::new();
        let mut preimages: Vec<[u8; 52]> = Vec::new();
        for &token in dirty.keys() {
            if let (Some(owner), Ok(pos)) =
                (coll.owner_of(token), self.tokens.binary_search(&token))
            {
                positions.push(pos);
                preimages.push(token_preimage(
                    token,
                    owner,
                    coll.get_approved(token).unwrap_or(Address::ZERO),
                ));
            }
        }
        let hashes = keccak256_batch(preimages.iter().map(|p| p.as_slice()));
        let updates: Vec<(usize, Hash32)> = positions.into_iter().zip(hashes).collect();
        flushed += updates.len();
        self.tree.update_batch(&updates);
        flushed
    }
}

/// Per-collection dirt: a whole-collection mutation count (deploy, raw
/// `collection_mut` access, snapshot rollback), a header-only count
/// (blanket operator approvals, which commit through the header leaf but
/// leave the token sub-tree untouched), plus token-granular counts for the
/// per-token NFT ops. All levels carry the same mutation-count / [`STICKY`]
/// / high-water-mark semantics as account dirt (see [`CommitSlot`]).
#[derive(Debug, Clone, Default)]
pub(crate) struct CollDirt {
    /// Whole-collection mutation count: the caller may have changed
    /// anything, so a flush rebuilds the sub-tree from scratch.
    whole: u32,
    /// Header-only mutation count: the flush re-hashes the 120-byte header
    /// leaf without touching the sub-tree (operator approvals changed).
    header: u32,
    /// Per-token mutation counts: a flush reconciles exactly these leaves.
    tokens: BTreeMap<TokenId, u32>,
}

impl CollDirt {
    fn is_clean(&self) -> bool {
        self.whole == 0 && self.header == 0 && self.tokens.is_empty()
    }
}

/// A materialized commitment: the resident top-level tree, the per-
/// collection sub-trees, plus the leaf index maps.
///
/// Top-level leaf order matches the naive rebuild exactly: the chain-
/// metadata leaf (block number) first, then all account leaves in address
/// order, then all collection leaves in address order. Sub-tree leaf order
/// is token-id order.
#[derive(Debug, Clone)]
pub(crate) struct CommitCache {
    tree: CommitTree,
    /// Account addresses in leaf order (sorted); `acct_keys[i]` owns leaf
    /// `1 + i` (leaf 0 is the metadata leaf).
    acct_keys: Vec<Address>,
    /// Collection addresses in leaf order; `coll_keys[j]` owns leaf
    /// `1 + acct_keys.len() + j` and sub-tree `coll_subs[j]`.
    coll_keys: Vec<Address>,
    /// Per-collection sub-trees, index-aligned with `coll_keys`. Each sits
    /// behind its own `Arc` so a post-fork flush clones only the sub-trees
    /// it actually touches.
    coll_subs: Vec<Arc<CollSub>>,
}

impl CommitCache {
    /// Builds the full commitment from scratch (the one unavoidable O(n)
    /// pass; every later flush is O(dirty · log n)).
    fn build(accounts: &AccountTable, collections: &CollTable, block: BlockNumber) -> Self {
        let acct_preimages: Vec<Vec<u8>> = accounts
            .iter_sorted()
            .map(|(addr, acct)| acct_preimage(addr, acct))
            .collect();
        let mut leaves = vec![keccak256(&meta_preimage(block))];
        leaves.extend(keccak256_batch(acct_preimages.iter().map(Vec::as_slice)));
        leaves.reserve(collections.len());
        let mut coll_subs = Vec::with_capacity(collections.len());
        for (addr, coll) in collections.iter_sorted() {
            let sub = CollSub::build(coll);
            leaves.push(keccak256(&coll_preimage(addr, coll, sub.root())));
            coll_subs.push(Arc::new(sub));
        }
        CommitCache {
            tree: CommitTree::from_leaves(leaves),
            acct_keys: accounts.iter_sorted().map(|(k, _)| k).collect(),
            coll_keys: collections.iter_sorted().map(|(k, _)| k).collect(),
            coll_subs,
        }
    }

    /// Reconciles the trees with the current world for exactly the dirty
    /// records: created records splice a leaf in, destroyed records splice
    /// one out, surviving records re-derive their leaf hash — for
    /// collections, by rebuilding (whole-dirty) or reconciling
    /// (token-dirty) the sub-tree and re-hashing the 120-byte header — and
    /// all affected top-level paths repair in one batched pass.
    fn apply(
        &mut self,
        accounts: &AccountTable,
        collections: &CollTable,
        block: BlockNumber,
        dirty_block: bool,
        dirty_accts: &BTreeMap<Address, u32>,
        dirty_colls: &BTreeMap<Address, CollDirt>,
    ) -> FlushStats {
        let mut stats = FlushStats::default();
        // Structural pass: create/destroy leaves first so every index used
        // by the batched update below is final. The metadata leaf at
        // position 0 is structural never — it exists for every state.
        for &who in dirty_accts.keys() {
            match (accounts.get(&who), self.acct_keys.binary_search(&who)) {
                (Some(acct), Err(pos)) => {
                    self.acct_keys.insert(pos, who);
                    self.tree
                        .insert(1 + pos, keccak256(&acct_preimage(who, acct)));
                    stats.top_leaves += 1;
                }
                (None, Ok(pos)) => {
                    self.acct_keys.remove(pos);
                    self.tree.remove(1 + pos);
                    stats.top_leaves += 1;
                }
                _ => {}
            }
        }
        let offset = 1 + self.acct_keys.len();
        for &addr in dirty_colls.keys() {
            match (collections.get(&addr), self.coll_keys.binary_search(&addr)) {
                (Some(coll), Err(pos)) => {
                    let sub = CollSub::build(coll);
                    stats.token_leaves += sub.tokens.len();
                    let leaf = keccak256(&coll_preimage(addr, coll, sub.root()));
                    self.coll_keys.insert(pos, addr);
                    self.coll_subs.insert(pos, Arc::new(sub));
                    self.tree.insert(offset + pos, leaf);
                    stats.top_leaves += 1;
                }
                (None, Ok(pos)) => {
                    self.coll_keys.remove(pos);
                    self.coll_subs.remove(pos);
                    self.tree.remove(offset + pos);
                    stats.top_leaves += 1;
                }
                _ => {}
            }
        }

        // Content pass: re-derive every surviving dirty leaf and repair the
        // top-level tree in one batch (shared ancestor paths hash once). A
        // record created in the structural pass re-derives here too; its
        // leaf hash is already final, so the double-hash on the rare
        // creation path is harmless (deploys are born empty, so the "full
        // rebuild" of a just-created sub-tree is O(1)).
        let mut acct_positions = Vec::new();
        let mut acct_preimages: Vec<Vec<u8>> = Vec::new();
        for &who in dirty_accts.keys() {
            if let (Some(acct), Ok(pos)) = (accounts.get(&who), self.acct_keys.binary_search(&who))
            {
                acct_positions.push(1 + pos);
                acct_preimages.push(acct_preimage(who, acct));
            }
        }
        let acct_hashes = keccak256_batch(acct_preimages.iter().map(Vec::as_slice));
        let mut updates: Vec<(usize, Hash32)> =
            acct_positions.into_iter().zip(acct_hashes).collect();
        if dirty_block {
            updates.push((0, keccak256(&meta_preimage(block))));
        }
        for (&addr, dirt) in dirty_colls {
            if let (Some(coll), Ok(pos)) =
                (collections.get(&addr), self.coll_keys.binary_search(&addr))
            {
                // Copy-on-write at sub-tree granularity: only the touched
                // collections' sub-trees detach from a forked parent.
                let sub = Arc::make_mut(&mut self.coll_subs[pos]);
                if dirt.whole != 0 {
                    *sub = CollSub::build(coll);
                    stats.token_leaves += sub.tokens.len();
                } else {
                    stats.token_leaves += sub.reconcile(coll, &dirt.tokens);
                }
                updates.push((
                    offset + pos,
                    keccak256(&coll_preimage(addr, coll, sub.root())),
                ));
                stats.coll_leaves += 1;
            }
        }
        stats.top_leaves += updates.len();
        self.tree.update_batch(&updates);
        stats
    }
}

/// The per-state commitment slot: an optional shared cache plus the dirty
/// records accumulated since the last flush.
///
/// The cache is `None` until the first `state_root()` call (states that
/// never commit pay nothing). Dirty marking is a no-op while the cache is
/// `None` — there is nothing to invalidate, and the first flush builds from
/// the live maps anyway.
///
/// # Rollback-aware dirty tracking
///
/// Dirty records carry a **mutation count**, and the slot remembers a
/// high-water mark `hwm`: the journal length at the moment the cache was
/// last built or flushed. Together they let an undo-log rollback *clean*
/// a record instead of re-dirtying it:
///
/// - a forward mutation increments the record's count;
/// - undoing a journal entry at index `i ≥ hwm` decrements it — that entry's
///   forward mark is still in the map, and when the count hits zero every
///   mutation since the flush has been exactly undone, so the record again
///   equals its committed leaf and needs no re-hash;
/// - undoing an entry at index `i < hwm` pins the count to [`STICKY`]: the
///   entry predates the flush (or the cache itself), its forward mark is
///   gone (or never existed), so the restored value differs from the
///   committed leaf in a way counts cannot track.
///
/// Token-granular dirt carries the **same semantics one level down**: a
/// per-token NFT op (mint, transfer, burn, approve) marks only that token's
/// count inside the collection's [`CollDirt`], its rollback unmarks the
/// same token, and a speculative window of token ops that fully rolls back
/// flushes **zero** leaves at both levels. Whole-collection marks (deploy,
/// raw `collection_mut`, snapshot rollback) keep their own count beside the
/// token counts; a flush rebuilds the sub-tree when the whole-count is hot
/// and reconciles individual token leaves otherwise.
#[derive(Debug, Clone, Default)]
pub(crate) struct CommitSlot {
    cache: Option<Arc<CommitCache>>,
    dirty_accts: BTreeMap<Address, u32>,
    dirty_colls: BTreeMap<Address, CollDirt>,
    /// Mutation count for the chain-metadata leaf (block number), with the
    /// same count / [`STICKY`] semantics as the per-record maps.
    dirty_block: u32,
    /// Journal length at the last cache build/flush. Entries below this
    /// index have no live forward mark (see the struct docs).
    hwm: usize,
}

/// One inverse step of the mutation-count protocol: [`STICKY`] never
/// cleans, a live post-flush count decrements, and anything the counts
/// cannot account for (an entry below the high-water mark, or a count
/// already at zero) pins [`STICKY`] — always safe, a dirty record is
/// merely re-hashed.
fn unwind(count: u32, below_hwm: bool) -> u32 {
    match count {
        STICKY => STICKY,
        c if !below_hwm && c > 0 => c - 1,
        _ => STICKY,
    }
}

impl CommitSlot {
    /// Marks an account record as touched (created, mutated or destroyed).
    #[inline]
    pub(crate) fn mark_acct(&mut self, who: Address) {
        if self.cache.is_some() {
            let c = self.dirty_accts.entry(who).or_insert(0);
            *c = c.saturating_add(1);
        }
    }

    /// Marks the chain-metadata leaf as touched (the block number advanced).
    #[inline]
    pub(crate) fn mark_block(&mut self) {
        if self.cache.is_some() {
            self.dirty_block = self.dirty_block.saturating_add(1);
        }
    }

    /// Rollback-marks the metadata leaf: called when `revert_to` undoes the
    /// block-advance journal entry at `index` (see [`CommitSlot::unmark_acct`]).
    #[inline]
    pub(crate) fn unmark_block(&mut self, index: usize) {
        if self.cache.is_none() {
            return;
        }
        self.dirty_block = unwind(self.dirty_block, index < self.hwm);
    }

    /// Marks a whole collection as touched (deployed, arbitrarily mutated
    /// through `collection_mut`, or snapshot-rolled-back): the next flush
    /// rebuilds its sub-tree from scratch.
    #[inline]
    pub(crate) fn mark_coll(&mut self, addr: Address) {
        if self.cache.is_some() {
            let d = self.dirty_colls.entry(addr).or_default();
            d.whole = d.whole.saturating_add(1);
        }
    }

    /// Marks a collection's header leaf as touched without invalidating any
    /// token leaf (a blanket operator approval changed): the next flush
    /// re-hashes the 120-byte header against the unchanged sub-root — O(log
    /// collections), no sub-tree work at all.
    #[inline]
    pub(crate) fn mark_coll_header(&mut self, addr: Address) {
        if self.cache.is_some() {
            let d = self.dirty_colls.entry(addr).or_default();
            d.header = d.header.saturating_add(1);
        }
    }

    /// Rollback-marks a collection header (see [`CommitSlot::unmark_acct`]).
    #[inline]
    pub(crate) fn unmark_coll_header(&mut self, addr: Address, index: usize) {
        if self.cache.is_none() {
            return;
        }
        let below_hwm = index < self.hwm;
        let dirt = self.dirty_colls.entry(addr).or_default();
        dirt.header = unwind(dirt.header, below_hwm);
        if dirt.is_clean() {
            self.dirty_colls.remove(&addr);
        }
    }

    /// Marks a single token of a collection as touched (minted,
    /// transferred, burned or approved): the next flush reconciles exactly
    /// that sub-tree leaf — O(log supply), the hierarchical fast path.
    #[inline]
    pub(crate) fn mark_coll_token(&mut self, addr: Address, token: TokenId) {
        if self.cache.is_some() {
            let c = self
                .dirty_colls
                .entry(addr)
                .or_default()
                .tokens
                .entry(token)
                .or_insert(0);
            *c = c.saturating_add(1);
        }
    }

    /// Rollback-marks an account: called when `revert_to` undoes the journal
    /// entry at `index` that had mutated `who`.
    #[inline]
    pub(crate) fn unmark_acct(&mut self, who: Address, index: usize) {
        if self.cache.is_none() {
            return;
        }
        let below_hwm = index < self.hwm;
        let c = self.dirty_accts.entry(who).or_insert(0);
        *c = unwind(*c, below_hwm);
        if *c == 0 {
            // Count reaches zero: every post-flush mutation undone, the
            // record matches its committed leaf again.
            self.dirty_accts.remove(&who);
        }
    }

    /// Rollback-marks a whole collection (see [`CommitSlot::unmark_acct`]).
    #[inline]
    pub(crate) fn unmark_coll(&mut self, addr: Address, index: usize) {
        if self.cache.is_none() {
            return;
        }
        let below_hwm = index < self.hwm;
        let dirt = self.dirty_colls.entry(addr).or_default();
        dirt.whole = unwind(dirt.whole, below_hwm);
        if dirt.is_clean() {
            self.dirty_colls.remove(&addr);
        }
    }

    /// Rollback-marks a single token: called when `revert_to` undoes the
    /// per-token journal entry at `index` that had mutated `token`.
    #[inline]
    pub(crate) fn unmark_coll_token(&mut self, addr: Address, token: TokenId, index: usize) {
        if self.cache.is_none() {
            return;
        }
        let below_hwm = index < self.hwm;
        let dirt = self.dirty_colls.entry(addr).or_default();
        let c = dirt.tokens.entry(token).or_insert(0);
        *c = unwind(*c, below_hwm);
        if *c == 0 {
            dirt.tokens.remove(&token);
        }
        if dirt.is_clean() {
            self.dirty_colls.remove(&addr);
        }
    }

    /// Informs the slot that the journal was truncated to `len` (by a
    /// rollback): marks issued after the truncation point are gone, so the
    /// high-water mark can only move down.
    #[inline]
    pub(crate) fn journal_truncated(&mut self, len: usize) {
        self.hwm = self.hwm.min(len);
    }

    /// Number of records currently marked dirty (telemetry/test hook). A
    /// collection counts once however many of its tokens are dirty; the
    /// metadata leaf counts as one record when the block number moved.
    pub(crate) fn dirty_records(&self) -> usize {
        self.dirty_accts.len() + self.dirty_colls.len() + usize::from(self.dirty_block != 0)
    }

    /// Resets the high-water mark for a fork: clones get a fresh, empty
    /// journal, so every future journal index is ≥ 0 and carries its own
    /// forward mark.
    pub(crate) fn reset_hwm_for_fork(&mut self) {
        self.hwm = 0;
    }

    /// Returns the current state root, building the cache on first use and
    /// otherwise flushing only the dirty records through the resident trees.
    ///
    /// `journal_len` is the owning state's current journal length; it
    /// becomes the new high-water mark for rollback-aware dirty tracking.
    pub(crate) fn root(
        &mut self,
        accounts: &AccountTable,
        collections: &CollTable,
        block: BlockNumber,
        journal_len: usize,
    ) -> Hash32 {
        let _span = parole_telemetry::span("state.root");
        parole_telemetry::counter("state.root_calls", 1);
        let keccak_before = parole_telemetry::local_counter("crypto.keccak256");
        let root = match self.cache.as_mut() {
            None => {
                parole_telemetry::counter("state.commit_builds", 1);
                let cache = CommitCache::build(accounts, collections, block);
                let root = cache.tree.root();
                self.cache = Some(Arc::new(cache));
                self.dirty_accts.clear();
                self.dirty_colls.clear();
                self.dirty_block = 0;
                self.hwm = journal_len;
                root
            }
            Some(shared) => {
                if self.dirty_accts.is_empty()
                    && self.dirty_colls.is_empty()
                    && self.dirty_block == 0
                {
                    parole_telemetry::counter("state.root_clean_hits", 1);
                    return shared.tree.root();
                }
                let dirty_records = self.dirty_accts.len()
                    + self.dirty_colls.len()
                    + usize::from(self.dirty_block != 0);
                parole_telemetry::observe("state.dirty_records", dirty_records as u64);
                // Copy-on-write: forks share the parent's clean cache until
                // one side actually flushes new dirt through it.
                let cache = Arc::make_mut(shared);
                let stats = cache.apply(
                    accounts,
                    collections,
                    block,
                    self.dirty_block != 0,
                    &self.dirty_accts,
                    &self.dirty_colls,
                );
                parole_telemetry::observe("state.leaves_flushed", stats.top_leaves as u64);
                parole_telemetry::observe("state.coll_leaves_flushed", stats.coll_leaves as u64);
                parole_telemetry::observe("state.token_leaves_flushed", stats.token_leaves as u64);
                self.dirty_accts.clear();
                self.dirty_colls.clear();
                self.dirty_block = 0;
                self.hwm = journal_len;
                cache.tree.root()
            }
        };
        // Both reads happen on this thread with no flush in between, so the
        // delta is exactly this call's digest count.
        let keccak_delta = parole_telemetry::local_counter("crypto.keccak256") - keccak_before;
        parole_telemetry::observe("state.keccak_per_root", keccak_delta);
        root
    }

    /// Ensures the cache is materialized and fully flushed (same contract as
    /// [`CommitSlot::root`]), then hands out a shared reference for proof
    /// generation.
    fn fresh_cache(
        &mut self,
        accounts: &AccountTable,
        collections: &CollTable,
        block: BlockNumber,
        journal_len: usize,
    ) -> &CommitCache {
        let _ = self.root(accounts, collections, block, journal_len);
        self.cache.as_ref().expect("root() materialized the cache")
    }

    /// Sibling path of `who`'s account leaf in the top-level tree, plus the
    /// committed root it verifies against. `None` when the account does not
    /// exist.
    pub(crate) fn prove_acct(
        &mut self,
        accounts: &AccountTable,
        collections: &CollTable,
        block: BlockNumber,
        journal_len: usize,
        who: Address,
    ) -> Option<MerkleProof> {
        let cache = self.fresh_cache(accounts, collections, block, journal_len);
        let pos = cache.acct_keys.binary_search(&who).ok()?;
        cache.tree.prove(1 + pos)
    }

    /// Sibling path of `addr`'s collection-header leaf in the top-level
    /// tree, plus the committed sub-tree root its preimage embeds. `None`
    /// when no collection is deployed at `addr`.
    pub(crate) fn prove_coll_header(
        &mut self,
        accounts: &AccountTable,
        collections: &CollTable,
        block: BlockNumber,
        journal_len: usize,
        addr: Address,
    ) -> Option<(Hash32, MerkleProof)> {
        let cache = self.fresh_cache(accounts, collections, block, journal_len);
        let pos = cache.coll_keys.binary_search(&addr).ok()?;
        let sub_root = cache.coll_subs[pos].root();
        let path = cache.tree.prove(1 + cache.acct_keys.len() + pos)?;
        Some((sub_root, path))
    }

    /// The two sibling paths of a token-inclusion proof: the token leaf's
    /// path inside its collection's sub-tree, and the collection header
    /// leaf's path in the top-level tree. `None` when the collection or the
    /// token does not exist.
    pub(crate) fn prove_token(
        &mut self,
        accounts: &AccountTable,
        collections: &CollTable,
        block: BlockNumber,
        journal_len: usize,
        addr: Address,
        token: TokenId,
    ) -> Option<(MerkleProof, MerkleProof)> {
        let cache = self.fresh_cache(accounts, collections, block, journal_len);
        let pos = cache.coll_keys.binary_search(&addr).ok()?;
        let sub = &cache.coll_subs[pos];
        let token_pos = sub.tokens.binary_search(&token).ok()?;
        let token_path = sub.tree.prove(token_pos)?;
        let header_path = cache.tree.prove(1 + cache.acct_keys.len() + pos)?;
        Some((token_path, header_path))
    }

    /// Test-only sabotage: tampers with one cached top-level *record* leaf
    /// (the first account — index 0 is the metadata leaf, which no record
    /// mutation would ever repair) *without* marking it dirty, emulating a
    /// cache whose invalidation hooks missed a mutation. Returns `false`
    /// when there is no materialized account leaf to corrupt.
    pub(crate) fn corrupt_for_tests(&mut self) -> bool {
        match self.cache.as_mut() {
            Some(shared) if !shared.acct_keys.is_empty() => {
                Arc::make_mut(shared)
                    .tree
                    .update(1, keccak256(b"deliberately stale leaf"));
                true
            }
            _ => false,
        }
    }

    /// Test-only sabotage one level down: tampers with one **token leaf**
    /// inside the first non-empty collection sub-tree and propagates the
    /// corrupted sub-root through the collection header into the top-level
    /// tree — without marking anything dirty. Emulates a sub-tree whose
    /// token-granular invalidation hooks missed a mutation; the served root
    /// is immediately wrong and only the independent naive rebuild (the
    /// audit differential oracle's reference side) can tell. Returns
    /// `false` when no collection has a materialized token leaf.
    pub(crate) fn corrupt_subtree_for_tests(&mut self, collections: &CollTable) -> bool {
        let Some(shared) = self.cache.as_mut() else {
            return false;
        };
        let cache = Arc::make_mut(shared);
        let offset = 1 + cache.acct_keys.len();
        for pos in 0..cache.coll_subs.len() {
            let addr = cache.coll_keys[pos];
            let Some(coll) = collections.get(&addr) else {
                continue;
            };
            let sub = Arc::make_mut(&mut cache.coll_subs[pos]);
            if sub.tree.is_empty() {
                continue;
            }
            sub.tree
                .update(0, keccak256(b"deliberately stale token leaf"));
            cache.tree.update(
                offset + pos,
                keccak256(&coll_preimage(addr, coll, sub.root())),
            );
            return true;
        }
        false
    }
}
