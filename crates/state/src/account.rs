//! Per-account L2 state.

use parole_primitives::{TxNonce, Wei};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The state of a single L2 account: its `t^L2` token balance and nonce.
///
/// The balance is the "non-volatile part" of a user's holdings in the
/// paper's terminology — unlike NFT holdings it does not revalue when the
/// bonding curve moves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AccountState {
    /// Spendable L2 token balance.
    pub balance: Wei,
    /// Next expected transaction nonce.
    pub nonce: TxNonce,
}

impl AccountState {
    /// A fresh account holding `balance`.
    pub fn with_balance(balance: Wei) -> Self {
        AccountState {
            balance,
            nonce: TxNonce::default(),
        }
    }

    /// Serializes the account into a deterministic byte string for state-root
    /// hashing.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24);
        out.extend_from_slice(&self.balance.wei().to_be_bytes());
        out.extend_from_slice(&self.nonce.value().to_be_bytes());
        out
    }
}

impl fmt::Display for AccountState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "account(balance={}, {})", self.balance, self.nonce)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_is_injective_on_fields() {
        let a = AccountState::with_balance(Wei::from_eth(1));
        let mut b = a;
        b.nonce = b.nonce.next();
        assert_ne!(a.encode(), b.encode());
        let mut c = a;
        c.balance = Wei::from_eth(2);
        assert_ne!(a.encode(), c.encode());
    }

    #[test]
    fn default_is_empty_account() {
        let a = AccountState::default();
        assert!(a.balance.is_zero());
        assert_eq!(a.nonce.value(), 0);
    }
}
