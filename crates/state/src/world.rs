//! The complete L2 world state.

use crate::AccountState;
use parole_crypto::{keccak256, Hash32, MerkleTree};
use parole_nft::{Collection, CollectionConfig};
use parole_primitives::{Address, BlockNumber, PrimitiveError, Wei};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Errors raised by balance operations on the world state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateError {
    /// A debit exceeded the account's balance.
    InsufficientBalance {
        /// The account being debited.
        account: Address,
        /// The balance it actually held.
        held: Wei,
        /// The amount requested.
        requested: Wei,
    },
    /// A collection was deployed at an address that is already occupied.
    AddressOccupied(Address),
    /// The referenced collection does not exist.
    NoSuchCollection(Address),
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateError::InsufficientBalance { account, held, requested } => write!(
                f,
                "insufficient balance: {account} holds {held}, needs {requested}"
            ),
            StateError::AddressOccupied(a) => write!(f, "address {a} already occupied"),
            StateError::NoSuchCollection(a) => write!(f, "no collection deployed at {a}"),
        }
    }
}

impl std::error::Error for StateError {}

impl From<PrimitiveError> for StateError {
    fn from(_: PrimitiveError) -> Self {
        // The only primitive error that can escape balance arithmetic here is
        // underflow, which we surface with context at the call sites; this
        // impl exists for `?`-ergonomics in generic helpers.
        StateError::InsufficientBalance {
            account: Address::ZERO,
            held: Wei::ZERO,
            requested: Wei::ZERO,
        }
    }
}

/// The L2 chain's world state: accounts plus deployed NFT collections.
///
/// `L2State` is `Clone`; a clone is an independent speculative fork. See the
/// crate docs for how the attack machinery uses that.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct L2State {
    accounts: BTreeMap<Address, AccountState>,
    collections: BTreeMap<Address, Collection>,
    block: BlockNumber,
}

impl L2State {
    /// An empty world state at block 0.
    pub fn new() -> Self {
        L2State {
            accounts: BTreeMap::new(),
            collections: BTreeMap::new(),
            block: BlockNumber::default(),
        }
    }

    /// The current L2 block number.
    pub fn block(&self) -> BlockNumber {
        self.block
    }

    /// Advances the block number (called by the rollup when a batch seals).
    pub fn advance_block(&mut self) {
        self.block = self.block.next();
    }

    /// Spendable balance of `who` (zero for unknown accounts).
    pub fn balance_of(&self, who: Address) -> Wei {
        self.accounts.get(&who).map_or(Wei::ZERO, |a| a.balance)
    }

    /// Full account record of `who`, if it exists.
    pub fn account(&self, who: Address) -> Option<&AccountState> {
        self.accounts.get(&who)
    }

    /// Number of non-empty accounts.
    pub fn account_count(&self) -> usize {
        self.accounts.len()
    }

    /// Credits `amount` to `who`, creating the account if needed.
    pub fn credit(&mut self, who: Address, amount: Wei) {
        self.accounts.entry(who).or_default().balance += amount;
    }

    /// Debits `amount` from `who`.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::InsufficientBalance`] without mutating when the
    /// account cannot cover the amount — this is the enforcement point of the
    /// balance half of the paper's Eq. 1 and Eq. 3.
    pub fn debit(&mut self, who: Address, amount: Wei) -> Result<(), StateError> {
        let held = self.balance_of(who);
        if held < amount {
            return Err(StateError::InsufficientBalance {
                account: who,
                held,
                requested: amount,
            });
        }
        self.accounts.entry(who).or_default().balance -= amount;
        Ok(())
    }

    /// Moves `amount` from `from` to `to` atomically.
    ///
    /// # Errors
    ///
    /// Fails (leaving both accounts untouched) when `from` cannot cover the
    /// amount.
    pub fn transfer_balance(
        &mut self,
        from: Address,
        to: Address,
        amount: Wei,
    ) -> Result<(), StateError> {
        self.debit(from, amount)?;
        self.credit(to, amount);
        Ok(())
    }

    /// Bumps `who`'s nonce, creating the account if needed.
    pub fn bump_nonce(&mut self, who: Address) {
        let acct = self.accounts.entry(who).or_default();
        acct.nonce = acct.nonce.next();
    }

    /// Deploys a collection at a deterministic address derived from its
    /// configuration and the current collection count, returning the address.
    pub fn deploy_collection(&mut self, config: CollectionConfig) -> Address {
        let digest = keccak256(
            format!(
                "deploy:{}:{}:{}",
                config.name,
                config.max_supply,
                self.collections.len()
            )
            .as_bytes(),
        );
        let mut bytes = [0u8; 20];
        bytes.copy_from_slice(&digest.as_bytes()[12..]);
        let addr = Address::from_bytes(bytes);
        self.deploy_collection_at(addr, config)
            .expect("derived address cannot collide");
        addr
    }

    /// Deploys a collection at an explicit address.
    ///
    /// # Errors
    ///
    /// Fails when the address already hosts a collection.
    pub fn deploy_collection_at(
        &mut self,
        addr: Address,
        config: CollectionConfig,
    ) -> Result<(), StateError> {
        if self.collections.contains_key(&addr) {
            return Err(StateError::AddressOccupied(addr));
        }
        self.collections.insert(addr, Collection::new(config));
        Ok(())
    }

    /// The collection deployed at `addr`, if any.
    pub fn collection(&self, addr: Address) -> Option<&Collection> {
        self.collections.get(&addr)
    }

    /// Mutable access to the collection at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::NoSuchCollection`] when nothing is deployed
    /// there.
    pub fn collection_mut(&mut self, addr: Address) -> Result<&mut Collection, StateError> {
        self.collections
            .get_mut(&addr)
            .ok_or(StateError::NoSuchCollection(addr))
    }

    /// Iterates over `(address, collection)` pairs in address order.
    pub fn collections(&self) -> impl Iterator<Item = (Address, &Collection)> {
        self.collections.iter().map(|(&a, c)| (a, c))
    }

    /// The paper's "total balance" of a user: spendable L2 balance plus the
    /// market valuation of every NFT held across all collections
    /// (`L2 balance + Σ owned × price`).
    pub fn total_balance_of(&self, who: Address) -> Wei {
        let nft_value: Wei = self
            .collections
            .values()
            .map(|c| c.holdings_value(who))
            .sum();
        self.balance_of(who) + nft_value
    }

    /// Computes the Merkle state root committing to every account and every
    /// collection's ownership/supply state.
    ///
    /// Leaves are `keccak(domain ‖ key ‖ encoded-record)` in deterministic
    /// (BTreeMap) order, so two states with identical contents always produce
    /// identical roots — the property the fraud-proof game relies on.
    pub fn state_root(&self) -> Hash32 {
        let mut leaves = Vec::with_capacity(self.accounts.len() + self.collections.len());
        for (addr, acct) in &self.accounts {
            let mut buf = Vec::with_capacity(64);
            buf.extend_from_slice(b"acct");
            buf.extend_from_slice(addr.as_bytes());
            buf.extend_from_slice(&acct.encode());
            leaves.push(keccak256(&buf));
        }
        for (addr, coll) in &self.collections {
            let mut buf = Vec::with_capacity(64 + coll.active_supply() as usize * 28);
            buf.extend_from_slice(b"coll");
            buf.extend_from_slice(addr.as_bytes());
            buf.extend_from_slice(&coll.remaining_supply().to_be_bytes());
            for (token, owner) in coll.iter() {
                buf.extend_from_slice(&token.value().to_be_bytes());
                buf.extend_from_slice(owner.as_bytes());
            }
            leaves.push(keccak256(&buf));
        }
        MerkleTree::from_leaves(leaves).root()
    }

    /// Total L2 tokens in circulation (sum of all account balances) —
    /// conserved by everything except explicit credits/debits, which the
    /// conservation tests rely on.
    pub fn total_supply(&self) -> Wei {
        self.accounts.values().map(|a| a.balance).sum()
    }
}

impl Default for L2State {
    fn default() -> Self {
        L2State::new()
    }
}

impl fmt::Display for L2State {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "L2State({} accounts, {} collections, {})",
            self.accounts.len(),
            self.collections.len(),
            self.block
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parole_primitives::TokenId;

    fn addr(v: u64) -> Address {
        Address::from_low_u64(v)
    }

    #[test]
    fn credit_debit_roundtrip() {
        let mut s = L2State::new();
        s.credit(addr(1), Wei::from_eth(3));
        s.debit(addr(1), Wei::from_eth(1)).unwrap();
        assert_eq!(s.balance_of(addr(1)), Wei::from_eth(2));
    }

    #[test]
    fn debit_rejects_overdraft_without_mutation() {
        let mut s = L2State::new();
        s.credit(addr(1), Wei::from_eth(1));
        let err = s.debit(addr(1), Wei::from_eth(2)).unwrap_err();
        assert!(matches!(err, StateError::InsufficientBalance { .. }));
        assert_eq!(s.balance_of(addr(1)), Wei::from_eth(1));
    }

    #[test]
    fn transfer_balance_conserves_supply() {
        let mut s = L2State::new();
        s.credit(addr(1), Wei::from_eth(5));
        s.credit(addr(2), Wei::from_eth(1));
        let before = s.total_supply();
        s.transfer_balance(addr(1), addr(2), Wei::from_eth(2)).unwrap();
        assert_eq!(s.total_supply(), before);
        assert_eq!(s.balance_of(addr(2)), Wei::from_eth(3));
        // Failed transfer leaves everything alone.
        assert!(s.transfer_balance(addr(2), addr(1), Wei::from_eth(100)).is_err());
        assert_eq!(s.total_supply(), before);
    }

    #[test]
    fn deploy_and_lookup_collection() {
        let mut s = L2State::new();
        let pt = s.deploy_collection(CollectionConfig::parole_token());
        assert!(s.collection(pt).is_some());
        assert!(s.collection_mut(pt).is_ok());
        assert!(matches!(
            s.collection_mut(addr(99)),
            Err(StateError::NoSuchCollection(_))
        ));
        // Explicit redeploy at the same address fails.
        assert!(matches!(
            s.deploy_collection_at(pt, CollectionConfig::parole_token()),
            Err(StateError::AddressOccupied(_))
        ));
    }

    #[test]
    fn total_balance_includes_nft_valuation() {
        let mut s = L2State::new();
        let pt = s.deploy_collection(CollectionConfig::parole_token());
        s.credit(addr(1), Wei::from_milli_eth(1500));
        let coll = s.collection_mut(pt).unwrap();
        for i in 0..5 {
            let owner = if i < 2 { addr(1) } else { addr(9) };
            coll.mint(owner, TokenId::new(i)).unwrap();
        }
        // Case-study setup: 1.5 ETH + 2 PT at 0.4 = 2.3 ETH.
        assert_eq!(s.total_balance_of(addr(1)), Wei::from_milli_eth(2300));
    }

    #[test]
    fn state_root_deterministic_and_sensitive() {
        let mut a = L2State::new();
        a.credit(addr(1), Wei::from_eth(1));
        let pt = a.deploy_collection(CollectionConfig::parole_token());
        a.collection_mut(pt).unwrap().mint(addr(1), TokenId::new(0)).unwrap();

        let mut b = L2State::new();
        b.credit(addr(1), Wei::from_eth(1));
        let pt_b = b.deploy_collection(CollectionConfig::parole_token());
        b.collection_mut(pt_b).unwrap().mint(addr(1), TokenId::new(0)).unwrap();

        assert_eq!(a.state_root(), b.state_root());

        // Any divergence moves the root.
        b.credit(addr(2), Wei::from_gwei(1));
        assert_ne!(a.state_root(), b.state_root());
    }

    #[test]
    fn state_root_tracks_nft_ownership() {
        let mut s = L2State::new();
        let pt = s.deploy_collection(CollectionConfig::parole_token());
        s.collection_mut(pt).unwrap().mint(addr(1), TokenId::new(0)).unwrap();
        let before = s.state_root();
        s.collection_mut(pt)
            .unwrap()
            .transfer(addr(1), addr(2), TokenId::new(0))
            .unwrap();
        assert_ne!(s.state_root(), before);
    }

    #[test]
    fn clone_forks_are_independent() {
        let mut s = L2State::new();
        s.credit(addr(1), Wei::from_eth(1));
        let mut fork = s.clone();
        fork.debit(addr(1), Wei::from_eth(1)).unwrap();
        assert_eq!(s.balance_of(addr(1)), Wei::from_eth(1));
        assert_eq!(fork.balance_of(addr(1)), Wei::ZERO);
        assert_ne!(s.state_root(), fork.state_root());
    }

    #[test]
    fn nonce_and_block_progress() {
        let mut s = L2State::new();
        s.bump_nonce(addr(1));
        s.bump_nonce(addr(1));
        assert_eq!(s.account(addr(1)).unwrap().nonce.value(), 2);
        s.advance_block();
        assert_eq!(s.block().value(), 1);
    }

    #[test]
    fn empty_state_has_sentinel_root() {
        assert!(L2State::new().state_root().is_zero());
    }
}
