//! The complete L2 world state.

use crate::commit::CommitSlot;
use crate::journal::{Journal, JournalEntry, RecordKey};
use crate::tables::{AccountTable, CollTable};
use crate::{AccountState, Checkpoint};
use parole_crypto::{keccak256, Hash32, MerkleTree};
use parole_nft::{Collection, CollectionConfig, Erc721Event, NftError};
use parole_primitives::{
    storage_backend, Address, BlockNumber, PrimitiveError, StorageBackend, TokenId, Wei,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Mutex;

/// Errors raised by balance operations on the world state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateError {
    /// A debit exceeded the account's balance.
    InsufficientBalance {
        /// The account being debited.
        account: Address,
        /// The balance it actually held.
        held: Wei,
        /// The amount requested.
        requested: Wei,
    },
    /// A collection was deployed at an address that is already occupied.
    AddressOccupied(Address),
    /// The referenced collection does not exist.
    NoSuchCollection(Address),
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateError::InsufficientBalance {
                account,
                held,
                requested,
            } => write!(
                f,
                "insufficient balance: {account} holds {held}, needs {requested}"
            ),
            StateError::AddressOccupied(a) => write!(f, "address {a} already occupied"),
            StateError::NoSuchCollection(a) => write!(f, "no collection deployed at {a}"),
        }
    }
}

impl std::error::Error for StateError {}

impl From<PrimitiveError> for StateError {
    fn from(_: PrimitiveError) -> Self {
        // The only primitive error that can escape balance arithmetic here is
        // underflow, which we surface with context at the call sites; this
        // impl exists for `?`-ergonomics in generic helpers.
        StateError::InsufficientBalance {
            account: Address::ZERO,
            held: Wei::ZERO,
            requested: Wei::ZERO,
        }
    }
}

/// The L2 chain's world state: accounts plus deployed NFT collections.
///
/// `L2State` is `Clone`; a clone is an independent speculative fork. For the
/// reorder-search hot path there is a much cheaper forking mechanism: switch
/// on [`L2State::begin_recording`] and use [`L2State::checkpoint`] /
/// [`L2State::revert_to`] to roll mutations back in place instead of cloning
/// the whole world per candidate. See the crate docs for how the attack
/// machinery uses both.
#[derive(Debug, Serialize, Deserialize)]
pub struct L2State {
    accounts: AccountTable,
    collections: CollTable,
    block: BlockNumber,
    /// Undo log for in-place speculative execution. Deliberately excluded
    /// from serialization, equality and clones: checkpoints index *this*
    /// state's mutation history and are meaningless anywhere else.
    #[serde(skip)]
    journal: Journal,
    /// Memoized state commitment plus dirty sets (see `crate::commit`).
    /// Excluded from serialization and equality — it is derived state, and
    /// `state_root()` rebuilds it on demand. Clones *do* carry it: the tree
    /// sits behind an `Arc`, so forking shares the parent's clean leaf cache
    /// copy-on-write. Interior mutability (a mutex, never contended on the
    /// single-owner hot path) lets `state_root(&self)` flush lazily.
    #[serde(skip)]
    commit: Mutex<CommitSlot>,
    /// Whether reads are being recorded into `reads`. A plain field (not
    /// inside the mutex) so the off state costs readers one branch; only
    /// `&mut self` methods flip it. Not serialized, not carried by clones.
    #[serde(skip)]
    read_tracking: bool,
    /// Record keys read since tracking began — the parallel scheduler's
    /// read set. Behind a mutex because readers take `&self` (the state must
    /// stay `Sync` for the fleet's shared-base parallel sweeps); like the
    /// journal it is per-state scratch: excluded from serialization,
    /// equality and clones, and cleared by [`L2State::revert_to`].
    #[serde(skip)]
    reads: Mutex<Vec<RecordKey>>,
}

impl Clone for L2State {
    fn clone(&self) -> Self {
        let mut slot = self.commit_slot().clone();
        // The fork starts with a fresh, empty journal: its undo indices
        // restart at 0, so the rollback high-water mark must too.
        slot.reset_hwm_for_fork();
        L2State {
            accounts: self.accounts.clone(),
            collections: self.collections.clone(),
            block: self.block,
            journal: Journal::default(),
            commit: Mutex::new(slot),
            read_tracking: false,
            reads: Mutex::new(Vec::new()),
        }
    }
}

impl PartialEq for L2State {
    fn eq(&self, other: &Self) -> bool {
        self.accounts == other.accounts
            && self.collections == other.collections
            && self.block == other.block
    }
}

impl L2State {
    /// An empty world state at block 0, on the process-default storage
    /// backend ([`parole_primitives::storage_backend`]).
    pub fn new() -> Self {
        Self::with_backend(storage_backend())
    }

    /// An empty world state at block 0 on an explicit storage backend —
    /// used by benchmarks and differential tests that A/B the flat-arena
    /// and `BTreeMap` layouts in a single process. Collections deployed
    /// through this state inherit its backend.
    pub fn with_backend(backend: StorageBackend) -> Self {
        L2State {
            accounts: AccountTable::new(backend),
            collections: CollTable::new(backend),
            block: BlockNumber::default(),
            journal: Journal::default(),
            commit: Mutex::new(CommitSlot::default()),
            read_tracking: false,
            reads: Mutex::new(Vec::new()),
        }
    }

    /// Which storage backend this state's hot tables use.
    pub fn backend(&self) -> StorageBackend {
        self.accounts.backend()
    }

    /// Locks the commitment slot (the mutex is never contended on the
    /// single-owner hot path; a poisoned lock only means a panic unwound
    /// mid-flush, and the slot is still structurally valid).
    fn commit_slot(&self) -> std::sync::MutexGuard<'_, CommitSlot> {
        self.commit.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// An independent speculative fork of this state.
    ///
    /// Identical to `clone()`, named for the hot path: the fork shares the
    /// parent's clean commitment cache copy-on-write, so the fork's first
    /// `state_root()` after executing a window re-hashes only the records
    /// the window touched instead of the whole world.
    pub fn fork(&self) -> L2State {
        self.clone()
    }

    /// Switches on undo-log journaling: every subsequent mutation records
    /// enough to be rolled back via [`L2State::revert_to`].
    ///
    /// Recording is off by default (zero overhead for states that never
    /// speculate) and is not carried across clones.
    pub fn begin_recording(&mut self) {
        self.journal.recording = true;
    }

    /// Whether mutations are currently journaled.
    pub fn is_recording(&self) -> bool {
        self.journal.recording
    }

    /// Switches on read-set recording: every subsequent record read (account
    /// lookups, collection-header reads, token constraint checks) adds its
    /// [`RecordKey`] to the read set until [`L2State::end_read_tracking`].
    ///
    /// Off by default (readers pay a single predictable branch) and not
    /// carried across clones. The read set complements the undo log's
    /// write tracking: together they give the parallel block executor sound
    /// read/write conflict sets per speculative transaction.
    pub fn begin_read_tracking(&mut self) {
        self.read_tracking = true;
        self.reads
            .get_mut()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
    }

    /// Whether reads are currently recorded.
    pub fn is_read_tracking(&self) -> bool {
        self.read_tracking
    }

    /// Drains and returns the record keys read since tracking began (or
    /// since the last drain). Tracking stays on.
    ///
    /// Reads are recorded append-only (a push per read, no per-read tree
    /// insertion on the hot path) and deduplicated here, at the single
    /// point the scheduler consumes them.
    pub fn take_read_set(&mut self) -> BTreeSet<RecordKey> {
        self.reads
            .get_mut()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
            .collect()
    }

    /// Switches read recording off and discards the pending read set.
    pub fn end_read_tracking(&mut self) {
        self.read_tracking = false;
        self.reads
            .get_mut()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
    }

    /// Records one read key when tracking is armed.
    #[inline]
    fn record_read(&self, key: RecordKey) {
        if self.read_tracking {
            self.reads
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(key);
        }
    }

    /// The record keys *mutated* since `cp`, derived from the undo log —
    /// the parallel scheduler's write set. Requires recording to have been
    /// on since before `cp` (otherwise mutations are simply absent).
    ///
    /// Per-token operations yield token-granular keys; supply movement from
    /// mints/burns is not visible in the undo entry itself, so callers that
    /// need header precision add `RecordKey::Coll` from the operation kind
    /// (the OVM scheduler does). Raw `collection_mut` snapshots and fresh
    /// deployments yield the wildcard `CollAll` key, which
    /// [`crate::key_sets_conflict`] treats as overlapping the header and
    /// every token of that collection.
    pub fn touched_since(&self, cp: Checkpoint) -> BTreeSet<RecordKey> {
        let mut keys = BTreeSet::new();
        for entry in &self.journal.entries[cp.0.min(self.journal.entries.len())..] {
            match entry {
                JournalEntry::Account { who, .. } => {
                    keys.insert(RecordKey::Acct(*who));
                }
                JournalEntry::Block { .. } => {}
                JournalEntry::CollectionDeployed { addr }
                | JournalEntry::CollectionSnapshot { addr, .. } => {
                    keys.insert(RecordKey::CollAll(*addr));
                }
                JournalEntry::TokenOp { addr, undo } => {
                    keys.insert(RecordKey::Token(*addr, undo.token()));
                }
                JournalEntry::OperatorOp { addr, undo } => {
                    keys.insert(RecordKey::Oper(*addr, undo.owner()));
                }
            }
        }
        keys
    }

    /// Marks the current point in the undo log.
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint(self.journal.entries.len())
    }

    /// Rolls back every mutation journaled after `cp`, newest first,
    /// restoring the exact state that existed when the checkpoint was
    /// taken. Checkpoints taken after `cp` are invalidated.
    ///
    /// Reverting to a checkpoint from a different state (or one already
    /// reverted past) is a logic error; it either panics or silently
    /// reconstructs garbage.
    pub fn revert_to(&mut self, cp: Checkpoint) {
        let depth = self.journal.entries.len().saturating_sub(cp.0);
        if depth > 0 {
            parole_telemetry::counter("state.reverts", 1);
            parole_telemetry::observe("state.revert_depth", depth as u64);
        }
        while self.journal.entries.len() > cp.0 {
            // A rollback is a mutation as far as the commitment cache is
            // concerned — but an *inverse* one: undoing an entry journaled
            // after the last flush cancels that entry's dirty mark, and a
            // record whose marks all cancel is restored to its committed
            // value and needs no re-hash (see `CommitSlot`).
            let index = self.journal.entries.len() - 1;
            match self.journal.entries.pop().expect("length checked") {
                JournalEntry::Account { who, prev } => {
                    Self::slot_mut(&mut self.commit).unmark_acct(who, index);
                    match prev {
                        Some(acct) => {
                            self.accounts.insert(who, acct);
                        }
                        None => {
                            self.accounts.remove(&who);
                        }
                    }
                }
                JournalEntry::Block { prev } => {
                    Self::slot_mut(&mut self.commit).unmark_block(index);
                    self.block = prev;
                }
                JournalEntry::CollectionDeployed { addr } => {
                    Self::slot_mut(&mut self.commit).unmark_coll(addr, index);
                    self.collections.remove(&addr);
                }
                JournalEntry::TokenOp { addr, undo } => {
                    Self::slot_mut(&mut self.commit).unmark_coll_token(addr, undo.token(), index);
                    self.collections
                        .get_mut(&addr)
                        .expect("journaled collection exists")
                        .apply_undo(undo);
                }
                JournalEntry::OperatorOp { addr, undo } => {
                    Self::slot_mut(&mut self.commit).unmark_coll_header(addr, index);
                    self.collections
                        .get_mut(&addr)
                        .expect("journaled collection exists")
                        .apply_operator_undo(undo);
                }
                JournalEntry::CollectionSnapshot { addr, prev } => {
                    Self::slot_mut(&mut self.commit).unmark_coll(addr, index);
                    self.collections.insert(addr, *prev);
                }
            }
        }
        Self::slot_mut(&mut self.commit).journal_truncated(cp.0);
        // A rollback ends the speculation that produced the pending reads;
        // a stale read set must not leak into the next speculative run.
        self.reads
            .get_mut()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
    }

    /// Commitment-slot access that borrows only the `commit` field, so call
    /// sites holding disjoint borrows (e.g. a `&mut Collection`) can still
    /// mark dirt.
    #[inline]
    fn slot_mut(commit: &mut Mutex<CommitSlot>) -> &mut CommitSlot {
        commit.get_mut().unwrap_or_else(|e| e.into_inner())
    }

    /// Journals the full prior record of `who` (cheap: `AccountState` is
    /// `Copy`) if recording is on, and marks the account dirty for the
    /// commitment cache. Must be called before the mutation.
    #[inline]
    fn journal_account(&mut self, who: Address) {
        Self::slot_mut(&mut self.commit).mark_acct(who);
        if self.journal.recording {
            self.journal.entries.push(JournalEntry::Account {
                who,
                prev: self.accounts.get(&who).copied(),
            });
        }
    }

    /// The current L2 block number.
    pub fn block(&self) -> BlockNumber {
        self.block
    }

    /// Advances the block number (called by the rollup when a batch seals).
    ///
    /// The block number is committed state — the metadata leaf of the state
    /// root covers it — so this dirties the commitment like any other
    /// mutation.
    pub fn advance_block(&mut self) {
        Self::slot_mut(&mut self.commit).mark_block();
        if self.journal.recording {
            self.journal
                .entries
                .push(JournalEntry::Block { prev: self.block });
        }
        self.block = self.block.next();
    }

    /// Spendable balance of `who` (zero for unknown accounts).
    pub fn balance_of(&self, who: Address) -> Wei {
        self.record_read(RecordKey::Acct(who));
        self.accounts.get(&who).map_or(Wei::ZERO, |a| a.balance)
    }

    /// Full account record of `who`, if it exists.
    pub fn account(&self, who: Address) -> Option<&AccountState> {
        self.record_read(RecordKey::Acct(who));
        self.accounts.get(&who)
    }

    /// Number of non-empty accounts.
    pub fn account_count(&self) -> usize {
        self.accounts.len()
    }

    /// Credits `amount` to `who`, creating the account if needed.
    pub fn credit(&mut self, who: Address, amount: Wei) {
        self.journal_account(who);
        self.accounts.or_default_mut(who).balance += amount;
    }

    /// Debits `amount` from `who`.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::InsufficientBalance`] without mutating when the
    /// account cannot cover the amount — this is the enforcement point of the
    /// balance half of the paper's Eq. 1 and Eq. 3.
    pub fn debit(&mut self, who: Address, amount: Wei) -> Result<(), StateError> {
        let held = self.balance_of(who);
        if held < amount {
            return Err(StateError::InsufficientBalance {
                account: who,
                held,
                requested: amount,
            });
        }
        self.journal_account(who);
        self.accounts.or_default_mut(who).balance -= amount;
        Ok(())
    }

    /// Moves `amount` from `from` to `to` atomically.
    ///
    /// # Errors
    ///
    /// Fails (leaving both accounts untouched) when `from` cannot cover the
    /// amount.
    pub fn transfer_balance(
        &mut self,
        from: Address,
        to: Address,
        amount: Wei,
    ) -> Result<(), StateError> {
        self.debit(from, amount)?;
        self.credit(to, amount);
        Ok(())
    }

    /// Bumps `who`'s nonce, creating the account if needed.
    pub fn bump_nonce(&mut self, who: Address) {
        self.journal_account(who);
        let acct = self.accounts.or_default_mut(who);
        acct.nonce = acct.nonce.next();
    }

    /// Deploys a collection at a deterministic address derived from its
    /// configuration and the current collection count, returning the address.
    pub fn deploy_collection(&mut self, config: CollectionConfig) -> Address {
        let digest = keccak256(
            format!(
                "deploy:{}:{}:{}",
                config.name,
                config.max_supply,
                self.collections.len()
            )
            .as_bytes(),
        );
        let mut bytes = [0u8; 20];
        bytes.copy_from_slice(&digest.as_bytes()[12..]);
        let addr = Address::from_bytes(bytes);
        self.deploy_collection_at(addr, config)
            .expect("derived address cannot collide");
        addr
    }

    /// Deploys a collection at an explicit address.
    ///
    /// # Errors
    ///
    /// Fails when the address already hosts a collection.
    pub fn deploy_collection_at(
        &mut self,
        addr: Address,
        config: CollectionConfig,
    ) -> Result<(), StateError> {
        if self.collections.contains_key(&addr) {
            return Err(StateError::AddressOccupied(addr));
        }
        Self::slot_mut(&mut self.commit).mark_coll(addr);
        if self.journal.recording {
            self.journal
                .entries
                .push(JournalEntry::CollectionDeployed { addr });
        }
        self.collections.insert(
            addr,
            Collection::with_backend(config, self.collections.backend()),
        );
        Ok(())
    }

    /// The collection deployed at `addr`, if any.
    ///
    /// While read tracking is armed, this records the *whole-collection*
    /// key — the returned reference allows arbitrary reads, so anything
    /// finer would be unsound. Conflict-sensitive callers (the OVM) use the
    /// granular readers below instead.
    pub fn collection(&self, addr: Address) -> Option<&Collection> {
        self.record_read(RecordKey::CollAll(addr));
        self.collections.get(&addr)
    }

    /// The bonding-curve price of the collection at `addr`, recording a
    /// header-granular read: the price is a pure function of remaining
    /// supply, so it conflicts with mints/burns but not with transfers or
    /// approvals.
    pub fn collection_price(&self, addr: Address) -> Option<Wei> {
        self.record_read(RecordKey::Coll(addr));
        self.collections.get(&addr).map(|c| c.price())
    }

    /// The creator configured for the collection at `addr`. The config is
    /// immutable after deployment, but existence of the collection is not —
    /// a header-granular read is recorded.
    pub fn collection_creator(&self, addr: Address) -> Option<Address> {
        self.record_read(RecordKey::Coll(addr));
        self.collections.get(&addr).map(|c| c.config().creator)
    }

    /// [`Collection::can_mint`] through the state, recording the reads a
    /// mint constraint check performs: the collection header (supply for
    /// the sold-out check) and the minted token's leaf.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::NoSuchCollection`] when nothing is deployed at
    /// `collection`; the inner result carries the contract-level verdict.
    pub fn nft_can_mint(
        &self,
        collection: Address,
        token: TokenId,
    ) -> Result<Result<(), NftError>, StateError> {
        self.record_read(RecordKey::Coll(collection));
        self.record_read(RecordKey::Token(collection, token));
        self.collections
            .get(&collection)
            .map(|c| c.can_mint(token))
            .ok_or(StateError::NoSuchCollection(collection))
    }

    /// [`Collection::can_transfer`] through the state, recording only the
    /// token's leaf: ownership checks do not read the supply counters.
    /// Error structure as [`L2State::nft_can_mint`].
    ///
    /// # Errors
    ///
    /// Returns [`StateError::NoSuchCollection`] when nothing is deployed at
    /// `collection`.
    pub fn nft_can_transfer(
        &self,
        collection: Address,
        from: Address,
        to: Address,
        token: TokenId,
    ) -> Result<Result<(), NftError>, StateError> {
        self.record_read(RecordKey::Token(collection, token));
        self.collections
            .get(&collection)
            .map(|c| c.can_transfer(from, to, token))
            .ok_or(StateError::NoSuchCollection(collection))
    }

    /// [`Collection::can_approve`] through the state, recording only the
    /// token's leaf (ownership gates approval; supply counters are not
    /// consulted). Error structure as [`L2State::nft_can_mint`].
    ///
    /// # Errors
    ///
    /// Returns [`StateError::NoSuchCollection`] when nothing is deployed at
    /// `collection`.
    pub fn nft_can_approve(
        &self,
        collection: Address,
        owner: Address,
        token: TokenId,
    ) -> Result<Result<(), NftError>, StateError> {
        self.record_read(RecordKey::Token(collection, token));
        self.collections
            .get(&collection)
            .map(|c| c.can_approve(owner, token))
            .ok_or(StateError::NoSuchCollection(collection))
    }

    /// [`Collection::can_burn`] through the state, recording only the
    /// token's leaf. Error structure as [`L2State::nft_can_mint`].
    ///
    /// # Errors
    ///
    /// Returns [`StateError::NoSuchCollection`] when nothing is deployed at
    /// `collection`.
    pub fn nft_can_burn(
        &self,
        collection: Address,
        owner: Address,
        token: TokenId,
    ) -> Result<Result<(), NftError>, StateError> {
        self.record_read(RecordKey::Token(collection, token));
        self.collections
            .get(&collection)
            .map(|c| c.can_burn(owner, token))
            .ok_or(StateError::NoSuchCollection(collection))
    }

    /// Mutable access to the collection at `addr`.
    ///
    /// While recording, this journals a snapshot of the *entire* collection
    /// (the caller can mutate arbitrarily through the returned reference).
    /// Hot paths should prefer [`L2State::nft_mint`] /
    /// [`L2State::nft_transfer`] / [`L2State::nft_burn`], which journal a
    /// small per-token undo record instead.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::NoSuchCollection`] when nothing is deployed
    /// there.
    pub fn collection_mut(&mut self, addr: Address) -> Result<&mut Collection, StateError> {
        if self.collections.contains_key(&addr) {
            // Conservatively dirty: the caller can mutate arbitrarily
            // through the returned reference.
            Self::slot_mut(&mut self.commit).mark_coll(addr);
        }
        if self.journal.recording {
            let prev = self
                .collections
                .get(&addr)
                .ok_or(StateError::NoSuchCollection(addr))?
                .clone();
            self.journal.entries.push(JournalEntry::CollectionSnapshot {
                addr,
                prev: Box::new(prev),
            });
        }
        self.collections
            .get_mut(&addr)
            .ok_or(StateError::NoSuchCollection(addr))
    }

    /// Mints `token` to `to` on the collection at `collection`, journaling a
    /// cheap per-token undo record when recording.
    ///
    /// The outer `Result` reports state-level failure (no such collection);
    /// the inner one the contract-level constraints of [`Collection::mint`].
    ///
    /// # Errors
    ///
    /// Returns [`StateError::NoSuchCollection`] when nothing is deployed at
    /// `collection`.
    pub fn nft_mint(
        &mut self,
        collection: Address,
        to: Address,
        token: TokenId,
    ) -> Result<Result<(), NftError>, StateError> {
        let coll = self
            .collections
            .get_mut(&collection)
            .ok_or(StateError::NoSuchCollection(collection))?;
        let r = coll.mint_undoable(to, token);
        Ok(r.map(|undo| {
            Self::slot_mut(&mut self.commit).mark_coll_token(collection, token);
            if self.journal.recording {
                self.journal.entries.push(JournalEntry::TokenOp {
                    addr: collection,
                    undo,
                });
            }
        }))
    }

    /// Transfers `token` from `from` to `to`, journaling a cheap per-token
    /// undo record when recording. Error structure as [`L2State::nft_mint`].
    ///
    /// # Errors
    ///
    /// Returns [`StateError::NoSuchCollection`] when nothing is deployed at
    /// `collection`.
    pub fn nft_transfer(
        &mut self,
        collection: Address,
        from: Address,
        to: Address,
        token: TokenId,
    ) -> Result<Result<(), NftError>, StateError> {
        let coll = self
            .collections
            .get_mut(&collection)
            .ok_or(StateError::NoSuchCollection(collection))?;
        let r = coll.transfer_undoable(from, to, token);
        Ok(r.map(|undo| {
            Self::slot_mut(&mut self.commit).mark_coll_token(collection, token);
            if self.journal.recording {
                self.journal.entries.push(JournalEntry::TokenOp {
                    addr: collection,
                    undo,
                });
            }
        }))
    }

    /// Burns `token`, journaling a cheap per-token undo record when
    /// recording. Error structure as [`L2State::nft_mint`].
    ///
    /// # Errors
    ///
    /// Returns [`StateError::NoSuchCollection`] when nothing is deployed at
    /// `collection`.
    pub fn nft_burn(
        &mut self,
        collection: Address,
        owner: Address,
        token: TokenId,
    ) -> Result<Result<(), NftError>, StateError> {
        let coll = self
            .collections
            .get_mut(&collection)
            .ok_or(StateError::NoSuchCollection(collection))?;
        Ok(coll.burn_undoable(owner, token).map(|undo| {
            Self::slot_mut(&mut self.commit).mark_coll_token(collection, token);
            if self.journal.recording {
                self.journal.entries.push(JournalEntry::TokenOp {
                    addr: collection,
                    undo,
                });
            }
        }))
    }

    /// Approves `operator` to move `token` (ERC-721 `approve`), journaling a
    /// cheap per-token undo record when recording. Error structure as
    /// [`L2State::nft_mint`].
    ///
    /// Approvals are committed state — they gate `transferFrom`, and the
    /// token's leaf in the collection sub-tree covers the approved operator
    /// — so this marks the token dirty exactly like a transfer does.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::NoSuchCollection`] when nothing is deployed at
    /// `collection`.
    pub fn nft_approve(
        &mut self,
        collection: Address,
        owner: Address,
        operator: Address,
        token: TokenId,
    ) -> Result<Result<(), NftError>, StateError> {
        let coll = self
            .collections
            .get_mut(&collection)
            .ok_or(StateError::NoSuchCollection(collection))?;
        Ok(coll.approve_undoable(owner, operator, token).map(|undo| {
            Self::slot_mut(&mut self.commit).mark_coll_token(collection, token);
            if self.journal.recording {
                self.journal.entries.push(JournalEntry::TokenOp {
                    addr: collection,
                    undo,
                });
            }
        }))
    }

    /// Grants or revokes a blanket operator approval (ERC-721
    /// `setApprovalForAll`), journaling a cheap operator undo record when
    /// recording. Error structure as [`L2State::nft_mint`].
    ///
    /// Operator approvals are committed state — they gate `transferFrom`
    /// and the collection-header leaf absorbs the sorted pair set — but
    /// they touch no token leaf, so this marks only the header dirty.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::NoSuchCollection`] when nothing is deployed at
    /// `collection`.
    pub fn nft_set_approval_for_all(
        &mut self,
        collection: Address,
        owner: Address,
        operator: Address,
        approved: bool,
    ) -> Result<Result<(), NftError>, StateError> {
        let coll = self
            .collections
            .get_mut(&collection)
            .ok_or(StateError::NoSuchCollection(collection))?;
        Ok(coll
            .set_approval_for_all_undoable(owner, operator, approved)
            .map(|undo| {
                Self::slot_mut(&mut self.commit).mark_coll_header(collection);
                if self.journal.recording {
                    self.journal.entries.push(JournalEntry::OperatorOp {
                        addr: collection,
                        undo,
                    });
                }
            }))
    }

    /// [`Collection::can_set_approval_for_all`] through the state, recording
    /// the owner's operator-record read. Error structure as
    /// [`L2State::nft_can_mint`].
    ///
    /// # Errors
    ///
    /// Returns [`StateError::NoSuchCollection`] when nothing is deployed at
    /// `collection`.
    pub fn nft_can_set_approval_for_all(
        &self,
        collection: Address,
        owner: Address,
        operator: Address,
    ) -> Result<Result<(), NftError>, StateError> {
        self.record_read(RecordKey::Oper(collection, owner));
        self.collections
            .get(&collection)
            .map(|c| c.can_set_approval_for_all(owner, operator))
            .ok_or(StateError::NoSuchCollection(collection))
    }

    /// [`Collection::is_approved_for_all`] through the state, recording the
    /// owner's operator-record read — disjoint from the header, so blanket
    /// approval checks do not serialize against price reads.
    pub fn nft_is_approved_for_all(
        &self,
        collection: Address,
        owner: Address,
        operator: Address,
    ) -> Option<bool> {
        self.record_read(RecordKey::Oper(collection, owner));
        self.collections
            .get(&collection)
            .map(|c| c.is_approved_for_all(owner, operator))
    }

    /// Current length of the collection's append-only event log.
    ///
    /// Receipt-log plumbing, not a state read: the OVM brackets a
    /// transaction's execution with this to delimit the slice of events that
    /// transaction emitted, and the mutations that append events already
    /// carry their own conflict keys — so no read is recorded.
    pub fn collection_events_len(&self, addr: Address) -> Option<usize> {
        self.collections.get(&addr).map(|c| c.events().len())
    }

    /// The events appended to the collection's log at or after index
    /// `start` (empty when `start` is past the end). Same receipt-log
    /// plumbing contract as [`L2State::collection_events_len`]: no read key
    /// is recorded.
    pub fn collection_events_since(&self, addr: Address, start: usize) -> Option<&[Erc721Event]> {
        self.collections
            .get(&addr)
            .map(|c| &c.events()[start.min(c.events().len())..])
    }

    /// Iterates over `(address, collection)` pairs in address order.
    pub fn collections(&self) -> impl Iterator<Item = (Address, &Collection)> {
        self.collections.iter_sorted()
    }

    /// The paper's "total balance" of a user: spendable L2 balance plus the
    /// market valuation of every NFT held across all collections
    /// (`L2 balance + Σ owned × price`).
    pub fn total_balance_of(&self, who: Address) -> Wei {
        let nft_value: Wei = self
            .collections
            .values_unordered()
            .map(|c| c.holdings_value(who))
            .sum();
        self.balance_of(who) + nft_value
    }

    /// The Merkle state root committing to the block number, every account
    /// and every collection's ownership/supply state.
    ///
    /// Leaves are `keccak(domain ‖ key ‖ length-prefixed record)` in
    /// deterministic (BTreeMap) order, so two states with identical contents
    /// always produce identical roots — the property the fraud-proof game
    /// relies on.
    ///
    /// This is the **incremental** path: the commitment tree is built once,
    /// kept resident, and repaired for exactly the records mutated since the
    /// previous call — O(dirty · log n) instead of O(total). The result is
    /// bit-identical to [`L2State::state_root_naive`], the from-scratch
    /// rebuild the audit differential oracle re-derives independently; the
    /// replay proptests in `tests/prop.rs` pin the equality down across
    /// mutations, forks and undo-log rollbacks.
    pub fn state_root(&self) -> Hash32 {
        self.commit_slot().root(
            &self.accounts,
            &self.collections,
            self.block,
            self.journal.entries.len(),
        )
    }

    /// Recomputes the state root from scratch: every record re-encoded and
    /// re-hashed, every collection sub-tree and the top-level tree rebuilt
    /// leaf-up, no cache consulted or touched.
    ///
    /// O(total world size) — this is the reference implementation that
    /// [`L2State::state_root`] must match bit for bit. The audit layer's
    /// differential oracle uses it as the independent side so a stale or
    /// corrupted commitment cache can never vouch for itself. To stay
    /// independent, the two-level preimage scheme is re-derived **inline**
    /// here — own byte layout, one-shot [`keccak256`], plain
    /// [`MerkleTree`] rebuilds — sharing nothing with `crate::commit`
    /// except the specification:
    ///
    /// - metadata leaf: `"meta" ‖ block number (8B BE)`;
    /// - token leaf: `"tokn" ‖ token (8B BE) ‖ owner (20B) ‖ approved
    ///   operator or zero (20B)`, in token-id order per collection;
    /// - collection leaf: `"coll" ‖ address ‖ remaining-supply ‖
    ///   active-supply ‖ approval-count ‖ operator-count ‖
    ///   keccak("oper" ‖ sorted (owner ‖ operator) pairs) ‖ sub-tree root`;
    /// - account leaf: `"acct" ‖ address ‖ len(encoding) ‖ encoding`;
    /// - top level: the metadata leaf, then all account leaves in address
    ///   order, then all collection leaves in address order.
    pub fn state_root_naive(&self) -> Hash32 {
        let mut leaves = Vec::with_capacity(1 + self.accounts.len() + self.collections.len());
        {
            let mut buf = Vec::with_capacity(12);
            buf.extend_from_slice(b"meta");
            buf.extend_from_slice(&self.block.value().to_be_bytes());
            leaves.push(keccak256(&buf));
        }
        for (addr, acct) in self.accounts.iter_sorted() {
            let encoded = acct.encode();
            let mut buf = Vec::with_capacity(28 + encoded.len());
            buf.extend_from_slice(b"acct");
            buf.extend_from_slice(addr.as_bytes());
            buf.extend_from_slice(&(encoded.len() as u32).to_be_bytes());
            buf.extend_from_slice(&encoded);
            leaves.push(keccak256(&buf));
        }
        for (addr, coll) in self.collections.iter_sorted() {
            let token_leaves: Vec<Hash32> = coll
                .iter()
                .map(|(token, owner)| {
                    let approved = coll.get_approved(token).unwrap_or(Address::ZERO);
                    let mut buf = Vec::with_capacity(52);
                    buf.extend_from_slice(b"tokn");
                    buf.extend_from_slice(&token.value().to_be_bytes());
                    buf.extend_from_slice(owner.as_bytes());
                    buf.extend_from_slice(approved.as_bytes());
                    keccak256(&buf)
                })
                .collect();
            let sub_root = MerkleTree::from_leaves(token_leaves).root();
            let oper_digest = {
                let mut buf = Vec::with_capacity(4 + 40 * coll.operator_approval_count() as usize);
                buf.extend_from_slice(b"oper");
                for (owner, operator) in coll.operator_pairs() {
                    buf.extend_from_slice(owner.as_bytes());
                    buf.extend_from_slice(operator.as_bytes());
                }
                keccak256(&buf)
            };
            let mut buf = Vec::with_capacity(120);
            buf.extend_from_slice(b"coll");
            buf.extend_from_slice(addr.as_bytes());
            buf.extend_from_slice(&coll.remaining_supply().to_be_bytes());
            buf.extend_from_slice(&coll.active_supply().to_be_bytes());
            buf.extend_from_slice(&coll.approval_count().to_be_bytes());
            buf.extend_from_slice(&coll.operator_approval_count().to_be_bytes());
            buf.extend_from_slice(oper_digest.as_bytes());
            buf.extend_from_slice(sub_root.as_bytes());
            leaves.push(keccak256(&buf));
        }
        MerkleTree::from_leaves(leaves).root()
    }

    /// Opens `who`'s account record against the current state root: the
    /// claimed balance/nonce plus the sibling path binding them to
    /// [`L2State::state_root`]. `None` when the account does not exist.
    ///
    /// Generation flushes the commitment cache if needed and then reads the
    /// resident tree levels — O(log n). Verification
    /// ([`AccountInclusionProof::verify`](crate::AccountInclusionProof::verify))
    /// needs only the bare root.
    pub fn prove_account(&self, who: Address) -> Option<crate::AccountInclusionProof> {
        let account = *self.accounts.get(&who)?;
        let path = self.commit_slot().prove_acct(
            &self.accounts,
            &self.collections,
            self.block,
            self.journal.entries.len(),
            who,
        )?;
        Some(crate::AccountInclusionProof {
            address: who,
            account,
            path,
        })
    }

    /// Opens the header of the collection at `collection` (supply counters
    /// plus committed sub-root) against the current state root. `None` when
    /// no collection is deployed there.
    pub fn prove_collection(&self, collection: Address) -> Option<crate::CollectionInclusionProof> {
        let coll = self.collections.get(&collection)?;
        let header = crate::CollectionHeader::of(coll);
        let (sub_root, path) = self.commit_slot().prove_coll_header(
            &self.accounts,
            &self.collections,
            self.block,
            self.journal.entries.len(),
            collection,
        )?;
        Some(crate::CollectionInclusionProof {
            collection,
            header,
            sub_root,
            path,
        })
    }

    /// Opens the token record `(collection, token)` — owner and approved
    /// operator — against the current state root, composing the token
    /// leaf's sub-tree path with the collection header's top-level path.
    /// `None` when the collection or the token does not exist.
    pub fn prove_token(
        &self,
        collection: Address,
        token: TokenId,
    ) -> Option<crate::TokenInclusionProof> {
        let coll = self.collections.get(&collection)?;
        let owner = coll.owner_of(token)?;
        let approved = coll.get_approved(token).unwrap_or(Address::ZERO);
        let header = crate::CollectionHeader::of(coll);
        let (token_path, header_path) = self.commit_slot().prove_token(
            &self.accounts,
            &self.collections,
            self.block,
            self.journal.entries.len(),
            collection,
            token,
        )?;
        Some(crate::TokenInclusionProof {
            collection,
            token,
            owner,
            approved,
            token_path,
            header,
            header_path,
        })
    }

    /// Opens whatever record `key` names against the current state root.
    /// Whole-collection and operator keys settle at header granularity (the
    /// header's sub-root commits to every token, and its operator digest to
    /// every blanket approval, of the collection). `None` when the record
    /// does not exist in this state — absence has no inclusion proof; the
    /// settlement protocol treats a missing opening as a divergence in
    /// itself.
    pub fn prove_record(&self, key: &RecordKey) -> Option<crate::RecordProof> {
        match *key {
            RecordKey::Acct(who) => self.prove_account(who).map(crate::RecordProof::Account),
            RecordKey::Coll(addr) | RecordKey::CollAll(addr) | RecordKey::Oper(addr, _) => self
                .prove_collection(addr)
                .map(crate::RecordProof::Collection),
            RecordKey::Token(addr, token) => {
                self.prove_token(addr, token).map(crate::RecordProof::Token)
            }
        }
    }

    /// Test-only sabotage hook for the audit mutation-smoke harness: forces
    /// the commitment cache to materialize, then tampers with one cached
    /// leaf *without* marking it dirty — emulating an invalidation bug.
    /// Returns `false` when the state has no leaf to corrupt.
    ///
    /// After this returns `true`, `state_root()` serves a stale root that
    /// [`L2State::state_root_naive`] (and hence the audit differential
    /// oracle) must flag. Never call outside tests.
    #[doc(hidden)]
    pub fn corrupt_commit_cache_for_tests(&mut self) -> bool {
        let _ = self.state_root();
        Self::slot_mut(&mut self.commit).corrupt_for_tests()
    }

    /// Test-only sabotage one level down: materializes the cache, then
    /// tampers with a **token leaf** inside a collection sub-tree and
    /// propagates the corrupted sub-root up through the collection header —
    /// without marking anything dirty. Emulates a token-granular
    /// invalidation hook missing a mutation. Returns `false` when no
    /// collection has an active token to corrupt. Never call outside tests.
    #[doc(hidden)]
    pub fn corrupt_commit_subtree_for_tests(&mut self) -> bool {
        let _ = self.state_root();
        let collections = &self.collections;
        Self::slot_mut(&mut self.commit).corrupt_subtree_for_tests(collections)
    }

    /// Number of records currently marked dirty in the commitment slot.
    /// Test/telemetry hook for asserting that rollbacks cancel dirty marks;
    /// not part of the stable API.
    #[doc(hidden)]
    pub fn dirty_record_count(&self) -> usize {
        self.commit_slot().dirty_records()
    }

    /// Total L2 tokens in circulation (sum of all account balances) —
    /// conserved by everything except explicit credits/debits, which the
    /// conservation tests rely on.
    pub fn total_supply(&self) -> Wei {
        self.accounts.values_unordered().map(|a| a.balance).sum()
    }
}

impl Default for L2State {
    fn default() -> Self {
        L2State::new()
    }
}

impl fmt::Display for L2State {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "L2State({} accounts, {} collections, {})",
            self.accounts.len(),
            self.collections.len(),
            self.block
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parole_primitives::TokenId;

    fn addr(v: u64) -> Address {
        Address::from_low_u64(v)
    }

    #[test]
    fn credit_debit_roundtrip() {
        let mut s = L2State::new();
        s.credit(addr(1), Wei::from_eth(3));
        s.debit(addr(1), Wei::from_eth(1)).unwrap();
        assert_eq!(s.balance_of(addr(1)), Wei::from_eth(2));
    }

    #[test]
    fn debit_rejects_overdraft_without_mutation() {
        let mut s = L2State::new();
        s.credit(addr(1), Wei::from_eth(1));
        let err = s.debit(addr(1), Wei::from_eth(2)).unwrap_err();
        assert!(matches!(err, StateError::InsufficientBalance { .. }));
        assert_eq!(s.balance_of(addr(1)), Wei::from_eth(1));
    }

    #[test]
    fn transfer_balance_conserves_supply() {
        let mut s = L2State::new();
        s.credit(addr(1), Wei::from_eth(5));
        s.credit(addr(2), Wei::from_eth(1));
        let before = s.total_supply();
        s.transfer_balance(addr(1), addr(2), Wei::from_eth(2))
            .unwrap();
        assert_eq!(s.total_supply(), before);
        assert_eq!(s.balance_of(addr(2)), Wei::from_eth(3));
        // Failed transfer leaves everything alone.
        assert!(s
            .transfer_balance(addr(2), addr(1), Wei::from_eth(100))
            .is_err());
        assert_eq!(s.total_supply(), before);
    }

    #[test]
    fn deploy_and_lookup_collection() {
        let mut s = L2State::new();
        let pt = s.deploy_collection(CollectionConfig::parole_token());
        assert!(s.collection(pt).is_some());
        assert!(s.collection_mut(pt).is_ok());
        assert!(matches!(
            s.collection_mut(addr(99)),
            Err(StateError::NoSuchCollection(_))
        ));
        // Explicit redeploy at the same address fails.
        assert!(matches!(
            s.deploy_collection_at(pt, CollectionConfig::parole_token()),
            Err(StateError::AddressOccupied(_))
        ));
    }

    #[test]
    fn total_balance_includes_nft_valuation() {
        let mut s = L2State::new();
        let pt = s.deploy_collection(CollectionConfig::parole_token());
        s.credit(addr(1), Wei::from_milli_eth(1500));
        let coll = s.collection_mut(pt).unwrap();
        for i in 0..5 {
            let owner = if i < 2 { addr(1) } else { addr(9) };
            coll.mint(owner, TokenId::new(i)).unwrap();
        }
        // Case-study setup: 1.5 ETH + 2 PT at 0.4 = 2.3 ETH.
        assert_eq!(s.total_balance_of(addr(1)), Wei::from_milli_eth(2300));
    }

    #[test]
    fn state_root_deterministic_and_sensitive() {
        let mut a = L2State::new();
        a.credit(addr(1), Wei::from_eth(1));
        let pt = a.deploy_collection(CollectionConfig::parole_token());
        a.collection_mut(pt)
            .unwrap()
            .mint(addr(1), TokenId::new(0))
            .unwrap();

        let mut b = L2State::new();
        b.credit(addr(1), Wei::from_eth(1));
        let pt_b = b.deploy_collection(CollectionConfig::parole_token());
        b.collection_mut(pt_b)
            .unwrap()
            .mint(addr(1), TokenId::new(0))
            .unwrap();

        assert_eq!(a.state_root(), b.state_root());

        // Any divergence moves the root.
        b.credit(addr(2), Wei::from_gwei(1));
        assert_ne!(a.state_root(), b.state_root());
    }

    #[test]
    fn state_root_tracks_nft_ownership() {
        let mut s = L2State::new();
        let pt = s.deploy_collection(CollectionConfig::parole_token());
        s.collection_mut(pt)
            .unwrap()
            .mint(addr(1), TokenId::new(0))
            .unwrap();
        let before = s.state_root();
        s.collection_mut(pt)
            .unwrap()
            .transfer(addr(1), addr(2), TokenId::new(0))
            .unwrap();
        assert_ne!(s.state_root(), before);
    }

    #[test]
    fn clone_forks_are_independent() {
        let mut s = L2State::new();
        s.credit(addr(1), Wei::from_eth(1));
        let mut fork = s.clone();
        fork.debit(addr(1), Wei::from_eth(1)).unwrap();
        assert_eq!(s.balance_of(addr(1)), Wei::from_eth(1));
        assert_eq!(fork.balance_of(addr(1)), Wei::ZERO);
        assert_ne!(s.state_root(), fork.state_root());
    }

    #[test]
    fn nonce_and_block_progress() {
        let mut s = L2State::new();
        s.bump_nonce(addr(1));
        s.bump_nonce(addr(1));
        assert_eq!(s.account(addr(1)).unwrap().nonce.value(), 2);
        s.advance_block();
        assert_eq!(s.block().value(), 1);
    }

    #[test]
    fn empty_state_root_commits_the_block_number() {
        // Even an empty world commits its block number through the metadata
        // leaf, so the root is non-zero and moves when the block advances.
        let mut s = L2State::new();
        let genesis = s.state_root();
        assert!(!genesis.is_zero());
        assert_eq!(genesis, s.state_root_naive());
        s.advance_block();
        assert_ne!(s.state_root(), genesis);
        assert_eq!(s.state_root(), s.state_root_naive());
    }

    #[test]
    fn advance_block_moves_and_revert_restores_the_root() {
        let (mut s, _) = journaled_fixture();
        let before = s.state_root();
        let cp = s.checkpoint();
        s.advance_block();
        assert_ne!(s.state_root(), before);
        s.revert_to(cp);
        assert_eq!(s.state_root(), before);
        assert_eq!(s.state_root(), s.state_root_naive());
    }

    /// A state with accounts, a collection and some minted tokens, used as
    /// the base for the journaling tests.
    fn journaled_fixture() -> (L2State, Address) {
        let mut s = L2State::new();
        s.credit(addr(1), Wei::from_eth(5));
        s.credit(addr(2), Wei::from_eth(1));
        let pt = s.deploy_collection(CollectionConfig::parole_token());
        {
            let coll = s.collection_mut(pt).unwrap();
            coll.mint(addr(1), TokenId::new(0)).unwrap();
            coll.mint(addr(2), TokenId::new(1)).unwrap();
        }
        s.begin_recording();
        (s, pt)
    }

    #[test]
    fn revert_restores_accounts_block_and_collections() {
        let (mut s, pt) = journaled_fixture();
        let baseline = s.clone();
        let cp = s.checkpoint();

        s.credit(addr(3), Wei::from_eth(2)); // fresh account
        s.debit(addr(1), Wei::from_eth(1)).unwrap();
        s.bump_nonce(addr(2));
        s.advance_block();
        s.nft_mint(pt, addr(3), TokenId::new(2)).unwrap().unwrap();
        s.nft_transfer(pt, addr(1), addr(2), TokenId::new(0))
            .unwrap()
            .unwrap();
        s.nft_burn(pt, addr(2), TokenId::new(1)).unwrap().unwrap();
        s.deploy_collection(CollectionConfig::limited_edition("X", 4, 100));
        assert_ne!(s, baseline);

        s.revert_to(cp);
        assert_eq!(s, baseline);
        assert_eq!(s.state_root(), baseline.state_root());
        // The fresh account is gone entirely, not just zeroed.
        assert!(s.account(addr(3)).is_none());
    }

    #[test]
    fn nested_checkpoints_revert_in_layers() {
        let (mut s, pt) = journaled_fixture();
        let cp0 = s.checkpoint();
        s.nft_mint(pt, addr(1), TokenId::new(5)).unwrap().unwrap();
        let mid = s.clone();
        let cp1 = s.checkpoint();
        s.nft_burn(pt, addr(1), TokenId::new(5)).unwrap().unwrap();
        s.nft_mint(pt, addr(2), TokenId::new(6)).unwrap().unwrap();

        s.revert_to(cp1);
        assert_eq!(s, mid);
        s.revert_to(cp0);
        assert!(s
            .collection(pt)
            .unwrap()
            .owner_of(TokenId::new(5))
            .is_none());
    }

    #[test]
    fn collection_mut_snapshot_fallback_reverts() {
        let (mut s, pt) = journaled_fixture();
        let baseline = s.clone();
        let cp = s.checkpoint();
        s.collection_mut(pt)
            .unwrap()
            .approve(addr(1), addr(9), TokenId::new(0))
            .unwrap();
        s.revert_to(cp);
        assert_eq!(s, baseline);
    }

    #[test]
    fn clone_does_not_inherit_recording() {
        let (s, _) = journaled_fixture();
        assert!(s.is_recording());
        let fork = s.clone();
        assert!(!fork.is_recording());
        // Equality ignores the journal entirely.
        assert_eq!(s, fork);
    }

    #[test]
    fn read_tracking_records_granular_keys() {
        let (mut s, pt) = journaled_fixture();
        s.begin_read_tracking();

        assert!(s.take_read_set().is_empty());
        let _ = s.balance_of(addr(1));
        let _ = s.collection_price(pt);
        let _ = s.nft_can_transfer(pt, addr(1), addr(2), TokenId::new(0));
        let reads = s.take_read_set();
        assert_eq!(
            reads.into_iter().collect::<Vec<_>>(),
            vec![
                RecordKey::Acct(addr(1)),
                RecordKey::Coll(pt),
                RecordKey::Token(pt, TokenId::new(0)),
            ]
        );

        // can_mint reads both the header (supply) and the token leaf.
        let _ = s.nft_can_mint(pt, TokenId::new(7));
        let reads = s.take_read_set();
        assert!(reads.contains(&RecordKey::Coll(pt)));
        assert!(reads.contains(&RecordKey::Token(pt, TokenId::new(7))));

        // After end_read_tracking: no recording.
        s.end_read_tracking();
        let _ = s.balance_of(addr(1));
        assert!(s.take_read_set().is_empty());
    }

    #[test]
    fn revert_clears_pending_reads_and_touched_tracks_writes() {
        let (mut s, pt) = journaled_fixture();
        s.begin_read_tracking();
        let cp = s.checkpoint();

        s.credit(addr(5), Wei::from_eth(1));
        s.nft_transfer(pt, addr(1), addr(2), TokenId::new(0))
            .unwrap()
            .unwrap();
        let _ = s.balance_of(addr(9));
        let writes = s.touched_since(cp);
        assert_eq!(
            writes.into_iter().collect::<Vec<_>>(),
            vec![
                RecordKey::Acct(addr(5)),
                RecordKey::Token(pt, TokenId::new(0)),
            ]
        );

        s.revert_to(cp);
        assert!(
            s.take_read_set().is_empty(),
            "revert discards pending reads"
        );
        assert!(s.touched_since(cp).is_empty());

        // Clones never inherit tracking.
        s.begin_read_tracking();
        let _ = s.balance_of(addr(1));
        let fork = s.clone();
        assert!(!fork.is_read_tracking());
    }

    #[test]
    fn failed_operations_leave_revert_exact() {
        let (mut s, pt) = journaled_fixture();
        let baseline = s.clone();
        let cp = s.checkpoint();
        // Contract-level failures mutate nothing and journal nothing.
        assert!(s.nft_mint(pt, addr(1), TokenId::new(0)).unwrap().is_err());
        assert!(s.nft_burn(pt, addr(1), TokenId::new(1)).unwrap().is_err());
        assert!(s.debit(addr(2), Wei::from_eth(50)).is_err());
        s.revert_to(cp);
        assert_eq!(s, baseline);
    }
}
