//! Property-based tests for the L2 world state: state-root determinism,
//! balance conservation and fork independence.

use parole_nft::CollectionConfig;
use parole_primitives::{Address, TokenId, Wei};
use parole_state::L2State;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Credit { user: u64, amount: u64 },
    Debit { user: u64, amount: u64 },
    Transfer { from: u64, to: u64, amount: u64 },
    Mint { user: u64, token: u64 },
    Burn { user: u64, token: u64 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u64..6, 1u64..10).prop_map(|(user, amount)| Op::Credit { user, amount }),
        (1u64..6, 1u64..10).prop_map(|(user, amount)| Op::Debit { user, amount }),
        (1u64..6, 1u64..6, 1u64..10).prop_map(|(from, to, amount)| Op::Transfer {
            from,
            to,
            amount
        }),
        (1u64..6, 0u64..8).prop_map(|(user, token)| Op::Mint { user, token }),
        (1u64..6, 0u64..8).prop_map(|(user, token)| Op::Burn { user, token }),
    ]
}

fn apply(state: &mut L2State, coll: Address, op: &Op) {
    let a = |v: u64| Address::from_low_u64(v);
    match *op {
        Op::Credit { user, amount } => state.credit(a(user), Wei::from_milli_eth(amount)),
        Op::Debit { user, amount } => {
            let _ = state.debit(a(user), Wei::from_milli_eth(amount));
        }
        Op::Transfer { from, to, amount } => {
            let _ = state.transfer_balance(a(from), a(to), Wei::from_milli_eth(amount));
        }
        Op::Mint { user, token } => {
            let _ = state.collection_mut(coll).and_then(|c| {
                c.mint(a(user), TokenId::new(token))
                    .map_err(|_| parole_state::StateError::NoSuchCollection(coll))
            });
        }
        Op::Burn { user, token } => {
            let _ = state.collection_mut(coll).and_then(|c| {
                c.burn(a(user), TokenId::new(token))
                    .map_err(|_| parole_state::StateError::NoSuchCollection(coll))
            });
        }
    }
}

fn fresh() -> (L2State, Address) {
    let mut s = L2State::new();
    let coll = s.deploy_collection(CollectionConfig::limited_edition("SP", 8, 100));
    (s, coll)
}

proptest! {
    /// Two states built by the same operation sequence have identical roots;
    /// diverging by one credit separates them.
    #[test]
    fn state_root_is_a_function_of_content(ops in prop::collection::vec(arb_op(), 1..40)) {
        let (mut a, coll_a) = fresh();
        let (mut b, coll_b) = fresh();
        for op in &ops {
            apply(&mut a, coll_a, op);
            apply(&mut b, coll_b, op);
        }
        prop_assert_eq!(a.state_root(), b.state_root());
        b.credit(Address::from_low_u64(42), Wei::from_wei(1));
        prop_assert_ne!(a.state_root(), b.state_root());
    }

    /// Transfers conserve the total supply; only credits/debits change it by
    /// exactly their accepted amounts.
    #[test]
    fn supply_accounting_is_exact(ops in prop::collection::vec(arb_op(), 1..60)) {
        let (mut s, coll) = fresh();
        let mut expected = Wei::ZERO;
        for op in &ops {
            match *op {
                Op::Credit { user, amount } => {
                    s.credit(Address::from_low_u64(user), Wei::from_milli_eth(amount));
                    expected += Wei::from_milli_eth(amount);
                }
                Op::Debit { user, amount } => {
                    if s.debit(Address::from_low_u64(user), Wei::from_milli_eth(amount)).is_ok() {
                        expected -= Wei::from_milli_eth(amount);
                    }
                }
                _ => apply(&mut s, coll, op),
            }
            prop_assert_eq!(s.total_supply(), expected);
        }
    }

    /// Forks are fully independent: mutating a clone never touches the
    /// original, in balances or collections.
    #[test]
    fn forks_are_independent(
        setup in prop::collection::vec(arb_op(), 1..20),
        divergence in prop::collection::vec(arb_op(), 1..20),
    ) {
        let (mut base, coll) = fresh();
        for op in &setup {
            apply(&mut base, coll, op);
        }
        let snapshot = base.state_root();
        let mut fork = base.clone();
        for op in &divergence {
            apply(&mut fork, coll, op);
        }
        prop_assert_eq!(base.state_root(), snapshot);
    }
}
