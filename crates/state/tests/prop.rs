//! Property-based tests for the L2 world state: state-root determinism,
//! balance conservation and fork independence.

use parole_nft::CollectionConfig;
use parole_primitives::{Address, StorageBackend, TokenId, Wei};
use parole_state::L2State;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Credit {
        user: u64,
        amount: u64,
    },
    Debit {
        user: u64,
        amount: u64,
    },
    Transfer {
        from: u64,
        to: u64,
        amount: u64,
    },
    Mint {
        user: u64,
        token: u64,
    },
    Burn {
        user: u64,
        token: u64,
    },
    // Per-token journaled paths: these exercise the hierarchical cache's
    // token-granular dirty marks (the `collection_mut`-based Mint/Burn above
    // exercise the whole-collection snapshot path).
    TokenMint {
        user: u64,
        token: u64,
    },
    TokenTransfer {
        from: u64,
        to: u64,
        token: u64,
    },
    TokenBurn {
        user: u64,
        token: u64,
    },
    // `operator` may be 0 (= the zero address), which *clears* an approval.
    Approve {
        owner: u64,
        operator: u64,
        token: u64,
    },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u64..6, 1u64..10).prop_map(|(user, amount)| Op::Credit { user, amount }),
        (1u64..6, 1u64..10).prop_map(|(user, amount)| Op::Debit { user, amount }),
        (1u64..6, 1u64..6, 1u64..10).prop_map(|(from, to, amount)| Op::Transfer {
            from,
            to,
            amount
        }),
        (1u64..6, 0u64..8).prop_map(|(user, token)| Op::Mint { user, token }),
        (1u64..6, 0u64..8).prop_map(|(user, token)| Op::Burn { user, token }),
        (1u64..6, 0u64..8).prop_map(|(user, token)| Op::TokenMint { user, token }),
        (1u64..6, 1u64..6, 0u64..8).prop_map(|(from, to, token)| Op::TokenTransfer {
            from,
            to,
            token
        }),
        (1u64..6, 0u64..8).prop_map(|(user, token)| Op::TokenBurn { user, token }),
        (1u64..6, 0u64..6, 0u64..8).prop_map(|(owner, operator, token)| Op::Approve {
            owner,
            operator,
            token
        }),
    ]
}

fn apply(state: &mut L2State, coll: Address, op: &Op) {
    let a = |v: u64| Address::from_low_u64(v);
    match *op {
        Op::Credit { user, amount } => state.credit(a(user), Wei::from_milli_eth(amount)),
        Op::Debit { user, amount } => {
            let _ = state.debit(a(user), Wei::from_milli_eth(amount));
        }
        Op::Transfer { from, to, amount } => {
            let _ = state.transfer_balance(a(from), a(to), Wei::from_milli_eth(amount));
        }
        Op::Mint { user, token } => {
            let _ = state.collection_mut(coll).and_then(|c| {
                c.mint(a(user), TokenId::new(token))
                    .map_err(|_| parole_state::StateError::NoSuchCollection(coll))
            });
        }
        Op::Burn { user, token } => {
            let _ = state.collection_mut(coll).and_then(|c| {
                c.burn(a(user), TokenId::new(token))
                    .map_err(|_| parole_state::StateError::NoSuchCollection(coll))
            });
        }
        Op::TokenMint { user, token } => {
            let _ = state.nft_mint(coll, a(user), TokenId::new(token));
        }
        Op::TokenTransfer { from, to, token } => {
            let _ = state.nft_transfer(coll, a(from), a(to), TokenId::new(token));
        }
        Op::TokenBurn { user, token } => {
            let _ = state.nft_burn(coll, a(user), TokenId::new(token));
        }
        Op::Approve {
            owner,
            operator,
            token,
        } => {
            let _ = state.nft_approve(coll, a(owner), a(operator), TokenId::new(token));
        }
    }
}

fn fresh() -> (L2State, Address) {
    let mut s = L2State::new();
    let coll = s.deploy_collection(CollectionConfig::limited_edition("SP", 8, 100));
    (s, coll)
}

proptest! {
    /// Two states built by the same operation sequence have identical roots;
    /// diverging by one credit separates them.
    #[test]
    fn state_root_is_a_function_of_content(ops in prop::collection::vec(arb_op(), 1..40)) {
        let (mut a, coll_a) = fresh();
        let (mut b, coll_b) = fresh();
        for op in &ops {
            apply(&mut a, coll_a, op);
            apply(&mut b, coll_b, op);
        }
        prop_assert_eq!(a.state_root(), b.state_root());
        b.credit(Address::from_low_u64(42), Wei::from_wei(1));
        prop_assert_ne!(a.state_root(), b.state_root());
    }

    /// Transfers conserve the total supply; only credits/debits change it by
    /// exactly their accepted amounts.
    #[test]
    fn supply_accounting_is_exact(ops in prop::collection::vec(arb_op(), 1..60)) {
        let (mut s, coll) = fresh();
        let mut expected = Wei::ZERO;
        for op in &ops {
            match *op {
                Op::Credit { user, amount } => {
                    s.credit(Address::from_low_u64(user), Wei::from_milli_eth(amount));
                    expected += Wei::from_milli_eth(amount);
                }
                Op::Debit { user, amount } => {
                    if s.debit(Address::from_low_u64(user), Wei::from_milli_eth(amount)).is_ok() {
                        expected -= Wei::from_milli_eth(amount);
                    }
                }
                _ => apply(&mut s, coll, op),
            }
            prop_assert_eq!(s.total_supply(), expected);
        }
    }

    /// The incremental dirty-tracked state root is bit-identical to the
    /// naive from-scratch rebuild after **every** step of a random mutation
    /// sequence, interleaved with undo-log checkpoint/rollback cycles and
    /// cache-sharing forks. This is the contract the fraud-proof game rides
    /// on: a single missed invalidation diverges the two roots.
    #[test]
    fn incremental_root_matches_naive_at_every_step(
        warmup in prop::collection::vec(arb_op(), 0..15),
        speculated in prop::collection::vec(arb_op(), 1..15),
        committed in prop::collection::vec(arb_op(), 1..15),
        forked in prop::collection::vec(arb_op(), 1..10),
    ) {
        let (mut s, coll) = fresh();
        // Warm the cache mid-history so later flushes exercise the
        // incremental path (inserts, updates and removes), not the build.
        for op in &warmup {
            apply(&mut s, coll, op);
            prop_assert_eq!(s.state_root(), s.state_root_naive());
        }
        s.begin_recording();

        // A speculated burst that is fully rolled back: the root must
        // return to the checkpoint value through dirty-set invalidation.
        let cp = s.checkpoint();
        let root_at_cp = s.state_root();
        for op in &speculated {
            apply(&mut s, coll, op);
            prop_assert_eq!(s.state_root(), s.state_root_naive());
        }
        s.revert_to(cp);
        prop_assert_eq!(s.state_root(), root_at_cp);
        prop_assert_eq!(s.state_root(), s.state_root_naive());

        // A committed burst, then a fork sharing the clean cache CoW: both
        // sides keep agreeing with their own naive rebuilds while
        // diverging from each other.
        for op in &committed {
            apply(&mut s, coll, op);
        }
        prop_assert_eq!(s.state_root(), s.state_root_naive());
        let mut fork = s.fork();
        for op in &forked {
            apply(&mut fork, coll, op);
            prop_assert_eq!(fork.state_root(), fork.state_root_naive());
        }
        prop_assert_eq!(s.state_root(), s.state_root_naive());
        // New accounts/collections appearing only in the fork must splice
        // into the fork's tree without disturbing the parent's.
        fork.credit(Address::from_low_u64(999), Wei::from_wei(7));
        let _ = fork.deploy_collection(CollectionConfig::limited_edition("FK", 3, 50));
        prop_assert_eq!(fork.state_root(), fork.state_root_naive());
        prop_assert_eq!(s.state_root(), s.state_root_naive());
    }

    /// Backend differential: a world driven through the handle-interned
    /// arena slabs and one driven through `BTreeMap`s by the same operation
    /// sequence are observationally identical — bit-identical state roots
    /// at every step (including under checkpoint/rollback and forks) and
    /// identical serde encodings. This is the contract that lets the
    /// sustained-traffic harness swap backends with a knob.
    #[test]
    fn arena_and_btree_backends_are_bit_identical(
        committed in prop::collection::vec(arb_op(), 1..30),
        speculated in prop::collection::vec(arb_op(), 1..12),
        forked in prop::collection::vec(arb_op(), 1..12),
    ) {
        let mut arena = L2State::with_backend(StorageBackend::Arena);
        let mut btree = L2State::with_backend(StorageBackend::BTree);
        let coll_a = arena.deploy_collection(CollectionConfig::limited_edition("SP", 8, 100));
        let coll_b = btree.deploy_collection(CollectionConfig::limited_edition("SP", 8, 100));
        prop_assert_eq!(coll_a, coll_b, "deployment addressing is backend-independent");

        for op in &committed {
            apply(&mut arena, coll_a, op);
            apply(&mut btree, coll_b, op);
            prop_assert_eq!(arena.state_root(), btree.state_root());
        }
        prop_assert_eq!(arena.state_root(), arena.state_root_naive());

        // A speculated burst rolled back on both sides: the undo log must
        // behave identically over slab handles and tree nodes.
        arena.begin_recording();
        btree.begin_recording();
        let cp_a = arena.checkpoint();
        let cp_b = btree.checkpoint();
        for op in &speculated {
            apply(&mut arena, coll_a, op);
            apply(&mut btree, coll_b, op);
        }
        prop_assert_eq!(arena.state_root(), btree.state_root());
        arena.revert_to(cp_a);
        btree.revert_to(cp_b);
        prop_assert_eq!(arena.state_root(), btree.state_root());
        prop_assert_eq!(arena.state_root(), arena.state_root_naive());

        // Forks diverge in lockstep; the parents stay in agreement.
        let mut fork_a = arena.fork();
        let mut fork_b = btree.fork();
        for op in &forked {
            apply(&mut fork_a, coll_a, op);
            apply(&mut fork_b, coll_b, op);
            prop_assert_eq!(fork_a.state_root(), fork_b.state_root());
        }
        prop_assert_eq!(fork_a.state_root(), fork_a.state_root_naive());
        prop_assert_eq!(arena.state_root(), btree.state_root());

        // The wire encoding is content-addressed, not layout-addressed:
        // both backends serialize to exactly the same bytes.
        let enc_a = serde_json::to_string(&arena).expect("serialize arena");
        let enc_b = serde_json::to_string(&btree).expect("serialize btree");
        prop_assert_eq!(enc_a, enc_b);
    }

    /// Forks are fully independent: mutating a clone never touches the
    /// original, in balances or collections.
    #[test]
    fn forks_are_independent(
        setup in prop::collection::vec(arb_op(), 1..20),
        divergence in prop::collection::vec(arb_op(), 1..20),
    ) {
        let (mut base, coll) = fresh();
        for op in &setup {
            apply(&mut base, coll, op);
        }
        let snapshot = base.state_root();
        let mut fork = base.clone();
        for op in &divergence {
            apply(&mut fork, coll, op);
        }
        prop_assert_eq!(base.state_root(), snapshot);
    }
}
