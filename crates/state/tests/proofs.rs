//! Property suite for stateless inclusion proofs: every honestly generated
//! opening verifies against the bare state root, and any single lie — in
//! the claimed record, the sibling paths, or the root itself — is rejected.
//!
//! These are the soundness guarantees the fraud-proof settlement leans on:
//! a defender cannot open a root at a record value honest execution
//! contradicts, and a single-bit tamper anywhere in the proof breaks the
//! keccak chain.

use parole_crypto::keccak256;
use parole_nft::CollectionConfig;
use parole_primitives::{Address, TokenId, Wei};
use parole_state::{L2State, RecordKey, RecordProof};
use proptest::prelude::*;

fn addr(v: u64) -> Address {
    Address::from_low_u64(v + 1)
}

/// One random-world recipe: funded accounts, a collection, a mint set with
/// random owners, and approval/burn subsets.
#[derive(Debug, Clone)]
struct WorldPlan {
    balances: Vec<u64>,
    mint_owners: Vec<u64>,
    approvals: Vec<(usize, u64)>,
    burns: Vec<usize>,
}

fn world_plan() -> impl Strategy<Value = WorldPlan> {
    (
        prop::collection::vec(1u64..1_000_000, 1..12),
        prop::collection::vec(0u64..12, 1..10),
        prop::collection::vec((0usize..10, 0u64..12), 0..4),
        prop::collection::vec(0usize..10, 0..3),
    )
        .prop_map(|(balances, mint_owners, approvals, burns)| WorldPlan {
            balances,
            mint_owners,
            approvals,
            burns,
        })
}

/// Materializes a plan into a state, returning the collection address and
/// the set of still-active token ids.
fn build(plan: &WorldPlan) -> (L2State, Address, Vec<u64>) {
    let mut state = L2State::new();
    for (i, &bal) in plan.balances.iter().enumerate() {
        state.credit(addr(i as u64), Wei::from_gwei(bal));
    }
    let pt = state.deploy_collection(CollectionConfig::parole_token());
    let mut active = Vec::new();
    for (t, &owner) in plan.mint_owners.iter().enumerate() {
        state
            .nft_mint(pt, addr(owner), TokenId::new(t as u64))
            .unwrap()
            .unwrap();
        active.push(t as u64);
    }
    for &(t, op) in &plan.approvals {
        if let Some(&token) = active.get(t) {
            let owner = addr(plan.mint_owners[token as usize]);
            let _ = state.nft_approve(pt, owner, addr(100 + op), TokenId::new(token));
        }
    }
    for &t in &plan.burns {
        if t < active.len() {
            let token = active.remove(t);
            let owner = addr(plan.mint_owners[token as usize]);
            state
                .nft_burn(pt, owner, TokenId::new(token))
                .unwrap()
                .unwrap();
        }
    }
    (state, pt, active)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every record the world holds opens against the bare root, and the
    /// opening speaks for the right conflict-domain key.
    #[test]
    fn honest_openings_verify(plan in world_plan()) {
        let (state, pt, active) = build(&plan);
        let root = state.state_root();

        for i in 0..plan.balances.len() {
            let who = addr(i as u64);
            let proof = state.prove_record(&RecordKey::Acct(who)).expect("credited");
            prop_assert!(proof.verify(root));
            prop_assert_eq!(proof.key(), RecordKey::Acct(who));
        }

        let header = state.prove_record(&RecordKey::Coll(pt)).expect("deployed");
        prop_assert!(header.verify(root));
        prop_assert_eq!(header.key(), RecordKey::Coll(pt));

        for &t in &active {
            let key = RecordKey::Token(pt, TokenId::new(t));
            let proof = state.prove_record(&key).expect("active token");
            prop_assert!(proof.verify(root));
            prop_assert_eq!(proof.key(), key);
        }

        // A burned token no longer opens; a never-deployed collection and a
        // never-credited account likewise.
        for &t in &plan.burns {
            if t < plan.mint_owners.len() && !active.contains(&(t as u64)) {
                prop_assert!(state
                    .prove_record(&RecordKey::Token(pt, TokenId::new(t as u64)))
                    .is_none());
            }
        }
        prop_assert!(state.prove_record(&RecordKey::Acct(addr(9999))).is_none());
        prop_assert!(state.prove_record(&RecordKey::Coll(addr(9999))).is_none());
    }

    /// Lying about the claimed record value — balance, nonce, owner,
    /// operator, or any header counter — fails verification.
    #[test]
    fn tampered_record_values_are_rejected(
        plan in world_plan(),
        which in 0usize..5,
    ) {
        let (state, pt, active) = build(&plan);
        let root = state.state_root();

        let mut acct = state.prove_account(addr(0)).expect("credited");
        prop_assert!(acct.verify(root));
        match which % 2 {
            0 => acct.account.balance += Wei::from_wei(1),
            _ => acct.account = parole_state::AccountState::with_balance(acct.account.balance),
        }
        // Nonce-zeroing only lies when the nonce was non-zero; balance
        // tampering always lies.
        if which % 2 == 0 || state.account(addr(0)).unwrap().nonce.value() != 0 {
            prop_assert!(!acct.verify(root));
        }

        let mut coll = state.prove_collection(pt).expect("deployed");
        prop_assert!(coll.verify(root));
        match which % 3 {
            0 => coll.header.remaining_supply += 1,
            1 => coll.header.active_supply += 1,
            _ => coll.sub_root = keccak256(coll.sub_root.as_bytes()),
        }
        prop_assert!(!coll.verify(root));

        if let Some(&t) = active.first() {
            let mut tok = state.prove_token(pt, TokenId::new(t)).expect("active");
            prop_assert!(tok.verify(root));
            match which % 3 {
                0 => tok.owner = addr(4321),
                1 => tok.approved = addr(4321),
                _ => tok.header.approval_count += 1,
            }
            prop_assert!(!tok.verify(root));
        }
    }

    /// A single flipped bit in a sibling path — or one inverted direction
    /// flag — breaks the keccak chain.
    #[test]
    fn tampered_paths_are_rejected(
        plan in world_plan(),
        node in 0usize..8,
        bit in 0usize..256,
    ) {
        let (state, pt, active) = build(&plan);
        let root = state.state_root();

        let mut acct = state.prove_account(addr(0)).expect("credited");
        if acct.path.tamper_path_bit_for_tests(node, bit) {
            prop_assert!(!acct.verify(root));
        }
        let mut acct = state.prove_account(addr(0)).expect("credited");
        if acct.path.tamper_direction_for_tests(node) {
            prop_assert!(!acct.verify(root));
        }

        if let Some(&t) = active.first() {
            let mut tok = state.prove_token(pt, TokenId::new(t)).expect("active");
            if tok.token_path.tamper_path_bit_for_tests(node, bit) {
                prop_assert!(!tok.verify(root));
            }
            let mut tok = state.prove_token(pt, TokenId::new(t)).expect("active");
            if tok.header_path.tamper_path_bit_for_tests(node, bit) {
                prop_assert!(!tok.verify(root));
            }
        }
    }

    /// No opening verifies against a different root, and wire sizes stay
    /// logarithmic in the world size.
    #[test]
    fn wrong_roots_are_rejected_and_sizes_logarithmic(plan in world_plan()) {
        let (state, pt, active) = build(&plan);
        let root = state.state_root();
        let wrong = keccak256(root.as_bytes());

        let n_leaves = 1 + plan.balances.len() + 1; // meta + accounts + header
        let depth_bound = usize::BITS as usize - (n_leaves - 1).leading_zeros() as usize + 1;

        let mut proofs: Vec<RecordProof> =
            vec![state.prove_record(&RecordKey::Coll(pt)).expect("deployed")];
        proofs.extend((0..plan.balances.len()).map(|i| {
            state
                .prove_record(&RecordKey::Acct(addr(i as u64)))
                .expect("credited")
        }));
        proofs.extend(active.iter().map(|&t| {
            state
                .prove_record(&RecordKey::Token(pt, TokenId::new(t)))
                .expect("active")
        }));
        for proof in &proofs {
            prop_assert!(!proof.verify(wrong));
            // 33 bytes per path node, ≤ (⌈log2 top⌉ + ⌈log2 sub⌉ + slack)
            // nodes, plus ≤ 188 bytes of leaf preimages and indices (token
            // proofs carry the 52B token leaf, the 120B header and two
            // 8B leaf indices).
            prop_assert!(proof.encoded_len() <= 188 + 33 * 2 * depth_bound);
        }
    }
}
