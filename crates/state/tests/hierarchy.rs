//! Regression tests for the two-level (hierarchical) state commitment:
//! per-collection sub-trees, token-granular dirty tracking, and the
//! approval-soundness fix (approvals are committed state — two states
//! differing only in approvals must have different roots).

use parole_nft::CollectionConfig;
use parole_primitives::{Address, TokenId, Wei};
use parole_state::L2State;

fn addr(v: u64) -> Address {
    Address::from_low_u64(v)
}

/// A committed state with one collection and a handful of active tokens.
fn fixture() -> (L2State, Address) {
    let mut s = L2State::new();
    for i in 0..8 {
        s.credit(addr(i), Wei::from_eth(1));
    }
    let pt = s.deploy_collection(CollectionConfig::parole_token());
    for i in 0..5 {
        s.nft_mint(pt, addr(i), TokenId::new(i)).unwrap().unwrap();
    }
    (s, pt)
}

#[test]
fn approval_flips_the_state_root() {
    // The PR-5 soundness fix: the flat commitment omitted the approvals map
    // entirely, so a state where Alice approved Mallory to move her token
    // shared a root with the state where she had not.
    let (mut s, pt) = fixture();
    let before_incremental = s.state_root();
    let before_naive = s.state_root_naive();
    assert_eq!(before_incremental, before_naive);

    s.nft_approve(pt, addr(0), addr(7), TokenId::new(0))
        .unwrap()
        .unwrap();
    assert_ne!(s.state_root(), before_incremental);
    assert_ne!(s.state_root_naive(), before_naive);
    assert_eq!(s.state_root(), s.state_root_naive());

    // Clearing the approval (approving the zero address) restores the
    // original root: ZERO in the token leaf faithfully encodes "none".
    s.nft_approve(pt, addr(0), Address::ZERO, TokenId::new(0))
        .unwrap()
        .unwrap();
    assert_eq!(s.state_root(), before_incremental);
    assert_eq!(s.state_root(), s.state_root_naive());
}

#[test]
fn approve_via_collection_mut_also_flips_the_root() {
    // The raw-access path must stay sound too: `collection_mut` marks the
    // whole collection dirty, so an approval through it reaches the root.
    let (mut s, pt) = fixture();
    let before = s.state_root();
    s.collection_mut(pt)
        .unwrap()
        .approve(addr(1), addr(7), TokenId::new(1))
        .unwrap();
    assert_ne!(s.state_root(), before);
    assert_eq!(s.state_root(), s.state_root_naive());
}

#[test]
fn approval_revert_restores_root_and_cleans_dirt() {
    let (mut s, pt) = fixture();
    s.begin_recording();
    let root_before = s.state_root();
    assert_eq!(s.dirty_record_count(), 0);

    let cp = s.checkpoint();
    s.nft_approve(pt, addr(0), addr(7), TokenId::new(0))
        .unwrap()
        .unwrap();
    assert_eq!(s.dirty_record_count(), 1);
    s.revert_to(cp);

    // The token-granular mark cancelled: nothing left to re-hash.
    assert_eq!(s.dirty_record_count(), 0);
    assert_eq!(s.state_root(), root_before);
    assert_eq!(s.state_root(), s.state_root_naive());
}

#[test]
fn token_ops_mark_one_record_however_many_tokens_move() {
    let (mut s, pt) = fixture();
    let _ = s.state_root();
    s.nft_transfer(pt, addr(0), addr(1), TokenId::new(0))
        .unwrap()
        .unwrap();
    s.nft_mint(pt, addr(2), TokenId::new(9)).unwrap().unwrap();
    s.nft_burn(pt, addr(3), TokenId::new(3)).unwrap().unwrap();
    // Token-granular dirt still counts the collection as one dirty record.
    assert_eq!(s.dirty_record_count(), 1);
    assert_eq!(s.state_root(), s.state_root_naive());
}

#[test]
fn mixed_token_and_snapshot_rollbacks_agree_with_naive() {
    // Interleave the per-token undo path with the whole-collection snapshot
    // path across a flush boundary; both dirty levels must reconcile.
    let (mut s, pt) = fixture();
    s.begin_recording();
    let _ = s.state_root();

    let cp = s.checkpoint();
    s.nft_transfer(pt, addr(0), addr(4), TokenId::new(0))
        .unwrap()
        .unwrap();
    s.collection_mut(pt)
        .unwrap()
        .mint(addr(5), TokenId::new(8))
        .unwrap();
    let _ = s.state_root(); // flush mid-journal: hwm moves past both entries
    s.nft_approve(pt, addr(4), addr(6), TokenId::new(0))
        .unwrap()
        .unwrap();
    s.revert_to(cp); // crosses the flush point: sticky at both levels
    assert_eq!(s.state_root(), s.state_root_naive());
    assert_eq!(
        s.collection(pt).unwrap().owner_of(TokenId::new(0)),
        Some(addr(0))
    );
    assert!(s
        .collection(pt)
        .unwrap()
        .owner_of(TokenId::new(8))
        .is_none());
}

#[test]
fn burn_clears_committed_approval() {
    // Burning an approved token removes both the ownership and the approval
    // from the committed state; re-minting it to the same owner must not
    // resurrect the approval in the root.
    let (mut s, pt) = fixture();
    let clean_root = {
        // Reference world that never saw the approval.
        let (mut r, pt_r) = fixture();
        r.nft_burn(pt_r, addr(0), TokenId::new(0)).unwrap().unwrap();
        r.nft_mint(pt_r, addr(0), TokenId::new(0)).unwrap().unwrap();
        r.state_root()
    };
    s.nft_approve(pt, addr(0), addr(7), TokenId::new(0))
        .unwrap()
        .unwrap();
    s.nft_burn(pt, addr(0), TokenId::new(0)).unwrap().unwrap();
    s.nft_mint(pt, addr(0), TokenId::new(0)).unwrap().unwrap();
    assert_eq!(s.state_root(), clean_root);
    assert_eq!(s.state_root(), s.state_root_naive());
}

#[test]
fn corrupted_subtree_diverges_from_naive_and_heals_on_touch() {
    let (mut s, pt) = fixture();
    assert!(s.corrupt_commit_subtree_for_tests());
    // The served incremental root is now wrong; only the independent naive
    // rebuild can tell.
    assert_ne!(s.state_root(), s.state_root_naive());

    // A real mutation of the corrupted token leaf re-derives it from live
    // state, healing the sub-tree.
    s.nft_transfer(pt, addr(0), addr(1), TokenId::new(0))
        .unwrap()
        .unwrap();
    assert_eq!(s.state_root(), s.state_root_naive());
}

#[test]
fn subtree_corruption_survives_unrelated_flushes() {
    // Flushing dirt in *other* records must not accidentally mask the
    // corruption (the stale sub-root stays in the served root until the
    // corrupted token itself is touched).
    let (mut s, _) = fixture();
    assert!(s.corrupt_commit_subtree_for_tests());
    s.credit(addr(42), Wei::from_gwei(3));
    assert_ne!(s.state_root(), s.state_root_naive());
}
