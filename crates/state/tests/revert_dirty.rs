//! Regression tests for rollback-aware dirty tracking (ROADMAP follow-up):
//! `revert_to` must *cancel* the dirty marks of mutations it exactly
//! undoes, instead of conservatively re-dirtying every restored record.

use parole_nft::CollectionConfig;
use parole_primitives::{Address, TokenId, Wei};
use parole_state::L2State;

fn addr(v: u64) -> Address {
    Address::from_low_u64(v)
}

/// A recorded, committed state: cache materialized, journal live.
fn fixture() -> (L2State, Address) {
    let mut s = L2State::new();
    for i in 0..20 {
        s.credit(addr(i), Wei::from_eth(1));
    }
    let pt = s.deploy_collection(CollectionConfig::parole_token());
    for i in 0..5 {
        s.collection_mut(pt)
            .unwrap()
            .mint(addr(i), TokenId::new(i))
            .unwrap();
    }
    s.begin_recording();
    let _ = s.state_root(); // materialize the commitment cache
    (s, pt)
}

#[test]
fn full_revert_cancels_all_dirty_marks() {
    let (mut s, pt) = fixture();
    assert_eq!(s.dirty_record_count(), 0);
    let root_before = s.state_root();

    let cp = s.checkpoint();
    s.credit(addr(100), Wei::from_eth(2)); // fresh account
    s.transfer_balance(addr(0), addr(1), Wei::from_gwei(5))
        .unwrap();
    s.bump_nonce(addr(2));
    s.nft_transfer(pt, addr(0), addr(3), TokenId::new(0))
        .unwrap()
        .unwrap();
    s.nft_mint(pt, addr(4), TokenId::new(9)).unwrap().unwrap();
    assert!(s.dirty_record_count() > 0);

    s.revert_to(cp);
    // Every mutation since the flush was exactly undone: nothing left to
    // re-hash, so the next state_root() is a clean cache hit.
    assert_eq!(s.dirty_record_count(), 0);
    assert_eq!(s.state_root(), root_before);
    assert_eq!(s.state_root(), s.state_root_naive());
}

#[test]
fn partial_revert_keeps_surviving_dirt() {
    let (mut s, _) = fixture();
    // Mutation after the flush but before the checkpoint: must stay dirty
    // across a revert that does not reach it.
    s.credit(addr(0), Wei::from_gwei(1));
    let cp = s.checkpoint();
    s.credit(addr(1), Wei::from_gwei(1));
    s.revert_to(cp);

    // addr(1)'s mark cancelled, addr(0)'s survives.
    assert_eq!(s.dirty_record_count(), 1);
    assert_eq!(s.state_root(), s.state_root_naive());
}

#[test]
fn revert_past_flush_point_stays_dirty() {
    // Entries journaled *before* the cache flush have no live forward mark;
    // undoing them must sticky-dirty the record, never clean it.
    let mut s = L2State::new();
    for i in 0..4 {
        s.credit(addr(i), Wei::from_eth(1));
    }
    s.begin_recording();
    let cp = s.checkpoint();
    s.credit(addr(0), Wei::from_gwei(7)); // journaled pre-flush
    let _ = s.state_root(); // flush consumes addr(0)'s mark, hwm moves up
    s.credit(addr(1), Wei::from_gwei(3)); // journaled post-flush

    s.revert_to(cp); // undoes both entries, crossing the flush point
                     // addr(1) cleans (post-flush mark cancelled); addr(0) must remain
                     // dirty — its restored value differs from the committed leaf.
    assert_eq!(s.dirty_record_count(), 1);
    assert_eq!(s.state_root(), s.state_root_naive());
}

#[test]
fn fork_rollbacks_track_dirt_against_fresh_journal() {
    let (mut s, _) = fixture();
    s.credit(addr(7), Wei::from_gwei(9)); // parent-era dirt, unflushed
    let mut fork = s.fork();
    fork.begin_recording();
    let cp = fork.checkpoint();
    fork.credit(addr(7), Wei::from_gwei(1));
    fork.credit(addr(8), Wei::from_gwei(1));
    fork.revert_to(cp);
    // The fork's own mutations cancelled; the inherited parent-era dirt on
    // addr(7) must survive (it was never undone).
    assert_eq!(fork.dirty_record_count(), 1);
    assert_eq!(fork.state_root(), fork.state_root_naive());
    assert_eq!(s.state_root(), s.state_root_naive());
}

#[test]
fn token_level_revert_cancels_token_dirt() {
    // The hierarchical cache tracks dirt per token: a speculative burst of
    // per-token ops that fully rolls back must leave the collection clean,
    // not whole-collection sticky.
    let (mut s, pt) = fixture();
    assert_eq!(s.dirty_record_count(), 0);
    let root_before = s.state_root();

    let cp = s.checkpoint();
    s.nft_transfer(pt, addr(0), addr(3), TokenId::new(0))
        .unwrap()
        .unwrap();
    s.nft_approve(pt, addr(1), addr(9), TokenId::new(1))
        .unwrap()
        .unwrap();
    s.nft_mint(pt, addr(4), TokenId::new(9)).unwrap().unwrap();
    s.nft_burn(pt, addr(2), TokenId::new(2)).unwrap().unwrap();
    // Token-granular dirt still counts the collection as one record.
    assert_eq!(s.dirty_record_count(), 1);

    s.revert_to(cp);
    assert_eq!(s.dirty_record_count(), 0);
    assert_eq!(s.state_root(), root_before);
    assert_eq!(s.state_root(), s.state_root_naive());
}

#[test]
fn token_revert_past_flush_point_stays_dirty() {
    // A per-token entry journaled before the flush has no live forward
    // mark; undoing it must sticky-dirty that token, never clean it.
    let (mut s, pt) = fixture();
    let cp = s.checkpoint();
    s.nft_transfer(pt, addr(0), addr(3), TokenId::new(0))
        .unwrap()
        .unwrap();
    let _ = s.state_root(); // flush consumes token 0's mark, hwm moves up
    s.nft_approve(pt, addr(1), addr(9), TokenId::new(1))
        .unwrap()
        .unwrap();

    s.revert_to(cp); // undoes both token entries, crossing the flush point
                     // Token 1 cleans (post-flush mark cancelled); token 0 must remain
                     // dirty — its restored owner differs from the committed sub-tree leaf.
    assert_eq!(s.dirty_record_count(), 1);
    assert_eq!(s.state_root(), s.state_root_naive());
    assert_eq!(
        s.collection(pt).unwrap().owner_of(TokenId::new(0)),
        Some(addr(0))
    );
}

#[test]
fn interleaved_checkpoints_and_flushes_stay_consistent() {
    let (mut s, pt) = fixture();
    let cp0 = s.checkpoint();
    s.nft_mint(pt, addr(0), TokenId::new(9)).unwrap().unwrap();
    let _ = s.state_root(); // flush mid-journal
    let cp1 = s.checkpoint();
    s.nft_burn(pt, addr(0), TokenId::new(9)).unwrap().unwrap();
    s.revert_to(cp1); // post-flush layer cancels
    assert_eq!(s.state_root(), s.state_root_naive());
    s.revert_to(cp0); // crosses the flush point: sticky path
    assert_eq!(s.state_root(), s.state_root_naive());
    assert!(s
        .collection(pt)
        .unwrap()
        .owner_of(TokenId::new(9))
        .is_none());
}
