//! Telemetry-armed regression for the rollback-aware dirty tracking: the
//! `state.leaves_flushed` histogram shows that a fully-reverted window
//! flushes zero leaves, and the per-root keccak counter is live.
//!
//! Single `#[test]` on purpose: the metrics registry is process-global and
//! this integration binary owns it outright.

#![cfg(feature = "telemetry")]

use parole_primitives::{Address, Wei};
use parole_state::L2State;
use parole_telemetry as tel;

fn addr(v: u64) -> Address {
    Address::from_low_u64(v)
}

#[test]
fn reverted_window_flushes_zero_leaves() {
    let mut s = L2State::new();
    for i in 0..50 {
        s.credit(addr(i), Wei::from_eth(1));
    }
    s.begin_recording();
    let _ = s.state_root(); // build the cache outside the measured window

    tel::reset();

    // A speculative window that fully rolls back: with rollback-aware dirty
    // tracking the subsequent state_root() is a clean hit, no flush at all.
    let cp = s.checkpoint();
    for i in 0..10 {
        s.transfer_balance(addr(i), addr(i + 10), Wei::from_gwei(1))
            .unwrap();
    }
    s.revert_to(cp);
    let _ = s.state_root();

    let snap = tel::snapshot();
    assert_eq!(snap.counter("state.root_clean_hits"), 1);
    assert!(
        snap.histogram("state.leaves_flushed").is_none(),
        "a fully-reverted window must flush no leaves; got {:?}",
        snap.histogram("state.leaves_flushed")
    );
    assert_eq!(snap.counter("state.reverts"), 1);
    assert_eq!(snap.histogram("state.revert_depth").unwrap().max, 20);

    // Control: the same window *without* the revert flushes its dirty
    // leaves and pays keccak digests for them.
    tel::reset();
    for i in 0..10 {
        s.transfer_balance(addr(i), addr(i + 10), Wei::from_gwei(1))
            .unwrap();
    }
    let _ = s.state_root();
    let snap = tel::snapshot();
    let flushed = snap
        .histogram("state.leaves_flushed")
        .expect("dirty window flushes");
    assert_eq!(flushed.count, 1);
    assert_eq!(flushed.sum, 20, "10 transfers touch 20 accounts");
    let keccak = snap
        .histogram("state.keccak_per_root")
        .expect("keccak per root recorded");
    assert!(keccak.max > 0, "flush must pay keccak digests");
    assert!(snap.counter("crypto.keccak256") >= keccak.max as u64);

    // Token-granular attribution: a single NFT op in a populated collection
    // flushes exactly one token leaf and one collection header, and the
    // whole flush is O(log supply) digests, not O(supply).
    let pt = s.deploy_collection(parole_nft::CollectionConfig::limited_edition("TF", 32, 100));
    for t in 0..20 {
        s.nft_mint(pt, addr(t), parole_primitives::TokenId::new(t))
            .unwrap()
            .unwrap();
    }
    let _ = s.state_root();
    tel::reset();
    s.nft_transfer(pt, addr(0), addr(1), parole_primitives::TokenId::new(0))
        .unwrap()
        .unwrap();
    let _ = s.state_root();
    let snap = tel::snapshot();
    assert_eq!(
        snap.histogram("state.token_leaves_flushed").unwrap().sum,
        1,
        "one token op re-hashes one sub-tree leaf"
    );
    assert_eq!(
        snap.histogram("state.coll_leaves_flushed").unwrap().sum,
        1,
        "one collection header re-derives"
    );
    assert_eq!(
        snap.histogram("state.leaves_flushed").unwrap().sum,
        1,
        "the header is the only top-level leaf flushed"
    );
    let keccak = snap.histogram("state.keccak_per_root").unwrap();
    assert!(
        keccak.sum < 20,
        "hierarchical flush must not re-hash the whole 20-token collection; paid {}",
        keccak.sum
    );

    // Every name this run recorded is statically registered.
    for name in snap.counters.keys().chain(snap.histograms.keys()) {
        let d = tel::describe(name)
            .unwrap_or_else(|| panic!("metric {name} recorded but not registered"));
        assert_eq!(d.name, name);
    }

    tel::reset();
}
