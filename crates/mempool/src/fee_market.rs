//! EIP-1559-style base-fee dynamics.
//!
//! Bedrock inherits Ethereum's fee market: each block's base fee moves
//! toward equilibrium by at most 1/8 per block, proportionally to how far
//! the block's gas consumption deviated from the target. The fleet
//! simulations use this to let sustained NFT-drop congestion reprice the
//! mempool over time, which in turn changes which transactions are
//! includable — the "send the lowest-fee transactions to the block behind"
//! behaviour §VIII builds on.

use parole_primitives::{Gas, Wei};
use serde::{Deserialize, Serialize};

/// The base-fee controller (EIP-1559 update rule).
///
/// # Example
///
/// ```
/// use parole_mempool::BaseFeeController;
/// use parole_primitives::{Gas, Wei};
///
/// let mut ctl = BaseFeeController::new(Wei::from_gwei(10), Gas::new(1_000_000));
/// // A completely full block (2× target) raises the fee by 1/8.
/// ctl.on_block(Gas::new(2_000_000));
/// assert!(ctl.base_fee() > Wei::from_gwei(10));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BaseFeeController {
    base_fee: Wei,
    target_gas: Gas,
    /// Lower clamp so the market never reaches zero (Bedrock keeps a
    /// 1-wei-class floor too).
    floor: Wei,
}

impl BaseFeeController {
    /// Maximum per-block change denominator (EIP-1559 uses 8).
    pub const CHANGE_DENOMINATOR: u128 = 8;

    /// Creates a controller at `initial` targeting `target_gas` per block.
    ///
    /// # Panics
    ///
    /// Panics on a zero gas target.
    pub fn new(initial: Wei, target_gas: Gas) -> Self {
        assert!(target_gas.units() > 0, "gas target must be positive");
        BaseFeeController {
            base_fee: initial,
            target_gas,
            floor: Wei::from_wei(7), // symbolic wei floor
        }
    }

    /// The current base fee.
    pub fn base_fee(&self) -> Wei {
        self.base_fee
    }

    /// The per-block gas target.
    pub fn target_gas(&self) -> Gas {
        self.target_gas
    }

    /// The lower clamp the fee never drops below.
    pub fn floor(&self) -> Wei {
        self.floor
    }

    /// Applies one block's gas usage, returning the new base fee.
    ///
    /// `new = old + old × (used − target) / target / 8`, clamped at the
    /// floor — the exact EIP-1559 rule with integer arithmetic. A block
    /// exactly on target is the fixed point and leaves the fee unchanged;
    /// an over-target block always raises the fee by at least 1 wei (so
    /// sustained congestion reprices even from tiny fees).
    pub fn on_block(&mut self, gas_used: Gas) -> Wei {
        let target = self.target_gas.units() as u128;
        let used = gas_used.units() as u128;
        let old = self.base_fee.wei();
        let new = if used > target {
            let delta = old * (used - target) / target / Self::CHANGE_DENOMINATOR;
            // An over-target block always moves the fee by at least 1 wei.
            old + delta.max(1)
        } else {
            let delta = old * (target - used) / target / Self::CHANGE_DENOMINATOR;
            old.saturating_sub(delta)
        };
        self.base_fee = Wei::from_wei(new).max(self.floor);
        self.base_fee
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctl() -> BaseFeeController {
        BaseFeeController::new(Wei::from_gwei(8), Gas::new(1_000_000))
    }

    #[test]
    fn exactly_target_is_a_fixed_point() {
        // Regression: an exactly-on-target block used to be bumped by the
        // 1-wei minimum reserved for over-target blocks; EIP-1559 leaves the
        // fee unchanged at the target.
        let mut c = ctl();
        let before = c.base_fee();
        for _ in 0..1000 {
            c.on_block(Gas::new(1_000_000));
        }
        assert_eq!(c.base_fee(), before);
    }

    #[test]
    fn one_wei_minimum_applies_only_above_target() {
        // Small enough fee that the proportional delta truncates to zero for
        // a barely-over-target block; the 1-wei minimum must still kick in.
        let mut c = BaseFeeController::new(Wei::from_wei(100), Gas::new(1_000_000));
        c.on_block(Gas::new(1_000_001));
        assert_eq!(c.base_fee().wei(), 101);
        // …while barely-under-target truncates to no change, not a bump.
        let before = c.base_fee();
        c.on_block(Gas::new(999_999));
        assert_eq!(c.base_fee(), before);
    }

    #[test]
    fn full_block_raises_by_one_eighth() {
        let mut c = ctl();
        c.on_block(Gas::new(2_000_000));
        assert_eq!(c.base_fee(), Wei::from_gwei(9)); // 8 + 8/8
    }

    #[test]
    fn empty_block_lowers_by_one_eighth() {
        let mut c = ctl();
        c.on_block(Gas::ZERO);
        assert_eq!(c.base_fee(), Wei::from_gwei(7)); // 8 − 8/8
    }

    #[test]
    fn fee_never_drops_below_floor() {
        let mut c = BaseFeeController::new(Wei::from_wei(8), Gas::new(100));
        for _ in 0..100 {
            c.on_block(Gas::ZERO);
        }
        assert_eq!(c.base_fee(), Wei::from_wei(7));
    }

    #[test]
    fn sustained_congestion_compounds() {
        let mut c = ctl();
        for _ in 0..10 {
            c.on_block(Gas::new(2_000_000));
        }
        // (9/8)^10 ≈ 3.25×
        let ratio = c.base_fee().wei() as f64 / Wei::from_gwei(8).wei() as f64;
        assert!(ratio > 3.0 && ratio < 3.5, "ratio {ratio}");
    }

    #[test]
    fn congestion_then_calm_reverts() {
        let mut c = ctl();
        for _ in 0..5 {
            c.on_block(Gas::new(2_000_000));
        }
        let peak = c.base_fee();
        for _ in 0..5 {
            c.on_block(Gas::ZERO);
        }
        assert!(c.base_fee() < peak);
    }

    #[test]
    #[should_panic(expected = "gas target must be positive")]
    fn zero_target_rejected() {
        let _ = BaseFeeController::new(Wei::from_gwei(1), Gas::ZERO);
    }
}
