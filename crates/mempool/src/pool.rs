//! The fee-priority mempool.

use parking_lot::Mutex;
use parole_ovm::NftTransaction;
use parole_primitives::Wei;
use std::fmt;
use std::sync::Arc;

/// One pending entry: the transaction plus its arrival sequence number.
#[derive(Debug, Clone, Copy)]
struct Pending {
    tx: NftTransaction,
    arrival: u64,
}

/// Bedrock's private mempool.
///
/// Pending transactions are handed out strictly in fee-priority order
/// (descending [`effective tip`](parole_primitives::FeeBundle::effective_tip)
/// at the pool's base fee, FIFO within equal tips). Transactions whose fee
/// cap is below the base fee are parked — they stay pending but are never
/// collected, matching the real mempool's "send the lowest-fee transactions
/// to the block behind" behaviour the paper quotes in §VIII.
#[derive(Debug)]
pub struct BedrockMempool {
    pending: Vec<Pending>,
    base_fee: Wei,
    next_arrival: u64,
    /// Simulated block interval in ticks (Bedrock seals blocks at fixed
    /// intervals rather than per transaction).
    block_interval_ticks: u64,
    now: u64,
}

impl BedrockMempool {
    /// Creates an empty mempool with the given base fee and a default block
    /// interval of 2 ticks (Bedrock's 2-second blocks).
    pub fn new(base_fee: Wei) -> Self {
        BedrockMempool {
            pending: Vec::new(),
            base_fee,
            next_arrival: 0,
            block_interval_ticks: 2,
            now: 0,
        }
    }

    /// The base fee used for effective-tip computation.
    pub fn base_fee(&self) -> Wei {
        self.base_fee
    }

    /// Updates the base fee (fee-market drift between blocks).
    pub fn set_base_fee(&mut self, base_fee: Wei) {
        self.base_fee = base_fee;
    }

    /// Number of pending transactions (including parked ones).
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// `true` when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Current simulated time in ticks.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Advances simulated time; returns `true` when a block boundary was
    /// crossed (i.e. aggregators should collect now).
    pub fn tick(&mut self) -> bool {
        self.now += 1;
        self.now.is_multiple_of(self.block_interval_ticks)
    }

    /// Submits a transaction.
    pub fn submit(&mut self, tx: NftTransaction) {
        let arrival = self.next_arrival;
        self.next_arrival += 1;
        self.pending.push(Pending { tx, arrival });
    }

    /// Submits a batch, preserving the iterator's arrival order.
    pub fn submit_all<I: IntoIterator<Item = NftTransaction>>(&mut self, txs: I) {
        for tx in txs {
            self.submit(tx);
        }
    }

    /// Collects up to `n` includable transactions in fee-priority order,
    /// removing them from the pool. This is the window an aggregator
    /// receives — the paper's per-aggregator "Mempool" of size N.
    pub fn collect(&mut self, n: usize) -> Vec<NftTransaction> {
        // Sort indexes of includable transactions by (tip desc, arrival asc).
        let base_fee = self.base_fee;
        let mut order: Vec<usize> = (0..self.pending.len())
            .filter(|&i| self.pending[i].tx.fees.is_includable(base_fee))
            .collect();
        order.sort_by(|&a, &b| {
            let ta = self.pending[a].tx.fees.effective_tip(base_fee);
            let tb = self.pending[b].tx.fees.effective_tip(base_fee);
            tb.cmp(&ta)
                .then(self.pending[a].arrival.cmp(&self.pending[b].arrival))
        });
        order.truncate(n);

        let mut taken: Vec<bool> = vec![false; self.pending.len()];
        for &i in &order {
            taken[i] = true;
        }
        let collected: Vec<NftTransaction> = order.iter().map(|&i| self.pending[i].tx).collect();
        let mut keep = Vec::with_capacity(self.pending.len() - collected.len());
        for (i, p) in self.pending.drain(..).enumerate() {
            if !taken[i] {
                keep.push(p);
            }
        }
        self.pending = keep;
        collected
    }

    /// The fee-priority order of everything currently pending, without
    /// removing anything (what an honest aggregator *should* execute).
    pub fn priority_preview(&self) -> Vec<NftTransaction> {
        let mut items: Vec<&Pending> = self
            .pending
            .iter()
            .filter(|p| p.tx.fees.is_includable(self.base_fee))
            .collect();
        items.sort_by(|a, b| {
            let ta = a.tx.fees.effective_tip(self.base_fee);
            let tb = b.tx.fees.effective_tip(self.base_fee);
            tb.cmp(&ta).then(a.arrival.cmp(&b.arrival))
        });
        items.into_iter().map(|p| p.tx).collect()
    }
}

impl fmt::Display for BedrockMempool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BedrockMempool({} pending, base fee {} gwei)",
            self.pending.len(),
            self.base_fee.gwei()
        )
    }
}

/// A cloneable, thread-safe handle to a shared [`BedrockMempool`].
///
/// Fleet simulations spawn one thread per aggregator; all of them drain the
/// same pool. `parking_lot::Mutex` keeps the hot `collect` path cheap.
#[derive(Debug, Clone)]
pub struct SharedMempool {
    inner: Arc<Mutex<BedrockMempool>>,
}

impl SharedMempool {
    /// Wraps a mempool for shared use.
    pub fn new(pool: BedrockMempool) -> Self {
        SharedMempool {
            inner: Arc::new(Mutex::new(pool)),
        }
    }

    /// Submits a transaction.
    pub fn submit(&self, tx: NftTransaction) {
        self.inner.lock().submit(tx);
    }

    /// Submits a batch.
    pub fn submit_all<I: IntoIterator<Item = NftTransaction>>(&self, txs: I) {
        self.inner.lock().submit_all(txs);
    }

    /// Collects up to `n` transactions in fee-priority order.
    pub fn collect(&self, n: usize) -> Vec<NftTransaction> {
        self.inner.lock().collect(n)
    }

    /// Number of pending transactions.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// `true` when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parole_ovm::TxKind;
    use parole_primitives::{Address, FeeBundle, TokenId};

    fn tx(sender: u64, tip: u64) -> NftTransaction {
        NftTransaction::with_fees(
            Address::from_low_u64(sender),
            TxKind::Mint {
                collection: Address::from_low_u64(100),
                token: TokenId::new(sender),
            },
            FeeBundle::from_gwei(30, tip),
        )
    }

    #[test]
    fn collect_orders_by_tip_then_fifo() {
        let mut pool = BedrockMempool::new(Wei::from_gwei(1));
        pool.submit(tx(1, 5));
        pool.submit(tx(2, 9));
        pool.submit(tx(3, 5)); // same tip as tx 1, arrived later
        let window = pool.collect(3);
        let senders: Vec<u64> = window
            .iter()
            .map(|t| {
                let b = t.sender.as_bytes();
                u64::from_be_bytes(b[12..].try_into().unwrap())
            })
            .collect();
        assert_eq!(senders, vec![2, 1, 3]);
        assert!(pool.is_empty());
    }

    #[test]
    fn collect_respects_window_size() {
        let mut pool = BedrockMempool::new(Wei::from_gwei(1));
        for i in 0..10 {
            pool.submit(tx(i, i));
        }
        let window = pool.collect(4);
        assert_eq!(window.len(), 4);
        assert_eq!(pool.len(), 6);
        // The collected four had the highest tips (9, 8, 7, 6).
        let min_collected_tip = window
            .iter()
            .map(|t| t.fees.effective_tip(Wei::from_gwei(1)))
            .min()
            .unwrap();
        assert_eq!(min_collected_tip, Wei::from_gwei(6));
    }

    #[test]
    fn unincludable_txs_are_parked() {
        let mut pool = BedrockMempool::new(Wei::from_gwei(100));
        pool.submit(tx(1, 5)); // max fee 30 < base fee 100
        assert_eq!(pool.collect(10).len(), 0);
        assert_eq!(pool.len(), 1);
        // Base fee falls; the parked transaction becomes collectable.
        pool.set_base_fee(Wei::from_gwei(1));
        assert_eq!(pool.collect(10).len(), 1);
    }

    #[test]
    fn tick_marks_block_boundaries() {
        let mut pool = BedrockMempool::new(Wei::from_gwei(1));
        assert!(!pool.tick()); // t = 1
        assert!(pool.tick()); // t = 2, boundary
        assert!(!pool.tick());
        assert!(pool.tick());
        assert_eq!(pool.now(), 4);
    }

    #[test]
    fn priority_preview_is_nondestructive() {
        let mut pool = BedrockMempool::new(Wei::from_gwei(1));
        pool.submit(tx(1, 5));
        pool.submit(tx(2, 9));
        let preview = pool.priority_preview();
        assert_eq!(preview.len(), 2);
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn shared_pool_concurrent_drain() {
        let pool = SharedMempool::new(BedrockMempool::new(Wei::from_gwei(1)));
        for i in 0..100 {
            pool.submit(tx(i, i % 10));
        }
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let p = pool.clone();
                std::thread::spawn(move || {
                    let mut mine = 0;
                    while !p.is_empty() {
                        mine += p.collect(5).len();
                    }
                    mine
                })
            })
            .collect();
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 100);
        assert!(pool.is_empty());
    }
}
