//! The fee-priority mempool.
//!
//! # Indexed priority queue
//!
//! The pool used to keep one flat `Vec` of pending transactions and re-sort
//! the *entire* population on every `collect` — O(P log P) per block, which
//! dominates block sealing once the pool holds more transactions than a
//! block admits. It is now a lazily-maintained priority index:
//!
//! - **Ready heap** — a max-heap keyed by (effective tip at the pool's base
//!   fee, arrival FIFO tie-break). `collect(n)` pops `n` entries:
//!   O(n log P) instead of O(P log P).
//! - **Parked list** — transactions whose fee cap is below the base fee sit
//!   off-heap and cost nothing per block; they re-enter the heap only when
//!   the base fee falls (the paper's §VIII "send the lowest-fee
//!   transactions to the block behind").
//! - **Rebuild on base-fee change** — effective tips depend on the base
//!   fee, so the heap's keys are valid only for the fee they were computed
//!   at. `set_base_fee` just marks the index stale; the next operation
//!   re-keys every entry once (O(P)), amortized over the whole block that
//!   fee applies to. Most fee moves skip even that: an entry's effective
//!   tip `min(max_priority, max_fee − base)` only changes once the base
//!   fee climbs past `max_fee − max_priority`, so the pool keeps the
//!   smallest such saturation point over everything in the heap (and the
//!   largest parked `max_fee`). A new base fee inside that window provably
//!   preserves every key and every parking decision, and the "rebuild" is
//!   O(1) — under EIP-1559 drift with healthy fee caps this makes re-keys
//!   vanish entirely (witnessed by [`PoolOpStats::rekeys_skipped`]).
//! - **Per-sender chains (opt-in)** — with
//!   [`BedrockMempool::with_sender_chains`], each sender has at most one
//!   transaction in the ready heap; later submissions queue behind it and
//!   are released in arrival order as earlier ones are collected. Default
//!   off, preserving the historical "every tx competes independently"
//!   semantics.
//!
//! Every structural operation bumps a [`PoolOpStats`] counter (mirrored to
//! telemetry), so tests can pin the complexity claim directly: collecting a
//! block touches O(block) heap entries, not O(pool).
//!
//! # The legacy baseline
//!
//! [`BedrockMempool::legacy_full_sort`] constructs a pool that reproduces
//! the historical flat-`Vec` implementation byte for byte: every `collect`
//! filters and sorts the whole population and compacts the vector. It
//! exists as an in-process A/B baseline for the sustained-traffic harness —
//! both variants drain in the identical (tip desc, arrival asc) order, so a
//! benchmark can swap one for the other without changing a single sealed
//! block. [`PoolOpStats::full_sorts`] / [`PoolOpStats::sort_scanned`]
//! witness the O(P log P)-per-block behaviour being measured.

use parking_lot::Mutex;
use parole_ovm::NftTransaction;
use parole_primitives::{Address, Wei};
use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, VecDeque};
use std::fmt;
use std::sync::Arc;

/// One pending entry: the transaction plus its arrival sequence number.
#[derive(Debug, Clone, Copy)]
struct Pending {
    tx: NftTransaction,
    arrival: u64,
}

/// A heap entry: a pending transaction keyed by its effective tip at the
/// base fee the heap was built for.
#[derive(Debug, Clone, Copy)]
struct Ranked {
    tip: Wei,
    pending: Pending,
}

impl PartialEq for Ranked {
    fn eq(&self, other: &Self) -> bool {
        self.tip == other.tip && self.pending.arrival == other.pending.arrival
    }
}

impl Eq for Ranked {}

impl PartialOrd for Ranked {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ranked {
    /// Max-heap priority: higher tip first, earlier arrival on ties.
    fn cmp(&self, other: &Self) -> Ordering {
        self.tip
            .cmp(&other.tip)
            .then_with(|| other.pending.arrival.cmp(&self.pending.arrival))
    }
}

/// Structural-operation counters for the priority index.
///
/// These are the complexity witnesses: a `collect(n)` performs exactly the
/// heap pops it returns transactions (plus chain releases), and rebuilds
/// happen only when the base fee moves — never per block with a stable fee.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolOpStats {
    /// Entries pushed into the ready heap.
    pub heap_pushes: u64,
    /// Entries popped off the ready heap.
    pub heap_pops: u64,
    /// Full index rebuilds (base-fee changes observed).
    pub rebuilds: u64,
    /// Entries re-screened across all rebuilds.
    pub rescreened: u64,
    /// Entries parked because their fee cap was below the base fee.
    pub parked: u64,
    /// Base-fee changes absorbed without touching the index (the new fee
    /// stayed inside the window where no key or parking decision moves).
    pub rekeys_skipped: u64,
    /// Legacy mode only: whole-pool sorts performed by `collect`.
    pub full_sorts: u64,
    /// Legacy mode only: entries scanned across all full sorts.
    pub sort_scanned: u64,
}

/// Bedrock's private mempool.
///
/// Pending transactions are handed out strictly in fee-priority order
/// (descending [`effective tip`](parole_primitives::FeeBundle::effective_tip)
/// at the pool's base fee, FIFO within equal tips). Transactions whose fee
/// cap is below the base fee are parked — they stay pending but are never
/// collected, matching the real mempool's "send the lowest-fee transactions
/// to the block behind" behaviour the paper quotes in §VIII. See the
/// [module docs](self) for the index layout.
#[derive(Debug)]
pub struct BedrockMempool {
    /// `Some` puts the pool in legacy flat-`Vec` mode: this vector holds
    /// every pending transaction and the index structures stay empty.
    legacy: Option<Vec<Pending>>,
    /// Includable transactions keyed at `keyed_base_fee`.
    ready: BinaryHeap<Ranked>,
    /// Transactions whose fee cap is below `keyed_base_fee`.
    parked: Vec<Pending>,
    /// Per-sender queues waiting behind an in-index head (chains mode).
    chained: BTreeMap<Address, VecDeque<Pending>>,
    /// Senders with a head currently in `ready`/`parked` (chains mode).
    live_heads: BTreeSet<Address>,
    sender_chains: bool,
    base_fee: Wei,
    /// The base fee the heap keys and the parked screening were computed
    /// at; `!= base_fee` means the index is stale.
    keyed_base_fee: Wei,
    /// Smallest `max_fee − max_priority` over entries placed in the ready
    /// heap since the last rebuild: base fees at or below this provably
    /// leave every heap key unchanged. `None` = no entry placed yet.
    sat_threshold: Option<Wei>,
    /// Largest `max_fee` over currently parked entries: base fees strictly
    /// above this provably leave every parking decision unchanged.
    unpark_threshold: Option<Wei>,
    total: usize,
    next_arrival: u64,
    /// Simulated block interval in ticks (Bedrock seals blocks at fixed
    /// intervals rather than per transaction).
    block_interval_ticks: u64,
    now: u64,
    ops: PoolOpStats,
}

impl BedrockMempool {
    /// Creates an empty mempool with the given base fee and a default block
    /// interval of 2 ticks (Bedrock's 2-second blocks).
    pub fn new(base_fee: Wei) -> Self {
        BedrockMempool {
            legacy: None,
            ready: BinaryHeap::new(),
            parked: Vec::new(),
            chained: BTreeMap::new(),
            live_heads: BTreeSet::new(),
            sender_chains: false,
            base_fee,
            keyed_base_fee: base_fee,
            sat_threshold: None,
            unpark_threshold: None,
            total: 0,
            next_arrival: 0,
            block_interval_ticks: 2,
            now: 0,
            ops: PoolOpStats::default(),
        }
    }

    /// Creates a pool in legacy flat-`Vec` mode: `collect` filters and
    /// sorts the whole population every call, exactly as the pre-index
    /// implementation did. Drain order is identical to the indexed pool
    /// (tip desc, arrival asc), so the two are drop-in interchangeable —
    /// this constructor exists as the measured baseline for the
    /// sustained-traffic harness. See the [module docs](self).
    pub fn legacy_full_sort(base_fee: Wei) -> Self {
        let mut pool = Self::new(base_fee);
        pool.legacy = Some(Vec::new());
        pool
    }

    /// Whether this pool runs in legacy flat-`Vec` mode.
    pub fn is_legacy(&self) -> bool {
        self.legacy.is_some()
    }

    /// Enables per-sender FIFO chains (builder-style, off by default): each
    /// sender has at most one transaction competing in the priority index;
    /// later submissions wait behind it in arrival order.
    #[must_use]
    pub fn with_sender_chains(mut self, on: bool) -> Self {
        assert!(
            self.total == 0,
            "chain mode must be chosen before transactions are submitted"
        );
        assert!(
            self.legacy.is_none(),
            "sender chains are not available in legacy full-sort mode"
        );
        self.sender_chains = on;
        self
    }

    /// Whether per-sender FIFO chains are enabled.
    pub fn sender_chains(&self) -> bool {
        self.sender_chains
    }

    /// The base fee used for effective-tip computation.
    pub fn base_fee(&self) -> Wei {
        self.base_fee
    }

    /// Updates the base fee (fee-market drift between blocks). Cheap: the
    /// priority index is re-keyed lazily on the next pool operation.
    pub fn set_base_fee(&mut self, base_fee: Wei) {
        self.base_fee = base_fee;
    }

    /// Structural-operation counters since the pool was created.
    pub fn op_stats(&self) -> PoolOpStats {
        self.ops
    }

    /// Number of pending transactions (including parked and chained ones).
    pub fn len(&self) -> usize {
        self.total
    }

    /// `true` when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Current simulated time in ticks.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Advances simulated time; returns `true` when a block boundary was
    /// crossed (i.e. aggregators should collect now).
    pub fn tick(&mut self) -> bool {
        self.now += 1;
        self.now.is_multiple_of(self.block_interval_ticks)
    }

    /// Submits a transaction.
    pub fn submit(&mut self, tx: NftTransaction) {
        let arrival = self.next_arrival;
        self.next_arrival += 1;
        self.total += 1;
        let pending = Pending { tx, arrival };
        if let Some(flat) = self.legacy.as_mut() {
            flat.push(pending);
            return;
        }
        self.ensure_fresh();
        if self.sender_chains && !self.live_heads.insert(tx.sender) {
            // The sender already has a head in the index; queue behind it.
            self.chained
                .entry(tx.sender)
                .or_default()
                .push_back(pending);
            return;
        }
        self.place(pending);
    }

    /// Submits a batch, preserving the iterator's arrival order.
    pub fn submit_all<I: IntoIterator<Item = NftTransaction>>(&mut self, txs: I) {
        for tx in txs {
            self.submit(tx);
        }
    }

    /// Collects up to `n` includable transactions in fee-priority order,
    /// removing them from the pool. This is the window an aggregator
    /// receives — the paper's per-aggregator "Mempool" of size N.
    ///
    /// O(n log P): pops `n` heap entries, never touching the rest of the
    /// pool (parked transactions cost nothing here). In legacy mode this is
    /// the historical whole-pool filter-sort-compact, O(P log P) per call.
    pub fn collect(&mut self, n: usize) -> Vec<NftTransaction> {
        if self.legacy.is_some() {
            return self.legacy_collect(|_, order| order.truncate(n));
        }
        self.ensure_fresh();
        let mut out = Vec::with_capacity(n.min(self.ready.len()));
        while out.len() < n {
            let Some(ranked) = self.ready.pop() else {
                break;
            };
            self.ops.heap_pops += 1;
            self.total -= 1;
            out.push(ranked.pending.tx);
            if self.sender_chains {
                self.release_next(ranked.pending.tx.sender);
            }
        }
        parole_telemetry::counter("mempool.heap_pops", out.len() as u64);
        out
    }

    /// Collects transactions in fee-priority order until the next candidate
    /// would push the block past `gas_limit` (that candidate stays pooled).
    /// This is the sequencer's block-filling primitive: one index pass per
    /// block instead of a `collect(1)` loop.
    ///
    /// Indexed mode peeks before popping, so the first transaction that
    /// does not fit is never removed — O(block · log P) with zero
    /// re-insertion churn. Legacy mode performs the historical whole-pool
    /// sort and takes the fitting prefix; both modes select the identical
    /// prefix of the identical (tip desc, arrival asc) order.
    pub fn collect_block(
        &mut self,
        schedule: &parole_ovm::GasSchedule,
        gas_limit: parole_primitives::Gas,
    ) -> Vec<NftTransaction> {
        use parole_primitives::Gas;
        if self.legacy.is_some() {
            return self.legacy_collect(|flat, order| {
                let mut gas = Gas::ZERO;
                let mut keep = 0;
                for &i in order.iter() {
                    let tx_gas = schedule.gas_for(&flat[i].tx.kind);
                    if (gas + tx_gas).units() > gas_limit.units() {
                        break;
                    }
                    gas += tx_gas;
                    keep += 1;
                }
                order.truncate(keep);
            });
        }
        self.ensure_fresh();
        let mut out = Vec::new();
        let mut gas = Gas::ZERO;
        while let Some(tx_gas) = self
            .ready
            .peek()
            .map(|top| schedule.gas_for(&top.pending.tx.kind))
        {
            if (gas + tx_gas).units() > gas_limit.units() {
                break;
            }
            gas += tx_gas;
            let ranked = self.ready.pop().expect("peeked entry exists");
            self.ops.heap_pops += 1;
            self.total -= 1;
            out.push(ranked.pending.tx);
            if self.sender_chains {
                self.release_next(ranked.pending.tx.sender);
            }
        }
        parole_telemetry::counter("mempool.heap_pops", out.len() as u64);
        out
    }

    /// The fee-priority order of the top `limit` pending includable
    /// transactions, without removing anything (what an honest aggregator
    /// *should* execute next).
    ///
    /// Uses a quick-select partition before sorting, so the cost is
    /// O(P + limit log limit) — only the returned prefix is ever sorted,
    /// never the whole pool.
    pub fn priority_preview(&self, limit: usize) -> Vec<NftTransaction> {
        let base_fee = self.base_fee;
        let mut items: Vec<(Wei, u64, NftTransaction)> = self
            .ready
            .iter()
            .map(|r| &r.pending)
            .chain(self.parked.iter())
            .chain(self.chained.values().flatten())
            .chain(self.legacy.iter().flatten())
            .filter(|p| p.tx.fees.is_includable(base_fee))
            .map(|p| (p.tx.fees.effective_tip(base_fee), p.arrival, p.tx))
            .collect();
        let k = limit.min(items.len());
        if k == 0 {
            return Vec::new();
        }
        let best_first = |a: &(Wei, u64, NftTransaction), b: &(Wei, u64, NftTransaction)| {
            b.0.cmp(&a.0).then(a.1.cmp(&b.1))
        };
        if k < items.len() {
            items.select_nth_unstable_by(k - 1, best_first);
            items.truncate(k);
        }
        items.sort_unstable_by(best_first);
        items.into_iter().map(|(_, _, tx)| tx).collect()
    }

    /// The historical whole-pool collect: filter includable entries, sort
    /// them by (tip desc, arrival asc), let `take` choose the prefix to
    /// hand out, and compact the vector. O(P log P) per call — this is the
    /// measured baseline the indexed pool replaces.
    fn legacy_collect(
        &mut self,
        take: impl FnOnce(&[Pending], &mut Vec<usize>),
    ) -> Vec<NftTransaction> {
        let base_fee = self.base_fee;
        let flat = self.legacy.as_mut().expect("legacy mode");
        self.ops.full_sorts += 1;
        self.ops.sort_scanned += flat.len() as u64;
        let mut order: Vec<usize> = (0..flat.len())
            .filter(|&i| flat[i].tx.fees.is_includable(base_fee))
            .collect();
        order.sort_by(|&a, &b| {
            let ta = flat[a].tx.fees.effective_tip(base_fee);
            let tb = flat[b].tx.fees.effective_tip(base_fee);
            tb.cmp(&ta).then(flat[a].arrival.cmp(&flat[b].arrival))
        });
        take(flat, &mut order);

        let mut taken = vec![false; flat.len()];
        for &i in &order {
            taken[i] = true;
        }
        let collected: Vec<NftTransaction> = order.iter().map(|&i| flat[i].tx).collect();
        let mut keep = Vec::with_capacity(flat.len() - collected.len());
        for (i, p) in std::mem::take(flat).into_iter().enumerate() {
            if !taken[i] {
                keep.push(p);
            }
        }
        *self.legacy.as_mut().expect("legacy mode") = keep;
        self.total -= collected.len();
        parole_telemetry::counter("mempool.full_sorts", 1);
        collected
    }

    /// Re-keys the index after a base-fee change: every heap and parked
    /// entry is re-screened at the current fee — O(P), once per fee change —
    /// unless the new fee provably changes no key and no parking decision,
    /// in which case the move is absorbed in O(1) (see the [module
    /// docs](self)).
    fn ensure_fresh(&mut self) {
        if self.base_fee == self.keyed_base_fee {
            return;
        }
        // An effective tip `min(max_priority, max_fee − base)` is constant
        // in `base` until the base fee exceeds `max_fee − max_priority`;
        // a parked entry (`max_fee < base`) stays parked while the base
        // fee stays strictly above its cap. Inside both bounds the whole
        // index is still exact for the new fee.
        let keys_stable = self
            .sat_threshold
            .map_or(self.ready.is_empty(), |t| self.base_fee <= t);
        let parking_stable = self.unpark_threshold.is_none_or(|t| self.base_fee > t);
        if keys_stable && parking_stable {
            self.keyed_base_fee = self.base_fee;
            self.ops.rekeys_skipped += 1;
            parole_telemetry::counter("mempool.rekeys_skipped", 1);
            return;
        }
        self.keyed_base_fee = self.base_fee;
        self.sat_threshold = None;
        self.unpark_threshold = None;
        let heads: Vec<Pending> = self
            .ready
            .drain()
            .map(|r| r.pending)
            .chain(self.parked.drain(..))
            .collect();
        self.ops.rebuilds += 1;
        self.ops.rescreened += heads.len() as u64;
        parole_telemetry::counter("mempool.rebuilds", 1);
        parole_telemetry::counter("mempool.rescreened", heads.len() as u64);
        for pending in heads {
            self.place(pending);
        }
    }

    /// Routes one chain head into the ready heap or the parked list.
    /// Callers must have re-keyed the index first (`ensure_fresh`).
    fn place(&mut self, pending: Pending) {
        debug_assert_eq!(self.base_fee, self.keyed_base_fee);
        if pending.tx.fees.is_includable(self.base_fee) {
            self.ops.heap_pushes += 1;
            parole_telemetry::counter("mempool.heap_pushes", 1);
            let sat = pending
                .tx
                .fees
                .max_fee_per_gas
                .saturating_sub(pending.tx.fees.max_priority_fee_per_gas);
            self.sat_threshold = Some(self.sat_threshold.map_or(sat, |t| t.min(sat)));
            self.ready.push(Ranked {
                tip: pending.tx.fees.effective_tip(self.base_fee),
                pending,
            });
        } else {
            let cap = pending.tx.fees.max_fee_per_gas;
            self.unpark_threshold = Some(self.unpark_threshold.map_or(cap, |t| t.max(cap)));
            self.ops.parked += 1;
            parole_telemetry::counter("mempool.parked", 1);
            self.parked.push(pending);
        }
    }

    /// After collecting `sender`'s head, promotes their next chained
    /// transaction (if any) into the index.
    fn release_next(&mut self, sender: Address) {
        self.live_heads.remove(&sender);
        let Some(queue) = self.chained.get_mut(&sender) else {
            return;
        };
        let next = queue.pop_front();
        if queue.is_empty() {
            self.chained.remove(&sender);
        }
        if let Some(pending) = next {
            self.live_heads.insert(sender);
            self.place(pending);
        }
    }
}

impl fmt::Display for BedrockMempool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BedrockMempool({} pending, base fee {} gwei)",
            self.total,
            self.base_fee.gwei()
        )
    }
}

/// A cloneable, thread-safe handle to a shared [`BedrockMempool`].
///
/// Fleet simulations spawn one thread per aggregator; all of them drain the
/// same pool. `parking_lot::Mutex` keeps the hot `collect` path cheap.
#[derive(Debug, Clone)]
pub struct SharedMempool {
    inner: Arc<Mutex<BedrockMempool>>,
}

impl SharedMempool {
    /// Wraps a mempool for shared use.
    pub fn new(pool: BedrockMempool) -> Self {
        SharedMempool {
            inner: Arc::new(Mutex::new(pool)),
        }
    }

    /// Submits a transaction.
    pub fn submit(&self, tx: NftTransaction) {
        self.inner.lock().submit(tx);
    }

    /// Submits a batch.
    pub fn submit_all<I: IntoIterator<Item = NftTransaction>>(&self, txs: I) {
        self.inner.lock().submit_all(txs);
    }

    /// Collects up to `n` transactions in fee-priority order.
    pub fn collect(&self, n: usize) -> Vec<NftTransaction> {
        self.inner.lock().collect(n)
    }

    /// Number of pending transactions.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// `true` when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parole_ovm::TxKind;
    use parole_primitives::{Address, FeeBundle, TokenId};

    fn tx(sender: u64, tip: u64) -> NftTransaction {
        NftTransaction::with_fees(
            Address::from_low_u64(sender),
            TxKind::Mint {
                collection: Address::from_low_u64(100),
                token: TokenId::new(sender),
            },
            FeeBundle::from_gwei(30, tip),
        )
    }

    fn sender_of(t: &NftTransaction) -> u64 {
        let b = t.sender.as_bytes();
        u64::from_be_bytes(b[12..].try_into().unwrap())
    }

    #[test]
    fn collect_orders_by_tip_then_fifo() {
        let mut pool = BedrockMempool::new(Wei::from_gwei(1));
        pool.submit(tx(1, 5));
        pool.submit(tx(2, 9));
        pool.submit(tx(3, 5)); // same tip as tx 1, arrived later
        let window = pool.collect(3);
        let senders: Vec<u64> = window.iter().map(sender_of).collect();
        assert_eq!(senders, vec![2, 1, 3]);
        assert!(pool.is_empty());
    }

    #[test]
    fn collect_respects_window_size() {
        let mut pool = BedrockMempool::new(Wei::from_gwei(1));
        for i in 0..10 {
            pool.submit(tx(i, i));
        }
        let window = pool.collect(4);
        assert_eq!(window.len(), 4);
        assert_eq!(pool.len(), 6);
        // The collected four had the highest tips (9, 8, 7, 6).
        let min_collected_tip = window
            .iter()
            .map(|t| t.fees.effective_tip(Wei::from_gwei(1)))
            .min()
            .unwrap();
        assert_eq!(min_collected_tip, Wei::from_gwei(6));
    }

    #[test]
    fn unincludable_txs_are_parked() {
        let mut pool = BedrockMempool::new(Wei::from_gwei(100));
        pool.submit(tx(1, 5)); // max fee 30 < base fee 100
        assert_eq!(pool.collect(10).len(), 0);
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.op_stats().parked, 1);
        // Base fee falls; the parked transaction becomes collectable.
        pool.set_base_fee(Wei::from_gwei(1));
        assert_eq!(pool.collect(10).len(), 1);
    }

    #[test]
    fn tick_marks_block_boundaries() {
        let mut pool = BedrockMempool::new(Wei::from_gwei(1));
        assert!(!pool.tick()); // t = 1
        assert!(pool.tick()); // t = 2, boundary
        assert!(!pool.tick());
        assert!(pool.tick());
        assert_eq!(pool.now(), 4);
    }

    #[test]
    fn priority_preview_is_nondestructive_and_bounded() {
        let mut pool = BedrockMempool::new(Wei::from_gwei(1));
        pool.submit(tx(1, 5));
        pool.submit(tx(2, 9));
        pool.submit(tx(3, 7));
        let preview = pool.priority_preview(2);
        assert_eq!(preview.len(), 2);
        assert_eq!(pool.len(), 3, "preview must not remove anything");
        let senders: Vec<u64> = preview.iter().map(sender_of).collect();
        assert_eq!(senders, vec![2, 3], "top-limit prefix in priority order");
        // A limit beyond the population returns everything, ordered.
        let all: Vec<u64> = pool.priority_preview(100).iter().map(sender_of).collect();
        assert_eq!(all, vec![2, 3, 1]);
    }

    /// The complexity witness: with a stable base fee, collecting a block
    /// performs exactly `block` heap pops and zero rebuilds, no matter how
    /// deep the pool is.
    #[test]
    fn collect_touches_the_block_not_the_pool() {
        let mut pool = BedrockMempool::new(Wei::from_gwei(1));
        for i in 0..1000 {
            pool.submit(tx(i, i % 50));
        }
        let before = pool.op_stats();
        assert_eq!(before.rebuilds, 0, "stable fee: never rebuilt");
        for _ in 0..5 {
            assert_eq!(pool.collect(8).len(), 8);
        }
        let after = pool.op_stats();
        assert_eq!(after.heap_pops - before.heap_pops, 40);
        assert_eq!(after.rebuilds, 0);
        assert_eq!(
            after.heap_pushes, before.heap_pushes,
            "no re-insertion churn on the collect path"
        );
        // A fee change triggers exactly one lazy rebuild.
        pool.set_base_fee(Wei::from_gwei(2));
        pool.collect(1);
        assert_eq!(pool.op_stats().rebuilds, 1);
    }

    /// Equivalence with the reference semantics: the indexed pool drains in
    /// exactly (tip desc, arrival asc) order across interleaved submissions
    /// and fee changes.
    #[test]
    fn drains_in_reference_order_across_fee_changes() {
        let mut pool = BedrockMempool::new(Wei::from_gwei(1));
        let mut reference: Vec<(u64, u64)> = Vec::new(); // (tip, arrival)
        for (arrival, (sender, tip)) in [(1u64, 9u64), (2, 3), (3, 9), (4, 1), (5, 7), (6, 3)]
            .into_iter()
            .enumerate()
        {
            pool.submit(tx(sender, tip));
            reference.push((tip, arrival as u64));
        }
        // Mid-stream fee drift (still below every cap) re-keys the heap but
        // must not change the relative order for uniform fee bundles.
        pool.set_base_fee(Wei::from_gwei(2));
        reference.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let drained = pool.collect(6);
        let got: Vec<u128> = drained
            .iter()
            .map(|t| t.fees.effective_tip(Wei::from_gwei(2)).gwei())
            .collect();
        let want: Vec<u128> = reference.iter().map(|&(tip, _)| tip as u128).collect();
        assert_eq!(got, want, "effective tips in descending reference order");
    }

    /// Chains mode: per-sender FIFO regardless of tips, cross-sender still
    /// tip-ordered.
    #[test]
    fn sender_chains_enforce_per_sender_fifo() {
        let mut pool = BedrockMempool::new(Wei::from_gwei(1)).with_sender_chains(true);
        assert!(pool.sender_chains());
        // Sender 1 submits a low-tip tx first, then a high-tip one.
        pool.submit(tx(1, 2));
        pool.submit(tx(1, 9));
        pool.submit(tx(2, 5));
        assert_eq!(pool.len(), 3);
        let order: Vec<(u64, u128)> = pool
            .collect(3)
            .iter()
            .map(|t| (sender_of(t), t.fees.effective_tip(Wei::from_gwei(1)).gwei()))
            .collect();
        // Sender 1's tip-9 tx cannot jump its own tip-2 predecessor; sender
        // 2's tip-5 tx outranks the tip-2 head. Once the head clears, the
        // tip-9 successor enters the heap and is collected next.
        assert_eq!(order, vec![(2, 5), (1, 2), (1, 9)]);
        assert!(pool.is_empty());
    }

    /// The legacy flat-`Vec` baseline and the indexed pool must be
    /// drop-in interchangeable: identical drain order across interleaved
    /// submissions, partial collects and fee changes.
    #[test]
    fn legacy_and_indexed_pools_drain_identically() {
        let mut indexed = BedrockMempool::new(Wei::from_gwei(1));
        let mut legacy = BedrockMempool::legacy_full_sort(Wei::from_gwei(1));
        assert!(legacy.is_legacy() && !indexed.is_legacy());
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        let mut submitted = 0u64;
        for round in 0..12 {
            for _ in 0..25 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let t = tx(submitted, x % 13);
                indexed.submit(t);
                legacy.submit(t);
                submitted += 1;
            }
            if round % 3 == 2 {
                let fee = Wei::from_gwei(1 + (round as u64 % 4));
                indexed.set_base_fee(fee);
                legacy.set_base_fee(fee);
            }
            let a = indexed.collect(7);
            let b = legacy.collect(7);
            assert_eq!(a, b, "round {round}: drain order diverged");
            assert_eq!(indexed.len(), legacy.len());
        }
        assert_eq!(indexed.collect(10_000), legacy.collect(10_000));
        assert!(legacy.op_stats().full_sorts >= 12, "legacy really sorted");
        assert_eq!(indexed.op_stats().full_sorts, 0);
    }

    /// `collect_block` fills to the gas limit and leaves the first
    /// non-fitting transaction pooled without any re-insertion churn.
    #[test]
    fn collect_block_stops_at_gas_limit_without_churn() {
        use parole_ovm::GasSchedule;
        let schedule = GasSchedule::flat(100);
        let mut pool = BedrockMempool::new(Wei::from_gwei(1));
        for i in 0..10 {
            pool.submit(tx(i, 5));
        }
        let pushes_before = pool.op_stats().heap_pushes;
        let block = pool.collect_block(&schedule, parole_primitives::Gas::new(350));
        assert_eq!(block.len(), 3, "three 100-gas txs fit under 350");
        assert_eq!(pool.len(), 7);
        assert_eq!(
            pool.op_stats().heap_pushes,
            pushes_before,
            "the non-fitting head is peeked, never popped and re-pushed"
        );
        // Legacy mode selects the identical prefix.
        let mut legacy = BedrockMempool::legacy_full_sort(Wei::from_gwei(1));
        for i in 0..10 {
            legacy.submit(tx(i, 5));
        }
        assert_eq!(
            legacy.collect_block(&schedule, parole_primitives::Gas::new(350)),
            block
        );
    }

    /// Base-fee drift that cannot change any effective tip (every cap has
    /// headroom above its priority fee) is absorbed in O(1): no rebuild,
    /// no rescreen, order still exact.
    #[test]
    fn fee_drift_inside_stability_window_skips_rekey() {
        let mut pool = BedrockMempool::new(Wei::from_gwei(1));
        for i in 0..100 {
            pool.submit(tx(i, i % 10)); // caps 30 gwei, tips ≤ 9 gwei
        }
        // Saturation starts at 30 − 9 = 21 gwei; drift well below it.
        for fee in [2u64, 3, 5, 8, 13] {
            pool.set_base_fee(Wei::from_gwei(fee));
            assert_eq!(pool.collect(4).len(), 4);
        }
        let ops = pool.op_stats();
        assert_eq!(ops.rebuilds, 0, "no O(P) rekey inside the window");
        assert_eq!(ops.rekeys_skipped, 5);
        assert_eq!(ops.rescreened, 0);
        // Crossing the saturation point must rebuild (tips compress).
        pool.set_base_fee(Wei::from_gwei(25));
        let _ = pool.collect(1);
        assert_eq!(pool.op_stats().rebuilds, 1);
    }

    #[test]
    fn shared_pool_concurrent_drain() {
        let pool = SharedMempool::new(BedrockMempool::new(Wei::from_gwei(1)));
        for i in 0..100 {
            pool.submit(tx(i, i % 10));
        }
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let p = pool.clone();
                std::thread::spawn(move || {
                    let mut mine = 0;
                    while !p.is_empty() {
                        mine += p.collect(5).len();
                    }
                    mine
                })
            })
            .collect();
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 100);
        assert!(pool.is_empty());
    }
}
