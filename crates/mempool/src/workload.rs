//! Synthetic NFT transaction traffic.
//!
//! The paper's experiments need streams of limited-edition NFT transactions
//! in which (a) every transaction is executable at its arrival position —
//! the arbitrage assessment (§V-B) explicitly assumes "all of which would
//! have satisfied the constraints in the original sequence" — and (b) the
//! IFU is involved in at least a mint + transfer pair, the minimum footprint
//! for a profitable reordering.
//!
//! [`WorkloadGenerator`] produces such streams by *forward simulation*: it
//! executes each candidate transaction against a private fork of the state
//! and only emits transactions that succeed there.

use parole_ovm::{NftTransaction, Ovm, TxKind};
use parole_primitives::{Address, FeeBundle};
use parole_state::L2State;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A Zipf(α)-distributed rank sampler over `n` ranks.
///
/// Real NFT traffic is heavily skewed: a handful of whales and drops
/// dominate senders and collections. The sampler precomputes the normalized
/// CDF of `p(k) ∝ 1/k^α` once (O(n)), then draws ranks by binary search
/// (O(log n)) — deterministic for a seeded RNG, so workloads stay
/// reproducible. `α = 0` degenerates to the uniform distribution; the
/// traffic harness and the workload generator share this one sampler for
/// their sender and collection skew knobs.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    /// Normalized cumulative weights; `cdf[k]` = P(rank ≤ k).
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Precomputes the CDF for `n` ranks at skew `alpha` (`n > 0`,
    /// `alpha ≥ 0`).
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "need at least one rank");
        assert!(alpha >= 0.0, "negative skew is not meaningful");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0_f64;
        for k in 1..=n {
            acc += (k as f64).powf(alpha).recip();
            cdf.push(acc);
        }
        for c in &mut cdf {
            *c /= acc;
        }
        ZipfSampler { cdf }
    }

    /// Number of ranks the sampler draws from.
    pub fn ranks(&self) -> usize {
        self.cdf.len()
    }

    /// Draws one rank in `0..ranks()`; rank 0 is the most popular.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Tunables for the traffic generator.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Relative weight of mint transactions.
    pub mint_weight: u32,
    /// Relative weight of transfer transactions.
    pub transfer_weight: u32,
    /// Relative weight of burn transactions.
    pub burn_weight: u32,
    /// Probability that a generated transaction is steered to involve one of
    /// the IFUs.
    pub ifu_participation: f64,
    /// Guarantee each IFU at least one mint and one transfer involvement
    /// (injected early in the stream when organic steering missed them).
    pub ensure_ifu_pair: bool,
    /// Base fee (Gwei) around which fee bundles are drawn.
    pub base_fee_gwei: u64,
    /// Zipf skew `α` of the sender distribution: `0.0` (the default) picks
    /// actors uniformly, larger values concentrate traffic on the
    /// low-indexed users — the "whale" population shape sustained-traffic
    /// benchmarks need. Sampling stays deterministic for a fixed seed.
    pub sender_zipf_alpha: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            mint_weight: 3,
            transfer_weight: 5,
            burn_weight: 2,
            ifu_participation: 0.3,
            ensure_ifu_pair: true,
            base_fee_gwei: 1,
            sender_zipf_alpha: 0.0,
        }
    }
}

/// Deterministic, seeded generator of executable NFT transaction streams.
#[derive(Debug)]
pub struct WorkloadGenerator {
    rng: StdRng,
    ovm: Ovm,
    config: WorkloadConfig,
}

impl WorkloadGenerator {
    /// Creates a generator with the given seed and configuration.
    pub fn new(seed: u64, config: WorkloadConfig) -> Self {
        WorkloadGenerator {
            rng: StdRng::seed_from_u64(seed),
            ovm: Ovm::new(),
            config,
        }
    }

    /// Creates a generator with default configuration.
    pub fn with_seed(seed: u64) -> Self {
        WorkloadGenerator::new(seed, WorkloadConfig::default())
    }

    /// Generates `n` transactions over `collection` that execute successfully
    /// in order, starting from `state`. `users` is the general population;
    /// `ifus` the illicitly favored users (may be empty; must be funded by
    /// the caller like everyone else).
    ///
    /// Returns fewer than `n` transactions only when the economy is genuinely
    /// stuck (e.g. nobody can afford anything) — tests treat that as a bug
    /// for sensible setups.
    pub fn generate(
        &mut self,
        state: &L2State,
        collection: Address,
        users: &[Address],
        ifus: &[Address],
        n: usize,
    ) -> Vec<NftTransaction> {
        assert!(!users.is_empty(), "need a user population");
        let sender_sampler = (self.config.sender_zipf_alpha > 0.0)
            .then(|| ZipfSampler::new(users.len(), self.config.sender_zipf_alpha));
        let mut fork = state.clone();
        let mut out = Vec::with_capacity(n);

        // Phase 1: guaranteed IFU involvement — a mint and a transfer per IFU.
        if self.config.ensure_ifu_pair {
            for &ifu in ifus {
                if out.len() + 2 > n {
                    break;
                }
                if let Some(tx) = self.try_mint(&fork, collection, ifu) {
                    self.commit(&mut fork, &mut out, tx);
                }
                if let Some(tx) = self.try_transfer_involving(&fork, collection, ifu, users) {
                    self.commit(&mut fork, &mut out, tx);
                }
            }
        }

        // Phase 2: organic traffic.
        let mut stalls = 0usize;
        while out.len() < n && stalls < 50 {
            let actor = self.pick_actor(users, ifus, sender_sampler.as_ref());
            let candidate = self.pick_candidate(&fork, collection, actor, users);
            match candidate {
                Some(tx) if self.ovm.would_succeed(&fork, &tx) => {
                    self.commit(&mut fork, &mut out, tx);
                    stalls = 0;
                }
                _ => stalls += 1,
            }
        }
        out
    }

    fn commit(&self, fork: &mut L2State, out: &mut Vec<NftTransaction>, tx: NftTransaction) {
        let receipt = self.ovm.execute(fork, &tx);
        debug_assert!(receipt.is_success(), "generator emitted a failing tx");
        out.push(tx);
    }

    fn pick_actor(
        &mut self,
        users: &[Address],
        ifus: &[Address],
        sampler: Option<&ZipfSampler>,
    ) -> Address {
        if !ifus.is_empty() && self.rng.gen_bool(self.config.ifu_participation) {
            *ifus.choose(&mut self.rng).expect("non-empty")
        } else {
            match sampler {
                Some(zipf) => users[zipf.sample(&mut self.rng)],
                None => *users.choose(&mut self.rng).expect("non-empty"),
            }
        }
    }

    fn fees(&mut self) -> FeeBundle {
        let base = self.config.base_fee_gwei;
        let tip = self.rng.gen_range(1..=10);
        FeeBundle::from_gwei(base * 3 + tip, tip)
    }

    fn pick_candidate(
        &mut self,
        fork: &L2State,
        collection: Address,
        actor: Address,
        users: &[Address],
    ) -> Option<NftTransaction> {
        let total = self.config.mint_weight + self.config.transfer_weight + self.config.burn_weight;
        let roll = self.rng.gen_range(0..total);
        if roll < self.config.mint_weight {
            self.try_mint(fork, collection, actor)
                .or_else(|| self.try_any_transfer(fork, collection, users))
        } else if roll < self.config.mint_weight + self.config.transfer_weight {
            self.try_transfer_involving(fork, collection, actor, users)
                .or_else(|| self.try_any_transfer(fork, collection, users))
        } else {
            self.try_burn(fork, collection, actor)
                .or_else(|| self.try_any_transfer(fork, collection, users))
        }
    }

    /// A mint by `actor`, if supply and balance allow.
    fn try_mint(
        &mut self,
        fork: &L2State,
        collection: Address,
        actor: Address,
    ) -> Option<NftTransaction> {
        let coll = fork.collection(collection)?;
        let token = coll.next_free_token()?;
        if fork.balance_of(actor) < coll.price() {
            return None;
        }
        Some(NftTransaction::with_fees(
            actor,
            TxKind::Mint { collection, token },
            self.fees(),
        ))
    }

    /// A transfer where `actor` is seller (if they own something) or buyer
    /// (if they can afford the price).
    fn try_transfer_involving(
        &mut self,
        fork: &L2State,
        collection: Address,
        actor: Address,
        users: &[Address],
    ) -> Option<NftTransaction> {
        let coll = fork.collection(collection)?;
        let price = coll.price();
        let owned = coll.tokens_of(actor);
        let sell = !owned.is_empty() && self.rng.gen_bool(0.5);
        if sell {
            let token = *owned.choose(&mut self.rng)?;
            let candidates: Vec<Address> = users
                .iter()
                .copied()
                .filter(|&u| u != actor && fork.balance_of(u) >= price)
                .collect();
            let buyer = *candidates.choose(&mut self.rng)?;
            Some(NftTransaction::with_fees(
                actor,
                TxKind::Transfer {
                    collection,
                    token,
                    to: buyer,
                },
                self.fees(),
            ))
        } else {
            if fork.balance_of(actor) < price {
                return None;
            }
            // Buy from a random current owner.
            let holdings: Vec<_> = coll.iter().filter(|(_, o)| *o != actor).collect();
            let &(token, seller) = holdings.choose(&mut self.rng)?;
            Some(NftTransaction::with_fees(
                seller,
                TxKind::Transfer {
                    collection,
                    token,
                    to: actor,
                },
                self.fees(),
            ))
        }
    }

    /// Any transfer between population members; fallback to keep streams
    /// flowing when a specific actor has no valid move.
    fn try_any_transfer(
        &mut self,
        fork: &L2State,
        collection: Address,
        users: &[Address],
    ) -> Option<NftTransaction> {
        let coll = fork.collection(collection)?;
        let price = coll.price();
        let holdings: Vec<_> = coll.iter().collect();
        let &(token, seller) = holdings.choose(&mut self.rng)?;
        let candidates: Vec<Address> = users
            .iter()
            .copied()
            .filter(|&u| u != seller && fork.balance_of(u) >= price)
            .collect();
        let buyer = *candidates.choose(&mut self.rng)?;
        Some(NftTransaction::with_fees(
            seller,
            TxKind::Transfer {
                collection,
                token,
                to: buyer,
            },
            self.fees(),
        ))
    }

    /// A burn of something `actor` owns.
    fn try_burn(
        &mut self,
        fork: &L2State,
        collection: Address,
        actor: Address,
    ) -> Option<NftTransaction> {
        let coll = fork.collection(collection)?;
        let owned = coll.tokens_of(actor);
        let token = *owned.choose(&mut self.rng)?;
        Some(NftTransaction::with_fees(
            actor,
            TxKind::Burn { collection, token },
            self.fees(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parole_nft::CollectionConfig;
    use parole_primitives::{TokenId, Wei};

    /// Builds a populated economy: a 40-token collection, 12 funded users,
    /// one funded IFU holding two tokens.
    fn economy() -> (L2State, Address, Vec<Address>, Address) {
        let mut state = L2State::new();
        let coll_addr = state.deploy_collection(CollectionConfig::limited_edition("W", 40, 100));
        let users: Vec<Address> = (1..=12).map(Address::from_low_u64).collect();
        for &u in &users {
            state.credit(u, Wei::from_eth(20));
        }
        let ifu = Address::from_low_u64(1000);
        state.credit(ifu, Wei::from_eth(20));
        {
            let coll = state.collection_mut(coll_addr).unwrap();
            coll.mint(ifu, TokenId::new(0)).unwrap();
            coll.mint(ifu, TokenId::new(1)).unwrap();
            for i in 2..10 {
                coll.mint(users[(i % users.len() as u64) as usize], TokenId::new(i))
                    .unwrap();
            }
        }
        (state, coll_addr, users, ifu)
    }

    #[test]
    fn generated_stream_is_executable_in_order() {
        let (state, coll, users, ifu) = economy();
        let mut gen = WorkloadGenerator::with_seed(7);
        let txs = gen.generate(&state, coll, &users, &[ifu], 30);
        assert_eq!(txs.len(), 30);
        let ovm = Ovm::new();
        let (receipts, _) = ovm.simulate_sequence(&state, &txs);
        assert!(
            receipts.iter().all(|r| r.is_success()),
            "every generated tx must execute at its arrival position"
        );
    }

    #[test]
    fn ifu_pair_is_guaranteed() {
        let (state, coll, users, ifu) = economy();
        let mut gen = WorkloadGenerator::with_seed(99);
        let txs = gen.generate(&state, coll, &users, &[ifu], 20);
        let has_ifu_mint = txs
            .iter()
            .any(|t| t.sender == ifu && matches!(t.kind, TxKind::Mint { .. }));
        let has_ifu_transfer = txs
            .iter()
            .any(|t| t.involves(ifu) && matches!(t.kind, TxKind::Transfer { .. }));
        assert!(has_ifu_mint, "IFU must mint at least once");
        assert!(has_ifu_transfer, "IFU must be party to a transfer");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (state, coll, users, ifu) = economy();
        let a = WorkloadGenerator::with_seed(5).generate(&state, coll, &users, &[ifu], 15);
        let b = WorkloadGenerator::with_seed(5).generate(&state, coll, &users, &[ifu], 15);
        assert_eq!(a, b);
        let c = WorkloadGenerator::with_seed(6).generate(&state, coll, &users, &[ifu], 15);
        assert_ne!(a, c);
    }

    #[test]
    fn respects_mix_weights_roughly() {
        let (state, coll, users, _) = economy();
        let config = WorkloadConfig {
            mint_weight: 0,
            transfer_weight: 1,
            burn_weight: 0,
            ensure_ifu_pair: false,
            ..WorkloadConfig::default()
        };
        let mut gen = WorkloadGenerator::new(3, config);
        let txs = gen.generate(&state, coll, &users, &[], 20);
        assert!(txs
            .iter()
            .all(|t| matches!(t.kind, TxKind::Transfer { .. })));
    }

    #[test]
    fn zipf_sampler_is_deterministic_and_skewed() {
        let zipf = ZipfSampler::new(50, 1.2);
        assert_eq!(zipf.ranks(), 50);
        let draw = |seed: u64| -> Vec<usize> {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..2000).map(|_| zipf.sample(&mut rng)).collect()
        };
        assert_eq!(draw(11), draw(11), "same seed, same draws");
        let counts = draw(11).iter().fold(vec![0usize; 50], |mut c, &r| {
            c[r] += 1;
            c
        });
        assert!(
            counts[0] > counts[25] && counts[0] > counts[49],
            "rank 0 must dominate the tail: {counts:?}"
        );
        // α = 0 degenerates to uniform: head and tail within noise of n/ranks.
        let flat = ZipfSampler::new(50, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let counts =
            (0..20_000)
                .map(|_| flat.sample(&mut rng))
                .fold(vec![0usize; 50], |mut c, r| {
                    c[r] += 1;
                    c
                });
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(
            max - min < 200,
            "uniform spread expected: min {min}, max {max}"
        );
    }

    #[test]
    fn zipf_skew_concentrates_generated_senders() {
        let (state, coll, users, _) = economy();
        let skewed_cfg = WorkloadConfig {
            sender_zipf_alpha: 1.5,
            ensure_ifu_pair: false,
            ..WorkloadConfig::default()
        };
        let mut skewed = WorkloadGenerator::new(21, skewed_cfg.clone());
        let txs = skewed.generate(&state, coll, &users, &[], 30);
        assert!(!txs.is_empty());
        // Determinism with the knob set.
        let again = WorkloadGenerator::new(21, skewed_cfg).generate(&state, coll, &users, &[], 30);
        assert_eq!(txs, again);
        // Every transaction still executes at its arrival position.
        let ovm = Ovm::new();
        let (receipts, _) = ovm.simulate_sequence(&state, &txs);
        assert!(receipts.iter().all(|r| r.is_success()));
    }

    #[test]
    fn stalls_gracefully_in_dead_economy() {
        // Nobody has any money and nothing is minted: only the empty stream
        // is possible.
        let mut state = L2State::new();
        let coll = state.deploy_collection(CollectionConfig::limited_edition("D", 5, 1_000_000));
        let users: Vec<Address> = (1..=3).map(Address::from_low_u64).collect();
        let mut gen = WorkloadGenerator::with_seed(1);
        let txs = gen.generate(&state, coll, &users, &[], 10);
        assert!(txs.is_empty());
    }
}
