//! # parole-mempool
//!
//! Bedrock's private mempool and the synthetic fee market that feeds it.
//!
//! In Bedrock (paper §IV-A), pending L2 transactions sit in a *private*
//! mempool; aggregators periodically collect a window of transactions ordered
//! by base + priority fees. The mempool being private is Optimism's MEV
//! mitigation — an aggregator cannot *choose* which transactions it receives.
//! What PAROLE exploits is that the aggregator may still *reorder* the window
//! it was handed.
//!
//! This crate provides:
//!
//! - [`BedrockMempool`] — a lazily-maintained priority index (max-heap on
//!   effective tip with FIFO tie-breaking, parked sub-cap transactions,
//!   optional per-sender chains) with fixed-interval block pacing —
//!   `collect(n)` is O(n log P), not a full-pool sort;
//! - [`SharedMempool`] — a thread-safe handle for fleet simulations where
//!   many aggregators drain one mempool concurrently;
//! - [`WorkloadGenerator`] — generates NFT transaction traffic that is
//!   guaranteed executable in arrival order (the property the paper's
//!   arbitrage assessment assumes of the original sequence), with a
//!   configurable mint/transfer/burn mix and IFU participation.
//!
//! # Example
//!
//! ```
//! use parole_mempool::BedrockMempool;
//! use parole_ovm::{NftTransaction, TxKind};
//! use parole_primitives::{Address, FeeBundle, TokenId, Wei};
//!
//! let mut pool = BedrockMempool::new(Wei::from_gwei(1));
//! let collection = Address::from_low_u64(100);
//! for (tip, sender) in [(1u64, 1u64), (9, 2), (5, 3)] {
//!     pool.submit(NftTransaction::with_fees(
//!         Address::from_low_u64(sender),
//!         TxKind::Mint { collection, token: TokenId::new(sender) },
//!         FeeBundle::from_gwei(30, tip),
//!     ));
//! }
//! let window = pool.collect(2);
//! // Highest tips first: senders 2 then 3.
//! assert_eq!(window[0].sender, Address::from_low_u64(2));
//! assert_eq!(window[1].sender, Address::from_low_u64(3));
//! assert_eq!(pool.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fee_market;
mod pool;
mod sequencer;
mod workload;

pub use fee_market::BaseFeeController;
pub use pool::{BedrockMempool, PoolOpStats, SharedMempool};
pub use sequencer::{ExecMode, Screened, ScreeningHook, SealedBlock, Sequencer};
pub use workload::{WorkloadConfig, WorkloadGenerator, ZipfSampler};
