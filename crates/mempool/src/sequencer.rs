//! Bedrock's sequencer: fixed-interval block production from the private
//! mempool.
//!
//! The sequencer closes the loop between the mempool's fee-priority queue,
//! per-block gas limits, the EIP-1559 base-fee controller, and — when the
//! §VIII defense is deployed — a *screening hook* that may defer
//! transactions "to the block behind". The attack-side crates never talk to
//! the sequencer (aggregators collect raw windows); it exists so the defense
//! can be evaluated in its intended position.

use crate::{BaseFeeController, BedrockMempool};
use parole_crypto::Hash32;
use parole_ovm::{
    Bloom, GasSchedule, LogFilter, LogHit, LogIndex, NftTransaction, Ovm, ParallelExecutor, Receipt,
};
use parole_primitives::Gas;
use parole_state::L2State;
use std::fmt;

/// How [`Sequencer::seal_and_execute`] runs a sealed block's transactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// One-by-one in sealed order on the calling thread.
    #[default]
    Serial,
    /// The optimistic-concurrency scheduler ([`ParallelExecutor`]); output
    /// is bit-identical to [`ExecMode::Serial`] at any thread count.
    Parallel {
        /// Worker threads (`0` = `PAROLE_THREADS` / machine parallelism).
        threads: usize,
    },
}

/// What a screening hook decides about a prospective block.
#[derive(Debug, Clone)]
pub struct Screened {
    /// Transactions admitted into the block.
    pub admitted: Vec<NftTransaction>,
    /// Transactions pushed back into the mempool for a later block.
    pub deferred: Vec<NftTransaction>,
}

/// A screening hook, e.g. the §VIII GENTRANSEQ-based detector from the
/// `parole` core crate (`defense::screen_window` adapts directly).
pub type ScreeningHook<'a> = dyn FnMut(&L2State, Vec<NftTransaction>) -> Screened + 'a;

/// One sealed L2 block.
#[derive(Debug, Clone)]
pub struct SealedBlock {
    /// Block ordinal since the sequencer started.
    pub number: u64,
    /// Transactions in final order.
    pub txs: Vec<NftTransaction>,
    /// Gas consumed by the block.
    pub gas_used: Gas,
    /// Base fee the block was built under.
    pub base_fee: parole_primitives::Wei,
    /// Per-transaction intermediate state roots — `roots[i]` is the state
    /// root after the first `i` transactions, so a block of `n`
    /// transactions carries `n + 1` roots. Recorded by
    /// [`Sequencer::seal_and_execute`] when step-root recording is on
    /// ([`Sequencer::with_step_roots`]); this is the defender-side
    /// evidence the interactive fraud-proof bisection game queries.
    /// `None` when recording is off or the block was sealed without
    /// execution ([`Sequencer::seal_block`]).
    pub step_roots: Option<Vec<Hash32>>,
    /// OR-fold of the executed receipts' blooms — the block-level bloom a
    /// log query probes before scanning receipts. The zero bloom for
    /// blocks sealed without execution ([`Sequencer::seal_block`]) and for
    /// blocks that emitted nothing.
    pub bloom: Bloom,
}

/// The block-producing sequencer.
pub struct Sequencer {
    mempool: BedrockMempool,
    fee_controller: BaseFeeController,
    gas_schedule: GasSchedule,
    gas_limit: Gas,
    blocks_sealed: u64,
    ovm: Ovm,
    exec_mode: ExecMode,
    record_step_roots: bool,
    /// Chain-level log index over executed blocks; `None` when indexing is
    /// off ([`Sequencer::with_log_index`]).
    log_index: Option<LogIndex>,
}

impl fmt::Debug for Sequencer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sequencer")
            .field("pending", &self.mempool.len())
            .field("base_fee_gwei", &self.fee_controller.base_fee().gwei())
            .field("blocks_sealed", &self.blocks_sealed)
            .finish()
    }
}

impl Sequencer {
    /// Creates a sequencer over the given mempool with a per-block gas
    /// limit; the fee controller targets half the limit (EIP-1559's
    /// elasticity of 2).
    pub fn new(mempool: BedrockMempool, gas_limit: Gas) -> Self {
        let base_fee = mempool.base_fee();
        let target = Gas::new((gas_limit.units() / 2).max(1));
        Sequencer {
            mempool,
            fee_controller: BaseFeeController::new(base_fee, target),
            gas_schedule: GasSchedule::paper_calibrated(),
            gas_limit,
            blocks_sealed: 0,
            ovm: Ovm::new(),
            exec_mode: ExecMode::default(),
            record_step_roots: false,
            log_index: None,
        }
    }

    /// Sets the execution mode used by [`Sequencer::seal_and_execute`]
    /// (builder-style). Serial by default.
    #[must_use]
    pub fn with_exec_mode(mut self, mode: ExecMode) -> Self {
        self.exec_mode = mode;
        self
    }

    /// Sets the OVM used by [`Sequencer::seal_and_execute`]
    /// (builder-style), e.g. one configured to charge fees.
    #[must_use]
    pub fn with_ovm(mut self, ovm: Ovm) -> Self {
        self.ovm = ovm;
        self
    }

    /// Switches per-transaction state-root recording on or off
    /// (builder-style, off by default). With it on,
    /// [`Sequencer::seal_and_execute`] fills [`SealedBlock::step_roots`]
    /// with the root after every transaction — the intermediate
    /// commitments the interactive fraud-proof game bisects over. Each
    /// root read is an incremental O(dirty · log n) flush of the
    /// commitment cache, not a rebuild; under
    /// [`ExecMode::Parallel`] the roots come from a serial replay of the
    /// sealed order (per-transaction intermediate states do not exist on
    /// the parallel path), doubling execution cost for that block.
    #[must_use]
    pub fn with_step_roots(mut self, on: bool) -> Self {
        self.record_step_roots = on;
        self
    }

    /// Whether per-transaction state roots are recorded at seal time.
    pub fn records_step_roots(&self) -> bool {
        self.record_step_roots
    }

    /// Switches the chain-level log index on or off (builder-style, off by
    /// default). With it on, every [`Sequencer::seal_and_execute`] block is
    /// indexed — per-receipt logs behind per-receipt and per-block blooms —
    /// and [`Sequencer::query_logs`] answers [`LogFilter`] queries over the
    /// sealed chain. Turning indexing off mid-stream discards the index.
    #[must_use]
    pub fn with_log_index(mut self, on: bool) -> Self {
        self.log_index = on.then(LogIndex::new);
        self
    }

    /// Whether executed blocks are being log-indexed.
    pub fn indexes_logs(&self) -> bool {
        self.log_index.is_some()
    }

    /// The chain-level log index, when indexing is on.
    pub fn log_index(&self) -> Option<&LogIndex> {
        self.log_index.as_ref()
    }

    /// Answers a [`LogFilter`] query over every indexed block, in chain
    /// order. Returns the empty vector when indexing is off.
    pub fn query_logs(&self, filter: &LogFilter) -> Vec<LogHit> {
        self.log_index
            .as_ref()
            .map(|index| index.query(filter))
            .unwrap_or_default()
    }

    /// The configured execution mode.
    pub fn exec_mode(&self) -> ExecMode {
        self.exec_mode
    }

    /// Pending transactions in the underlying mempool.
    pub fn pending(&self) -> usize {
        self.mempool.len()
    }

    /// The mempool (e.g. to submit traffic).
    pub fn mempool_mut(&mut self) -> &mut BedrockMempool {
        &mut self.mempool
    }

    /// Blocks sealed so far.
    pub fn blocks_sealed(&self) -> u64 {
        self.blocks_sealed
    }

    /// Current base fee.
    pub fn base_fee(&self) -> parole_primitives::Wei {
        self.fee_controller.base_fee()
    }

    /// The per-block gas limit.
    pub fn gas_limit(&self) -> Gas {
        self.gas_limit
    }

    /// Adjusts the per-block gas limit (the L1-style limit drift real
    /// sequencers apply between blocks). The fee controller's target is
    /// unchanged; only block filling is affected.
    pub fn set_gas_limit(&mut self, gas_limit: Gas) {
        self.gas_limit = gas_limit;
    }

    /// Seals one block: pulls fee-ordered transactions until the gas limit,
    /// optionally runs the screening hook (deferred transactions go back to
    /// the mempool), updates the base fee from the block's fullness and
    /// returns the sealed block.
    pub fn seal_block(
        &mut self,
        state: &L2State,
        screening: Option<&mut ScreeningHook<'_>>,
    ) -> SealedBlock {
        let _span = parole_telemetry::span("sequencer.seal_block");
        parole_telemetry::observe("sequencer.mempool_depth", self.mempool.len() as u64);
        // Pull candidates up to the gas limit in one index pass; the first
        // transaction that does not fit is never removed from the pool.
        let candidates = self
            .mempool
            .collect_block(&self.gas_schedule, self.gas_limit);

        // Screening (§VIII): deferred transactions return to the mempool.
        let txs = match screening {
            Some(hook) => {
                let screened = hook(state, candidates);
                parole_telemetry::counter("sequencer.txs_deferred", screened.deferred.len() as u64);
                for tx in &screened.deferred {
                    self.mempool.submit(*tx);
                }
                screened.admitted
            }
            None => candidates,
        };

        let gas_used = txs.iter().map(|t| self.gas_schedule.gas_for(&t.kind)).sum();
        let base_fee = self.fee_controller.base_fee();
        let new_fee = self.fee_controller.on_block(gas_used);

        // Cheap always-on (debug builds) sanity: blocks never exceed the gas
        // limit and the fee never sinks below the floor.
        debug_assert!(gas_used.units() <= self.gas_limit.units());
        debug_assert!(new_fee >= self.fee_controller.floor());

        // Full audit: re-derive the EIP-1559 update independently and compare.
        #[cfg(feature = "audit")]
        if let Err(violation) = parole_audit::fee::check_fee_update(
            base_fee,
            gas_used,
            self.fee_controller.target_gas(),
            self.fee_controller.floor(),
            new_fee,
        ) {
            panic!("sequencer fee-market audit failed: {violation}");
        }

        self.mempool.set_base_fee(new_fee);
        self.blocks_sealed += 1;
        parole_telemetry::counter("sequencer.blocks_sealed", 1);
        parole_telemetry::counter("sequencer.txs_sealed", txs.len() as u64);
        parole_telemetry::observe("sequencer.gas_used", gas_used.units());
        parole_telemetry::observe_f64("sequencer.base_fee_gwei", new_fee.gwei() as f64);
        SealedBlock {
            number: self.blocks_sealed,
            txs,
            gas_used,
            base_fee,
            step_roots: None,
            bloom: Bloom::ZERO,
        }
    }

    /// Seals one block and executes it against `state` under the configured
    /// [`ExecMode`], returning the block and its receipts.
    ///
    /// The parallel path is order-stable: whatever the worker partition, the
    /// committed receipts and post-state are bit-identical to serial
    /// execution of the sealed order. Debug builds re-execute every parallel
    /// block serially from the same pre-state and assert exactly that; with
    /// the `audit` feature the block additionally runs through
    /// `parole_audit::ParallelOracle`, which diffs serial against 1/2/8
    /// worker threads with an independently recomputed reference root.
    pub fn seal_and_execute(
        &mut self,
        state: &mut L2State,
        screening: Option<&mut ScreeningHook<'_>>,
    ) -> (SealedBlock, Vec<Receipt>) {
        let mut block = self.seal_block(state, screening);
        // Event-replay oracle input: the pre-block token maps, captured
        // before any transaction of this block executes.
        #[cfg(feature = "audit")]
        let pre_maps = parole_audit::replay::snapshot_maps(state);
        let receipts = match self.exec_mode {
            ExecMode::Serial if self.record_step_roots => {
                let mut roots = Vec::with_capacity(block.txs.len() + 1);
                roots.push(state.state_root());
                let receipts = block
                    .txs
                    .iter()
                    .map(|tx| {
                        let r = self.ovm.execute(state, tx);
                        roots.push(state.state_root());
                        r
                    })
                    .collect();
                parole_telemetry::counter("fraud.step_roots_recorded", roots.len() as u64);
                block.step_roots = Some(roots);
                receipts
            }
            ExecMode::Serial => self.ovm.execute_sequence(state, &block.txs),
            ExecMode::Parallel { threads } => {
                #[cfg(any(debug_assertions, feature = "audit"))]
                let pre = state.clone();
                // Per-transaction intermediate states do not exist on the
                // parallel path; record the trace from a serial replay.
                let step_root_pre = self.record_step_roots.then(|| state.clone());

                let executor = ParallelExecutor::with_threads(self.ovm.clone(), threads);
                let (receipts, _stats) = executor.execute_block(state, &block.txs);

                #[cfg(any(debug_assertions, feature = "audit"))]
                {
                    let mut serial = pre.clone();
                    let want = self.ovm.execute_sequence(&mut serial, &block.txs);
                    assert_eq!(
                        want, receipts,
                        "parallel block {} receipts diverged from serial order",
                        block.number
                    );
                    assert_eq!(
                        serial.state_root(),
                        state.state_root(),
                        "parallel block {} post-state diverged from serial order",
                        block.number
                    );
                }

                #[cfg(feature = "audit")]
                if let Err(violation) = parole_audit::ParallelOracle::new(self.ovm.clone())
                    .check_block(&pre, &block.txs)
                {
                    panic!("sequencer parallel-execution audit failed: {violation}");
                }

                if let Some(replay_pre) = step_root_pre {
                    let mut replay = replay_pre;
                    let mut roots = Vec::with_capacity(block.txs.len() + 1);
                    roots.push(replay.state_root());
                    for tx in &block.txs {
                        let _ = self.ovm.execute(&mut replay, tx);
                        roots.push(replay.state_root());
                    }
                    debug_assert_eq!(
                        roots.last().copied(),
                        Some(state.state_root()),
                        "serial step-root replay must land on the parallel post-state"
                    );
                    parole_telemetry::counter("fraud.step_roots_recorded", roots.len() as u64);
                    block.step_roots = Some(roots);
                }

                receipts
            }
        };
        // Event-replay oracle: folding the block's receipt log stream over
        // the pre-block maps must land exactly on the post-block ownership,
        // approval, operator and curve maps (fail-stop).
        #[cfg(feature = "audit")]
        if let Err(violation) =
            parole_audit::replay::check_event_replay(&pre_maps, &receipts, state)
        {
            panic!(
                "sequencer event-replay audit failed at block {}: {violation}",
                block.number
            );
        }

        // The block bloom is the OR-fold of its receipts' blooms — computed
        // unconditionally (it is a few hundred cheap byte-ORs) so sealed
        // blocks always carry it; the queryable index is opt-in.
        for r in &receipts {
            block.bloom.accrue(&r.bloom);
        }
        if let Some(index) = self.log_index.as_mut() {
            let indexed_bloom = index.index_block(block.number, &receipts);
            debug_assert_eq!(
                indexed_bloom, block.bloom,
                "index bloom must equal the block's receipt fold"
            );
        }
        (block, receipts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parole_ovm::TxKind;
    use parole_primitives::{Address, FeeBundle, TokenId, Wei};

    fn tx(sender: u64, tip: u64) -> NftTransaction {
        NftTransaction::with_fees(
            Address::from_low_u64(sender),
            TxKind::Mint {
                collection: Address::from_low_u64(100),
                token: TokenId::new(sender),
            },
            FeeBundle::from_gwei(300, tip),
        )
    }

    fn sequencer_with(txs: Vec<NftTransaction>, gas_limit: u64) -> Sequencer {
        let mut pool = BedrockMempool::new(Wei::from_gwei(1));
        pool.submit_all(txs);
        Sequencer::new(pool, Gas::new(gas_limit))
    }

    #[test]
    fn block_respects_gas_limit() {
        // Mints cost 100_001 gas; a 250k limit fits two.
        let mut seq = sequencer_with((1..=5).map(|i| tx(i, i)).collect(), 250_000);
        let block = seq.seal_block(&L2State::new(), None);
        assert_eq!(block.txs.len(), 2);
        assert!(block.gas_used.units() <= 250_000);
        // The rest stays pending.
        assert_eq!(seq.pending(), 3);
    }

    #[test]
    fn blocks_take_highest_tips_first() {
        let mut seq = sequencer_with(vec![tx(1, 1), tx(2, 9), tx(3, 5)], 250_000);
        let block = seq.seal_block(&L2State::new(), None);
        let senders: Vec<_> = block.txs.iter().map(|t| t.sender).collect();
        assert_eq!(
            senders,
            vec![Address::from_low_u64(2), Address::from_low_u64(3)]
        );
    }

    #[test]
    fn full_blocks_raise_the_base_fee() {
        let mut seq = sequencer_with((1..=20).map(|i| tx(i, 5)).collect(), 200_002);
        let before = seq.base_fee();
        for _ in 0..4 {
            seq.seal_block(&L2State::new(), None);
        }
        assert!(
            seq.base_fee() > before,
            "sustained full blocks must reprice"
        );
    }

    #[test]
    fn screening_hook_defers_back_to_mempool() {
        let mut seq = sequencer_with((1..=3).map(|i| tx(i, i)).collect(), 1_000_000);
        let mut hook = |_state: &L2State, mut txs: Vec<NftTransaction>| {
            // Defer the last transaction of every block.
            let deferred = txs.split_off(txs.len().saturating_sub(1));
            Screened {
                admitted: txs,
                deferred,
            }
        };
        let block = seq.seal_block(&L2State::new(), Some(&mut hook));
        assert_eq!(block.txs.len(), 2);
        assert_eq!(seq.pending(), 1, "deferred tx returned to the pool");
        // It gets its chance in the next block.
        let block2 = seq.seal_block(&L2State::new(), Some(&mut hook));
        assert_eq!(block2.txs.len(), 0);
        assert_eq!(seq.pending(), 1);
    }

    /// Funds and deploys enough world for sealed mint blocks to execute.
    fn funded_world() -> L2State {
        use parole_nft::CollectionConfig;
        let mut state = L2State::new();
        state
            .deploy_collection_at(
                Address::from_low_u64(100),
                CollectionConfig::limited_edition("Seq", 64, 200),
            )
            .unwrap();
        for u in 1..=20u64 {
            state.credit(Address::from_low_u64(u), Wei::from_eth(10));
        }
        state
    }

    /// Draining the same mempool contents through the serial and the
    /// parallel execution mode must produce identical receipts, identical
    /// block structure and identical post-states. (Debug builds also run
    /// the built-in serial replay assertion inside `seal_and_execute`.)
    #[test]
    fn parallel_mode_drains_identically_to_serial() {
        let txs: Vec<NftTransaction> = (1..=12).map(|i| tx(i, i % 5)).collect();
        let base = funded_world();

        let mut serial_state = base.clone();
        let mut serial_seq = sequencer_with(txs.clone(), 450_000);
        let mut parallel_state = base.clone();
        let mut parallel_seq =
            sequencer_with(txs, 450_000).with_exec_mode(ExecMode::Parallel { threads: 4 });

        while serial_seq.pending() > 0 || parallel_seq.pending() > 0 {
            let (sb, sr) = serial_seq.seal_and_execute(&mut serial_state, None);
            let (pb, pr) = parallel_seq.seal_and_execute(&mut parallel_state, None);
            assert_eq!(sb.txs, pb.txs, "sealed order must not depend on exec mode");
            assert_eq!(sb.gas_used, pb.gas_used);
            assert_eq!(sr, pr, "receipts must not depend on exec mode");
        }
        assert_eq!(serial_state.state_root(), parallel_state.state_root());
        assert_eq!(serial_seq.base_fee(), parallel_seq.base_fee());
    }

    /// With step-root recording on, a sealed block carries one root per
    /// transaction plus the pre-root, the endpoints match the observable
    /// pre/post states, and the trace is identical across execution modes.
    #[test]
    fn step_roots_recorded_behind_the_knob() {
        let txs: Vec<NftTransaction> = (1..=4).map(|i| tx(i, i)).collect();
        let base = funded_world();

        // Off by default: no roots.
        let mut plain_state = base.clone();
        let mut plain = sequencer_with(txs.clone(), 1_000_000);
        let (block, _) = plain.seal_and_execute(&mut plain_state, None);
        assert_eq!(block.step_roots, None);

        let mut serial_state = base.clone();
        let mut serial = sequencer_with(txs.clone(), 1_000_000).with_step_roots(true);
        assert!(serial.records_step_roots());
        let pre_root = serial_state.state_root();
        let (sblock, _) = serial.seal_and_execute(&mut serial_state, None);
        let sroots = sblock.step_roots.as_ref().expect("recording is on");
        assert_eq!(sroots.len(), sblock.txs.len() + 1);
        assert_eq!(sroots[0], pre_root);
        assert_eq!(*sroots.last().unwrap(), serial_state.state_root());

        // The parallel path replays serially for the trace — same roots.
        let mut par_state = base.clone();
        let mut par = sequencer_with(txs, 1_000_000)
            .with_step_roots(true)
            .with_exec_mode(ExecMode::Parallel { threads: 4 });
        let (pblock, _) = par.seal_and_execute(&mut par_state, None);
        assert_eq!(pblock.step_roots.as_ref(), Some(sroots));
    }

    /// With log indexing on, sealed blocks carry a bloom folded from their
    /// receipts, the index answers range/collection/address queries, and a
    /// query for an uninvolved address is pruned by blooms alone.
    #[test]
    fn log_index_records_and_queries_sealed_blocks() {
        use parole_ovm::{EventKind, LogFilter};

        let txs: Vec<NftTransaction> = (1..=6).map(|i| tx(i, i)).collect();
        let mut state = funded_world();
        let mut seq = sequencer_with(txs, 250_000).with_log_index(true);
        assert!(seq.indexes_logs());

        let mut blocks = Vec::new();
        while seq.pending() > 0 {
            let (block, receipts) = seq.seal_and_execute(&mut state, None);
            // Successful mints emit Transfer + PriceChanged → non-empty bloom.
            assert!(receipts.iter().any(|r| r.is_success()));
            assert!(!block.bloom.is_empty());
            assert!(receipts
                .iter()
                .filter(|r| !r.logs.is_empty())
                .all(|r| r.bloom_consistent()));
            blocks.push(block);
        }
        let index = seq.log_index().expect("indexing is on");
        assert_eq!(index.len(), blocks.len());

        // Every mint produces exactly one Transfer and one PriceChanged.
        let transfers = seq.query_logs(&LogFilter::all().of_kind(EventKind::Transfer));
        let prices = seq.query_logs(&LogFilter::all().of_kind(EventKind::PriceChanged));
        assert_eq!(transfers.len(), 6);
        assert_eq!(prices.len(), 6);
        // Chain order: block numbers ascend.
        assert!(transfers.windows(2).all(|w| w[0].block <= w[1].block));

        // Per-address query finds exactly that minter's Transfer.
        let mine = seq.query_logs(&LogFilter::all().involving(Address::from_low_u64(3)));
        assert_eq!(mine.len(), 1);
        assert_eq!(mine[0].entry.kind(), EventKind::Transfer);

        // Range restriction cuts the result set down to one block.
        let first = blocks[0].number;
        let ranged = seq.query_logs(&LogFilter::all().in_blocks(first, first));
        assert!(ranged.iter().all(|h| h.block == first));
        assert!(!ranged.is_empty());

        // An address never involved yields nothing (bloom-pruned or not).
        assert!(seq
            .query_logs(&LogFilter::all().involving(Address::from_low_u64(999)))
            .is_empty());

        // Indexing off: no index, queries come back empty.
        let off = sequencer_with(vec![tx(1, 1)], 250_000);
        assert!(!off.indexes_logs());
        assert!(off.query_logs(&LogFilter::all()).is_empty());
    }

    #[test]
    fn empty_mempool_seals_empty_blocks() {
        let mut seq = sequencer_with(vec![], 1_000_000);
        let block = seq.seal_block(&L2State::new(), None);
        assert!(block.txs.is_empty());
        assert_eq!(block.gas_used, Gas::ZERO);
        assert_eq!(seq.blocks_sealed(), 1);
    }

    /// With the `audit` feature on, every seal runs the fee update through
    /// the independent EIP-1559 re-derivation; a long mixed stream of full,
    /// empty and partial blocks must stay silent.
    #[cfg(feature = "audit")]
    #[test]
    fn audited_sealing_stays_silent_across_block_mixes() {
        let mut seq = sequencer_with((1..=40).map(|i| tx(i, i % 7)).collect(), 300_000);
        let state = L2State::new();
        for _ in 0..60 {
            seq.seal_block(&state, None); // panics on any fee-audit violation
        }
        assert_eq!(seq.blocks_sealed(), 60);
    }

    /// With the `audit` feature on, every executed block also runs the
    /// event-replay oracle: the receipt log stream folded over the pre-block
    /// maps must reproduce the post-block token maps. A workload mixing all
    /// five operations (with some reverting) across serial and parallel
    /// modes must stay silent.
    #[cfg(feature = "audit")]
    #[test]
    fn audited_execution_replays_event_streams() {
        let coll = Address::from_low_u64(100);
        let mixed: Vec<NftTransaction> = (1..=8u64)
            .flat_map(|i| {
                let sender = Address::from_low_u64(i);
                [
                    NftTransaction::with_fees(
                        sender,
                        TxKind::Mint {
                            collection: coll,
                            token: TokenId::new(i),
                        },
                        FeeBundle::from_gwei(300, i),
                    ),
                    NftTransaction::with_fees(
                        sender,
                        TxKind::SetApprovalForAll {
                            collection: coll,
                            operator: Address::from_low_u64(i + 1),
                            approved: i % 2 == 0,
                        },
                        FeeBundle::from_gwei(300, i),
                    ),
                    // Half of these revert (wrong owner after the mint
                    // interleaving) — reverted txs must emit nothing.
                    NftTransaction::with_fees(
                        sender,
                        TxKind::Transfer {
                            collection: coll,
                            token: TokenId::new(i % 4),
                            to: Address::from_low_u64(i + 10),
                        },
                        FeeBundle::from_gwei(300, i),
                    ),
                ]
            })
            .collect();
        for mode in [ExecMode::Serial, ExecMode::Parallel { threads: 4 }] {
            let mut state = funded_world();
            let mut seq = sequencer_with(mixed.clone(), 600_000).with_exec_mode(mode);
            let mut executed = 0;
            while seq.pending() > 0 {
                let (_, receipts) = seq.seal_and_execute(&mut state, None);
                executed += receipts.len();
            }
            assert_eq!(executed, mixed.len(), "all txs must eventually execute");
        }
    }
}
