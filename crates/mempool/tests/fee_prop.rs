//! Property tests for the EIP-1559 base-fee controller: monotonicity,
//! the at-target fixed point, and floor behaviour.

use parole_mempool::BaseFeeController;
use parole_primitives::{Gas, Wei};
use proptest::prelude::*;

const TARGET: u64 = 1_000_000;

fn ctl(initial_wei: u128) -> BaseFeeController {
    BaseFeeController::new(Wei::from_wei(initial_wei), Gas::new(TARGET))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Over-target blocks strictly raise the fee, under-target blocks never
    /// raise it, and an exactly-on-target block is a fixed point.
    #[test]
    fn fee_moves_with_the_sign_of_the_gas_deviation(
        initial in 8u128..1_000_000_000_000,
        used in 0u64..2_000_000,
    ) {
        let mut c = ctl(initial);
        let before = c.base_fee();
        let after = c.on_block(Gas::new(used));
        if used > TARGET {
            prop_assert!(after > before, "over-target must raise: {before} -> {after}");
        } else if used == TARGET {
            prop_assert_eq!(after, before, "at-target is the fixed point");
        } else {
            prop_assert!(after <= before, "under-target never raises: {before} -> {after}");
        }
    }

    /// The per-block move is bounded by 1/8 of the old fee (plus the 1-wei
    /// minimum for over-target blocks), in both directions.
    #[test]
    fn per_block_change_is_bounded_by_one_eighth(
        initial in 8u128..1_000_000_000_000,
        used in 0u64..2_000_000,
    ) {
        let mut c = ctl(initial);
        let before = c.base_fee().wei();
        let after = c.on_block(Gas::new(used)).wei();
        let cap = before / BaseFeeController::CHANGE_DENOMINATOR + 1;
        let moved = after.abs_diff(before);
        prop_assert!(moved <= cap, "moved {moved} > cap {cap}");
    }

    /// The fee never drops below the floor no matter how long the chain
    /// idles, and reaching the floor is stable.
    #[test]
    fn floor_is_absorbing(
        initial in 1u128..10_000,
        blocks in 1usize..200,
    ) {
        let mut c = ctl(initial);
        let floor = c.floor();
        for _ in 0..blocks {
            let fee = c.on_block(Gas::ZERO);
            prop_assert!(fee >= floor, "fee {fee} fell below floor {floor}");
        }
        // Hammer it long enough to certainly reach the floor: it must stay.
        for _ in 0..200 {
            c.on_block(Gas::ZERO);
        }
        prop_assert_eq!(c.base_fee(), floor);
        c.on_block(Gas::new(TARGET));
        prop_assert_eq!(c.base_fee(), floor, "at-target at the floor stays put");
    }

    /// Congestion followed by the mirrored calm period never ends above the
    /// starting fee plus rounding (the controller is not a ratchet).
    #[test]
    fn congestion_then_calm_does_not_ratchet_upward(
        initial in 1_000_000u128..1_000_000_000,
        spikes in 1usize..30,
    ) {
        let mut c = ctl(initial);
        for _ in 0..spikes {
            c.on_block(Gas::new(2 * TARGET));
        }
        for _ in 0..spikes {
            c.on_block(Gas::ZERO);
        }
        // (9/8)^n × (7/8)^n < 1, so we must end at or below the start.
        prop_assert!(c.base_fee().wei() <= initial);
    }
}
