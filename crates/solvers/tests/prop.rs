//! Property-based solver soundness: on small windows, no heuristic ever
//! exceeds the exhaustive optimum, and every solver's claimed best balance
//! replays honestly through the OVM.

use parole::{ReorderEnv, RewardConfig};
use parole_nft::CollectionConfig;
use parole_ovm::{NftTransaction, TxKind};
use parole_primitives::{Address, TokenId, Wei};
use parole_solvers::{
    ApoptLike, ExhaustiveSolver, HillClimb, MinosLike, RandomSearch, SequenceSolver, SnoptLike,
};
use parole_state::L2State;
use proptest::prelude::*;

/// Builds a randomized but valid 5-tx window around a small economy.
fn window_for(seed: u64) -> ReorderEnv {
    let mut state = L2State::new();
    let coll = state.deploy_collection(CollectionConfig::limited_edition("S", 10, 300));
    let ifu = Address::from_low_u64(99);
    state.credit(ifu, Wei::from_eth(5));
    for u in 1..=4u64 {
        state.credit(Address::from_low_u64(u), Wei::from_eth(5));
    }
    {
        let c = state.collection_mut(coll).unwrap();
        c.mint(ifu, TokenId::new(0)).unwrap();
        c.mint(Address::from_low_u64(1), TokenId::new(1)).unwrap();
        c.mint(Address::from_low_u64(2), TokenId::new(2)).unwrap();
    }
    // Vary the window composition with the seed.
    let burn_actor = 1 + (seed % 2);
    let window = vec![
        NftTransaction::simple(
            ifu,
            TxKind::Mint {
                collection: coll,
                token: TokenId::new(5),
            },
        ),
        NftTransaction::simple(
            Address::from_low_u64(burn_actor),
            TxKind::Burn {
                collection: coll,
                token: TokenId::new(burn_actor),
            },
        ),
        NftTransaction::simple(
            ifu,
            TxKind::Transfer {
                collection: coll,
                token: TokenId::new(0),
                to: Address::from_low_u64(3),
            },
        ),
        NftTransaction::simple(
            Address::from_low_u64(3),
            TxKind::Mint {
                collection: coll,
                token: TokenId::new(6 + seed % 3),
            },
        ),
        NftTransaction::simple(
            Address::from_low_u64(4),
            TxKind::Mint {
                collection: coll,
                token: TokenId::new(9),
            },
        ),
    ];
    ReorderEnv::new(state, window, vec![ifu], RewardConfig::default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Heuristics are bounded by the exhaustive optimum and lower-bounded by
    /// the original order; their claimed balances replay honestly.
    #[test]
    fn heuristics_bounded_by_exhaustive(seed in 0u64..50) {
        let env = window_for(seed);
        let optimum = ExhaustiveSolver.solve(&env).best_balance;
        let solvers: Vec<Box<dyn SequenceSolver>> = vec![
            Box::new(RandomSearch { samples: 60, seed }),
            Box::new(ApoptLike),
            Box::new(MinosLike::default()),
            Box::new(SnoptLike { seed, budget_scale: 1.0 }),
            Box::new(HillClimb::default()),
        ];
        for mut solver in solvers {
            let result = solver.solve(&env);
            prop_assert!(
                result.best_balance <= optimum,
                "{} exceeded the exhaustive optimum",
                result.solver
            );
            prop_assert!(result.best_balance >= env.original_balance());
            prop_assert_eq!(
                env.balance_of_order(&result.best_order),
                Some(result.best_balance),
                "{} made a dishonest balance claim",
                result.solver
            );
        }
    }
}
