//! The baseline solver implementations.

use crate::{SequenceSolver, SolverResult};
use parole::ReorderEnv;
use parole_ovm::NftTransaction;
use parole_primitives::Wei;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Shared bookkeeping: evaluate an order, tracking the best and the count.
struct Tracker<'a> {
    env: &'a ReorderEnv,
    best_order: Vec<NftTransaction>,
    best_balance: Wei,
    evaluations: u64,
}

impl<'a> Tracker<'a> {
    fn new(env: &'a ReorderEnv) -> Self {
        Tracker {
            best_order: env.original_window().to_vec(),
            best_balance: env.original_balance(),
            evaluations: 0,
            env,
        }
    }

    /// Evaluates `order`, returns its balance when valid.
    fn eval(&mut self, order: &[NftTransaction]) -> Option<Wei> {
        self.evaluations += 1;
        let balance = self.env.balance_of_order(order)?;
        if balance > self.best_balance {
            self.best_balance = balance;
            self.best_order = order.to_vec();
        }
        Some(balance)
    }

    fn finish(
        self,
        solver: &'static str,
        peak_memory_bytes: usize,
        started: Instant,
    ) -> SolverResult {
        SolverResult {
            solver,
            best_order: self.best_order,
            best_balance: self.best_balance,
            original_balance: self.env.original_balance(),
            evaluations: self.evaluations,
            peak_memory_bytes,
            wall_time: started.elapsed(),
        }
    }
}

/// Size of one stored ordering in bytes (used by the memory accounting).
fn order_bytes(n: usize) -> usize {
    n * std::mem::size_of::<NftTransaction>()
}

/// Ground truth: enumerates every permutation (Heap's algorithm).
///
/// Exact but factorial; intended for `N ≤ 9`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExhaustiveSolver;

impl SequenceSolver for ExhaustiveSolver {
    fn name(&self) -> &'static str {
        "exhaustive"
    }

    fn solve(&mut self, env: &ReorderEnv) -> SolverResult {
        let started = Instant::now();
        let n = env.original_window().len();
        assert!(n <= 9, "exhaustive search beyond 9! evaluations is a bug");
        let mut tracker = Tracker::new(env);
        let mut order: Vec<NftTransaction> = env.original_window().to_vec();
        let mut c = vec![0usize; n];
        tracker.eval(&order);
        let mut i = 0;
        while i < n {
            if c[i] < i {
                if i % 2 == 0 {
                    order.swap(0, i);
                } else {
                    order.swap(c[i], i);
                }
                tracker.eval(&order);
                c[i] += 1;
                i = 0;
            } else {
                c[i] = 0;
                i += 1;
            }
        }
        // Workspace: the order, the counter array, and the best copy.
        let mem = 2 * order_bytes(n) + n * 8;
        tracker.finish("exhaustive", mem, started)
    }
}

/// Uniform random permutations; the weakest baseline.
#[derive(Debug, Clone)]
pub struct RandomSearch {
    /// Number of random permutations to try.
    pub samples: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomSearch {
    fn default() -> Self {
        RandomSearch {
            samples: 200,
            seed: 0,
        }
    }
}

impl SequenceSolver for RandomSearch {
    fn name(&self) -> &'static str {
        "random"
    }

    fn solve(&mut self, env: &ReorderEnv) -> SolverResult {
        let started = Instant::now();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut tracker = Tracker::new(env);
        let mut order: Vec<NftTransaction> = env.original_window().to_vec();
        for _ in 0..self.samples {
            order.shuffle(&mut rng);
            tracker.eval(&order);
        }
        let mem = 2 * order_bytes(order.len());
        tracker.finish("random", mem, started)
    }
}

/// APOPT stand-in: active-set style beam search over order prefixes.
///
/// Level `k` extends each frontier prefix by every unused transaction,
/// scores the completed order (prefix + remaining suffix in original order)
/// and keeps the best `beam = N` nodes. `O(N³)` objective evaluations, and
/// the frontier holds `beam × N` transaction slots (`O(N²)` memory) plus
/// per-node bound arrays — the dominant cost of active-set methods.
#[derive(Debug, Clone, Copy, Default)]
pub struct ApoptLike;

impl SequenceSolver for ApoptLike {
    fn name(&self) -> &'static str {
        "apopt-like"
    }

    fn solve(&mut self, env: &ReorderEnv) -> SolverResult {
        let started = Instant::now();
        let window = env.original_window();
        let n = window.len();
        let beam_width = n.max(2);
        let mut tracker = Tracker::new(env);

        // Frontier of (prefix indices, score).
        let mut frontier: Vec<Vec<usize>> = vec![Vec::new()];
        let mut peak_nodes = 1usize;
        for _level in 0..n {
            let mut next: Vec<(Vec<usize>, Wei)> = Vec::new();
            for prefix in &frontier {
                for cand in 0..n {
                    if prefix.contains(&cand) {
                        continue;
                    }
                    let mut order_idx: Vec<usize> = prefix.clone();
                    order_idx.push(cand);
                    // Complete with the remaining txs in original order.
                    for rest in 0..n {
                        if !order_idx.contains(&rest) {
                            order_idx.push(rest);
                        }
                    }
                    let order: Vec<NftTransaction> = order_idx.iter().map(|&i| window[i]).collect();
                    if let Some(score) = tracker.eval(&order) {
                        let mut prefix_plus = prefix.clone();
                        prefix_plus.push(cand);
                        next.push((prefix_plus, score));
                    }
                }
            }
            next.sort_by_key(|e| std::cmp::Reverse(e.1));
            next.truncate(beam_width);
            peak_nodes = peak_nodes.max(next.len() * (frontier.first().map_or(1, |p| p.len() + 1)));
            frontier = next.into_iter().map(|(p, _)| p).collect();
            if frontier.is_empty() {
                break;
            }
        }
        // Frontier memory: beam nodes × full-order workspace each, plus the
        // completed-order scratch.
        let mem = beam_width * (order_bytes(n) + n * 8) + 2 * order_bytes(n);
        let _ = peak_nodes;
        tracker.finish("apopt-like", mem, started)
    }
}

/// MINOS stand-in: dense iterative improvement.
///
/// Each major iteration recomputes the full `N×N` swap-gain matrix (every
/// pairwise swap is evaluated through the OVM), applies the best strictly
/// improving swap, and repeats until no entry improves — `O(N²)` evaluations
/// per sweep with an `O(N²)` dense resident matrix, the MINOS cost shape.
#[derive(Debug, Clone, Copy)]
pub struct MinosLike {
    /// Safety cap on major iterations.
    pub max_sweeps: usize,
}

impl Default for MinosLike {
    fn default() -> Self {
        MinosLike { max_sweeps: 64 }
    }
}

impl SequenceSolver for MinosLike {
    fn name(&self) -> &'static str {
        "minos-like"
    }

    fn solve(&mut self, env: &ReorderEnv) -> SolverResult {
        let started = Instant::now();
        let n = env.original_window().len();
        let mut tracker = Tracker::new(env);
        let mut order: Vec<NftTransaction> = env.original_window().to_vec();
        let mut gain = vec![0i128; n * n]; // dense matrix, the memory hog

        for _sweep in 0..self.max_sweeps {
            let current = match tracker.eval(&order) {
                Some(b) => b,
                None => break,
            };
            let mut best: Option<(usize, usize, i128)> = None;
            for i in 0..n {
                for j in i + 1..n {
                    order.swap(i, j);
                    let delta = tracker
                        .eval(&order)
                        .map(|b| b.signed_sub(current).wei())
                        .unwrap_or(i128::MIN);
                    gain[i * n + j] = delta;
                    order.swap(i, j);
                    if delta > 0 && best.is_none_or(|(_, _, d)| delta > d) {
                        best = Some((i, j, delta));
                    }
                }
            }
            match best {
                Some((i, j, _)) => order.swap(i, j),
                None => break,
            }
        }
        let mem = gain.len() * std::mem::size_of::<i128>() + 2 * order_bytes(n);
        tracker.finish("minos-like", mem, started)
    }
}

/// Deterministic best-swap hill-climb with rotation restarts — the same
/// search the §VIII defense detector uses, packaged as a solver so Fig. 11
/// extensions and the solver soundness tests can compare it directly.
#[derive(Debug, Clone, Copy)]
pub struct HillClimb {
    /// Rotation restarts.
    pub passes: usize,
}

impl Default for HillClimb {
    fn default() -> Self {
        HillClimb { passes: 3 }
    }
}

impl SequenceSolver for HillClimb {
    fn name(&self) -> &'static str {
        "hill-climb"
    }

    fn solve(&mut self, env: &ReorderEnv) -> SolverResult {
        let started = Instant::now();
        let n = env.original_window().len();
        let mut tracker = Tracker::new(env);
        let mut order: Vec<NftTransaction> = env.original_window().to_vec();
        for _pass in 0..self.passes.max(1) {
            loop {
                let current = tracker.eval(&order);
                let mut best: Option<(usize, usize, Wei)> = None;
                for i in 0..n {
                    for j in i + 1..n {
                        order.swap(i, j);
                        if let Some(b) = tracker.eval(&order) {
                            let improves = current.is_none_or(|c| b > c)
                                && best.is_none_or(|(_, _, bb)| b > bb);
                            if improves {
                                best = Some((i, j, b));
                            }
                        }
                        order.swap(i, j);
                    }
                }
                match best {
                    Some((i, j, _)) => order.swap(i, j),
                    None => break,
                }
            }
            order.rotate_left(1);
        }
        let mem = 3 * order_bytes(n);
        tracker.finish("hill-climb", mem, started)
    }
}

/// SNOPT stand-in: sparse annealed search.
///
/// Simulated annealing over swaps with an iteration budget that grows as
/// `N^1.8` (with restarts) — competitive at `N = 5`, degrading sharply by
/// `N = 100`, the Fig. 11(a) SNOPT curve. Memory stays small (a handful of
/// orderings), the Fig. 11(b) "sparse" advantage over MINOS/APOPT that the
/// DQN nevertheless beats.
#[derive(Debug, Clone, Copy)]
pub struct SnoptLike {
    /// RNG seed.
    pub seed: u64,
    /// Budget multiplier.
    pub budget_scale: f64,
}

impl Default for SnoptLike {
    fn default() -> Self {
        SnoptLike {
            seed: 0,
            budget_scale: 1.0,
        }
    }
}

impl SequenceSolver for SnoptLike {
    fn name(&self) -> &'static str {
        "snopt-like"
    }

    fn solve(&mut self, env: &ReorderEnv) -> SolverResult {
        let started = Instant::now();
        let n = env.original_window().len();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut tracker = Tracker::new(env);

        let budget = ((n as f64).powf(1.8) * 6.0 * self.budget_scale).ceil() as u64;
        let restarts = (n / 10).max(1);
        for restart in 0..restarts {
            let mut order: Vec<NftTransaction> = env.original_window().to_vec();
            if restart > 0 {
                order.shuffle(&mut rng);
            }
            let mut current = match tracker.eval(&order) {
                Some(b) => b,
                None => continue,
            };
            let mut temperature = 1.0f64;
            for step in 0..budget / restarts as u64 {
                let i = rng.gen_range(0..n);
                let j = rng.gen_range(0..n);
                if i == j {
                    continue;
                }
                order.swap(i, j);
                match tracker.eval(&order) {
                    Some(b) if b >= current => current = b,
                    Some(b) => {
                        let delta = current.signed_sub(b).eth_f64();
                        if rng.gen::<f64>() < (-delta / temperature.max(1e-6)).exp() {
                            current = b; // accept downhill
                        } else {
                            order.swap(i, j); // reject
                        }
                    }
                    None => order.swap(i, j),
                }
                temperature = 1.0 * (1.0 - step as f64 / budget.max(1) as f64);
            }
        }
        let mem = 3 * order_bytes(n);
        tracker.finish("snopt-like", mem, started)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parole::casestudy::CaseStudy;
    use parole::RewardConfig;
    use parole_primitives::Wei;

    fn case_env() -> ReorderEnv {
        let cs = CaseStudy::paper_setup();
        ReorderEnv::new(
            cs.state().clone(),
            cs.window().to_vec(),
            vec![cs.ifu],
            RewardConfig::default(),
        )
    }

    #[test]
    fn exhaustive_finds_the_true_optimum() {
        let env = case_env();
        let result = ExhaustiveSolver.solve(&env);
        assert_eq!(result.best_balance, Wei::from_milli_eth(2860));
        assert!(result.evaluations >= 40_320);
    }

    #[test]
    fn all_heuristics_beat_or_match_the_original() {
        let env = case_env();
        let results = [
            RandomSearch::default().solve(&env),
            ApoptLike.solve(&env),
            MinosLike::default().solve(&env),
            SnoptLike::default().solve(&env),
        ];
        for r in &results {
            assert!(
                r.best_balance >= env.original_balance(),
                "{} regressed below the original order",
                r.solver
            );
            assert!(!r.best_order.is_empty());
            assert!(r.evaluations > 0);
        }
    }

    #[test]
    fn heuristics_find_substantial_profit_on_the_case_study() {
        let env = case_env();
        // All three solver stand-ins should reach at least the paper's
        // Case 2 level (2.57 ETH) on this small window.
        for result in [
            ApoptLike.solve(&env),
            MinosLike::default().solve(&env),
            SnoptLike {
                seed: 3,
                budget_scale: 2.0,
            }
            .solve(&env),
        ] {
            assert!(
                result.best_balance >= Wei::from_milli_eth(2570),
                "{} found only {}",
                result.solver,
                result.best_balance
            );
        }
    }

    #[test]
    fn memory_accounting_follows_solver_families() {
        let env = case_env();
        let n = env.original_window().len();
        let minos = MinosLike::default().solve(&env);
        let snopt = SnoptLike::default().solve(&env);
        let apopt = ApoptLike.solve(&env);
        // MINOS carries the dense N×N gain matrix.
        assert!(minos.peak_memory_bytes >= n * n * std::mem::size_of::<i128>());
        // SNOPT keeps only a handful of orderings.
        assert!(
            snopt.peak_memory_bytes <= 4 * n * std::mem::size_of::<parole_ovm::NftTransaction>()
        );
        // APOPT's frontier scales with the beam (≥ N nodes).
        assert!(
            apopt.peak_memory_bytes >= n * n * std::mem::size_of::<parole_ovm::NftTransaction>()
        );
        // The quadratic terms dominate the sparse one asymptotically: check
        // the accounting formulas directly at N = 100 equivalents.
        let n_big = 100usize;
        let minos_big = n_big * n_big * std::mem::size_of::<i128>();
        let snopt_big = 3 * n_big * std::mem::size_of::<parole_ovm::NftTransaction>();
        assert!(minos_big > snopt_big);
    }

    #[test]
    fn evaluation_counts_scale_with_solver_family() {
        let env = case_env();
        let exhaustive = ExhaustiveSolver.solve(&env);
        let apopt = ApoptLike.solve(&env);
        let random = RandomSearch {
            samples: 50,
            seed: 1,
        }
        .solve(&env);
        assert!(exhaustive.evaluations > apopt.evaluations);
        assert_eq!(random.evaluations, 50);
        // The beam search visits every level of the prefix tree.
        let n = env.original_window().len() as u64;
        assert!(apopt.evaluations >= n * n);
    }

    #[test]
    fn deterministic_solvers_are_deterministic() {
        let env = case_env();
        let a = MinosLike::default().solve(&env);
        let b = MinosLike::default().solve(&env);
        assert_eq!(a.best_balance, b.best_balance);
        assert_eq!(a.evaluations, b.evaluations);
        let s1 = SnoptLike {
            seed: 9,
            budget_scale: 1.0,
        }
        .solve(&env);
        let s2 = SnoptLike {
            seed: 9,
            budget_scale: 1.0,
        }
        .solve(&env);
        assert_eq!(s1.best_balance, s2.best_balance);
    }
}
