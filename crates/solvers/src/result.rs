//! The solver interface and result type.

use parole::ReorderEnv;
use parole_ovm::NftTransaction;
use parole_primitives::{Wei, WeiDelta};
use std::fmt;
use std::time::Duration;

/// Outcome of one solver run on one window.
#[derive(Debug, Clone)]
pub struct SolverResult {
    /// Which solver produced this.
    pub solver: &'static str,
    /// The best valid ordering found.
    pub best_order: Vec<NftTransaction>,
    /// Final IFU balance under `best_order`.
    pub best_balance: Wei,
    /// Final IFU balance under the original order.
    pub original_balance: Wei,
    /// Number of objective (OVM sequence) evaluations performed.
    pub evaluations: u64,
    /// Modeled peak workspace in bytes (solver-family allocation
    /// accounting; see the crate docs).
    pub peak_memory_bytes: usize,
    /// Measured wall-clock time.
    pub wall_time: Duration,
}

impl SolverResult {
    /// Profit over the original order.
    pub fn profit(&self) -> WeiDelta {
        self.best_balance.signed_sub(self.original_balance)
    }
}

impl fmt::Display for SolverResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: profit {} in {:?} ({} evals, {} KiB)",
            self.solver,
            self.profit(),
            self.wall_time,
            self.evaluations,
            self.peak_memory_bytes / 1024
        )
    }
}

/// A solver for the re-ordering objective.
///
/// Solvers receive the attack environment (which owns the base state, the
/// window and the IFU set) and search over permutations using
/// [`ReorderEnv::balance_of_order`] as the oracle — exactly the objective the
/// GENTRANSEQ DQN optimizes.
pub trait SequenceSolver {
    /// Display name.
    fn name(&self) -> &'static str;

    /// Searches for the most profitable valid ordering.
    fn solve(&mut self, env: &ReorderEnv) -> SolverResult;
}
