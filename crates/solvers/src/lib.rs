//! # parole-solvers
//!
//! Baseline optimizers for the transaction re-ordering objective, standing in
//! for the commercial non-linear-programming solvers the paper compares
//! against in Fig. 11 (APOPT, MINOS, SNOPT), plus ground-truth searches.
//!
//! ## Substitution note
//!
//! The closed-source solvers cannot be shipped; what Fig. 11 demonstrates is
//! a *scaling shape* — general-purpose solvers blow up in execution time and
//! memory as the mempool grows, while trained-DQN inference stays nearly
//! linear with a small footprint. Each stand-in here solves the **identical
//! objective through the identical OVM evaluation** and inherits the cost
//! structure of the solver family it models:
//!
//! - [`ApoptLike`] — active-set style beam search over order prefixes
//!   (APOPT's branch-and-bound flavour): `O(N³)` objective evaluations and an
//!   `O(N²)` frontier.
//! - [`MinosLike`] — dense iterative improvement recomputing a full `N×N`
//!   swap-gain matrix per major iteration (MINOS's dense-basis flavour):
//!   `O(N² · sweeps)` evaluations, `O(N²)` resident matrix.
//! - [`SnoptLike`] — sparse annealed search, cheap at small `N` but with a
//!   restart schedule that grows superlinearly (SNOPT's good-small/poor-large
//!   behaviour in the paper's Fig. 11(a)).
//! - [`ExhaustiveSolver`] — ground truth for `N ≤ 9`.
//! - [`RandomSearch`] — the weakest baseline, for sanity floors.
//!
//! Every solver reports wall time, objective-evaluation counts and a modeled
//! peak-workspace size (allocation accounting, documented per solver) so the
//! Fig. 11 harness can print both panels.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod baselines;
mod result;

pub use baselines::{ApoptLike, ExhaustiveSolver, HillClimb, MinosLike, RandomSearch, SnoptLike};
pub use result::{SequenceSolver, SolverResult};
