//! Synthetic snapshot corpus generation.

use parole_primitives::{Address, Wei};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which optimistic rollup a collection is deployed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Chain {
    /// OP Mainnet (lower NFT turnover in the paper's observations).
    Optimism,
    /// Arbitrum One (higher turnover/volatility per the paper's Fig. 10).
    Arbitrum,
}

impl Chain {
    /// Both chains.
    pub const ALL: [Chain; 2] = [Chain::Optimism, Chain::Arbitrum];
}

impl fmt::Display for Chain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Chain::Optimism => f.write_str("Optimism"),
            Chain::Arbitrum => f.write_str("Arbitrum"),
        }
    }
}

/// The paper's transaction-frequency buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FtBucket {
    /// Low FT: fewer than 100 ownerships.
    Lft,
    /// Medium FT: 101–3000 ownerships.
    Mft,
    /// High FT: more than 3000 ownerships.
    Hft,
}

impl FtBucket {
    /// All buckets in ascending activity order.
    pub const ALL: [FtBucket; 3] = [FtBucket::Lft, FtBucket::Mft, FtBucket::Hft];

    /// Classifies an ownership count into its bucket (paper §VII-E).
    pub fn classify(ownerships: u64) -> FtBucket {
        if ownerships < 100 {
            FtBucket::Lft
        } else if ownerships <= 3000 {
            FtBucket::Mft
        } else {
            FtBucket::Hft
        }
    }

    /// Representative ownership range for synthesis.
    pub fn ownership_range(self) -> (u64, u64) {
        match self {
            FtBucket::Lft => (10, 99),
            FtBucket::Mft => (101, 3000),
            FtBucket::Hft => (3001, 20_000),
        }
    }
}

impl fmt::Display for FtBucket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FtBucket::Lft => f.write_str("LFT"),
            FtBucket::Mft => f.write_str("MFT"),
            FtBucket::Hft => f.write_str("HFT"),
        }
    }
}

/// One point of a collection's observed price history.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PricePoint {
    /// Snapshot timestamp (abstract ticks).
    pub time: u64,
    /// Floor price observed at that time.
    pub price: Wei,
}

/// A historical snapshot of one NFT collection.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NftSnapshot {
    /// The collection's contract address (rendered `0x7A..c8e`-style in
    /// reports, as the paper does).
    pub contract: Address,
    /// Deployment chain.
    pub chain: Chain,
    /// Total distinct ownerships observed (the FT measure).
    pub ownerships: u64,
    /// Observed price trajectory.
    pub price_history: Vec<PricePoint>,
}

impl NftSnapshot {
    /// The collection's FT bucket.
    pub fn bucket(&self) -> FtBucket {
        FtBucket::classify(self.ownerships)
    }
}

/// Corpus synthesis parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SnapshotConfig {
    /// Collections generated per (chain, bucket) cell.
    pub collections_per_cell: usize,
    /// Price points per collection trajectory.
    pub history_len: usize,
    /// Base floor price in milli-ETH around which trajectories start.
    pub base_price_milli: u64,
    /// Per-step volatility on Optimism (fraction of price).
    pub optimism_volatility: f64,
    /// Per-step volatility on Arbitrum (higher, per the paper's Fig. 10).
    pub arbitrum_volatility: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SnapshotConfig {
    fn default() -> Self {
        SnapshotConfig {
            collections_per_cell: 12,
            history_len: 64,
            base_price_milli: 300,
            optimism_volatility: 0.05,
            arbitrum_volatility: 0.11,
            seed: 7,
        }
    }
}

/// A generated corpus of snapshots across both chains and all FT buckets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnapshotCorpus {
    /// All generated snapshots.
    pub snapshots: Vec<NftSnapshot>,
    /// The configuration that produced them.
    pub config: SnapshotConfig,
}

impl SnapshotCorpus {
    /// Generates a deterministic corpus covering every (chain, bucket) cell.
    pub fn generate(config: SnapshotConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut snapshots = Vec::new();
        let mut contract_counter = 1u64;
        for chain in Chain::ALL {
            let volatility = match chain {
                Chain::Optimism => config.optimism_volatility,
                Chain::Arbitrum => config.arbitrum_volatility,
            };
            for bucket in FtBucket::ALL {
                let (lo, hi) = bucket.ownership_range();
                for _ in 0..config.collections_per_cell {
                    let ownerships = rng.gen_range(lo..=hi);
                    // Busier collections get re-priced more often per window,
                    // which the scanner sees as more snapshot points.
                    let history = synth_history(
                        &mut rng,
                        config.history_len,
                        config.base_price_milli,
                        volatility,
                        ownerships,
                    );
                    snapshots.push(NftSnapshot {
                        contract: Address::from_low_u64(0xABCD_0000 + contract_counter),
                        chain,
                        ownerships,
                        price_history: history,
                    });
                    contract_counter += 1;
                }
            }
        }
        SnapshotCorpus { snapshots, config }
    }

    /// Snapshots on `chain` in `bucket`.
    pub fn cell(&self, chain: Chain, bucket: FtBucket) -> Vec<&NftSnapshot> {
        self.snapshots
            .iter()
            .filter(|s| s.chain == chain && s.bucket() == bucket)
            .collect()
    }
}

/// Synthesizes one bounded random-walk price trajectory. Turnover scales
/// with the ownership count: busier collections take more (and larger
/// relative) re-pricing steps, which is what gives HFT collections more
/// arbitrage windows.
fn synth_history(
    rng: &mut StdRng,
    len: usize,
    base_milli: u64,
    volatility: f64,
    ownerships: u64,
) -> Vec<PricePoint> {
    let activity = 1.0 + (ownerships as f64).log10() / 4.0;
    let mut price = base_milli as f64 * rng.gen_range(0.5..2.0);
    let mut out = Vec::with_capacity(len);
    for t in 0..len {
        let step = rng.gen_range(-1.0..1.0) * volatility * activity;
        price = (price * (1.0 + step)).clamp(10.0, 100_000.0);
        out.push(PricePoint {
            time: t as u64,
            price: Wei::from_milli_eth(price.round() as u64),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_classification_matches_paper_boundaries() {
        assert_eq!(FtBucket::classify(99), FtBucket::Lft);
        assert_eq!(FtBucket::classify(100), FtBucket::Mft);
        assert_eq!(FtBucket::classify(101), FtBucket::Mft);
        assert_eq!(FtBucket::classify(3000), FtBucket::Mft);
        assert_eq!(FtBucket::classify(3001), FtBucket::Hft);
    }

    #[test]
    fn corpus_covers_every_cell() {
        let corpus = SnapshotCorpus::generate(SnapshotConfig::default());
        for chain in Chain::ALL {
            for bucket in FtBucket::ALL {
                let cell = corpus.cell(chain, bucket);
                assert_eq!(cell.len(), 12, "{chain}/{bucket}");
                for snap in cell {
                    assert_eq!(snap.bucket(), bucket);
                    assert_eq!(snap.price_history.len(), 64);
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SnapshotCorpus::generate(SnapshotConfig::default());
        let b = SnapshotCorpus::generate(SnapshotConfig::default());
        assert_eq!(a, b);
        let c = SnapshotCorpus::generate(SnapshotConfig {
            seed: 8,
            ..SnapshotConfig::default()
        });
        assert_ne!(a, c);
    }

    #[test]
    fn prices_stay_positive_and_bounded() {
        let corpus = SnapshotCorpus::generate(SnapshotConfig::default());
        for snap in &corpus.snapshots {
            for p in &snap.price_history {
                assert!(p.price >= Wei::from_milli_eth(10));
                assert!(p.price <= Wei::from_eth(100));
            }
        }
    }

    #[test]
    fn arbitrum_trajectories_are_more_volatile() {
        let corpus = SnapshotCorpus::generate(SnapshotConfig::default());
        let mean_abs_move = |chain: Chain| -> f64 {
            let mut total = 0.0;
            let mut count = 0usize;
            for snap in corpus.snapshots.iter().filter(|s| s.chain == chain) {
                for w in snap.price_history.windows(2) {
                    let a = w[0].price.eth_f64();
                    let b = w[1].price.eth_f64();
                    total += ((b - a) / a).abs();
                    count += 1;
                }
            }
            total / count as f64
        };
        assert!(
            mean_abs_move(Chain::Arbitrum) > mean_abs_move(Chain::Optimism),
            "Arbitrum must re-price harder"
        );
    }
}
