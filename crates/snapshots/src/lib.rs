//! # parole-snapshots
//!
//! Synthetic NFT-snapshot corpus and arbitrage scanner for the paper's
//! real-world impact analysis (Fig. 10).
//!
//! The paper inspects historical snapshots of NFT collections deployed via
//! the Optimism and Arbitrum rollups (through holders.at wallet/contract
//! lookups), buckets collections by transaction frequency (FT) —
//! fewer than 100 ownerships (LFT), 101–3000 (MFT), more than 3000 (HFT) —
//! looks for instances where the same NFT was priced differently at
//! different times, and estimates the total profit opportunity via the
//! relation obtained from its simulation experiments.
//!
//! We cannot ship holders.at data, so [`SnapshotCorpus::generate`] synthesizes
//! a corpus with the published structure: per-chain collection populations
//! whose ownership counts land in the three FT buckets, price trajectories
//! driven by the same scarcity bonding curve the rest of the reproduction
//! uses, and **Arbitrum collections configured with higher turnover and
//! volatility** — the property behind the paper's observation that "there is
//! a higher arbitrage opportunity with the NFTs deployed via the Arbitrum
//! chain compared to Optimism". The scanner then finds re-pricing windows
//! and applies the simulation-derived capture relation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod corpus;
mod scanner;

pub use corpus::{Chain, FtBucket, NftSnapshot, PricePoint, SnapshotConfig, SnapshotCorpus};
pub use scanner::{scan_corpus, ArbitrageFinding, BucketReport, CaptureModel};
