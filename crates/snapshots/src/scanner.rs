//! The arbitrage scanner over snapshot corpora.

use crate::{Chain, FtBucket, NftSnapshot, SnapshotCorpus};
use parole_primitives::Wei;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The simulation-derived capture relation.
///
/// The paper "calculate\[s\] the total profit opportunity by deriving the
/// relation we obtained through our simulation-based experiments": an
/// adversarial aggregator converts a fraction of each observed re-pricing
/// spread into IFU profit. The default capture fraction (24%) is the
/// non-volatile balance gain of the optimally re-ordered case study
/// (Fig. 5, Case 3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CaptureModel {
    /// Fraction of each qualifying price spread captured as profit.
    pub capture_fraction: f64,
    /// Minimum relative spread (|ΔP| / P) that counts as an arbitrage
    /// window at all — tiny re-pricings are below fee noise.
    pub min_relative_spread: f64,
}

impl Default for CaptureModel {
    fn default() -> Self {
        CaptureModel {
            capture_fraction: 0.24,
            min_relative_spread: 0.02,
        }
    }
}

/// One arbitrage window found in one collection's history.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArbitrageFinding {
    /// Snapshot time of the earlier observation.
    pub from_time: u64,
    /// Snapshot time of the later observation.
    pub to_time: u64,
    /// Price before.
    pub price_before: Wei,
    /// Price after.
    pub price_after: Wei,
}

impl ArbitrageFinding {
    /// Absolute spread of the window.
    pub fn spread(&self) -> Wei {
        self.price_after.abs_diff(self.price_before)
    }
}

/// Aggregated result for one (chain, bucket) cell — one bar of Fig. 10.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BucketReport {
    /// Deployment chain.
    pub chain: Chain,
    /// FT bucket.
    pub bucket: FtBucket,
    /// Collections examined.
    pub collections: usize,
    /// Qualifying arbitrage windows found.
    pub windows: usize,
    /// Total estimated profit opportunity.
    pub total_profit: Wei,
    /// Mean estimated profit per collection.
    pub profit_per_collection: Wei,
}

impl fmt::Display for BucketReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}: {} windows over {} collections, total {}",
            self.chain, self.bucket, self.windows, self.collections, self.total_profit
        )
    }
}

/// Finds the qualifying re-pricing windows in one collection's history
/// ("instances where the same NFT was priced differently at different
/// times").
pub fn find_windows(snapshot: &NftSnapshot, model: &CaptureModel) -> Vec<ArbitrageFinding> {
    snapshot
        .price_history
        .windows(2)
        .filter_map(|w| {
            let before = w[0].price;
            let after = w[1].price;
            let spread = after.abs_diff(before);
            let relative = spread.eth_f64() / before.eth_f64().max(f64::MIN_POSITIVE);
            (relative >= model.min_relative_spread).then_some(ArbitrageFinding {
                from_time: w[0].time,
                to_time: w[1].time,
                price_before: before,
                price_after: after,
            })
        })
        .collect()
}

/// Scans a whole corpus, producing one [`BucketReport`] per (chain, bucket)
/// cell in chain-major order — the six bars of Fig. 10.
pub fn scan_corpus(corpus: &SnapshotCorpus, model: &CaptureModel) -> Vec<BucketReport> {
    let mut reports = Vec::with_capacity(6);
    for chain in Chain::ALL {
        for bucket in FtBucket::ALL {
            let cell = corpus.cell(chain, bucket);
            let mut windows = 0usize;
            let mut total = Wei::ZERO;
            for snap in &cell {
                for finding in find_windows(snap, model) {
                    windows += 1;
                    let captured = finding.spread().eth_f64() * model.capture_fraction;
                    total += Wei::from_milli_eth((captured * 1000.0).round() as u64);
                }
            }
            let per_collection = if cell.is_empty() {
                Wei::ZERO
            } else {
                total / cell.len() as u64
            };
            reports.push(BucketReport {
                chain,
                bucket,
                collections: cell.len(),
                windows,
                total_profit: total,
                profit_per_collection: per_collection,
            });
        }
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PricePoint, SnapshotConfig};
    use parole_primitives::Address;

    fn model() -> CaptureModel {
        CaptureModel::default()
    }

    #[test]
    fn windows_require_minimum_spread() {
        let snap = NftSnapshot {
            contract: Address::from_low_u64(1),
            chain: Chain::Optimism,
            ownerships: 50,
            price_history: vec![
                PricePoint {
                    time: 0,
                    price: Wei::from_milli_eth(1000),
                },
                PricePoint {
                    time: 1,
                    price: Wei::from_milli_eth(1005),
                }, // 0.5%: noise
                PricePoint {
                    time: 2,
                    price: Wei::from_milli_eth(1200),
                }, // 19%: real
            ],
        };
        let findings = find_windows(&snap, &model());
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].spread(), Wei::from_milli_eth(195));
        assert_eq!(findings[0].from_time, 1);
    }

    #[test]
    fn scan_covers_six_cells() {
        let corpus = crate::SnapshotCorpus::generate(SnapshotConfig::default());
        let reports = scan_corpus(&corpus, &model());
        assert_eq!(reports.len(), 6);
        for r in &reports {
            assert_eq!(r.collections, 12);
            assert!(r.windows > 0, "{r}");
            assert!(r.total_profit > Wei::ZERO, "{r}");
        }
    }

    #[test]
    fn arbitrum_beats_optimism_in_every_bucket() {
        // The paper's headline Fig. 10 observation.
        let corpus = crate::SnapshotCorpus::generate(SnapshotConfig::default());
        let reports = scan_corpus(&corpus, &model());
        for bucket in FtBucket::ALL {
            let op = reports
                .iter()
                .find(|r| r.chain == Chain::Optimism && r.bucket == bucket)
                .unwrap();
            let arb = reports
                .iter()
                .find(|r| r.chain == Chain::Arbitrum && r.bucket == bucket)
                .unwrap();
            assert!(
                arb.total_profit > op.total_profit,
                "{bucket}: Arbitrum {} vs Optimism {}",
                arb.total_profit,
                op.total_profit
            );
        }
    }

    #[test]
    fn profit_grows_with_transaction_frequency() {
        let corpus = crate::SnapshotCorpus::generate(SnapshotConfig::default());
        let reports = scan_corpus(&corpus, &model());
        for chain in Chain::ALL {
            let by_bucket: Vec<Wei> = FtBucket::ALL
                .iter()
                .map(|&b| {
                    reports
                        .iter()
                        .find(|r| r.chain == chain && r.bucket == b)
                        .unwrap()
                        .total_profit
                })
                .collect();
            assert!(
                by_bucket[0] < by_bucket[2],
                "{chain}: HFT must out-earn LFT ({} vs {})",
                by_bucket[2],
                by_bucket[0]
            );
        }
    }

    #[test]
    fn capture_fraction_scales_profit_linearly() {
        let corpus = crate::SnapshotCorpus::generate(SnapshotConfig::default());
        let low = scan_corpus(
            &corpus,
            &CaptureModel {
                capture_fraction: 0.1,
                ..model()
            },
        );
        let high = scan_corpus(
            &corpus,
            &CaptureModel {
                capture_fraction: 0.2,
                ..model()
            },
        );
        for (l, h) in low.iter().zip(&high) {
            let ratio = h.total_profit.eth_f64() / l.total_profit.eth_f64();
            // Per-opportunity Wei flooring makes the scaling slightly
            // sub-linear on small buckets, so allow ±15% around 2x.
            assert!((ratio - 2.0).abs() < 0.3, "ratio {ratio}");
        }
    }
}
