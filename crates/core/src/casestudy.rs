//! The paper's three case studies (Fig. 5), reproduced on the real OVM.
//!
//! ## Fidelity note (documented deviation)
//!
//! The paper's altered sequences (Cases 2 and 3) place `TX4` — "Transfer PT:
//! U19 → U6" — *before* `TX2` — "Mint PT: U19". Under the paper's own
//! constraint model (its Eq. 3 requires `O_k^{i,t-1}`), U19 owns nothing
//! until its mint executes, so those exact orders are infeasible; the
//! paper's tables track only price and IFU balance and silently skip the
//! ownership check for bystander transfers.
//!
//! This reproduction keeps strict constraint semantics and instead uses the
//! *equivalent feasible orders* in which `TX4` executes right after `TX2`.
//! Because transfers never move the bonding curve and `TX4` does not involve
//! the IFU, every price and IFU-balance value of the paper's tables is
//! reproduced exactly; only the row at which `TX4` appears shifts. The
//! headline numbers are identical: final total balance 2.5 ETH (Case 1),
//! 2.57 ETH (Case 2, +7% non-volatile L2 balance), 2.74 ETH (Case 3, +24%).

use parole_nft::CollectionConfig;
use parole_ovm::{NftTransaction, Ovm, TxKind};
use parole_primitives::{Address, TokenId, Wei};
use parole_state::L2State;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One row of a case-study table: the state right after a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CaseStudyRow {
    /// Paper transaction number (1-based: `TX1` … `TX8`).
    pub tx_number: usize,
    /// Whether the transaction executed (always true in these fixtures).
    pub executed: bool,
    /// PT price after the transaction.
    pub price: Wei,
    /// IFU's spendable L2 balance after the transaction.
    pub ifu_l2_balance: Wei,
    /// Number of PT tokens the IFU holds after the transaction.
    pub ifu_tokens: u64,
    /// IFU total balance: `L2 balance + tokens × price`.
    pub ifu_total_balance: Wei,
}

/// Evaluation of one ordering of the case-study window.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CaseStudyReport {
    /// Per-transaction rows in execution order.
    pub rows: Vec<CaseStudyRow>,
    /// IFU total balance after the last transaction.
    pub final_total_balance: Wei,
    /// IFU L2 (non-volatile) balance after the last transaction.
    pub final_l2_balance: Wei,
    /// Whether every transaction executed successfully.
    pub all_executed: bool,
}

impl fmt::Display for CaseStudyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for row in &self.rows {
            writeln!(
                f,
                "TX{}  price {}  IFU {} + {}×{} = {}",
                row.tx_number,
                row.price,
                row.ifu_l2_balance,
                row.ifu_tokens,
                row.price,
                row.ifu_total_balance
            )?;
        }
        write!(f, "final: {}", self.final_total_balance)
    }
}

/// The Fig. 5 scenario: the PT collection with five pre-minted tokens, the
/// IFU holding two of them plus 1.5 ETH, and the eight-transaction window.
#[derive(Debug, Clone)]
pub struct CaseStudy {
    state: L2State,
    /// PT contract address.
    pub collection: Address,
    /// The illicitly favored user.
    pub ifu: Address,
    /// `txs[k]` is the paper's `TX(k+1)`.
    txs: Vec<NftTransaction>,
}

impl CaseStudy {
    /// Builds the exact paper setup: `S^0 = 10`, `P^0 = 0.2 ETH`, 5 tokens
    /// pre-minted (price 0.4 ETH), IFU balance 1.5 ETH + 2 PT
    /// (total 2.3 ETH).
    pub fn paper_setup() -> Self {
        let mut state = L2State::new();
        let collection = state.deploy_collection(CollectionConfig::parole_token());
        let ifu = Address::from_low_u64(1000);
        let u = Address::from_low_u64; // U1, U2, …

        // Balances: the IFU's 1.5 ETH from the paper; bystanders get enough
        // to cover their purchases at any reachable price.
        state.credit(ifu, Wei::from_milli_eth(1500));
        for id in [1, 2, 3, 6, 11, 19] {
            state.credit(u(id), Wei::from_eth(1));
        }

        // 5 pre-minted: IFU holds 0 and 1; U1 holds 2 and 3; U13 holds 4.
        for (owner, token) in [(ifu, 0), (ifu, 1), (u(1), 2), (u(1), 3), (u(13), 4)] {
            state
                .nft_mint(collection, owner, TokenId::new(token))
                .unwrap()
                .unwrap();
        }

        let tx = |sender: Address, kind: TxKind| NftTransaction::simple(sender, kind);
        let txs = vec![
            // TX1: Transfer PT: U1 -> U2 (token 2).
            tx(
                u(1),
                TxKind::Transfer {
                    collection,
                    token: TokenId::new(2),
                    to: u(2),
                },
            ),
            // TX2: Mint PT: U19 (token 5).
            tx(
                u(19),
                TxKind::Mint {
                    collection,
                    token: TokenId::new(5),
                },
            ),
            // TX3: Transfer PT: IFU -> U11 (token 0).
            tx(
                ifu,
                TxKind::Transfer {
                    collection,
                    token: TokenId::new(0),
                    to: u(11),
                },
            ),
            // TX4: Transfer PT: U19 -> U6 (token 5, the one TX2 minted).
            tx(
                u(19),
                TxKind::Transfer {
                    collection,
                    token: TokenId::new(5),
                    to: u(6),
                },
            ),
            // TX5: Mint PT: IFU (token 6).
            tx(
                ifu,
                TxKind::Mint {
                    collection,
                    token: TokenId::new(6),
                },
            ),
            // TX6: Transfer PT: U13 -> U3 (token 4).
            tx(
                u(13),
                TxKind::Transfer {
                    collection,
                    token: TokenId::new(4),
                    to: u(3),
                },
            ),
            // TX7: Burn PT: U2 (token 2, received in TX1).
            tx(
                u(2),
                TxKind::Burn {
                    collection,
                    token: TokenId::new(2),
                },
            ),
            // TX8: Transfer PT: U1 -> IFU (token 3).
            tx(
                u(1),
                TxKind::Transfer {
                    collection,
                    token: TokenId::new(3),
                    to: ifu,
                },
            ),
        ];

        CaseStudy {
            state,
            collection,
            ifu,
            txs,
        }
    }

    /// The pre-window L2 state.
    pub fn state(&self) -> &L2State {
        &self.state
    }

    /// The window in original (paper TX1…TX8) order.
    pub fn window(&self) -> &[NftTransaction] {
        &self.txs
    }

    /// Case 1: the original fee order `TX1 … TX8`.
    pub fn original_order(&self) -> Vec<usize> {
        (0..8).collect()
    }

    /// Case 2 (candidate): the paper's `TX1, TX7, TX5, TX4, TX3, TX6, TX2,
    /// TX8` with the infeasible `TX4`-before-`TX2` corrected by executing
    /// `TX4` right after `TX2` (see the module-level fidelity note).
    pub fn candidate_order(&self) -> Vec<usize> {
        // Paper numbering:  TX1, TX7, TX5, TX3, TX6, TX2, TX4, TX8
        vec![0, 6, 4, 2, 5, 1, 3, 7]
    }

    /// Case 3 (optimal): the paper's `TX1, TX7, TX8, TX5, TX4, TX3, TX6,
    /// TX2` with the same `TX4` correction applied.
    pub fn optimal_order(&self) -> Vec<usize> {
        // Paper numbering:  TX1, TX7, TX8, TX5, TX3, TX6, TX2, TX4
        vec![0, 6, 7, 4, 2, 5, 1, 3]
    }

    /// Executes the window in the given order (indices into
    /// [`CaseStudy::window`]) and reports every row.
    ///
    /// # Panics
    ///
    /// Panics when `order` is not a permutation of `0..8`.
    pub fn evaluate(&self, order: &[usize]) -> CaseStudyReport {
        assert_eq!(order.len(), self.txs.len(), "order must cover the window");
        let ovm = Ovm::new();
        let mut state = self.state.clone();
        let mut rows = Vec::with_capacity(order.len());
        let mut all_executed = true;
        for &idx in order {
            let tx = &self.txs[idx];
            let receipt = ovm.execute(&mut state, tx);
            all_executed &= receipt.is_success();
            let coll = state.collection(self.collection).expect("PT deployed");
            rows.push(CaseStudyRow {
                tx_number: idx + 1,
                executed: receipt.is_success(),
                price: coll.price(),
                ifu_l2_balance: state.balance_of(self.ifu),
                ifu_tokens: coll.balance_of(self.ifu),
                ifu_total_balance: state.total_balance_of(self.ifu),
            });
        }
        CaseStudyReport {
            final_total_balance: state.total_balance_of(self.ifu),
            final_l2_balance: state.balance_of(self.ifu),
            all_executed,
            rows,
        }
    }
}

impl Default for CaseStudy {
    fn default() -> Self {
        CaseStudy::paper_setup()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn milli(v: u64) -> Wei {
        Wei::from_milli_eth(v)
    }

    #[test]
    fn initial_conditions_match_figure5() {
        let cs = CaseStudy::paper_setup();
        let coll = cs.state().collection(cs.collection).unwrap();
        assert_eq!(coll.price(), milli(400));
        assert_eq!(coll.remaining_supply(), 5);
        assert_eq!(cs.state().total_balance_of(cs.ifu), milli(2300));
    }

    #[test]
    fn case1_reproduces_every_row() {
        let cs = CaseStudy::paper_setup();
        let report = cs.evaluate(&cs.original_order());
        assert!(report.all_executed);
        let expect_price = [400, 500, 500, 500, 660, 660, 500, 500].map(milli);
        let expect_total = [2300, 2500, 2500, 2500, 2820, 2820, 2500, 2500].map(milli);
        for (i, row) in report.rows.iter().enumerate() {
            assert_eq!(row.price, expect_price[i], "price at row {}", i + 1);
            assert_eq!(
                row.ifu_total_balance,
                expect_total[i],
                "balance at row {}",
                i + 1
            );
        }
        assert_eq!(report.final_total_balance, milli(2500));
        assert_eq!(report.final_l2_balance, milli(1000));
    }

    #[test]
    fn case2_reproduces_paper_balances() {
        let cs = CaseStudy::paper_setup();
        let report = cs.evaluate(&cs.candidate_order());
        assert!(
            report.all_executed,
            "corrected case-2 order must be feasible"
        );
        // Paper values in our corrected row order
        // (TX1, TX7, TX5, TX3, TX6, TX2, TX4, TX8).
        let expect_price = [400, 330, 400, 400, 400, 500, 500, 500].map(milli);
        let expect_total = [2300, 2160, 2370, 2370, 2370, 2570, 2570, 2570].map(milli);
        for (i, row) in report.rows.iter().enumerate() {
            assert_eq!(row.price, expect_price[i], "price at row {}", i + 1);
            assert_eq!(
                row.ifu_total_balance,
                expect_total[i],
                "balance at row {}",
                i + 1
            );
        }
        assert_eq!(report.final_total_balance, milli(2570));
        // The non-volatile (L2) part grew 7%: 1.0 -> 1.07 ETH.
        assert_eq!(report.final_l2_balance, milli(1070));
    }

    #[test]
    fn case3_reproduces_paper_balances() {
        let cs = CaseStudy::paper_setup();
        let report = cs.evaluate(&cs.optimal_order());
        assert!(
            report.all_executed,
            "corrected case-3 order must be feasible"
        );
        // (TX1, TX7, TX8, TX5, TX3, TX6, TX2, TX4).
        let expect_price = [400, 330, 330, 400, 400, 400, 500, 500].map(milli);
        let expect_total = [2300, 2160, 2160, 2440, 2440, 2440, 2740, 2740].map(milli);
        for (i, row) in report.rows.iter().enumerate() {
            assert_eq!(row.price, expect_price[i], "price at row {}", i + 1);
            assert_eq!(
                row.ifu_total_balance,
                expect_total[i],
                "balance at row {}",
                i + 1
            );
        }
        assert_eq!(report.final_total_balance, milli(2740));
        // The non-volatile part grew 24%: 1.0 -> 1.24 ETH.
        assert_eq!(report.final_l2_balance, milli(1240));
    }

    #[test]
    fn case_ordering_is_strictly_improving() {
        let cs = CaseStudy::paper_setup();
        let c1 = cs.evaluate(&cs.original_order()).final_total_balance;
        let c2 = cs.evaluate(&cs.candidate_order()).final_total_balance;
        let c3 = cs.evaluate(&cs.optimal_order()).final_total_balance;
        assert!(c1 < c2 && c2 < c3, "2.5 < 2.57 < 2.74");
    }

    #[test]
    fn paper_verbatim_case2_order_is_infeasible_under_strict_semantics() {
        // Documents the fidelity note: the paper's literal order executes
        // TX4 (U19's sale) before TX2 (U19's mint) and must revert there.
        let cs = CaseStudy::paper_setup();
        let paper_case2 = [0usize, 6, 4, 3, 2, 5, 1, 7]; // TX1,TX7,TX5,TX4,TX3,TX6,TX2,TX8
        let report = cs.evaluate(&paper_case2);
        assert!(!report.all_executed);
        let tx4_row = report.rows.iter().find(|r| r.tx_number == 4).unwrap();
        assert!(!tx4_row.executed);
    }

    #[test]
    fn optimal_order_is_the_exhaustive_feasible_maximum() {
        // Verify 2.74 ETH is the true optimum over all 8! = 40 320 orders
        // that keep every transaction executable.
        let cs = CaseStudy::paper_setup();
        let mut indices: Vec<usize> = (0..8).collect();
        let mut best = Wei::ZERO;
        // Heap's algorithm, iterative.
        let mut c = [0usize; 8];
        let eval = |order: &[usize], best: &mut Wei| {
            let report = cs.evaluate(order);
            if report.all_executed {
                *best = (*best).max(report.final_total_balance);
            }
        };
        eval(&indices, &mut best);
        let mut i = 0;
        while i < 8 {
            if c[i] < i {
                if i % 2 == 0 {
                    indices.swap(0, i);
                } else {
                    indices.swap(c[i], i);
                }
                eval(&indices, &mut best);
                c[i] += 1;
                i = 0;
            } else {
                c[i] = 0;
                i += 1;
            }
        }
        // Reproduction finding (recorded in EXPERIMENTS.md): under strict
        // constraint semantics the true optimum is 2.86 ETH — *better* than
        // the paper's "optimal" Case 3 (2.74 ETH). The 2.86 order defers the
        // burn to the end so the IFU sells at the doubly-inflated 0.66 price:
        // TX1, TX8, TX5, TX2, TX3, TX4, TX6, TX7.
        assert_eq!(
            best,
            milli(2860),
            "2.86 ETH is the strict-semantics optimum"
        );
        assert!(best > cs.evaluate(&cs.optimal_order()).final_total_balance);
    }

    #[test]
    fn beyond_paper_order_reaches_2_86() {
        let cs = CaseStudy::paper_setup();
        // TX1, TX8, TX5, TX2, TX3, TX4, TX6, TX7 (0-based indices).
        let report = cs.evaluate(&[0, 7, 4, 1, 2, 3, 5, 6]);
        assert!(report.all_executed);
        assert_eq!(report.final_total_balance, milli(2860));
        assert_eq!(report.final_l2_balance, milli(1360));
    }
}
