//! The GENTRANSEQ module (paper §V-C): DQN-driven search for the profitable
//! transaction order.

use crate::encode::{pair_count, FEATURES_PER_TX};
use crate::mdp::{ReorderEnv, RewardConfig};
use parole_drl::{DqnAgent, DqnConfig, Environment, EpisodeStats};
use parole_ovm::NftTransaction;
use parole_primitives::{Address, Wei, WeiDelta};
use parole_state::L2State;
use std::fmt;

/// What a GENTRANSEQ run produced.
#[derive(Debug, Clone)]
pub struct GentranseqOutcome {
    /// The most profitable valid ordering found (the original order when no
    /// improvement exists).
    pub best_order: Vec<NftTransaction>,
    /// Final combined IFU total balance under `best_order`.
    pub best_balance: Wei,
    /// Final combined IFU total balance under the original order.
    pub original_balance: Wei,
    /// Per-episode training statistics (Fig. 8's reward curves).
    pub episode_stats: Vec<EpisodeStats>,
    /// The paper's Fig. 9 "solution size": the number of swaps the trained
    /// agent performs to find the first candidate solution, taken as the
    /// median over the final quarter of training episodes (when ε has
    /// decayed and the agent acts mostly on-policy). `None` when those
    /// episodes never improved on the original order.
    pub swaps_to_first_candidate: Option<usize>,
}

impl GentranseqOutcome {
    /// The attack profit: best minus original final balance.
    pub fn profit(&self) -> WeiDelta {
        self.best_balance.signed_sub(self.original_balance)
    }

    /// Whether any strictly better ordering was found.
    pub fn improved(&self) -> bool {
        self.best_balance > self.original_balance
    }
}

impl fmt::Display for GentranseqOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "gentranseq(profit {}, {} episodes, first candidate after {:?} swaps)",
            self.profit(),
            self.episode_stats.len(),
            self.swaps_to_first_candidate
        )
    }
}

/// The re-ordering engine: owns the DQN and reward configuration and runs
/// the full train-then-infer pipeline of the paper's Algorithm 1 for each
/// collected window.
#[derive(Debug, Clone)]
pub struct GentranseqModule {
    dqn: DqnConfig,
    reward: RewardConfig,
}

impl GentranseqModule {
    /// A module with explicit configurations.
    pub fn new(dqn: DqnConfig, reward: RewardConfig) -> Self {
        GentranseqModule { dqn, reward }
    }

    /// The paper's exact Table II configuration.
    pub fn paper() -> Self {
        GentranseqModule::new(DqnConfig::paper(), RewardConfig::default())
    }

    /// A scaled-down configuration for tests and large fleet sweeps, chosen
    /// so the qualitative behaviour (finds the profitable orders the paper's
    /// case studies exhibit) is preserved at a fraction of the compute.
    pub fn fast() -> Self {
        GentranseqModule::new(
            DqnConfig {
                episodes: 14,
                max_steps: 50,
                hidden: [32, 32],
                batch_size: 8,
                nn_learning_rate: 2e-3,
                ..DqnConfig::paper()
            },
            RewardConfig::default(),
        )
    }

    /// The DQN configuration in use.
    pub fn dqn_config(&self) -> &DqnConfig {
        &self.dqn
    }

    /// The reward configuration in use.
    pub fn reward_config(&self) -> &RewardConfig {
        &self.reward
    }

    /// Returns a copy with a different seed (fleet simulations give each
    /// adversarial aggregator its own stream).
    pub fn with_seed(&self, seed: u64) -> Self {
        GentranseqModule {
            dqn: DqnConfig { seed, ..self.dqn },
            reward: self.reward,
        }
    }

    /// Builds the environment for a window (exposed for solvers and the
    /// defense module, which evaluate orders without training).
    pub fn environment(
        &self,
        state: &L2State,
        window: &[NftTransaction],
        ifus: &[Address],
    ) -> ReorderEnv {
        ReorderEnv::new(state.clone(), window.to_vec(), ifus.to_vec(), self.reward)
    }

    /// Trains a fresh agent on the window and returns the best ordering,
    /// training statistics and inference metrics.
    ///
    /// # Panics
    ///
    /// Panics on an empty window (assessment rejects those first).
    pub fn run(
        &self,
        state: &L2State,
        window: &[NftTransaction],
        ifus: &[Address],
    ) -> GentranseqOutcome {
        let mut env = self.environment(state, window, ifus);
        let mut agent = DqnAgent::new(
            window.len() * FEATURES_PER_TX,
            pair_count(window.len()).max(1),
            self.dqn,
        );
        let episode_stats = agent.train(&mut env);

        // Greedy inference pass: the trained policy applies swaps until the
        // step budget runs out (this also closes the last training episode's
        // first-improvement log entry).
        let mut obs = env.reset();
        for _ in 0..self.dqn.max_steps {
            let action = agent.act_greedy(&obs);
            let out = env.step(action);
            obs = out.next_state;
        }

        // Fig. 9 solution size: median first-candidate depth over the
        // trained tail (final quarter) of the episode log.
        let log = env.episode_first_improvements();
        let tail_start = log.len() - (log.len() / 4).max(1).min(log.len());
        let mut tail: Vec<usize> = log[tail_start..].iter().flatten().copied().collect();
        tail.sort_unstable();
        let swaps_to_first_candidate = if tail.is_empty() {
            None
        } else {
            Some(tail[tail.len() / 2])
        };

        let original_balance = env.original_balance();
        let (best_order, best_balance) = env.best_order();
        GentranseqOutcome {
            best_order,
            best_balance,
            original_balance,
            episode_stats,
            swaps_to_first_candidate,
        }
    }
}

impl Default for GentranseqModule {
    fn default() -> Self {
        GentranseqModule::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parole_nft::CollectionConfig;
    use parole_ovm::TxKind;
    use parole_primitives::TokenId;

    fn addr(v: u64) -> Address {
        Address::from_low_u64(v)
    }

    /// The mint-vs-burn window where burn-first is strictly better for the
    /// IFU (profit 0.27 ETH under PT pricing).
    fn profitable_window() -> (L2State, Vec<NftTransaction>, Address) {
        let mut state = L2State::new();
        let pt = state.deploy_collection(CollectionConfig::parole_token());
        let ifu = addr(1000);
        state.credit(ifu, Wei::from_milli_eth(1500));
        state.credit(addr(11), Wei::from_eth(1));
        for (owner, token) in [
            (ifu, 0),
            (ifu, 1),
            (addr(1), 2),
            (addr(2), 3),
            (addr(13), 4),
        ] {
            state
                .nft_mint(pt, owner, TokenId::new(token))
                .unwrap()
                .unwrap();
        }
        let window = vec![
            NftTransaction::simple(
                ifu,
                TxKind::Mint {
                    collection: pt,
                    token: TokenId::new(5),
                },
            ),
            NftTransaction::simple(
                addr(2),
                TxKind::Burn {
                    collection: pt,
                    token: TokenId::new(3),
                },
            ),
            NftTransaction::simple(
                ifu,
                TxKind::Transfer {
                    collection: pt,
                    token: TokenId::new(0),
                    to: addr(11),
                },
            ),
        ];
        (state, window, ifu)
    }

    #[test]
    fn finds_the_profitable_order_on_a_small_window() {
        let (state, window, ifu) = profitable_window();
        let module = GentranseqModule::fast();
        let outcome = module.run(&state, &window, &[ifu]);
        assert!(outcome.improved(), "DQN must find a profitable re-ordering");
        // The optimum for this window: mint at 0.4, sell at the inflated 0.5,
        // push the price-depressing burn last — final balance 2.4 ETH vs the
        // original 2.3 ETH.
        let burn_pos = outcome
            .best_order
            .iter()
            .position(|t| matches!(t.kind, TxKind::Burn { .. }))
            .unwrap();
        let sell_pos = outcome
            .best_order
            .iter()
            .position(|t| matches!(t.kind, TxKind::Transfer { .. }) && t.sender == ifu)
            .unwrap();
        let mint_pos = outcome
            .best_order
            .iter()
            .position(|t| matches!(t.kind, TxKind::Mint { .. }) && t.sender == ifu)
            .unwrap();
        assert!(
            mint_pos < sell_pos && sell_pos < burn_pos,
            "optimal order is mint, sell, burn"
        );
        assert_eq!(outcome.best_balance, Wei::from_milli_eth(2400));
        assert!(outcome.profit().is_gain());
        assert_eq!(outcome.episode_stats.len(), module.dqn_config().episodes);
    }

    #[test]
    fn profit_is_exact_for_the_known_optimum() {
        let (state, window, ifu) = profitable_window();
        let module = GentranseqModule::fast();
        let outcome = module.run(&state, &window, &[ifu]);
        // Exhaustive check over all 6 orders of this 3-window gives the
        // optimum directly.
        let env = module.environment(&state, &window, &[ifu]);
        let mut best = Wei::ZERO;
        let perms: [[usize; 3]; 6] = [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        for p in perms {
            let seq: Vec<_> = p.iter().map(|&i| window[i]).collect();
            if let Some(b) = env.balance_of_order(&seq) {
                best = best.max(b);
            }
        }
        assert_eq!(
            outcome.best_balance, best,
            "DQN must reach the exhaustive optimum"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let (state, window, ifu) = profitable_window();
        let module = GentranseqModule::fast().with_seed(7);
        let a = module.run(&state, &window, &[ifu]);
        let b = module.run(&state, &window, &[ifu]);
        assert_eq!(a.best_balance, b.best_balance);
        assert_eq!(a.best_order, b.best_order);
    }

    #[test]
    fn no_opportunity_window_yields_no_improvement() {
        // Transfers only: every valid order has the same IFU balance.
        let mut state = L2State::new();
        let pt = state.deploy_collection(CollectionConfig::parole_token());
        let ifu = addr(1000);
        state.credit(ifu, Wei::from_eth(2));
        state.credit(addr(2), Wei::from_eth(2));
        for (owner, token) in [(ifu, 0), (addr(1), 1)] {
            state
                .nft_mint(pt, owner, TokenId::new(token))
                .unwrap()
                .unwrap();
        }
        let window = vec![
            NftTransaction::simple(
                ifu,
                TxKind::Transfer {
                    collection: pt,
                    token: TokenId::new(0),
                    to: addr(2),
                },
            ),
            NftTransaction::simple(
                addr(1),
                TxKind::Transfer {
                    collection: pt,
                    token: TokenId::new(1),
                    to: addr(2),
                },
            ),
        ];
        let outcome = GentranseqModule::fast().run(&state, &window, &[ifu]);
        assert!(!outcome.improved());
        assert_eq!(outcome.profit(), WeiDelta::ZERO);
    }
}
