//! # parole
//!
//! The PAROLE attack (Khalil & Rahman, DSN 2024): profitable arbitrage in an
//! optimistic rollup by adversarially re-ordering limited-edition ERC-721
//! transactions.
//!
//! An adversarial aggregator colludes with an *illicitly favored user* (IFU).
//! When the aggregator collects its fee-ordered window from Bedrock's private
//! mempool, the [`ParoleModule`] first checks whether the window offers an
//! arbitrage opportunity for the IFU ([`assess()`]); if so, the
//! [`GentranseqModule`] — a deep-Q-network agent over the swap-two-
//! transactions MDP ([`ReorderEnv`]) — searches for the ordering that
//! maximizes the IFU's final balance. The aggregator executes that order;
//! because every transaction is still executed *honestly*, the resulting
//! batch carries a perfectly valid fraud proof and no verifier can object.
//!
//! The crate also contains:
//!
//! - [`casestudy`] — the paper's three worked case studies (Fig. 5),
//!   reproduced against the real OVM;
//! - [`fleet`] — the multi-aggregator simulation behind Fig. 6 and Fig. 7;
//! - [`defense`] — the §VIII counter-measure: running GENTRANSEQ inside the
//!   mempool as a worst-case arbitrage detector and deferring the minimal
//!   set of transactions.
//!
//! # Example
//!
//! ```
//! use parole::casestudy::CaseStudy;
//!
//! let cs = CaseStudy::paper_setup();
//! let original = cs.evaluate(&cs.original_order());
//! let optimal = cs.evaluate(&cs.optimal_order());
//! assert!(optimal.final_total_balance > original.final_total_balance);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assess;
pub mod casestudy;
pub mod defense;
pub mod encode;
pub mod fleet;
pub mod gentranseq;
pub mod mdp;
mod module;
pub mod par;
mod strategy;

pub use assess::{assess, ArbitrageAssessment};
pub use encode::{pair_count, pair_from_index, pair_to_index, FEATURES_PER_TX};
pub use gentranseq::{GentranseqModule, GentranseqOutcome};
pub use mdp::{ActionSpace, EvalConfig, ReorderEnv, RewardConfig};
pub use module::ParoleModule;
pub use strategy::ParoleStrategy;
