//! The PAROLE module: Algorithm 1 end to end.

use crate::{assess, GentranseqModule, GentranseqOutcome};
use parole_ovm::NftTransaction;
use parole_primitives::Address;
use parole_state::L2State;

/// The complete PAROLE pipeline (paper Algorithm 1): arbitrage assessment
/// followed, when warranted, by a GENTRANSEQ search.
///
/// ```text
/// Function PAROLE(U_IFU, Chain^L2, TxSeq^Original):
///     if Arbitrage(U_IFU, TxSeq^Original) then
///         … train DQN, track the profitable final sequence …
///     return TxSeq^Final
/// ```
#[derive(Debug, Clone, Default)]
pub struct ParoleModule {
    gentranseq: GentranseqModule,
}

impl ParoleModule {
    /// Builds the module around a configured GENTRANSEQ engine.
    pub fn new(gentranseq: GentranseqModule) -> Self {
        ParoleModule { gentranseq }
    }

    /// The underlying GENTRANSEQ engine.
    pub fn gentranseq(&self) -> &GentranseqModule {
        &self.gentranseq
    }

    /// Runs the pipeline: returns `None` when the assessment finds no
    /// arbitrage opportunity or the search found nothing strictly better;
    /// otherwise the full [`GentranseqOutcome`].
    pub fn process(
        &self,
        ifus: &[Address],
        chain: &L2State,
        window: &[NftTransaction],
    ) -> Option<GentranseqOutcome> {
        if window.is_empty() || !assess(window, ifus).opportunity {
            return None;
        }
        let outcome = self.gentranseq.run(chain, window, ifus);
        outcome.improved().then_some(outcome)
    }

    /// Algorithm 1's return contract: the final sequence — the profitable
    /// re-ordering when one exists, the original order otherwise.
    pub fn final_sequence(
        &self,
        ifus: &[Address],
        chain: &L2State,
        window: Vec<NftTransaction>,
    ) -> Vec<NftTransaction> {
        match self.process(ifus, chain, &window) {
            Some(outcome) => outcome.best_order,
            None => window,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parole_nft::CollectionConfig;
    use parole_ovm::TxKind;
    use parole_primitives::{TokenId, Wei};

    fn addr(v: u64) -> Address {
        Address::from_low_u64(v)
    }

    fn setup() -> (L2State, Vec<NftTransaction>, Address) {
        let mut state = L2State::new();
        let pt = state.deploy_collection(CollectionConfig::parole_token());
        let ifu = addr(1000);
        state.credit(ifu, Wei::from_milli_eth(1500));
        state.credit(addr(11), Wei::from_eth(1));
        for (owner, token) in [(ifu, 0), (ifu, 1), (addr(2), 3)] {
            state
                .nft_mint(pt, owner, TokenId::new(token))
                .unwrap()
                .unwrap();
        }
        let window = vec![
            NftTransaction::simple(
                ifu,
                TxKind::Mint {
                    collection: pt,
                    token: TokenId::new(5),
                },
            ),
            NftTransaction::simple(
                addr(2),
                TxKind::Burn {
                    collection: pt,
                    token: TokenId::new(3),
                },
            ),
            NftTransaction::simple(
                ifu,
                TxKind::Transfer {
                    collection: pt,
                    token: TokenId::new(0),
                    to: addr(11),
                },
            ),
        ];
        (state, window, ifu)
    }

    #[test]
    fn full_pipeline_returns_profitable_order() {
        let (state, window, ifu) = setup();
        let module = ParoleModule::new(GentranseqModule::fast());
        let outcome = module
            .process(&[ifu], &state, &window)
            .expect("opportunity exists");
        assert!(outcome.profit().is_gain());
        let final_seq = module.final_sequence(&[ifu], &state, window.clone());
        assert_ne!(final_seq, window, "the order must actually change");
    }

    #[test]
    fn no_opportunity_passes_through_unchanged() {
        let (state, window, _) = setup();
        let uninvolved = addr(4242);
        let module = ParoleModule::new(GentranseqModule::fast());
        assert!(module.process(&[uninvolved], &state, &window).is_none());
        assert_eq!(
            module.final_sequence(&[uninvolved], &state, window.clone()),
            window
        );
    }

    #[test]
    fn empty_window_is_a_noop() {
        let (state, _, ifu) = setup();
        let module = ParoleModule::new(GentranseqModule::fast());
        assert!(module.process(&[ifu], &state, &[]).is_none());
        assert!(module.final_sequence(&[ifu], &state, vec![]).is_empty());
    }
}
