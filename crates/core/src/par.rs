//! Bounded, deterministic fork/join helpers — re-exported from
//! [`parole_par`].
//!
//! The implementation moved into its own `parole-par` crate so lower layers
//! (notably the OVM's parallel block executor) can share the same pool
//! without depending on the attack core; this module preserves the historic
//! `parole::par` path for the fleet and figure binaries.

pub use parole_par::{parallel_map, threads_from_env};
