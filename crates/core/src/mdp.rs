//! The transaction re-ordering MDP (paper §V-C1).
//!
//! - **State**: the current candidate ordering of the collected window,
//!   observed as the flattened per-transaction feature matrix
//!   ([`crate::encode`]).
//! - **Action**: swap two positions — `C(N,2)` discrete actions.
//! - **Reward** (paper Eq. 8): `r_k = W × (B_IFU^{N,k} − B_IFU^{N,0})`, the
//!   change in the IFU's *final* total balance between the altered sequence
//!   after `k` actions and the original sequence, with `W` set to a high
//!   positive weight for penalizable (balance-reducing or
//!   validity-breaking) actions and `1` otherwise.
//!
//! Validity: the assessment step (§V-B) requires that "specific transactions
//! … would have satisfied the constraints in the original sequence" keep
//! executing. A swap that makes any transaction revert is penalized and
//! undone, keeping the search inside the feasible region.

use crate::encode::{self, pair_from_index, FEATURES_PER_TX};
use parole_drl::{Environment, StepOutcome};
use parole_ovm::{NftTransaction, Ovm, PrefixExecutor, Receipt, TxKind};
use parole_primitives::{Address, Wei, WeiDelta};
use parole_state::L2State;
use serde::{Deserialize, Serialize};

/// The swap-action space the agent moves in.
///
/// The paper uses all `C(N,2)` unordered pairs; the adjacent-only variant is
/// an ablation (smaller action space, but solutions need longer swap chains
/// — bubble-sort distance instead of Cayley distance).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ActionSpace {
    /// Swap any two positions: `C(N,2)` actions (the paper's design).
    #[default]
    AllPairs,
    /// Swap only neighbouring positions: `N − 1` actions.
    AdjacentOnly,
}

/// Reward shaping parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RewardConfig {
    /// The paper's weight factor `W` applied to penalizable (loss-making)
    /// outcomes; `1` is used for gains.
    pub penalty_weight: f64,
    /// Reward units per ETH of balance delta (the paper reports rewards in
    /// abstract "units"; 100 units/ETH reproduces Fig. 8's magnitudes).
    pub units_per_eth: f64,
    /// Flat penalty (in units) for a swap that breaks sequence validity.
    pub invalid_swap_penalty: f64,
    /// Reject (and undo) swaps that make a transaction revert that executed
    /// successfully under the *original* order (the §V-B validity rule).
    /// Transactions that already reverted originally stay fair game.
    pub require_all_executed: bool,
}

impl Default for RewardConfig {
    fn default() -> Self {
        RewardConfig {
            penalty_weight: 10.0,
            units_per_eth: 100.0,
            invalid_swap_penalty: 50.0,
            require_all_executed: true,
        }
    }
}

/// How candidate orderings are executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvalConfig {
    /// Evaluate through a [`PrefixExecutor`]: keep one journaled working
    /// state and replay only the suffix that diverged from the previous
    /// candidate, instead of cloning the base state and replaying the whole
    /// window. Results are bit-identical either way (pinned by the
    /// equivalence proptests); the naive path exists as the oracle and for
    /// those tests.
    pub prefix_cached: bool,
    /// Journal-checkpoint stride of the prefix executor (in slots); ignored
    /// on the naive path. 1 checkpoints every slot.
    pub checkpoint_stride: usize,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            prefix_cached: true,
            checkpoint_stride: 1,
        }
    }
}

impl EvalConfig {
    /// Full re-execution per candidate — the pre-optimization behavior.
    pub fn naive() -> Self {
        EvalConfig {
            prefix_cached: false,
            checkpoint_stride: 1,
        }
    }
}

/// Evaluation artifacts for one candidate ordering.
#[derive(Debug, Clone)]
struct Evaluation {
    receipts: Vec<Receipt>,
    final_balance: Wei,
    /// `executed[k]` is true when the transaction with *original index* `k`
    /// executed successfully in this ordering.
    executed: Vec<bool>,
}

/// The GENTRANSEQ environment: re-ordering a fixed window of transactions to
/// maximize the IFUs' combined final total balance.
#[derive(Debug)]
pub struct ReorderEnv {
    ovm: Ovm,
    base_state: L2State,
    original: Vec<NftTransaction>,
    ifus: Vec<Address>,
    reward: RewardConfig,
    action_space: ActionSpace,
    /// Incremental executor for the hot path (`None` on the naive path).
    prefix: Option<PrefixExecutor>,
    /// Reusable buffer for materializing `current` as a transaction
    /// sequence, so evaluation does not allocate a fresh `Vec` per
    /// candidate.
    scratch_seq: Vec<NftTransaction>,
    /// Current permutation: `current[k]` is the index into `original` of the
    /// transaction executed `k`-th.
    current: Vec<usize>,
    /// Cached evaluation of `current`.
    cached: Evaluation,
    /// Which original indices executed successfully under the original
    /// order — the validity baseline candidate orderings must preserve.
    original_executed: Vec<bool>,
    /// Final IFU balance under the original order (`B^{N,0}`).
    original_balance: Wei,
    /// Bonding-curve scale hints for feature normalization.
    max_supply: u64,
    base_remaining: u64,
    /// Best *valid* ordering seen across the whole lifetime (training and
    /// inference), with its balance.
    best: (Vec<usize>, Wei),
    /// How many swaps into its episode the current best ordering was
    /// discovered — the paper's Fig. 9 "solution size" (the number of swaps
    /// the agent performs to reach the balance-maximizing sequence).
    best_found_depth: Option<usize>,
    /// Swaps taken since the last reset.
    swaps_since_reset: usize,
    /// Swap count at which the first strictly-better valid ordering appeared
    /// since the last reset (drives the paper's Fig. 9 KDE curves).
    first_improvement: Option<usize>,
    /// Log of `first_improvement` for every completed episode (appended at
    /// each reset).
    episode_first_improvements: Vec<Option<usize>>,
}

impl ReorderEnv {
    /// Builds the environment for `window` executed on top of `state`.
    ///
    /// # Panics
    ///
    /// Panics when the window is empty or has no collection to read scale
    /// hints from.
    pub fn new(
        state: L2State,
        window: Vec<NftTransaction>,
        ifus: Vec<Address>,
        reward: RewardConfig,
    ) -> Self {
        ReorderEnv::with_action_space(state, window, ifus, reward, ActionSpace::AllPairs)
    }

    /// Like [`ReorderEnv::new`] with an explicit [`ActionSpace`].
    ///
    /// # Panics
    ///
    /// Panics when the window is empty.
    pub fn with_action_space(
        state: L2State,
        window: Vec<NftTransaction>,
        ifus: Vec<Address>,
        reward: RewardConfig,
        action_space: ActionSpace,
    ) -> Self {
        ReorderEnv::with_eval_config(
            state,
            window,
            ifus,
            reward,
            action_space,
            EvalConfig::default(),
        )
    }

    /// Like [`ReorderEnv::with_action_space`] with an explicit
    /// [`EvalConfig`] — primarily for the equivalence tests and benchmarks
    /// that pit the prefix-cached evaluator against the naive one.
    ///
    /// # Panics
    ///
    /// Panics when the window is empty.
    pub fn with_eval_config(
        state: L2State,
        window: Vec<NftTransaction>,
        ifus: Vec<Address>,
        reward: RewardConfig,
        action_space: ActionSpace,
        eval_config: EvalConfig,
    ) -> Self {
        assert!(!window.is_empty(), "cannot re-order an empty window");
        let ovm = Ovm::new();
        let collection = window[0].kind.collection();
        let (max_supply, base_remaining) = state
            .collection(collection)
            .map(|c| (c.config().max_supply, c.remaining_supply()))
            .unwrap_or((1, 1));

        let prefix = eval_config
            .prefix_cached
            .then(|| PrefixExecutor::new(ovm.clone(), &state, eval_config.checkpoint_stride));

        let identity: Vec<usize> = (0..window.len()).collect();
        let mut env = ReorderEnv {
            ovm,
            base_state: state,
            original: window,
            ifus,
            reward,
            action_space,
            prefix,
            scratch_seq: Vec::new(),
            current: identity.clone(),
            cached: Evaluation {
                receipts: Vec::new(),
                final_balance: Wei::ZERO,
                executed: Vec::new(),
            },
            original_executed: Vec::new(),
            original_balance: Wei::ZERO,
            max_supply,
            base_remaining,
            best: (identity.clone(), Wei::ZERO),
            best_found_depth: None,
            swaps_since_reset: 0,
            first_improvement: None,
            episode_first_improvements: Vec::new(),
        };
        env.cached = env.evaluate_current();
        env.original_executed = env.cached.executed.clone();
        env.original_balance = env.cached.final_balance;
        env.best = (identity, env.original_balance);
        env
    }

    /// The window in its original order.
    pub fn original_window(&self) -> &[NftTransaction] {
        &self.original
    }

    /// Final combined IFU total balance under the original order.
    pub fn original_balance(&self) -> Wei {
        self.original_balance
    }

    /// Final combined IFU total balance under the *current* candidate order.
    pub fn current_balance(&self) -> Wei {
        self.cached.final_balance
    }

    /// The best valid ordering found so far and its final IFU balance.
    pub fn best_order(&self) -> (Vec<NftTransaction>, Wei) {
        let txs = self.best.0.iter().map(|&i| self.original[i]).collect();
        (txs, self.best.1)
    }

    /// Profit of the best ordering over the original one.
    pub fn best_profit(&self) -> WeiDelta {
        self.best.1.signed_sub(self.original_balance)
    }

    /// Swap count at which the first strictly-better ordering appeared since
    /// the last reset (`None` when no improvement was found yet).
    pub fn first_improvement_swap(&self) -> Option<usize> {
        self.first_improvement
    }

    /// The number of swaps into its episode at which the best-known ordering
    /// was discovered (`None` while the best is still the original order).
    pub fn best_found_depth(&self) -> Option<usize> {
        self.best_found_depth
    }

    /// Per-episode log of the swap count at which the first candidate
    /// solution appeared (one entry per completed episode).
    pub fn episode_first_improvements(&self) -> &[Option<usize>] {
        &self.episode_first_improvements
    }

    /// Evaluates the current permutation: executes it speculatively and
    /// reports the IFUs' final combined total balance.
    ///
    /// On the prefix-cached path only the suffix diverging from the
    /// previously evaluated candidate is replayed; the naive path re-executes
    /// the whole window on a fresh state clone. Both produce identical
    /// artifacts.
    fn evaluate_current(&mut self) -> Evaluation {
        let _span = parole_telemetry::span("mdp.evaluate");
        parole_telemetry::counter("mdp.evaluations", 1);
        self.scratch_seq.clear();
        for &i in &self.current {
            self.scratch_seq.push(self.original[i]);
        }

        let (receipts, final_balance) = if let Some(exec) = self.prefix.as_mut() {
            let (receipts, post) = exec.execute(&self.scratch_seq);
            // Differential oracle: the incremental result must be bit-identical
            // to a naive replay of the whole window from the pristine base.
            #[cfg(feature = "audit")]
            {
                let (naive_receipts, naive_post) = self
                    .ovm
                    .simulate_sequence(&self.base_state, &self.scratch_seq);
                // The naive side rebuilds its root from scratch so the
                // oracle cross-checks the incremental commitment cache
                // rather than comparing the cache against itself.
                if let Err(divergence) = parole_audit::differential::diff_execution(
                    &naive_receipts,
                    naive_post.state_root_naive(),
                    receipts,
                    post.state_root(),
                ) {
                    panic!("prefix-cached execution audit failed: {divergence}");
                }
            }
            let balance = self.ifus.iter().map(|&u| post.total_balance_of(u)).sum();
            (receipts.to_vec(), balance)
        } else {
            let (receipts, post) = self
                .ovm
                .simulate_sequence(&self.base_state, &self.scratch_seq);
            let balance = self.ifus.iter().map(|&u| post.total_balance_of(u)).sum();
            (receipts, balance)
        };

        let mut executed = vec![false; self.current.len()];
        for (slot, receipt) in receipts.iter().enumerate() {
            executed[self.current[slot]] = receipt.is_success();
        }
        Evaluation {
            receipts,
            final_balance,
            executed,
        }
    }

    /// The §V-B validity rule: every transaction that executed under the
    /// original order must still execute under the candidate.
    fn preserves_original_execution(&self, eval: &Evaluation) -> bool {
        self.original_executed
            .iter()
            .zip(&eval.executed)
            .all(|(orig, now)| !orig || *now)
    }

    /// Evaluates an explicit transaction order (utility for solvers and the
    /// defense module). Returns `None` when the order is not a permutation of
    /// the window, or reverts somewhere while `require_all_executed` is set.
    pub fn balance_of_order(&self, seq: &[NftTransaction]) -> Option<Wei> {
        if seq.len() != self.original.len() {
            return None;
        }
        let (receipts, post) = self.ovm.simulate_sequence(&self.base_state, seq);
        if self.reward.require_all_executed {
            // Match each receipt back to its original index by tx hash.
            let ok = receipts.iter().zip(seq).all(|(r, tx)| {
                r.is_success()
                    || self
                        .original
                        .iter()
                        .position(|o| o.tx_hash() == tx.tx_hash())
                        .map(|idx| !self.original_executed[idx])
                        .unwrap_or(false)
            });
            if !ok {
                return None;
            }
        }
        Some(self.ifus.iter().map(|&u| post.total_balance_of(u)).sum())
    }

    /// Builds the flattened observation from the cached evaluation.
    fn observation(&self) -> Vec<f64> {
        let n = self.current.len();
        let mut obs = Vec::with_capacity(n * FEATURES_PER_TX);
        let mut supply = self.base_remaining;
        for (pos, (&orig_idx, receipt)) in
            self.current.iter().zip(&self.cached.receipts).enumerate()
        {
            let tx = &self.original[orig_idx];
            if receipt.is_success() {
                match tx.kind {
                    TxKind::Mint { .. } => supply = supply.saturating_sub(1),
                    TxKind::Burn { .. } => supply += 1,
                    TxKind::Transfer { .. }
                    | TxKind::Approve { .. }
                    | TxKind::SetApprovalForAll { .. } => {}
                }
            }
            obs.extend_from_slice(&encode::encode_tx(
                tx,
                receipt,
                supply,
                self.max_supply,
                pos,
                n,
                &self.ifus,
            ));
        }
        obs
    }
}

impl Environment for ReorderEnv {
    fn state_dim(&self) -> usize {
        self.original.len() * FEATURES_PER_TX
    }

    fn action_count(&self) -> usize {
        match self.action_space {
            ActionSpace::AllPairs => encode::pair_count(self.original.len()),
            ActionSpace::AdjacentOnly => self.original.len().saturating_sub(1),
        }
    }

    fn reset(&mut self) -> Vec<f64> {
        if self.swaps_since_reset > 0 {
            self.episode_first_improvements.push(self.first_improvement);
        }
        self.current = (0..self.original.len()).collect();
        self.cached = self.evaluate_current();
        self.swaps_since_reset = 0;
        self.first_improvement = None;
        self.observation()
    }

    fn step(&mut self, action: usize) -> StepOutcome {
        let (i, j) = match self.action_space {
            ActionSpace::AllPairs => pair_from_index(action, self.original.len()),
            ActionSpace::AdjacentOnly => {
                assert!(
                    action + 1 < self.original.len(),
                    "adjacent action out of range"
                );
                (action, action + 1)
            }
        };
        self.swaps_since_reset += 1;

        // Apply the swap in place and evaluate; a rejected swap is undone by
        // swapping back (no clone of the permutation per step).
        self.current.swap(i, j);
        let eval = self.evaluate_current();

        if self.reward.require_all_executed && !self.preserves_original_execution(&eval) {
            // Infeasible: penalize and stay (the swap is undone; `cached`
            // still describes the pre-swap ordering).
            self.current.swap(i, j);
            return StepOutcome {
                reward: -self.reward.invalid_swap_penalty,
                next_state: self.observation(),
                done: false,
            };
        }

        // Commit the swap.
        self.cached = eval;

        let delta_eth = self
            .cached
            .final_balance
            .signed_sub(self.original_balance)
            .eth_f64();
        let weight = if delta_eth < 0.0 {
            self.reward.penalty_weight
        } else {
            1.0
        };
        let reward = weight * delta_eth * self.reward.units_per_eth;

        if self.cached.final_balance > self.best.1 {
            self.best = (self.current.clone(), self.cached.final_balance);
            self.best_found_depth = Some(self.swaps_since_reset);
        }
        if self.first_improvement.is_none() && self.cached.final_balance > self.original_balance {
            self.first_improvement = Some(self.swaps_since_reset);
        }

        StepOutcome {
            reward,
            next_state: self.observation(),
            done: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::pair_to_index;
    use parole_nft::CollectionConfig;
    use parole_primitives::TokenId;

    fn addr(v: u64) -> Address {
        Address::from_low_u64(v)
    }

    /// A three-transaction window around the case-study state where burn-
    /// before-mint is strictly better for the IFU.
    fn tiny_env() -> ReorderEnv {
        let mut state = L2State::new();
        let pt = state.deploy_collection(CollectionConfig::parole_token());
        let ifu = addr(1000);
        state.credit(ifu, Wei::from_milli_eth(1500));
        state.credit(addr(11), Wei::from_eth(1));
        for (owner, token) in [
            (ifu, 0),
            (ifu, 1),
            (addr(1), 2),
            (addr(2), 3),
            (addr(13), 4),
        ] {
            state
                .nft_mint(pt, owner, TokenId::new(token))
                .unwrap()
                .unwrap();
        }
        let window = vec![
            // IFU mints (price mover, IFU-involving).
            NftTransaction::simple(
                ifu,
                TxKind::Mint {
                    collection: pt,
                    token: TokenId::new(5),
                },
            ),
            // Unrelated burn (price mover).
            NftTransaction::simple(
                addr(2),
                TxKind::Burn {
                    collection: pt,
                    token: TokenId::new(3),
                },
            ),
            // IFU sells a token.
            NftTransaction::simple(
                ifu,
                TxKind::Transfer {
                    collection: pt,
                    token: TokenId::new(0),
                    to: addr(11),
                },
            ),
        ];
        ReorderEnv::new(state, window, vec![ifu], RewardConfig::default())
    }

    #[test]
    fn dimensions_follow_window() {
        let env = tiny_env();
        assert_eq!(env.state_dim(), 3 * FEATURES_PER_TX);
        assert_eq!(env.action_count(), 3);
    }

    #[test]
    fn original_balance_matches_direct_execution() {
        let env = tiny_env();
        let direct = env
            .balance_of_order(env.original_window())
            .expect("original order is valid");
        assert_eq!(direct, env.original_balance());
    }

    #[test]
    fn beneficial_swap_is_rewarded_and_tracked() {
        let mut env = tiny_env();
        env.reset();
        // Swap positions 0 and 1: burn first, then IFU mints at the lower
        // price — strictly better for the IFU.
        let action = pair_to_index(0, 1, 3);
        let out = env.step(action);
        assert!(out.reward > 0.0, "reward {} should be positive", out.reward);
        assert!(env.best_profit().is_gain());
        assert_eq!(env.first_improvement_swap(), Some(1));
    }

    #[test]
    fn harmful_swap_is_penalized_with_weight() {
        let mut env = tiny_env();
        env.reset();
        // First make it better…
        env.step(pair_to_index(0, 1, 3));
        // …then undo: back to the original balance (reward 0), then find a
        // genuinely harmful ordering if one exists. For this window, putting
        // the IFU's sale before the burn is neutral; the key check is the
        // penalty weighting logic, covered by constructing a loss directly.
        let out = env.step(pair_to_index(0, 1, 3));
        assert!(out.reward.abs() < 1e-9, "undoing returns to delta 0");
    }

    #[test]
    fn invalid_swaps_are_rejected_and_undone() {
        // A window where tx 1 depends on tx 0: U5 sells a token it only owns
        // after minting it.
        let mut state = L2State::new();
        let pt = state.deploy_collection(CollectionConfig::parole_token());
        let seller = addr(5);
        let buyer = addr(6);
        state.credit(seller, Wei::from_eth(2));
        state.credit(buyer, Wei::from_eth(2));
        let ifu = seller; // keep the assessment happy; irrelevant here
        let window = vec![
            NftTransaction::simple(
                seller,
                TxKind::Mint {
                    collection: pt,
                    token: TokenId::new(0),
                },
            ),
            NftTransaction::simple(
                seller,
                TxKind::Transfer {
                    collection: pt,
                    token: TokenId::new(0),
                    to: buyer,
                },
            ),
        ];
        let mut env = ReorderEnv::new(state, window, vec![ifu], RewardConfig::default());
        let obs0 = env.reset();
        let out = env.step(0); // the only action: swap (0,1) — invalid
        assert!(out.reward < 0.0);
        assert_eq!(
            out.next_state, obs0,
            "state must be unchanged after an undone swap"
        );
        assert!(env.best_profit() == WeiDelta::ZERO);
    }

    #[test]
    fn reset_restores_original_order() {
        let mut env = tiny_env();
        env.reset();
        env.step(pair_to_index(0, 1, 3));
        let obs_after_reset = env.reset();
        let fresh = tiny_env();
        let mut fresh_env = fresh;
        assert_eq!(obs_after_reset, fresh_env.reset());
        assert_eq!(env.first_improvement_swap(), None);
    }

    #[test]
    fn best_order_survives_reset() {
        let mut env = tiny_env();
        env.reset();
        env.step(pair_to_index(0, 1, 3));
        let (best, balance) = env.best_order();
        env.reset();
        let (best_after, balance_after) = env.best_order();
        assert_eq!(best, best_after);
        assert_eq!(balance, balance_after);
        assert!(balance > env.original_balance());
    }

    #[test]
    fn adjacent_action_space_shrinks_and_still_moves() {
        let mut full = tiny_env();
        let cs = tiny_env();
        let mut adj = ReorderEnv::with_action_space(
            cs.base_state.clone(),
            cs.original.clone(),
            cs.ifus.clone(),
            RewardConfig::default(),
            ActionSpace::AdjacentOnly,
        );
        assert_eq!(full.action_count(), 3);
        assert_eq!(adj.action_count(), 2);
        full.reset();
        adj.reset();
        // Adjacent action 0 swaps positions (0, 1), same as pair index 0.
        let a = adj.step(0);
        let f = full.step(pair_to_index(0, 1, 3));
        assert!((a.reward - f.reward).abs() < 1e-9);
    }

    #[test]
    fn balance_of_order_rejects_wrong_length() {
        let env = tiny_env();
        assert!(env.balance_of_order(&env.original_window()[..2]).is_none());
    }
}
