//! The adversarial ordering strategy plugged into rollup aggregators.

use crate::ParoleModule;
use parole_ovm::NftTransaction;
use parole_primitives::{Address, WeiDelta};
use parole_rollup::OrderingStrategy;
use parole_state::L2State;
use std::fmt;

/// An [`OrderingStrategy`] that runs the PAROLE pipeline on every collected
/// window, executing the GENTRANSEQ order whenever it is strictly profitable
/// for the colluding IFUs, and the honest fee order otherwise.
///
/// Accumulates per-window profit so fleet experiments (Fig. 6/7) can read
/// the attack's take directly off the strategy.
pub struct ParoleStrategy {
    module: ParoleModule,
    ifus: Vec<Address>,
    total_profit: WeiDelta,
    windows_seen: u64,
    windows_exploited: u64,
}

impl fmt::Debug for ParoleStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ParoleStrategy")
            .field("ifus", &self.ifus.len())
            .field("total_profit", &self.total_profit)
            .field("windows_exploited", &self.windows_exploited)
            .finish()
    }
}

impl ParoleStrategy {
    /// Creates the strategy colluding with `ifus`.
    pub fn new(module: ParoleModule, ifus: Vec<Address>) -> Self {
        ParoleStrategy {
            module,
            ifus,
            total_profit: WeiDelta::ZERO,
            windows_seen: 0,
            windows_exploited: 0,
        }
    }

    /// The colluding IFUs.
    pub fn ifus(&self) -> &[Address] {
        &self.ifus
    }

    /// Cumulative profit extracted across all windows.
    pub fn total_profit(&self) -> WeiDelta {
        self.total_profit
    }

    /// `(windows seen, windows where a profitable re-ordering was executed)`.
    pub fn window_stats(&self) -> (u64, u64) {
        (self.windows_seen, self.windows_exploited)
    }
}

impl OrderingStrategy for ParoleStrategy {
    fn name(&self) -> &str {
        "parole"
    }

    fn order(&mut self, state: &L2State, window: Vec<NftTransaction>) -> Vec<NftTransaction> {
        self.windows_seen += 1;
        match self.module.process(&self.ifus, state, &window) {
            Some(outcome) => {
                self.windows_exploited += 1;
                self.total_profit += outcome.profit();
                outcome.best_order
            }
            None => window,
        }
    }

    fn attack_stats(&self) -> Option<(WeiDelta, u64, u64)> {
        Some((self.total_profit, self.windows_seen, self.windows_exploited))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GentranseqModule;
    use parole_nft::CollectionConfig;
    use parole_ovm::TxKind;
    use parole_primitives::{AggregatorId, TokenId, VerifierId, Wei};
    use parole_rollup::{Aggregator, RollupConfig, RollupContract, Verifier};

    fn addr(v: u64) -> Address {
        Address::from_low_u64(v)
    }

    /// End-to-end protocol test: a PAROLE batch sails through the rollup
    /// with a valid fraud proof, and the IFU ends richer than under the
    /// honest ordering.
    #[test]
    fn parole_batch_finalizes_with_valid_fraud_proof() {
        let mut rollup = RollupContract::new(RollupConfig::default());
        let pt = rollup
            .l2_state_for_setup()
            .deploy_collection(CollectionConfig::parole_token());
        rollup.commit_setup();
        let ifu = addr(1000);
        rollup.deposit(ifu, Wei::from_milli_eth(1500)).unwrap();
        rollup.deposit(addr(11), Wei::from_eth(1)).unwrap();
        rollup.deposit(addr(2), Wei::from_eth(1)).unwrap();

        // Pre-mint the fixture inside a setup batch from an honest aggregator.
        rollup.bond_aggregator(AggregatorId::new(0));
        rollup.bond_aggregator(AggregatorId::new(1));
        rollup.bond_verifier(VerifierId::new(0));
        let mut honest = Aggregator::honest(AggregatorId::new(0), Wei::from_eth(10));
        let setup_txs = vec![
            NftTransaction::simple(
                ifu,
                TxKind::Mint {
                    collection: pt,
                    token: TokenId::new(0),
                },
            ),
            NftTransaction::simple(
                addr(2),
                TxKind::Mint {
                    collection: pt,
                    token: TokenId::new(3),
                },
            ),
        ];
        // Fund the IFU's mint: it pays 0.2, fine with 1.5 ETH.
        let setup_batch = honest.build_batch(rollup.l2_state(), setup_txs);
        rollup.submit_batch(setup_batch).unwrap();

        // The attack window: IFU mint + unrelated burn + IFU sale.
        let window = vec![
            NftTransaction::simple(
                ifu,
                TxKind::Mint {
                    collection: pt,
                    token: TokenId::new(5),
                },
            ),
            NftTransaction::simple(
                addr(2),
                TxKind::Burn {
                    collection: pt,
                    token: TokenId::new(3),
                },
            ),
            NftTransaction::simple(
                ifu,
                TxKind::Transfer {
                    collection: pt,
                    token: TokenId::new(0),
                    to: addr(11),
                },
            ),
        ];

        // Honest baseline for comparison.
        let honest_baseline = {
            let (_, post) = parole_ovm::Ovm::new().simulate_sequence(rollup.l2_state(), &window);
            post.total_balance_of(ifu)
        };

        let strategy = ParoleStrategy::new(ParoleModule::new(GentranseqModule::fast()), vec![ifu]);
        let mut adversary =
            Aggregator::new(AggregatorId::new(1), Wei::from_eth(10), Box::new(strategy));
        let batch = adversary.build_batch(rollup.l2_state(), window);

        // The verifier cannot tell anything is wrong.
        let verifier = Verifier::new(VerifierId::new(0), Wei::from_eth(5));
        assert!(
            verifier.validate(rollup.l2_state(), &batch),
            "a PAROLE batch must carry a valid fraud proof"
        );

        rollup.submit_batch(batch).unwrap();
        rollup.finalize_all();
        assert_eq!(
            rollup.undetected_forgeries(),
            0,
            "reordering is not forgery"
        );

        let attacked = rollup.finalized_state().total_balance_of(ifu);
        assert!(
            attacked > honest_baseline,
            "IFU must profit: honest {honest_baseline}, attacked {attacked}"
        );
    }

    #[test]
    fn strategy_tracks_profit_stats() {
        let mut state = L2State::new();
        let pt = state.deploy_collection(CollectionConfig::parole_token());
        let ifu = addr(1000);
        state.credit(ifu, Wei::from_milli_eth(1500));
        state.credit(addr(11), Wei::from_eth(1));
        for (owner, token) in [(ifu, 0), (addr(2), 3)] {
            state
                .nft_mint(pt, owner, TokenId::new(token))
                .unwrap()
                .unwrap();
        }
        let window = vec![
            NftTransaction::simple(
                ifu,
                TxKind::Mint {
                    collection: pt,
                    token: TokenId::new(5),
                },
            ),
            NftTransaction::simple(
                addr(2),
                TxKind::Burn {
                    collection: pt,
                    token: TokenId::new(3),
                },
            ),
            NftTransaction::simple(
                ifu,
                TxKind::Transfer {
                    collection: pt,
                    token: TokenId::new(0),
                    to: addr(11),
                },
            ),
        ];
        let mut strategy =
            ParoleStrategy::new(ParoleModule::new(GentranseqModule::fast()), vec![ifu]);
        let ordered = strategy.order(&state, window.clone());
        assert_ne!(ordered, window);
        assert!(strategy.total_profit().is_gain());
        assert_eq!(strategy.window_stats(), (1, 1));

        // A window with no opportunity passes through and counts as seen.
        let boring = vec![window[1]];
        let unchanged = strategy.order(&state, boring.clone());
        assert_eq!(unchanged, boring);
        assert_eq!(strategy.window_stats(), (2, 1));
    }
}
