//! The multi-aggregator fleet simulation behind Fig. 6 and Fig. 7.
//!
//! A population of aggregators serves a shared rollup. A configurable
//! fraction is adversarial: those run the PAROLE pipeline on every window
//! they collect; the rest execute the fee order honestly. Traffic is
//! generated round by round from the evolving chain state, so each window is
//! executable at its collection point (the property Bedrock's fee ordering
//! provides on the real chain).
//!
//! Within a round every aggregator collects its window from the same
//! round-start state — the fleet collects concurrently, as it would on the
//! real chain — from its own seeded traffic stream. That makes the expensive
//! per-aggregator ordering step (`build_batch`, which runs GENTRANSEQ
//! training for adversarial aggregators) independent across the fleet, so
//! [`run_fleet`] fans it out over a bounded worker pool
//! ([`crate::par::parallel_map`]) and then commits batches in aggregator
//! order. Because each aggregator owns its RNG streams and commits are
//! serialized in a fixed order, the [`FleetOutcome`] is **bit-identical for
//! every pool size** (see the `thread_count` determinism test).
//!
//! Profit accounting follows the paper: for every exploited window, the
//! attack profit is the difference between the IFUs' final combined balance
//! under the executed (GENTRANSEQ) order and under the original fee order,
//! measured at decision time. Fig. 6 plots the *average profit per IFU*;
//! Fig. 7 plots the *total* profit. The paper's y-axis unit ("Satoshis") is
//! reported here as Gwei (see EXPERIMENTS.md).

use crate::defense::window_tip_revenue;
use crate::{GentranseqModule, ParoleModule, ParoleStrategy};
use parole_mempool::{WorkloadConfig, WorkloadGenerator};
use parole_nft::CollectionConfig;
use parole_ovm::{GasSchedule, Ovm};
use parole_primitives::{Address, AggregatorId, Wei, WeiDelta};
use parole_rollup::{Aggregator, FeePriorityStrategy};
use parole_state::L2State;
use serde::{Deserialize, Serialize};

/// Parameters of one fleet experiment cell.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Total number of aggregators.
    pub n_aggregators: usize,
    /// Fraction of aggregators running PAROLE (0.1 in Fig. 6(a), 0.5 in
    /// Fig. 6(b); swept 0.1–0.5 in Fig. 7).
    pub adversarial_fraction: f64,
    /// Window size each aggregator collects (the paper's per-aggregator
    /// "Mempool" size: 25 / 50 / 100).
    pub mempool_size: usize,
    /// Number of colluding IFUs served by every adversarial aggregator.
    pub n_ifus: usize,
    /// Size of the general user population.
    pub n_users: usize,
    /// Rounds of window collection per aggregator.
    pub rounds: usize,
    /// Minimum collection max-supply; the effective supply is
    /// `max(collection_supply, 2 × mempool_size)`.
    pub collection_supply: u64,
    /// Initial bonding-curve price in milli-ETH.
    pub initial_price_milli: u64,
    /// Funding per user in ETH.
    pub user_funding_eth: u64,
    /// Probability that generated traffic is steered to involve an IFU.
    /// Note this is *per transaction*, independent of `n_ifus`: the total
    /// IFU-involving mass in a window stays constant as it is split across
    /// more IFUs, which is what makes Fig. 6's per-IFU average decrease.
    pub ifu_participation: f64,
    /// Guarantee each IFU a mint + transfer pair at the stream head. Leave
    /// off for Fig. 6-style sweeps (it would grow the IFU mass linearly in
    /// `n_ifus`).
    pub ensure_ifu_pair: bool,
    /// GENTRANSEQ profile for the adversarial aggregators.
    pub gentranseq: GentranseqModule,
    /// Base RNG seed.
    pub seed: u64,
    /// Worker-pool size for the per-aggregator ordering step (`0` = the
    /// machine's available parallelism). Results are identical for every
    /// value — this only trades wall-clock for cores.
    pub threads: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            n_aggregators: 10,
            adversarial_fraction: 0.1,
            mempool_size: 25,
            n_ifus: 1,
            n_users: 20,
            rounds: 1,
            collection_supply: 40,
            initial_price_milli: 500,
            user_funding_eth: 50,
            ifu_participation: 0.35,
            ensure_ifu_pair: false,
            gentranseq: GentranseqModule::fast(),
            seed: 42,
            threads: 0,
        }
    }
}

/// Per-aggregator accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregatorReport {
    /// The aggregator's id.
    pub id: u64,
    /// Whether it ran the PAROLE strategy.
    pub adversarial: bool,
    /// Windows it processed.
    pub windows: u64,
    /// Windows where a profitable re-ordering was executed.
    pub exploited: u64,
    /// Its cumulative attack profit (zero for honest aggregators).
    pub profit: WeiDelta,
    /// Cumulative priority-fee (tip) revenue over its windows — the honest
    /// income an aggregator earns regardless of strategy. Comparing this to
    /// `profit` answers "is attacking worth it".
    pub tip_revenue: Wei,
}

/// Outcome of one fleet experiment cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetOutcome {
    /// Sum of attack profits over all adversarial aggregators (Fig. 7's y).
    pub total_profit: WeiDelta,
    /// `total_profit / n_ifus` (Fig. 6's y).
    pub avg_profit_per_ifu: WeiDelta,
    /// Number of adversarial aggregators in the fleet.
    pub adversarial_count: usize,
    /// Honest tip revenue of the adversarial aggregators (the income they
    /// would have earned anyway).
    pub adversarial_tip_revenue: Wei,
    /// Per-aggregator detail.
    pub per_aggregator: Vec<AggregatorReport>,
}

impl FleetOutcome {
    /// Total profit in Gwei (the reporting unit of Fig. 6/7).
    pub fn total_profit_gwei(&self) -> i128 {
        self.total_profit.gwei()
    }

    /// Average per-IFU profit in Gwei.
    pub fn avg_profit_per_ifu_gwei(&self) -> i128 {
        self.avg_profit_per_ifu.gwei()
    }
}

/// Runs one fleet experiment cell.
pub fn run_fleet(config: &FleetConfig) -> FleetOutcome {
    assert!(config.n_aggregators > 0 && config.mempool_size > 0);
    let adversarial_count =
        ((config.n_aggregators as f64 * config.adversarial_fraction).round() as usize).clamp(
            if config.adversarial_fraction > 0.0 {
                1
            } else {
                0
            },
            config.n_aggregators,
        );

    // Economy: one limited-edition collection, funded users, funded IFUs
    // holding a couple of tokens each (the case-study shape).
    let mut state = L2State::new();
    // `collection_supply` acts as a floor; the effective supply scales with
    // the window size so the bonding curve keeps moving under long windows.
    let supply = config.collection_supply.max(config.mempool_size as u64 * 2);
    let collection = state.deploy_collection(CollectionConfig::limited_edition(
        "FleetPT",
        supply,
        config.initial_price_milli,
    ));
    let users: Vec<Address> = (1..=config.n_users as u64)
        .map(Address::from_low_u64)
        .collect();
    for &u in &users {
        state.credit(u, Wei::from_eth(config.user_funding_eth));
    }
    let ifus: Vec<Address> = (0..config.n_ifus as u64)
        .map(|i| Address::from_low_u64(10_000 + i))
        .collect();
    for &ifu in &ifus {
        state.credit(ifu, Wei::from_eth(config.user_funding_eth));
    }
    let mut token = 0u64;
    for &ifu in &ifus {
        for t in [token, token + 1] {
            state
                .nft_mint(collection, ifu, parole_primitives::TokenId::new(t))
                .expect("just deployed")
                .unwrap();
        }
        token += 2;
    }
    // Bystanders holding tokens give transfers and burns material.
    for (i, &u) in users.iter().take(8).enumerate() {
        state
            .nft_mint(
                collection,
                u,
                parole_primitives::TokenId::new(token + i as u64),
            )
            .expect("just deployed")
            .unwrap();
    }

    // Build the fleet: the first `adversarial_count` aggregators attack.
    let mut aggregators: Vec<Aggregator> = (0..config.n_aggregators)
        .map(|i| {
            let id = AggregatorId::new(i as u64);
            if i < adversarial_count {
                let module = ParoleModule::new(
                    config
                        .gentranseq
                        .with_seed(config.seed.wrapping_add(i as u64)),
                );
                Aggregator::new(
                    id,
                    Wei::from_eth(10),
                    Box::new(ParoleStrategy::new(module, ifus.clone())),
                )
            } else {
                Aggregator::new(id, Wei::from_eth(10), Box::new(FeePriorityStrategy))
            }
        })
        .collect();

    // Traffic generation + chained execution. Each aggregator draws from its
    // own seeded stream (golden-ratio spaced so streams do not collide), so
    // window contents are a pure function of (config, aggregator, round) —
    // never of which worker thread served the aggregator.
    let workload = WorkloadConfig {
        ifu_participation: config.ifu_participation,
        ensure_ifu_pair: config.ensure_ifu_pair,
        ..WorkloadConfig::default()
    };
    let mut generators: Vec<WorkloadGenerator> = (0..config.n_aggregators)
        .map(|i| {
            let stream = config
                .seed
                .wrapping_add(0x9E3779B97F4A7C15u64.wrapping_mul(i as u64 + 1));
            WorkloadGenerator::new(stream, workload.clone())
        })
        .collect();
    let ovm = Ovm::new();
    let mut reports: Vec<AggregatorReport> = aggregators
        .iter()
        .enumerate()
        .map(|(i, a)| AggregatorReport {
            id: a.id().value(),
            adversarial: i < adversarial_count,
            windows: 0,
            exploited: 0,
            profit: WeiDelta::ZERO,
            tip_revenue: Wei::ZERO,
        })
        .collect();

    let gas_schedule = GasSchedule::paper_calibrated();
    let base_fee = Wei::from_gwei(1);
    for _round in 0..config.rounds {
        // Every aggregator collects its window from the round-start state
        // (concurrent collection, like the real chain). Generation itself is
        // cheap and stays sequential so generator state advances in a fixed
        // order.
        let windows: Vec<_> = generators
            .iter_mut()
            .map(|g| g.generate(&state, collection, &users, &ifus, config.mempool_size))
            .collect();

        // Materialize the round-start commitment before fanning out. The
        // cache lives behind the state's internal mutex, so without this the
        // amount of Merkle work each cell observes (and its clones inherit)
        // would depend on which worker reads the root first — the hash
        // values stay identical, but per-cell work counts would vary with
        // the pool partition, which the telemetry determinism checks forbid.
        let _ = state.state_root();

        // Fan the expensive ordering step (GENTRANSEQ training for the
        // adversarial aggregators) across the pool. Tip revenue is a
        // permutation-invariant sum, so it can be read off the re-ordered
        // batch inside the worker.
        let state_ref = &state;
        let gas_ref = &gas_schedule;
        let built = crate::par::parallel_map(
            aggregators.iter_mut().zip(windows).collect(),
            config.threads,
            move |(agg, window): (&mut Aggregator, Vec<_>)| {
                let _span = parole_telemetry::span("fleet.cell");
                parole_telemetry::counter("fleet.cells", 1);
                if window.is_empty() {
                    return None;
                }
                let batch = agg.build_batch(state_ref, window);
                let tips = window_tip_revenue(&batch.txs, base_fee, gas_ref);
                Some((batch, tips))
            },
        );

        // Commit the executed (possibly re-ordered) batches to the chain in
        // aggregator order — the serialization point that keeps the outcome
        // independent of the pool size.
        for (i, item) in built.into_iter().enumerate() {
            if let Some((batch, tips)) = item {
                reports[i].tip_revenue += tips;
                let _ = ovm.execute_sequence(&mut state, &batch.txs);
                state.advance_block();
                reports[i].windows += 1;
            }
        }
    }

    // Harvest per-strategy profit through the attack-stats probe.
    let mut total_profit = WeiDelta::ZERO;
    for (report, agg) in reports.iter_mut().zip(&aggregators) {
        if let Some((profit, seen, exploited)) = agg.strategy_stats() {
            report.profit = profit;
            report.windows = seen;
            report.exploited = exploited;
            total_profit += profit;
        }
    }

    let n_ifus = config.n_ifus.max(1) as i128;
    let adversarial_tip_revenue = reports
        .iter()
        .filter(|r| r.adversarial)
        .map(|r| r.tip_revenue)
        .sum();
    FleetOutcome {
        total_profit,
        avg_profit_per_ifu: WeiDelta::from_wei(total_profit.wei() / n_ifus),
        adversarial_count,
        adversarial_tip_revenue,
        per_aggregator: reports,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> FleetConfig {
        FleetConfig {
            n_aggregators: 4,
            adversarial_fraction: 0.25,
            mempool_size: 10,
            n_users: 10,
            collection_supply: 60,
            gentranseq: GentranseqModule::fast(),
            ..FleetConfig::default()
        }
    }

    #[test]
    fn fleet_produces_profit_for_the_adversary() {
        let outcome = run_fleet(&small_config());
        assert_eq!(outcome.adversarial_count, 1);
        assert_eq!(outcome.per_aggregator.len(), 4);
        // The adversarial aggregator should extract non-negative profit, and
        // with price-moving traffic it should essentially always be positive.
        assert!(
            !outcome.total_profit.is_loss(),
            "attack profit cannot be negative: {}",
            outcome.total_profit
        );
        let adv: Vec<_> = outcome
            .per_aggregator
            .iter()
            .filter(|r| r.adversarial)
            .collect();
        assert_eq!(adv.len(), 1);
        assert!(adv[0].windows >= 1);
    }

    #[test]
    fn more_adversaries_mean_no_less_total_profit() {
        let low = run_fleet(&FleetConfig {
            adversarial_fraction: 0.25,
            ..small_config()
        });
        let high = run_fleet(&FleetConfig {
            adversarial_fraction: 0.75,
            ..small_config()
        });
        assert!(high.adversarial_count > low.adversarial_count);
        assert!(
            high.total_profit >= low.total_profit,
            "more attackers should extract at least as much: {} vs {}",
            high.total_profit,
            low.total_profit
        );
    }

    #[test]
    fn tip_revenue_is_tracked_for_every_aggregator() {
        let outcome = run_fleet(&small_config());
        for report in &outcome.per_aggregator {
            if report.windows > 0 {
                assert!(report.tip_revenue > Wei::ZERO, "windows carry tips");
            }
        }
        assert!(outcome.adversarial_tip_revenue > Wei::ZERO);
    }

    #[test]
    fn fleet_outcome_is_bit_identical_across_pool_sizes() {
        let base = FleetConfig {
            rounds: 2,
            ..small_config()
        };
        let one = run_fleet(&FleetConfig {
            threads: 1,
            ..base.clone()
        });
        let two = run_fleet(&FleetConfig {
            threads: 2,
            ..base.clone()
        });
        let four = run_fleet(&FleetConfig {
            threads: 4,
            ..base.clone()
        });
        let auto = run_fleet(&FleetConfig { threads: 0, ..base });
        assert_eq!(one, two);
        assert_eq!(one, four);
        assert_eq!(one, auto);
    }

    #[test]
    fn avg_profit_divides_by_ifus() {
        let outcome = run_fleet(&FleetConfig {
            n_ifus: 2,
            ..small_config()
        });
        assert_eq!(
            outcome.avg_profit_per_ifu.wei(),
            outcome.total_profit.wei() / 2
        );
    }
}
