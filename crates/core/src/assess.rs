//! Arbitrage-opportunity assessment (paper §V-B).
//!
//! Before paying for a GENTRANSEQ search, the PAROLE module checks whether
//! the collected window can possibly be re-ordered in the IFU's favor:
//!
//! 1. the IFU must be involved in **multiple** transactions — "ideally … at
//!    least a pair of minting and transfer transactions";
//! 2. the window must contain at least one price-moving transaction (a mint
//!    or a burn): transfers alone leave the bonding curve flat, so every
//!    ordering yields the same balances;
//! 3. re-ordering must have room to act (`N ≥ 2`).

use parole_ovm::{NftTransaction, TxKind};
use parole_primitives::Address;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The result of assessing one window for one set of IFUs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArbitrageAssessment {
    /// Whether the window is worth a GENTRANSEQ run.
    pub opportunity: bool,
    /// Transactions in which at least one IFU participates.
    pub ifu_tx_count: usize,
    /// Whether some IFU appears in a mint.
    pub ifu_mints: bool,
    /// Whether some IFU appears as a party to a transfer.
    pub ifu_transfers: bool,
    /// Price-moving (mint/burn) transactions in the window.
    pub price_moving_count: usize,
    /// Window size.
    pub window_len: usize,
}

impl ArbitrageAssessment {
    /// The paper's "ideal" precondition: the IFU holds both a mint and a
    /// transfer in the window.
    pub fn has_ideal_pair(&self) -> bool {
        self.ifu_mints && self.ifu_transfers
    }
}

impl fmt::Display for ArbitrageAssessment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "assessment(opportunity={}, ifu_txs={}/{}, price_moving={})",
            self.opportunity, self.ifu_tx_count, self.window_len, self.price_moving_count
        )
    }
}

/// Assesses whether `window` offers a potential arbitrage for `ifus`.
///
/// The check is intentionally cheap (no OVM execution): it bounds what a
/// re-ordering *could* achieve, not what it will. The GENTRANSEQ search is
/// the expensive confirmation step.
pub fn assess(window: &[NftTransaction], ifus: &[Address]) -> ArbitrageAssessment {
    let mut ifu_tx_count = 0;
    let mut ifu_mints = false;
    let mut ifu_transfers = false;
    let mut price_moving_count = 0;

    for tx in window {
        let involved = ifus.iter().any(|&u| tx.involves(u));
        if involved {
            ifu_tx_count += 1;
        }
        match tx.kind {
            TxKind::Mint { .. } => {
                price_moving_count += 1;
                if involved {
                    ifu_mints = true;
                }
            }
            TxKind::Burn { .. } => price_moving_count += 1,
            TxKind::Transfer { .. } => {
                if involved {
                    ifu_transfers = true;
                }
            }
            // Approvals neither move the curve nor reposition IFU value.
            TxKind::Approve { .. } | TxKind::SetApprovalForAll { .. } => {}
        }
    }

    let opportunity = window.len() >= 2
        && ifu_tx_count >= 2
        && price_moving_count >= 1
        // A window where *only* IFU transactions exist can still be arbitraged
        // (IFU mints around others' burns), but with zero price movers there
        // is nothing to exploit; conversely price movers with < 2 IFU slots
        // leave nothing to re-position.
        ;

    ArbitrageAssessment {
        opportunity,
        ifu_tx_count,
        ifu_mints,
        ifu_transfers,
        price_moving_count,
        window_len: window.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parole_primitives::TokenId;

    fn addr(v: u64) -> Address {
        Address::from_low_u64(v)
    }

    fn coll() -> Address {
        addr(100)
    }

    fn mint(sender: Address, token: u64) -> NftTransaction {
        NftTransaction::simple(
            sender,
            TxKind::Mint {
                collection: coll(),
                token: TokenId::new(token),
            },
        )
    }

    fn transfer(from: Address, to: Address, token: u64) -> NftTransaction {
        NftTransaction::simple(
            from,
            TxKind::Transfer {
                collection: coll(),
                token: TokenId::new(token),
                to,
            },
        )
    }

    fn burn(sender: Address, token: u64) -> NftTransaction {
        NftTransaction::simple(
            sender,
            TxKind::Burn {
                collection: coll(),
                token: TokenId::new(token),
            },
        )
    }

    #[test]
    fn ideal_pair_is_an_opportunity() {
        let ifu = addr(1000);
        let window = vec![
            mint(ifu, 5),
            transfer(addr(1), ifu, 0),
            burn(addr(2), 1),
            transfer(addr(3), addr(4), 2),
        ];
        let a = assess(&window, &[ifu]);
        assert!(a.opportunity);
        assert!(a.has_ideal_pair());
        assert_eq!(a.ifu_tx_count, 2);
        assert_eq!(a.price_moving_count, 2);
    }

    #[test]
    fn single_ifu_tx_is_not_enough() {
        let ifu = addr(1000);
        let window = vec![
            mint(ifu, 5),
            burn(addr(2), 1),
            transfer(addr(3), addr(4), 2),
        ];
        let a = assess(&window, &[ifu]);
        assert!(!a.opportunity);
        assert_eq!(a.ifu_tx_count, 1);
    }

    #[test]
    fn transfers_only_window_has_no_opportunity() {
        let ifu = addr(1000);
        let window = vec![
            transfer(ifu, addr(1), 0),
            transfer(addr(2), ifu, 1),
            transfer(addr(3), addr(4), 2),
        ];
        let a = assess(&window, &[ifu]);
        assert!(!a.opportunity, "no price movers, nothing to exploit");
        assert_eq!(a.price_moving_count, 0);
    }

    #[test]
    fn uninvolved_ifu_has_no_opportunity() {
        let ifu = addr(1000);
        let window = vec![mint(addr(1), 5), burn(addr(2), 1)];
        let a = assess(&window, &[ifu]);
        assert!(!a.opportunity);
        assert_eq!(a.ifu_tx_count, 0);
    }

    #[test]
    fn multiple_ifus_pool_their_involvement() {
        let (ifu_a, ifu_b) = (addr(1000), addr(1001));
        let window = vec![
            mint(ifu_a, 5),
            transfer(addr(1), ifu_b, 0),
            burn(addr(2), 1),
        ];
        let a = assess(&window, &[ifu_a, ifu_b]);
        assert!(a.opportunity);
        assert_eq!(a.ifu_tx_count, 2);
    }

    #[test]
    fn buyer_side_involvement_counts() {
        let ifu = addr(1000);
        let window = vec![
            transfer(addr(1), ifu, 0),
            mint(addr(9), 5),
            transfer(addr(2), ifu, 1),
        ];
        let a = assess(&window, &[ifu]);
        assert!(a.opportunity);
        assert!(!a.ifu_mints);
        assert!(a.ifu_transfers);
    }

    #[test]
    fn tiny_windows_rejected() {
        let ifu = addr(1000);
        assert!(!assess(&[], &[ifu]).opportunity);
        assert!(!assess(&[mint(ifu, 5)], &[ifu]).opportunity);
    }
}
