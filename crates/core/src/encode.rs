//! Transaction featurization and the swap-action index space.
//!
//! The GENTRANSEQ DQN observes the current transaction sequence as a flat
//! vector of [`FEATURES_PER_TX`] numbers per transaction (paper Fig. 4: each
//! transaction becomes an eight-element tensor; the 2-D tensor is flattened
//! into the `8·N`-wide input layer), and acts by naming one of the `C(N,2)`
//! unordered position pairs to swap.

use parole_ovm::{NftTransaction, Receipt, TxKind};
use parole_primitives::{Address, Wei};

/// Features encoded per transaction (the paper's "eight-element tensor").
pub const FEATURES_PER_TX: usize = 8;

/// Number of swap actions for a window of `n` transactions: `C(n, 2)`.
pub const fn pair_count(n: usize) -> usize {
    n * (n.saturating_sub(1)) / 2
}

/// Maps an unordered position pair `(i, j)` with `i < j < n` to its action
/// index in `[0, C(n,2))`, enumerating pairs lexicographically:
/// `(0,1), (0,2), …, (0,n−1), (1,2), …`.
///
/// # Panics
///
/// Panics when `i ≥ j` or `j ≥ n`.
pub fn pair_to_index(i: usize, j: usize, n: usize) -> usize {
    assert!(i < j && j < n, "need i < j < n, got ({i}, {j}) with n={n}");
    // Pairs starting below i: sum_{k<i} (n-1-k).
    let before: usize = (0..i).map(|k| n - 1 - k).sum();
    before + (j - i - 1)
}

/// Inverse of [`pair_to_index`].
///
/// # Panics
///
/// Panics when `index ≥ C(n,2)`.
pub fn pair_from_index(index: usize, n: usize) -> (usize, usize) {
    assert!(
        index < pair_count(n),
        "action index {index} out of range for n={n}"
    );
    let mut remaining = index;
    for i in 0..n {
        let row = n - 1 - i;
        if remaining < row {
            return (i, i + 1 + remaining);
        }
        remaining -= row;
    }
    unreachable!("index was range-checked");
}

/// Encodes one transaction (with its execution receipt from the *current*
/// candidate ordering) into its feature vector.
///
/// Features, in order:
/// - 1: IFU involvement flag,
/// - 2–4: one-hot transaction type (mint / transfer / burn),
/// - 5: bonding-curve price observed at its execution slot (ETH),
/// - 6: remaining mintable supply after it executed (scaled),
/// - 7: whether it executed successfully in the current order,
/// - 8: its normalized position in the sequence.
pub fn encode_tx(
    tx: &NftTransaction,
    receipt: &Receipt,
    supply_after: u64,
    max_supply: u64,
    position: usize,
    n: usize,
    ifus: &[Address],
) -> [f64; FEATURES_PER_TX] {
    let involved = ifus.iter().any(|&u| tx.involves(u));
    let (is_mint, is_transfer, is_burn) = match tx.kind {
        TxKind::Mint { .. } => (1.0, 0.0, 0.0),
        TxKind::Transfer { .. } => (0.0, 1.0, 0.0),
        TxKind::Burn { .. } => (0.0, 0.0, 1.0),
        // Approvals are none of the three moves: all-zero one-hot.
        TxKind::Approve { .. } | TxKind::SetApprovalForAll { .. } => (0.0, 0.0, 0.0),
    };
    [
        involved as u8 as f64,
        is_mint,
        is_transfer,
        is_burn,
        receipt.price_before.eth_f64(),
        if max_supply == 0 {
            0.0
        } else {
            supply_after as f64 / max_supply as f64
        },
        receipt.is_success() as u8 as f64,
        if n <= 1 {
            0.0
        } else {
            position as f64 / (n - 1) as f64
        },
    ]
}

/// Convenience: the price feature scale used when normalizing observations.
pub fn price_scale(initial_price: Wei, max_supply: u64) -> f64 {
    (initial_price.eth_f64() * max_supply as f64).max(f64::MIN_POSITIVE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_count_matches_formula() {
        assert_eq!(pair_count(0), 0);
        assert_eq!(pair_count(1), 0);
        assert_eq!(pair_count(2), 1);
        assert_eq!(pair_count(8), 28);
        assert_eq!(pair_count(100), 4950);
    }

    #[test]
    fn pair_index_roundtrip() {
        for n in [2usize, 3, 8, 25, 50] {
            for idx in 0..pair_count(n) {
                let (i, j) = pair_from_index(idx, n);
                assert!(i < j && j < n);
                assert_eq!(pair_to_index(i, j, n), idx, "n={n} idx={idx}");
            }
        }
    }

    #[test]
    fn lexicographic_enumeration() {
        assert_eq!(pair_from_index(0, 4), (0, 1));
        assert_eq!(pair_from_index(1, 4), (0, 2));
        assert_eq!(pair_from_index(2, 4), (0, 3));
        assert_eq!(pair_from_index(3, 4), (1, 2));
        assert_eq!(pair_from_index(5, 4), (2, 3));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn pair_from_index_range_checked() {
        let _ = pair_from_index(6, 4);
    }

    #[test]
    #[should_panic(expected = "need i < j < n")]
    fn pair_to_index_validates() {
        let _ = pair_to_index(2, 2, 4);
    }
}
