//! The §VIII counter-measure: GENTRANSEQ as a mempool-side detector.
//!
//! The paper's proposed defense runs the re-ordering search *inside*
//! Bedrock's mempool, against every user, before handing windows to
//! aggregators: compute the worst case — the maximum profit any involved
//! user could be handed by some re-ordering — and, when it exceeds a
//! threshold, defer the minimal set of transactions "to the block behind"
//! until the window no longer admits meaningful arbitrage.
//!
//! The detector does not need the full DQN: it must merely *bound* the best
//! re-ordering profit, and it runs in the trusted sequencer where
//! determinism is a feature. We therefore use a deterministic best-swap
//! hill-climb with restarts ([`max_reorder_profit`]); the ablation benches
//! compare it against the DQN search on identical windows.

use crate::mdp::{ReorderEnv, RewardConfig};
use parole_ovm::{GasSchedule, NftTransaction};
use parole_primitives::{Address, Wei, WeiDelta};
use parole_state::L2State;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Defense tunables.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DefenseConfig {
    /// Worst-case profit above which the window is treated as arbitrage
    /// bait (the paper makes this a function of the priority fees; a flat
    /// threshold captures the mechanism).
    pub threshold: Wei,
    /// Upper bound on transactions deferred per window.
    pub max_deferrals: usize,
    /// Hill-climb restarts (each restart re-seeds from the original order
    /// with one greedy pass).
    pub search_passes: usize,
}

impl Default for DefenseConfig {
    fn default() -> Self {
        DefenseConfig {
            threshold: Wei::from_milli_eth(10),
            max_deferrals: 4,
            search_passes: 3,
        }
    }
}

impl DefenseConfig {
    /// Builds a configuration whose threshold follows §VIII's prescription
    /// that it "depend\[s\] on the priority fee": arbitrage is negligible when
    /// it is worth no more than `multiplier ×` the total tips riding on the
    /// window — deferring transactions then costs the sequencer more fee
    /// revenue than the arbitrage it prevents.
    pub fn fee_proportional(
        window: &[NftTransaction],
        base_fee: Wei,
        schedule: &GasSchedule,
        multiplier: u64,
    ) -> Self {
        DefenseConfig {
            threshold: window_tip_revenue(window, base_fee, schedule).mul_count(multiplier),
            ..DefenseConfig::default()
        }
    }
}

/// Total priority-fee (tip) revenue the window carries at `base_fee`.
pub fn window_tip_revenue(window: &[NftTransaction], base_fee: Wei, schedule: &GasSchedule) -> Wei {
    window
        .iter()
        .map(|tx| {
            let gas = schedule.gas_for(&tx.kind);
            Wei::from_wei(tx.fees.effective_tip(base_fee).wei() * gas.units() as u128)
        })
        .sum()
}

/// What the mempool decided about one window.
#[derive(Debug, Clone)]
pub struct ScreeningOutcome {
    /// Worst-case re-ordering profit over all candidate beneficiaries of the
    /// *original* window.
    pub worst_case_profit: WeiDelta,
    /// The beneficiary realizing the worst case.
    pub worst_case_user: Option<Address>,
    /// Transactions admitted to aggregators this block.
    pub admitted: Vec<NftTransaction>,
    /// Transactions deferred to the block behind.
    pub deferred: Vec<NftTransaction>,
}

impl ScreeningOutcome {
    /// Whether the detector intervened.
    pub fn intervened(&self) -> bool {
        !self.deferred.is_empty()
    }
}

/// Deterministic best-swap hill-climb: from the original order, repeatedly
/// apply the single swap that most improves the beneficiary's final balance;
/// stop when no swap improves. This lower-bounds the attacker's best
/// re-ordering and in the paper's case-study-sized windows reaches the true
/// optimum (tests pin this).
pub fn max_reorder_profit(
    state: &L2State,
    window: &[NftTransaction],
    beneficiaries: &[Address],
    passes: usize,
) -> WeiDelta {
    if window.len() < 2 {
        return WeiDelta::ZERO;
    }
    let env = ReorderEnv::new(
        state.clone(),
        window.to_vec(),
        beneficiaries.to_vec(),
        RewardConfig::default(),
    );
    let original = env.original_balance();

    let mut best_overall = original;
    let mut order: Vec<NftTransaction> = window.to_vec();
    for _pass in 0..passes.max(1) {
        loop {
            let mut best_gain = Wei::ZERO;
            let mut best_swap: Option<(usize, usize)> = None;
            let current_balance = env.balance_of_order(&order).unwrap_or(Wei::ZERO);
            for i in 0..order.len() {
                for j in i + 1..order.len() {
                    order.swap(i, j);
                    if let Some(balance) = env.balance_of_order(&order) {
                        if balance > current_balance && balance - current_balance > best_gain {
                            best_gain = balance - current_balance;
                            best_swap = Some((i, j));
                        }
                    }
                    order.swap(i, j);
                }
            }
            match best_swap {
                Some((i, j)) => order.swap(i, j),
                None => break,
            }
        }
        if let Some(balance) = env.balance_of_order(&order) {
            best_overall = best_overall.max(balance);
        }
        // Restart passes begin from a rotated order to escape plateaus.
        order.rotate_left(1);
    }
    best_overall.signed_sub(original)
}

/// Users involved in at least two window transactions — the only candidates
/// who can be favored by a re-ordering (paper §V-B).
pub fn candidate_beneficiaries(window: &[NftTransaction]) -> Vec<Address> {
    let mut counts: std::collections::BTreeMap<Address, usize> = Default::default();
    for tx in window {
        let mut parties = BTreeSet::new();
        parties.insert(tx.sender);
        if let parole_ovm::TxKind::Transfer { to, .. } = tx.kind {
            parties.insert(to);
        }
        for p in parties {
            *counts.entry(p).or_default() += 1;
        }
    }
    counts
        .into_iter()
        .filter(|&(_, c)| c >= 2)
        .map(|(a, _)| a)
        .collect()
}

/// Screens a window before it reaches aggregators.
///
/// Computes the worst-case profit over all candidate beneficiaries; when it
/// exceeds the threshold, greedily defers the involved transaction whose
/// removal shrinks the worst case the most, and repeats until the window is
/// clean or the deferral budget is spent.
pub fn screen_window(
    state: &L2State,
    window: &[NftTransaction],
    config: &DefenseConfig,
) -> ScreeningOutcome {
    let mut admitted: Vec<NftTransaction> = window.to_vec();
    let mut deferred: Vec<NftTransaction> = Vec::new();

    let (mut worst, mut worst_user) = worst_case(state, &admitted, config);
    let initial_worst = worst;
    let initial_user = worst_user;

    while worst.to_wei_amount().is_ok_and(|w| w > config.threshold)
        && deferred.len() < config.max_deferrals
        && admitted.len() > 1
    {
        // Try deferring each transaction involving the worst-case user; keep
        // the deferral that shrinks the worst case the most.
        let user = worst_user.expect("positive worst case implies a beneficiary");
        let mut best_choice: Option<(usize, WeiDelta, Option<Address>)> = None;
        for (idx, tx) in admitted.iter().enumerate() {
            if !tx.involves(user) {
                continue;
            }
            let mut trial = admitted.clone();
            trial.remove(idx);
            let (trial_worst, trial_user) = worst_case(state, &trial, config);
            let better = match &best_choice {
                None => true,
                Some((_, best_worst, _)) => trial_worst < *best_worst,
            };
            if better {
                best_choice = Some((idx, trial_worst, trial_user));
            }
        }
        match best_choice {
            Some((idx, new_worst, new_user)) => {
                deferred.push(admitted.remove(idx));
                worst = new_worst;
                worst_user = new_user;
            }
            None => break,
        }
    }

    ScreeningOutcome {
        worst_case_profit: initial_worst,
        worst_case_user: initial_user,
        admitted,
        deferred,
    }
}

/// Worst case over all candidate beneficiaries of `window`.
///
/// Per-beneficiary searches are independent, so they fan out across a
/// crossbeam scope — the detector sits on the sequencer's critical path and
/// windows routinely have several candidate beneficiaries.
fn worst_case(
    state: &L2State,
    window: &[NftTransaction],
    config: &DefenseConfig,
) -> (WeiDelta, Option<Address>) {
    let candidates = candidate_beneficiaries(window);
    if candidates.is_empty() {
        return (WeiDelta::ZERO, None);
    }
    let profits: Vec<(Address, WeiDelta)> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = candidates
            .iter()
            .map(|&user| {
                scope.spawn(move |_| {
                    (
                        user,
                        max_reorder_profit(state, window, &[user], config.search_passes),
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("search thread panicked"))
            .collect()
    })
    .expect("crossbeam scope");

    let mut worst = WeiDelta::ZERO;
    let mut who = None;
    for (user, profit) in profits {
        if profit > worst {
            worst = profit;
            who = Some(user);
        }
    }
    (worst, who)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::casestudy::CaseStudy;
    use parole_primitives::Wei;

    #[test]
    fn hill_climb_bounds_the_case_study_profit() {
        let cs = CaseStudy::paper_setup();
        let profit = max_reorder_profit(cs.state(), cs.window(), &[cs.ifu], 3);
        // The strict-semantics exhaustive optimum is 2.86 − 2.50 = 0.36 ETH;
        // the deterministic hill-climb must at least match the paper's own
        // Case 3 profit (0.24 ETH) and can never exceed the true optimum.
        let paper_case3 = WeiDelta::from_wei(Wei::from_milli_eth(240).wei() as i128);
        let exhaustive = WeiDelta::from_wei(Wei::from_milli_eth(360).wei() as i128);
        assert!(profit >= paper_case3, "hill-climb too weak: {profit}");
        assert!(profit <= exhaustive, "impossible profit: {profit}");
    }

    #[test]
    fn candidate_beneficiaries_need_two_involvements() {
        let cs = CaseStudy::paper_setup();
        let candidates = candidate_beneficiaries(cs.window());
        assert!(candidates.contains(&cs.ifu), "the IFU is a candidate");
        // U11 appears exactly once (buyer in TX3) and must not be a candidate.
        assert!(!candidates.contains(&Address::from_low_u64(11)));
        // U1 appears in TX1 and TX8 and is a candidate.
        assert!(candidates.contains(&Address::from_low_u64(1)));
    }

    #[test]
    fn screening_detects_and_defuses_the_case_study() {
        let cs = CaseStudy::paper_setup();
        let config = DefenseConfig {
            threshold: Wei::from_milli_eth(50),
            ..DefenseConfig::default()
        };
        let outcome = screen_window(cs.state(), cs.window(), &config);
        assert!(
            outcome.worst_case_profit.to_wei_amount().unwrap() > config.threshold,
            "the case-study window is arbitrage bait"
        );
        assert!(outcome.intervened());
        // After deferral, the remaining window is below threshold.
        let (residual, _) = super::worst_case(cs.state(), &outcome.admitted, &config);
        assert!(
            residual
                .to_wei_amount()
                .map_or(true, |w| w <= config.threshold),
            "deferral must defuse the window: residual {residual}"
        );
        // Admitted + deferred partition the original window.
        assert_eq!(
            outcome.admitted.len() + outcome.deferred.len(),
            cs.window().len()
        );
    }

    #[test]
    fn fee_proportional_threshold_scales_with_tips() {
        use parole_primitives::FeeBundle;

        let cs = CaseStudy::paper_setup();
        let schedule = parole_ovm::GasSchedule::paper_calibrated();
        let base_fee = Wei::from_gwei(1);
        let low = DefenseConfig::fee_proportional(cs.window(), base_fee, &schedule, 1);
        let high = DefenseConfig::fee_proportional(cs.window(), base_fee, &schedule, 10);
        assert!(low.threshold > Wei::ZERO);
        assert_eq!(high.threshold, low.threshold.mul_count(10));

        // Raising every tip raises the revenue, hence the threshold.
        let mut juiced: Vec<_> = cs.window().to_vec();
        for tx in &mut juiced {
            tx.fees = FeeBundle::from_gwei(100, 50);
        }
        let juiced_cfg = DefenseConfig::fee_proportional(&juiced, base_fee, &schedule, 1);
        assert!(juiced_cfg.threshold > low.threshold);
    }

    #[test]
    fn fee_proportional_screening_detects_case_study() {
        // The case-study window's tips are tiny (2 Gwei × ~500k gas total
        // ≈ 10⁻³ ETH), so the 0.36 ETH worst case dwarfs the threshold and
        // the detector intervenes.
        let cs = CaseStudy::paper_setup();
        let schedule = parole_ovm::GasSchedule::paper_calibrated();
        let config = DefenseConfig::fee_proportional(cs.window(), Wei::from_gwei(1), &schedule, 10);
        let outcome = screen_window(cs.state(), cs.window(), &config);
        assert!(
            outcome.intervened(),
            "case study must trip the fee-relative detector"
        );
    }

    #[test]
    fn clean_window_passes_untouched() {
        let cs = CaseStudy::paper_setup();
        // A high threshold treats everything as negligible.
        let config = DefenseConfig {
            threshold: Wei::from_eth(100),
            ..DefenseConfig::default()
        };
        let outcome = screen_window(cs.state(), cs.window(), &config);
        assert!(!outcome.intervened());
        assert_eq!(outcome.admitted.len(), cs.window().len());
    }

    #[test]
    fn tiny_windows_are_trivially_safe() {
        let cs = CaseStudy::paper_setup();
        let one = &cs.window()[..1];
        assert_eq!(
            max_reorder_profit(cs.state(), one, &[cs.ifu], 3),
            WeiDelta::ZERO
        );
    }
}
