//! Equivalence properties of the prefix-cached evaluation path.
//!
//! The GENTRANSEQ hot path replaced full window re-execution with
//! [`parole_ovm::PrefixExecutor`] (journaled checkpoints + suffix replay).
//! That optimisation must be *invisible*: these properties pin the cached
//! path to the naive `simulate_sequence` oracle — receipts, post-states,
//! rewards, observations and final search outcomes — over random windows,
//! random swap sequences and every checkpoint stride shape.

use parole::{EvalConfig, ReorderEnv, RewardConfig};
use parole_drl::Environment;
use parole_mempool::{WorkloadConfig, WorkloadGenerator};
use parole_nft::CollectionConfig;
use parole_ovm::{NftTransaction, Ovm, PrefixExecutor};
use parole_primitives::{Address, TokenId, Wei};
use parole_state::L2State;
use proptest::prelude::*;

/// Builds a small funded economy plus an executable window of `n` txs.
fn economy_with_window(n: usize, seed: u64) -> (L2State, Vec<NftTransaction>, Address) {
    let mut state = L2State::new();
    let coll = state.deploy_collection(CollectionConfig::limited_edition("P", 24, 400));
    let users: Vec<Address> = (1..=8).map(Address::from_low_u64).collect();
    for &u in &users {
        state.credit(u, Wei::from_eth(30));
    }
    let ifu = Address::from_low_u64(999);
    state.credit(ifu, Wei::from_eth(30));
    {
        let c = state.collection_mut(coll).unwrap();
        c.mint(ifu, TokenId::new(0)).unwrap();
        c.mint(ifu, TokenId::new(1)).unwrap();
        for i in 2..6 {
            c.mint(users[i as usize % 8], TokenId::new(i)).unwrap();
        }
    }
    let mut generator = WorkloadGenerator::new(
        seed,
        WorkloadConfig {
            ifu_participation: 0.3,
            ..WorkloadConfig::default()
        },
    );
    let window = generator.generate(&state, coll, &users, &[ifu], n);
    (state, window, ifu)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Executor level: after any sequence of random swaps, the incremental
    /// executor returns exactly the receipts and post-state of a fresh
    /// from-scratch simulation, at every stride.
    #[test]
    fn prefix_executor_matches_naive_oracle(
        seed in 0u64..40,
        stride in 1usize..9,
        swaps in prop::collection::vec((0usize..16, 0usize..16), 1..24),
    ) {
        let (base, mut seq, _) = economy_with_window(8, seed);
        prop_assume!(seq.len() >= 3);
        let ovm = Ovm::new();
        let mut exec = PrefixExecutor::new(ovm.clone(), &base, stride);
        for &(a, b) in &swaps {
            let len = seq.len();
            seq.swap(a % len, b % len);
            let (naive_receipts, naive_state) = ovm.simulate_sequence(&base, &seq);
            let (receipts, state) = exec.execute(&seq);
            prop_assert_eq!(receipts, naive_receipts.as_slice());
            prop_assert_eq!(state, &naive_state);
        }
    }

    /// Environment level: a prefix-cached [`ReorderEnv`] is observationally
    /// identical to a naive one — same initial observation, and the same
    /// reward / next state / done / running balance after every action of a
    /// random action sequence, ending in the same best order and balance.
    #[test]
    fn cached_env_is_observationally_identical_to_naive(
        seed in 0u64..20,
        stride in 1usize..9,
        actions in prop::collection::vec(0usize..64, 1..30),
    ) {
        let (state, window, ifu) = economy_with_window(6, seed);
        prop_assume!(window.len() >= 3);
        let make = |eval: EvalConfig| {
            ReorderEnv::with_eval_config(
                state.clone(),
                window.clone(),
                vec![ifu],
                RewardConfig::default(),
                parole::ActionSpace::AllPairs,
                eval,
            )
        };
        let mut cached = make(EvalConfig { prefix_cached: true, checkpoint_stride: stride });
        let mut naive = make(EvalConfig::naive());

        prop_assert_eq!(cached.reset(), naive.reset());
        let n_actions = naive.action_count();
        prop_assert_eq!(cached.action_count(), n_actions);
        for a in actions {
            let oc = cached.step(a % n_actions);
            let on = naive.step(a % n_actions);
            prop_assert_eq!(oc.reward.to_bits(), on.reward.to_bits());
            prop_assert_eq!(oc.next_state, on.next_state);
            prop_assert_eq!(oc.done, on.done);
            prop_assert_eq!(cached.current_balance(), naive.current_balance());
        }
        let (best_c, bal_c) = cached.best_order();
        let (best_n, bal_n) = naive.best_order();
        prop_assert_eq!(best_c, best_n);
        prop_assert_eq!(bal_c, bal_n);
    }

    /// The checkpoint stride is a pure performance knob: every stride —
    /// including one larger than the window — produces the same search
    /// trajectory.
    #[test]
    fn stride_never_changes_the_trajectory(
        seed in 0u64..20,
        actions in prop::collection::vec(0usize..64, 1..20),
    ) {
        let (state, window, ifu) = economy_with_window(6, seed);
        prop_assume!(window.len() >= 3);
        let run = |stride: usize| {
            let mut env = ReorderEnv::with_eval_config(
                state.clone(),
                window.clone(),
                vec![ifu],
                RewardConfig::default(),
                parole::ActionSpace::AllPairs,
                EvalConfig { prefix_cached: true, checkpoint_stride: stride },
            );
            env.reset();
            let n_actions = env.action_count();
            let mut trace: Vec<(u64, bool)> = Vec::new();
            for &a in &actions {
                let out = env.step(a % n_actions);
                trace.push((out.reward.to_bits(), out.done));
            }
            let (best, balance) = env.best_order();
            (trace, best, balance)
        };
        let reference = run(1);
        for stride in [3usize, 7, window.len(), window.len() + 5] {
            prop_assert_eq!(run(stride).clone(), reference.clone());
        }
    }
}
