//! Property test: the telemetry registry's thread-local → global merge is
//! deterministic in counts. A `par::parallel_map` sweep recording counters
//! and histograms from its workers must export bit-identical totals at 1, 2
//! and 8 threads — the partition of items onto workers, and the order the
//! workers' thread-local buffers merge in, must be unobservable.
//!
//! This file holds exactly one `#[test]` on purpose: the registry is
//! process-global, and a single-test integration binary is the isolation
//! unit that keeps concurrent test runners from interleaving recordings.

#![cfg(feature = "telemetry")]

use parole::par::parallel_map;
use parole_telemetry as tel;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 16 })]

    #[test]
    fn parallel_sweep_totals_are_thread_count_invariant(
        values in proptest::collection::vec(0u64..100_000, 1..48),
    ) {
        let mut snaps = Vec::new();
        for &threads in &[1usize, 2, 8] {
            tel::reset();
            let doubled = parallel_map(values.clone(), threads, |v| {
                tel::counter("sweep.items", 1);
                tel::counter("sweep.value_sum", v);
                tel::observe("sweep.value", v);
                let _span = tel::span("sweep.cell");
                v * 2
            });
            prop_assert_eq!(doubled.len(), values.len());
            snaps.push(tel::snapshot());
        }
        tel::reset();

        // Ground truth from the input, independent of any threading.
        let expected_sum: u128 = values.iter().map(|&v| u128::from(v)).sum();
        for snap in &snaps {
            prop_assert_eq!(snap.counter("sweep.items"), values.len() as u64);
            prop_assert_eq!(u128::from(snap.counter("sweep.value_sum")), expected_sum);
            let hist = snap.histogram("sweep.value").expect("histogram recorded");
            prop_assert_eq!(hist.count, values.len() as u64);
            prop_assert_eq!(hist.sum, expected_sum);
            prop_assert_eq!(hist.min, *values.iter().min().unwrap());
            prop_assert_eq!(hist.max, *values.iter().max().unwrap());
        }

        // Bit-stability across thread counts: counters, histograms (incl.
        // bucket-by-bucket contents) and span *counts*. Span timings are
        // wall-clock and deliberately excluded.
        let base = &snaps[0];
        for snap in &snaps[1..] {
            prop_assert_eq!(&snap.counters, &base.counters);
            prop_assert_eq!(&snap.histograms, &base.histograms);
            let counts = |s: &tel::MetricsSnapshot| -> Vec<(String, u64)> {
                s.spans.iter().map(|n| (n.name.clone(), n.count)).collect()
            };
            prop_assert_eq!(counts(snap), counts(base));
        }
    }
}
