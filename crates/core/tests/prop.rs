//! Property-based tests of the attack machinery: the re-ordering MDP, the
//! GENTRANSEQ contract, and order-independence facts the attack rests on.

use parole::encode::{pair_count, pair_from_index, pair_to_index};
use parole::{assess, GentranseqModule, ReorderEnv, RewardConfig};
use parole_drl::Environment;
use parole_mempool::{WorkloadConfig, WorkloadGenerator};
use parole_nft::CollectionConfig;
use parole_ovm::{NftTransaction, Ovm};
use parole_primitives::{Address, TokenId, Wei};
use parole_state::L2State;
use proptest::prelude::*;

/// Builds a small funded economy plus an executable window of `n` txs.
fn economy_with_window(n: usize, seed: u64) -> (L2State, Vec<NftTransaction>, Address) {
    let mut state = L2State::new();
    let coll = state.deploy_collection(CollectionConfig::limited_edition("P", 24, 400));
    let users: Vec<Address> = (1..=8).map(Address::from_low_u64).collect();
    for &u in &users {
        state.credit(u, Wei::from_eth(30));
    }
    let ifu = Address::from_low_u64(999);
    state.credit(ifu, Wei::from_eth(30));
    {
        let c = state.collection_mut(coll).unwrap();
        c.mint(ifu, TokenId::new(0)).unwrap();
        c.mint(ifu, TokenId::new(1)).unwrap();
        for i in 2..6 {
            c.mint(users[i as usize % 8], TokenId::new(i)).unwrap();
        }
    }
    let mut generator = WorkloadGenerator::new(
        seed,
        WorkloadConfig {
            ifu_participation: 0.3,
            ..WorkloadConfig::default()
        },
    );
    let window = generator.generate(&state, coll, &users, &[ifu], n);
    (state, window, ifu)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The final bonding-curve price is order-independent: the multiset of
    /// mints and burns fixes the final supply no matter how the aggregator
    /// permutes the window (as long as everything still executes). This is
    /// why PAROLE profit comes entirely from the IFU's L2 flows.
    #[test]
    fn final_price_is_order_independent(seed in 0u64..40, rot in 1usize..6) {
        let (state, window, _) = economy_with_window(8, seed);
        prop_assume!(window.len() >= 4);
        let ovm = Ovm::new();
        let coll_addr = window[0].kind.collection();
        let (r1, s1) = ovm.simulate_sequence(&state, &window);
        let mut rotated = window.clone();
        rotated.rotate_left(rot.min(window.len() - 1));
        let (r2, s2) = ovm.simulate_sequence(&state, &rotated);
        // Only compare when the rotation kept everything executable.
        prop_assume!(r1.iter().all(|r| r.is_success()));
        prop_assume!(r2.iter().all(|r| r.is_success()));
        prop_assert_eq!(
            s1.collection(coll_addr).unwrap().price(),
            s2.collection(coll_addr).unwrap().price()
        );
        prop_assert_eq!(
            s1.collection(coll_addr).unwrap().remaining_supply(),
            s2.collection(coll_addr).unwrap().remaining_supply()
        );
    }

    /// GENTRANSEQ's contract: its output is a permutation of the input, it
    /// is valid under the §V-B rule, its claimed balance is honest, and it
    /// never regresses below the original order.
    #[test]
    fn gentranseq_output_contract(seed in 0u64..20) {
        let (state, window, ifu) = economy_with_window(6, seed);
        prop_assume!(window.len() >= 3);
        let module = GentranseqModule::new(
            parole_drl::DqnConfig {
                episodes: 5,
                max_steps: 25,
                hidden: [16, 16],
                batch_size: 4,
                seed,
                ..parole_drl::DqnConfig::paper()
            },
            RewardConfig::default(),
        );
        let outcome = module.run(&state, &window, &[ifu]);

        // Permutation: same multiset of tx hashes.
        let mut orig: Vec<_> = window.iter().map(|t| t.tx_hash()).collect();
        let mut best: Vec<_> = outcome.best_order.iter().map(|t| t.tx_hash()).collect();
        orig.sort();
        best.sort();
        prop_assert_eq!(orig, best);

        // Honest balance claim.
        let env = module.environment(&state, &window, &[ifu]);
        let replayed = env.balance_of_order(&outcome.best_order);
        prop_assert_eq!(replayed, Some(outcome.best_balance));

        // Never below the original.
        prop_assert!(outcome.best_balance >= outcome.original_balance);
        prop_assert!(!outcome.profit().is_loss());
    }

    /// The MDP never leaves the feasible region: after any action sequence,
    /// the current ordering still executes every originally-executable tx.
    #[test]
    fn mdp_stays_feasible(seed in 0u64..20, actions in prop::collection::vec(0usize..15, 1..30)) {
        let (state, window, ifu) = economy_with_window(6, seed);
        prop_assume!(window.len() >= 3);
        let mut env = ReorderEnv::new(
            state.clone(),
            window.clone(),
            vec![ifu],
            RewardConfig::default(),
        );
        env.reset();
        let n_actions = env.action_count();
        for a in actions {
            env.step(a % n_actions);
        }
        // The best order (== some visited valid order) must replay cleanly.
        let (best, balance) = env.best_order();
        let replay = env.balance_of_order(&best);
        prop_assert_eq!(replay, Some(balance));
    }

    /// Assessment is monotone in IFU involvement: adding an IFU to the set
    /// can only turn opportunity on, never off.
    #[test]
    fn assessment_monotone_in_ifus(seed in 0u64..40) {
        let (_, window, ifu) = economy_with_window(8, seed);
        prop_assume!(!window.is_empty());
        let other = Address::from_low_u64(1);
        let alone = assess(&window, &[other]);
        let both = assess(&window, &[other, ifu]);
        if alone.opportunity {
            prop_assert!(both.opportunity);
        }
        prop_assert!(both.ifu_tx_count >= alone.ifu_tx_count);
    }

    /// The swap-action index space is a bijection for any window size.
    #[test]
    fn action_space_bijection(n in 2usize..40) {
        let mut seen = std::collections::HashSet::new();
        for idx in 0..pair_count(n) {
            let (i, j) = pair_from_index(idx, n);
            prop_assert!(i < j && j < n);
            prop_assert!(seen.insert((i, j)), "duplicate pair ({i},{j})");
            prop_assert_eq!(pair_to_index(i, j, n), idx);
        }
        prop_assert_eq!(seen.len(), n * (n - 1) / 2);
    }
}
