//! Audit-feature smoke: a prefix-cached reorder search with the runtime
//! differential oracle armed.
//!
//! With `--features audit`, every `evaluate_current` on the cached path
//! re-executes the window naively and panics on the first divergence. These
//! tests simply drive the search hard; surviving them means the oracle stayed
//! silent on an honest executor. (The loud half — that the oracle *does* fire
//! on a corrupted cache — lives in `parole-audit`'s mutation harness.)
#![cfg(feature = "audit")]

use parole::{ActionSpace, EvalConfig, ReorderEnv, RewardConfig};
use parole_drl::Environment;
use parole_mempool::{WorkloadConfig, WorkloadGenerator};
use parole_nft::CollectionConfig;
use parole_ovm::NftTransaction;
use parole_primitives::{Address, TokenId, Wei};
use parole_state::L2State;

fn economy_with_window(n: usize, seed: u64) -> (L2State, Vec<NftTransaction>, Address) {
    let mut state = L2State::new();
    let coll = state.deploy_collection(CollectionConfig::limited_edition("P", 24, 400));
    let users: Vec<Address> = (1..=8).map(Address::from_low_u64).collect();
    for &u in &users {
        state.credit(u, Wei::from_eth(30));
    }
    let ifu = Address::from_low_u64(999);
    state.credit(ifu, Wei::from_eth(30));
    {
        let c = state.collection_mut(coll).unwrap();
        c.mint(ifu, TokenId::new(0)).unwrap();
        for i in 1..5 {
            c.mint(users[i as usize % 8], TokenId::new(i)).unwrap();
        }
    }
    let mut generator = WorkloadGenerator::new(
        seed,
        WorkloadConfig {
            ifu_participation: 0.3,
            ..WorkloadConfig::default()
        },
    );
    let window = generator.generate(&state, coll, &users, &[ifu], n);
    (state, window, ifu)
}

#[test]
fn audited_prefix_cached_search_stays_silent() {
    for seed in 0..4u64 {
        let (state, window, ifu) = economy_with_window(7, seed);
        if window.len() < 3 {
            continue;
        }
        for stride in [1usize, 3, window.len() + 2] {
            let mut env = ReorderEnv::with_eval_config(
                state.clone(),
                window.clone(),
                vec![ifu],
                RewardConfig::default(),
                ActionSpace::AllPairs,
                EvalConfig {
                    prefix_cached: true,
                    checkpoint_stride: stride,
                },
            );
            env.reset();
            let n_actions = env.action_count();
            for a in 0..40usize {
                // Each step runs the differential oracle; any stale
                // checkpoint or undo-log gap panics here.
                env.step((a * 13 + seed as usize) % n_actions);
            }
        }
    }
}
