//! The live registry: thread-local recording buffers merged into a global
//! store (compiled only with the `enabled` feature).
//!
//! # Architecture
//!
//! Every recording call lands in a `thread_local!` buffer — one uncontended
//! hash-map update, no atomics, no locks on the hot path. Buffers drain into
//! the process-wide global registry at two points:
//!
//! - **thread exit** — the thread-local buffer's `Drop` merges it, which is
//!   what makes scoped worker pools (`par::parallel_map`) "just work": by the
//!   time the scope joins, every worker has merged;
//! - **[`snapshot`]** — flushes the *calling* thread's buffer before
//!   exporting (other live threads' unflushed tails are not visible until
//!   they exit or snapshot themselves).
//!
//! Counter and histogram merges are integer additions — associative and
//! commutative — so totals are **bit-stable under any thread count and any
//! scheduling**. Span durations and float series are wall-clock/order
//! dependent and carry no such guarantee.
//!
//! # Reset epochs
//!
//! [`reset`] bumps a global epoch; thread-local buffers lazily discard their
//! contents when they notice the epoch moved, so a reset cannot be polluted
//! by a stale buffer merging later.

use crate::snapshot::{BucketCount, FloatStat, HistogramSnapshot, MetricsSnapshot, SpanNode};
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Sentinel parent index for root-level spans (and for inert span guards).
const ROOT: usize = usize::MAX;

// ---------------------------------------------------------------------------
// Histogram accumulator
// ---------------------------------------------------------------------------

/// Log₂-bucketed u64 histogram: bucket 0 holds exactly the value 0, bucket
/// `i ≥ 1` holds `[2^(i-1), 2^i - 1]`.
#[derive(Clone)]
struct Hist {
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
    buckets: [u64; 65],
}

impl Default for Hist {
    fn default() -> Self {
        Hist {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; 65],
        }
    }
}

fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// The closed value range bucket `i` covers.
fn bucket_bounds(i: usize) -> (u64, u64) {
    match i {
        0 => (0, 0),
        64 => (1u64 << 63, u64::MAX),
        _ => (1u64 << (i - 1), (1u64 << i) - 1),
    }
}

impl Hist {
    fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket_index(v)] += 1;
    }

    fn merge(&mut self, other: &Hist) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    fn export(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0 } else { self.min },
            max: self.max,
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| {
                    let (low, high) = bucket_bounds(i);
                    BucketCount {
                        low,
                        high,
                        count: c,
                    }
                })
                .collect(),
        }
    }
}

fn merge_float(into: &mut FloatStat, other: &FloatStat) {
    into.count += other.count;
    into.sum += other.sum;
    into.min = into.min.min(other.min);
    into.max = into.max.max(other.max);
    if other.count > 0 {
        into.last = other.last;
    }
}

// ---------------------------------------------------------------------------
// Thread-local span arena
// ---------------------------------------------------------------------------

struct ArenaNode {
    name: &'static str,
    count: u64,
    total_ns: u128,
    children: Vec<usize>,
}

/// Per-thread span tree: nodes are interned per `(parent, name)` pair, the
/// stack tracks the currently open chain.
#[derive(Default)]
struct SpanArena {
    nodes: Vec<ArenaNode>,
    roots: Vec<usize>,
    stack: Vec<usize>,
    index: HashMap<(usize, &'static str), usize>,
}

impl SpanArena {
    fn enter(&mut self, name: &'static str) -> usize {
        let parent = self.stack.last().copied().unwrap_or(ROOT);
        let idx = match self.index.get(&(parent, name)) {
            Some(&idx) => idx,
            None => {
                let idx = self.nodes.len();
                self.nodes.push(ArenaNode {
                    name,
                    count: 0,
                    total_ns: 0,
                    children: Vec::new(),
                });
                self.index.insert((parent, name), idx);
                if parent == ROOT {
                    self.roots.push(idx);
                } else {
                    self.nodes[parent].children.push(idx);
                }
                idx
            }
        };
        self.stack.push(idx);
        idx
    }

    fn exit(&mut self, node: usize, elapsed_ns: u128) {
        if node >= self.nodes.len() {
            return; // guard outlived a reset; nothing to record against
        }
        let n = &mut self.nodes[node];
        n.count += 1;
        n.total_ns += elapsed_ns;
        // RAII guards nest; a mismatch means a guard was dropped out of
        // order, in which case the stack is repaired up to the node.
        while let Some(top) = self.stack.pop() {
            if top == node {
                break;
            }
        }
    }

    /// Adds this arena's counts into the global tree and zeroes them in
    /// place. The structure (and any open stack) survives so live guards'
    /// node indices stay valid across a flush.
    fn drain_into(&mut self, global: &mut BTreeMap<&'static str, GlobalSpan>) {
        let roots = self.roots.clone();
        for root in roots {
            self.drain_node(root, global);
        }
    }

    fn drain_node(&mut self, idx: usize, siblings: &mut BTreeMap<&'static str, GlobalSpan>) {
        let (name, count, total_ns, children) = {
            let n = &mut self.nodes[idx];
            let out = (n.name, n.count, n.total_ns, n.children.clone());
            n.count = 0;
            n.total_ns = 0;
            out
        };
        let slot = siblings.entry(name).or_default();
        slot.count += count;
        slot.total_ns += total_ns;
        for child in children {
            // Borrow dance: take the child map out while recursing.
            let mut child_map =
                std::mem::take(&mut siblings.get_mut(name).expect("present").children);
            self.drain_node(child, &mut child_map);
            siblings.get_mut(name).expect("present").children = child_map;
        }
    }
}

// ---------------------------------------------------------------------------
// Global registry
// ---------------------------------------------------------------------------

#[derive(Default)]
struct GlobalSpan {
    count: u64,
    total_ns: u128,
    children: BTreeMap<&'static str, GlobalSpan>,
}

fn export_spans(spans: &BTreeMap<&'static str, GlobalSpan>) -> Vec<SpanNode> {
    spans
        .iter()
        .map(|(&name, g)| SpanNode {
            name: name.to_string(),
            count: g.count,
            total_ns: g.total_ns,
            children: export_spans(&g.children),
        })
        .collect()
}

#[derive(Default)]
struct Global {
    counters: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, Hist>,
    floats: BTreeMap<&'static str, FloatStat>,
    spans: BTreeMap<&'static str, GlobalSpan>,
}

static GLOBAL: OnceLock<Mutex<Global>> = OnceLock::new();
static EPOCH: AtomicU64 = AtomicU64::new(0);

fn global() -> MutexGuard<'static, Global> {
    GLOBAL
        .get_or_init(|| Mutex::new(Global::default()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------------------
// Thread-local buffer
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Local {
    epoch: u64,
    counters: HashMap<&'static str, u64>,
    hists: HashMap<&'static str, Hist>,
    floats: HashMap<&'static str, FloatStat>,
    arena: SpanArena,
}

impl Local {
    fn ensure_epoch(&mut self) {
        let now = EPOCH.load(Ordering::Relaxed);
        if self.epoch != now {
            self.counters.clear();
            self.hists.clear();
            self.floats.clear();
            self.arena = SpanArena::default();
            self.epoch = now;
        }
    }

    /// Merges everything recorded locally into the global registry and
    /// clears the local buffers (span structure is kept, counts zeroed —
    /// open guards stay valid).
    fn flush(&mut self) {
        if EPOCH.load(Ordering::Relaxed) != self.epoch {
            // Recorded against a registry that has since been reset.
            return;
        }
        let mut g = global();
        for (name, v) in self.counters.drain() {
            *g.counters.entry(name).or_insert(0) += v;
        }
        for (name, h) in self.hists.drain() {
            g.hists.entry(name).or_default().merge(&h);
        }
        for (name, f) in self.floats.drain() {
            merge_float(g.floats.entry(name).or_default(), &f);
        }
        self.arena.drain_into(&mut g.spans);
    }
}

impl Drop for Local {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static LOCAL: RefCell<Local> = RefCell::new(Local::default());
}

fn with_local<R>(f: impl FnOnce(&mut Local) -> R) -> Option<R> {
    LOCAL
        .try_with(|cell| {
            let mut local = cell.borrow_mut();
            local.ensure_epoch();
            f(&mut local)
        })
        .ok()
}

// ---------------------------------------------------------------------------
// Public API (the `enabled` implementations)
// ---------------------------------------------------------------------------

/// Adds `delta` to the named monotonic counter.
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    with_local(|l| *l.counters.entry(name).or_insert(0) += delta);
}

/// Records one observation into the named log₂-bucketed histogram.
#[inline]
pub fn observe(name: &'static str, value: u64) {
    with_local(|l| l.hists.entry(name).or_default().observe(value));
}

/// Records one observation into the named floating-point series.
#[inline]
pub fn observe_f64(name: &'static str, value: f64) {
    with_local(|l| {
        let f = l.floats.entry(name).or_default();
        f.count += 1;
        f.sum += value;
        f.min = f.min.min(value);
        f.max = f.max.max(value);
        f.last = value;
    });
}

/// This thread's unflushed total for a counter (0 when nothing recorded).
///
/// Instrumentation uses before/after reads of this to attribute low-level
/// event counts (e.g. Keccak permutations) to an enclosing operation; both
/// reads happen on one thread with no flush in between, so the delta is
/// exact regardless of what other threads do.
#[inline]
pub fn local_counter(name: &'static str) -> u64 {
    with_local(|l| l.counters.get(name).copied().unwrap_or(0)).unwrap_or(0)
}

/// An RAII guard for one span activation; records its wall-clock duration
/// into the thread-local span tree on drop.
///
/// Deliberately `!Send`: a guard records into the stack of the thread that
/// opened it.
pub struct SpanGuard {
    start: Instant,
    node: usize,
    epoch: u64,
    _not_send: PhantomData<*const ()>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.node == ROOT {
            return;
        }
        let elapsed = self.start.elapsed().as_nanos();
        let epoch = self.epoch;
        let node = self.node;
        with_local(|l| {
            if l.epoch == epoch {
                l.arena.exit(node, elapsed);
            }
        });
    }
}

/// Opens a hierarchical span: nested under whatever span is currently open
/// on this thread, timed until the returned guard drops.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    let (node, epoch) = with_local(|l| (l.arena.enter(name), l.epoch)).unwrap_or((ROOT, 0));
    SpanGuard {
        // Taken *after* the arena bookkeeping so the span's own overhead is
        // not charged to it.
        start: Instant::now(),
        node,
        epoch,
        _not_send: PhantomData,
    }
}

/// Flushes the calling thread's buffer and exports the global registry.
///
/// Worker threads spawned and joined before this call (scoped pools) have
/// already merged via their thread-local `Drop`; a still-running thread's
/// unflushed tail is not included.
pub fn snapshot() -> MetricsSnapshot {
    with_local(|l| l.flush());
    let g = global();
    MetricsSnapshot {
        counters: g
            .counters
            .iter()
            .map(|(&k, &v)| (k.to_string(), v))
            .collect(),
        histograms: g
            .hists
            .iter()
            .map(|(&k, h)| (k.to_string(), h.export()))
            .collect(),
        floats: g.floats.iter().map(|(&k, &f)| (k.to_string(), f)).collect(),
        spans: export_spans(&g.spans),
    }
}

/// Clears the registry: bumps the epoch (stale thread-local buffers discard
/// themselves instead of merging) and empties the global store.
pub fn reset() {
    EPOCH.fetch_add(1, Ordering::Relaxed);
    let mut g = global();
    *g = Global::default();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_and_bounds_partition_u64() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..=64usize {
            let (low, high) = bucket_bounds(i);
            assert!(low <= high);
            assert_eq!(bucket_index(low), i, "low bound of bucket {i}");
            assert_eq!(bucket_index(high), i, "high bound of bucket {i}");
        }
        // Buckets tile contiguously.
        for i in 1..=64usize {
            let (low, _) = bucket_bounds(i);
            let (_, prev_high) = bucket_bounds(i - 1);
            assert_eq!(low, prev_high + 1);
        }
    }

    #[test]
    fn hist_merge_is_additive() {
        let mut a = Hist::default();
        let mut b = Hist::default();
        for v in [0u64, 1, 5, 1000] {
            a.observe(v);
        }
        for v in [2u64, 7, 7, 1 << 40] {
            b.observe(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count, 8);
        assert_eq!(merged.sum, a.sum + b.sum);
        assert_eq!(merged.min, 0);
        assert_eq!(merged.max, 1 << 40);
    }
}
