//! Trace export: the merged span tree rendered in externally consumable
//! profiler formats.
//!
//! Two exporters, both pure functions of a [`MetricsSnapshot`] (so they work
//! identically with the `enabled` feature off — they just render an empty
//! profile):
//!
//! - [`chrome_trace_json`]: the Chrome Trace Event format (the JSON array
//!   flavour wrapped in `{"traceEvents": [...]}`), loadable in
//!   `chrome://tracing` and Perfetto. The span registry stores *merged*
//!   aggregates — per (ancestor-chain, name) totals, not individual
//!   activations — so the exporter synthesizes one complete ("X") event per
//!   tree node and lays siblings out sequentially on a single track.
//!   Timestamps are therefore synthetic; durations and nesting are real.
//! - [`flamegraph_collapsed`]: Brendan Gregg's collapsed-stack format
//!   (`root;child;leaf <self_ns>` per line), the input `flamegraph.pl` and
//!   speedscope accept. Self time is cumulative time minus the children's
//!   cumulative time, clamped at zero (clock skew between a parent's guard
//!   and its children's can make the difference marginally negative).
//!
//! Also here: [`install_panic_hook`], which arms a process-wide panic hook
//! that dumps the current telemetry snapshot to stderr before the default
//! hook runs — so a panicking bench or test run still yields its counters
//! and span profile.

use crate::snapshot::{MetricsSnapshot, SpanNode};
use std::fmt::Write as _;

/// Renders the snapshot's span tree as Chrome Trace Event JSON
/// (`{"traceEvents": [...]}`; one `"X"` complete event per node).
///
/// Sibling spans are laid out back-to-back on one synthetic track
/// (`pid` 1, `tid` 1) starting at timestamp 0; each child runs inside its
/// parent's interval. Timestamps are synthetic (the registry keeps merged
/// totals, not activation start times); durations are the real cumulative
/// nanoseconds, converted to the format's microsecond unit with fractional
/// precision so nothing truncates to zero.
pub fn chrome_trace_json(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("{\"traceEvents\": [");
    let mut first = true;
    let mut cursor_ns: u128 = 0;
    for span in &snapshot.spans {
        emit_chrome_events(&mut out, span, cursor_ns, &mut first);
        cursor_ns += span.total_ns;
    }
    out.push_str("\n]}");
    out
}

fn emit_chrome_events(out: &mut String, node: &SpanNode, start_ns: u128, first: &mut bool) {
    if !*first {
        out.push(',');
    }
    *first = false;
    let _ = write!(
        out,
        "\n  {{\"name\": \"{}\", \"ph\": \"X\", \"pid\": 1, \"tid\": 1, \
         \"ts\": {}, \"dur\": {}, \"args\": {{\"count\": {}}}}}",
        escape(&node.name),
        micros(start_ns),
        micros(node.total_ns),
        node.count
    );
    let mut cursor_ns = start_ns;
    for child in &node.children {
        emit_chrome_events(out, child, cursor_ns, first);
        cursor_ns += child.total_ns;
    }
}

/// Nanoseconds rendered as the trace format's microseconds, keeping
/// nanosecond precision as a fractional part.
fn micros(ns: u128) -> String {
    if ns.is_multiple_of(1_000) {
        format!("{}", ns / 1_000)
    } else {
        format!("{}.{:03}", ns / 1_000, ns % 1_000)
    }
}

/// Renders the snapshot's span tree in collapsed-stack ("folded") format:
/// one `ancestor;path;name <self_ns>` line per node with non-zero self
/// time, sorted by stack string (the tree is already name-ordered).
///
/// Self time is the node's cumulative nanoseconds minus its children's,
/// clamped at zero. The output feeds `flamegraph.pl`, `inferno`, or
/// speedscope directly.
pub fn flamegraph_collapsed(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for span in &snapshot.spans {
        emit_folded(&mut out, span, "");
    }
    out
}

fn emit_folded(out: &mut String, node: &SpanNode, prefix: &str) {
    let stack = if prefix.is_empty() {
        node.name.clone()
    } else {
        format!("{prefix};{}", node.name)
    };
    let children_ns: u128 = node.children.iter().map(|c| c.total_ns).sum();
    let self_ns = node.total_ns.saturating_sub(children_ns);
    if self_ns > 0 {
        let _ = writeln!(out, "{stack} {self_ns}");
    }
    for child in &node.children {
        emit_folded(out, child, &stack);
    }
}

/// Minimal JSON string escaping for span names (mirrors the snapshot
/// renderer: names are ASCII identifiers, but an exporter must not emit
/// invalid JSON for any input).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Arms a process-wide panic hook that dumps the telemetry snapshot to
/// stderr before delegating to the previously installed hook.
///
/// Intended for test and bench binaries: a panic mid-run (an assertion in
/// the traffic harness, an audit trip) still surfaces the counters and
/// span profile accumulated up to the failure point. With the `enabled`
/// feature off the snapshot is empty and the hook prints a single notice
/// line instead of a profile. Installing twice chains harmlessly (the
/// second install wraps the first).
pub fn install_panic_hook() {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let snap = crate::snapshot();
        if snap.is_empty() {
            eprintln!("[telemetry] panic: no metrics armed (telemetry disabled or reset)");
        } else {
            eprintln!("[telemetry] panic: dumping armed metrics snapshot");
            eprintln!("{}", snap.span_tree_text());
            for (name, value) in &snap.counters {
                eprintln!("[telemetry]   {name} = {value}");
            }
        }
        previous(info);
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        MetricsSnapshot {
            spans: vec![
                SpanNode {
                    name: "seal".into(),
                    count: 3,
                    total_ns: 5_000_500,
                    children: vec![
                        SpanNode {
                            name: "execute".into(),
                            count: 3,
                            total_ns: 3_000_000,
                            children: vec![],
                        },
                        SpanNode {
                            name: "root".into(),
                            count: 3,
                            total_ns: 1_500_000,
                            children: vec![],
                        },
                    ],
                },
                SpanNode {
                    name: "train".into(),
                    count: 1,
                    total_ns: 2_000_000,
                    children: vec![],
                },
            ],
            ..Default::default()
        }
    }

    #[test]
    fn chrome_trace_nests_children_inside_parents() {
        let json = chrome_trace_json(&sample());
        assert!(json.starts_with("{\"traceEvents\": ["));
        assert!(json.ends_with("]}"));
        // Parent starts at 0 and covers 5000.5us; children start inside it.
        assert!(json.contains("\"name\": \"seal\""));
        assert!(json.contains("\"ts\": 0, \"dur\": 5000.500"));
        assert!(json.contains("\"name\": \"execute\""));
        assert!(json.contains("\"ts\": 0, \"dur\": 3000"));
        // Second child is laid out after the first, still inside the parent.
        assert!(json.contains("\"name\": \"root\""));
        assert!(json.contains("\"ts\": 3000, \"dur\": 1500"));
        // The sibling root span starts after the first root span's interval.
        assert!(json.contains("\"ts\": 5000.500, \"dur\": 2000"));
        // Activation counts ride along as args.
        assert!(json.contains("\"args\": {\"count\": 3}"));
    }

    #[test]
    fn chrome_trace_of_empty_snapshot_is_valid_shell() {
        let json = chrome_trace_json(&MetricsSnapshot::default());
        assert_eq!(json, "{\"traceEvents\": [\n]}");
    }

    #[test]
    fn folded_stacks_report_self_time() {
        let folded = flamegraph_collapsed(&sample());
        // seal self = 5_000_500 - (3_000_000 + 1_500_000).
        assert!(folded.contains("seal 500500\n"));
        assert!(folded.contains("seal;execute 3000000\n"));
        assert!(folded.contains("seal;root 1500000\n"));
        assert!(folded.contains("train 2000000\n"));
    }

    #[test]
    fn folded_stacks_clamp_negative_self_time() {
        let snap = MetricsSnapshot {
            spans: vec![SpanNode {
                name: "outer".into(),
                count: 1,
                total_ns: 100,
                children: vec![SpanNode {
                    name: "inner".into(),
                    count: 1,
                    total_ns: 150, // clock skew: child measured longer
                    children: vec![],
                }],
            }],
            ..Default::default()
        };
        let folded = flamegraph_collapsed(&snap);
        // The skewed parent contributes no line; the child keeps its time.
        assert!(!folded.contains("outer "));
        assert!(folded.contains("outer;inner 150\n"));
    }

    #[test]
    fn micros_keeps_sub_microsecond_precision() {
        assert_eq!(micros(0), "0");
        assert_eq!(micros(1_000), "1");
        assert_eq!(micros(1_234), "1.234");
        assert_eq!(micros(999), "0.999");
    }

    #[test]
    fn escape_matches_json_rules() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("\u{2}"), "\\u0002");
    }
}
