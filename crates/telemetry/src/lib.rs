//! # parole-telemetry
//!
//! Zero-dependency structured tracing, counters and histograms for the
//! PAROLE reproduction pipeline.
//!
//! The crate exposes four recording primitives —
//!
//! - [`counter`]: monotonic `u64` counters ("how many Keccak permutations"),
//! - [`observe`]: log₂-bucketed `u64` histograms ("leaves flushed per root"),
//! - [`observe_f64`]: floating-point series ("base fee per block, in gwei"),
//! - [`span`]: hierarchical RAII-timed spans ("where did `seal_block` spend
//!   its time"),
//!
//! — plus [`snapshot`] to export everything as a [`MetricsSnapshot`]
//! (stable-sorted, JSON-renderable, flamegraph-style span-tree dump) and
//! [`reset`] to clear the registry between measurement windows. The span
//! tree additionally exports as Chrome-trace/Perfetto JSON
//! ([`chrome_trace_json`]) and collapsed-stack flamegraph input
//! ([`flamegraph_collapsed`]), and [`install_panic_hook`] arms a hook that
//! dumps the live snapshot when a test or bench binary panics.
//!
//! Every metric is **statically registered** in [`descriptors::METRICS`]
//! (name, kind, one-line doc); [`describe`] resolves a recorded name to its
//! descriptor, and `perf_report metrics --list` dumps the inventory. The
//! table is plain `'static` data, available in no-op builds too.
//!
//! ## Feature gating
//!
//! All of it is behind the `enabled` cargo feature. Without it every entry
//! point is an `#[inline(always)]` empty function: instrumented hot paths
//! (the Keccak permutation, `state_root()` flushes, the GENTRANSEQ loop)
//! compile exactly as if the calls were not there. Consuming crates forward
//! a `telemetry` feature here, mirroring the `audit` feature cascade.
//!
//! ## Determinism contract
//!
//! Counter and histogram recordings accumulate in thread-local buffers that
//! merge into the global registry with pure integer addition — an
//! associative, commutative operation — when a thread exits or snapshots.
//! Under the workspace's scoped worker pools (`par::parallel_map`) every
//! worker has merged by the time the pool joins, so **counter and histogram
//! totals are bit-identical at any thread count**. Span durations and float
//! series are wall-clock measurements and carry no such guarantee (counts
//! on spans are deterministic; nanoseconds are not).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod descriptors;
mod snapshot;
mod trace;

pub use descriptors::{describe, MetricDescriptor, MetricKind, METRICS};
pub use snapshot::{BucketCount, FloatStat, HistogramSnapshot, MetricsSnapshot, SpanNode};
pub use trace::{chrome_trace_json, flamegraph_collapsed, install_panic_hook};

#[cfg(feature = "enabled")]
mod registry;

#[cfg(feature = "enabled")]
pub use registry::{
    counter, local_counter, observe, observe_f64, reset, snapshot, span, SpanGuard,
};

#[cfg(not(feature = "enabled"))]
mod noop {
    use crate::snapshot::MetricsSnapshot;

    /// Adds `delta` to the named monotonic counter (no-op build).
    #[inline(always)]
    pub fn counter(_name: &'static str, _delta: u64) {}

    /// Records one observation into the named histogram (no-op build).
    #[inline(always)]
    pub fn observe(_name: &'static str, _value: u64) {}

    /// Records one observation into the named float series (no-op build).
    #[inline(always)]
    pub fn observe_f64(_name: &'static str, _value: f64) {}

    /// This thread's unflushed total for a counter (always 0 in a no-op
    /// build).
    #[inline(always)]
    pub fn local_counter(_name: &'static str) -> u64 {
        0
    }

    /// An inert span guard (no-op build): zero-sized, records nothing.
    pub struct SpanGuard {
        _private: (),
    }

    /// Opens a span (no-op build): returns an inert guard.
    #[inline(always)]
    pub fn span(_name: &'static str) -> SpanGuard {
        SpanGuard { _private: () }
    }

    /// Exports the registry (no-op build): always empty.
    #[inline(always)]
    pub fn snapshot() -> MetricsSnapshot {
        MetricsSnapshot::default()
    }

    /// Clears the registry (no-op build): nothing to clear.
    #[inline(always)]
    pub fn reset() {}
}

#[cfg(not(feature = "enabled"))]
pub use noop::{counter, local_counter, observe, observe_f64, reset, snapshot, span, SpanGuard};
