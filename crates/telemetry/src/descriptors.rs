//! Static metric registration: the canonical inventory of every metric the
//! pipeline records.
//!
//! The ROADMAP follow-up this closes: discovering "which metrics exist"
//! used to mean grepping call sites. Each recording site now has a row in
//! [`METRICS`] — name, kind, and a one-line doc string — and
//! `perf_report metrics --list` dumps the table. The inventory is plain
//! `'static` data, so it is available in no-op builds too (the dump works
//! without the `enabled` feature), and tests pin two properties:
//!
//! - the table is sorted by name and duplicate-free (so [`describe`] can
//!   binary-search and the dump is deterministic);
//! - every metric name a live pipeline run records resolves in the table
//!   (asserted by `perf_report`'s `metrics` section and the state crate's
//!   telemetry tests), so a new recording site cannot ship unregistered.

/// What a metric's recorded values mean, mirroring the four recording
/// primitives of the crate root.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic `u64` counter ([`counter`](crate::counter)).
    Counter,
    /// Log₂-bucketed `u64` histogram ([`observe`](crate::observe)).
    Histogram,
    /// Floating-point series ([`observe_f64`](crate::observe_f64)).
    FloatSeries,
    /// RAII-timed hierarchical span ([`span`](crate::span)).
    Span,
}

impl MetricKind {
    /// Short lowercase label for table dumps.
    pub fn label(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Histogram => "histogram",
            MetricKind::FloatSeries => "float",
            MetricKind::Span => "span",
        }
    }
}

/// One registered metric: its wire name, kind, and doc string.
#[derive(Debug, Clone, Copy)]
pub struct MetricDescriptor {
    /// The `&'static str` name passed to the recording primitive.
    pub name: &'static str,
    /// Which primitive records it.
    pub kind: MetricKind,
    /// One-line human description (shown by `perf_report metrics --list`).
    pub doc: &'static str,
}

const fn m(name: &'static str, kind: MetricKind, doc: &'static str) -> MetricDescriptor {
    MetricDescriptor { name, kind, doc }
}

use MetricKind::{Counter, FloatSeries, Histogram, Span};

/// Every metric the pipeline records, sorted by name.
///
/// Keep this table sorted and in sync with the recording sites; the unit
/// tests below and the `perf_report` coverage assertion enforce both.
pub const METRICS: &[MetricDescriptor] = &[
    m(
        "bloom.block_scans",
        Counter,
        "Blocks whose block bloom matched a log filter and had to be scanned",
    ),
    m(
        "bloom.block_skips",
        Counter,
        "Blocks pruned from log queries by the block-level bloom",
    ),
    m(
        "bloom.receipt_scans",
        Counter,
        "Receipts whose bloom matched a log filter and had their logs scanned",
    ),
    m(
        "bloom.receipt_skips",
        Counter,
        "Receipts pruned from log queries by the receipt-level bloom",
    ),
    m(
        "crypto.keccak256",
        Counter,
        "Keccak-256 digests finalized (one per hashed preimage, batched or not)",
    ),
    m(
        "crypto.keccak_f",
        Counter,
        "Keccak-f[1600] permutation invocations (one per absorbed or padded block)",
    ),
    m(
        "drl.episode_reward",
        FloatSeries,
        "Total reward per DQN training episode",
    ),
    m("drl.episodes", Counter, "DQN training episodes completed"),
    m(
        "drl.epsilon",
        FloatSeries,
        "Exploration rate at each episode end",
    ),
    m(
        "drl.replay_occupancy",
        Histogram,
        "Replay-buffer fill level sampled at each training step",
    ),
    m(
        "drl.run_episode",
        Span,
        "One full DQN episode: rollout plus training steps",
    ),
    m(
        "drl.steps",
        Counter,
        "Environment steps taken across all episodes",
    ),
    m(
        "drl.td_error",
        FloatSeries,
        "Mean absolute temporal-difference error per training step",
    ),
    m(
        "drl.train_steps",
        Counter,
        "Gradient/update steps performed on the Q-network",
    ),
    m(
        "events.blocks_indexed",
        Counter,
        "Blocks folded into a per-block log index",
    ),
    m(
        "events.emitted",
        Counter,
        "ERC-721 log entries emitted into receipts (committed operations only)",
    ),
    m(
        "events.queries",
        Counter,
        "Log-filter queries answered by a log index",
    ),
    m(
        "events.query_hits",
        Counter,
        "Log entries returned across all log-filter queries",
    ),
    m(
        "events.receipts_with_logs",
        Counter,
        "Receipts that carried at least one log entry",
    ),
    m(
        "fleet.cell",
        Span,
        "One (fleet size, threshold) cell of a fleet sweep",
    ),
    m("fleet.cells", Counter, "Fleet-sweep cells evaluated"),
    m(
        "fraud.bisection_games",
        Counter,
        "Interactive bisection challenge games played to settlement",
    ),
    m(
        "fraud.bisection_rounds",
        Histogram,
        "Bisection rounds (midpoint root queries) per interactive challenge",
    ),
    m(
        "fraud.defender_wins",
        Counter,
        "Interactive challenges settled in the defender's favour",
    ),
    m(
        "fraud.diverging_records",
        Histogram,
        "Diverging record openings found per confirmed single-step fraud",
    ),
    m(
        "fraud.fraud_confirmed",
        Counter,
        "Interactive challenges that confirmed fraud at the isolated step",
    ),
    m(
        "fraud.proof_bytes",
        Histogram,
        "Serialized size of each record opening verified at settlement",
    ),
    m(
        "fraud.record_proofs_verified",
        Counter,
        "Record-inclusion proofs checked against bare roots at settlement",
    ),
    m(
        "fraud.step_roots_recorded",
        Counter,
        "Per-transaction intermediate roots recorded at block seal",
    ),
    m(
        "mdp.evaluate",
        Span,
        "One exhaustive MDP evaluation of a candidate window",
    ),
    m(
        "mdp.evaluations",
        Counter,
        "Candidate orderings evaluated by the exhaustive MDP search",
    ),
    m(
        "mempool.heap_pops",
        Counter,
        "Priority-heap pops (one per transaction handed to a collector)",
    ),
    m(
        "mempool.heap_pushes",
        Counter,
        "Priority-heap pushes (submissions plus rebuild re-insertions)",
    ),
    m(
        "mempool.parked",
        Counter,
        "Transactions parked with a fee cap below the base fee",
    ),
    m(
        "mempool.rebuilds",
        Counter,
        "Full index re-keys triggered by base-fee changes",
    ),
    m(
        "mempool.rescreened",
        Counter,
        "Entries re-screened across all index rebuilds",
    ),
    m(
        "ovm.prefix_checkpoint_hits",
        Counter,
        "Prefix-executor cache hits (shared prefix reused via checkpoint)",
    ),
    m(
        "ovm.prefix_checkpoint_misses",
        Counter,
        "Prefix-executor cache misses (no reusable shared prefix)",
    ),
    m(
        "ovm.prefix_evaluations",
        Counter,
        "Candidate sequences executed through the prefix executor",
    ),
    m(
        "ovm.prefix_execute",
        Span,
        "One prefix-cached execution of a candidate sequence",
    ),
    m(
        "ovm.prefix_replay_len",
        Histogram,
        "Transactions actually re-executed per prefix-cached evaluation",
    ),
    m(
        "ovm.prefix_slots_executed",
        Counter,
        "Transaction slots executed (cache could not skip them)",
    ),
    m(
        "ovm.prefix_slots_skipped",
        Counter,
        "Transaction slots skipped thanks to the shared prefix",
    ),
    m(
        "ovm.txs_executed",
        Counter,
        "Transactions executed by the OVM (any status)",
    ),
    m(
        "ovm.txs_reverted",
        Counter,
        "Transactions that reverted during OVM execution",
    ),
    m(
        "parallel.blocks",
        Counter,
        "Blocks run through the optimistic-concurrency executor",
    ),
    m(
        "parallel.commit_wave_width",
        Histogram,
        "Consecutive clean commits between scheduler aborts",
    ),
    m(
        "parallel.conflicts",
        Counter,
        "Speculations invalidated by an earlier transaction's writes",
    ),
    m(
        "parallel.execute_block",
        Span,
        "One optimistic-concurrency block execution end to end",
    ),
    m(
        "parallel.reexecutions",
        Counter,
        "Conflicted transactions re-executed serially at commit time",
    ),
    m(
        "parallel.speculations",
        Counter,
        "Speculative transaction executions against the block base",
    ),
    m(
        "parallel.txs_committed_clean",
        Counter,
        "Speculations that validated and committed without re-execution",
    ),
    m(
        "rollup.audit_trips",
        Counter,
        "Runtime-audit violations raised while processing batches",
    ),
    m(
        "rollup.batches_finalized",
        Counter,
        "Batches finalized on L1 after the challenge window",
    ),
    m(
        "rollup.batches_rejected",
        Counter,
        "Batches rejected before finalization (fraud proven)",
    ),
    m(
        "rollup.batches_submitted",
        Counter,
        "Batches submitted to the L1 inbox",
    ),
    m(
        "rollup.challenges",
        Counter,
        "Fraud-proof challenges opened against submitted batches",
    ),
    m(
        "rollup.challenges_rejected",
        Counter,
        "Challenges rejected (the challenged batch was honest)",
    ),
    m(
        "rollup.fraud_proven",
        Counter,
        "Challenges that proved fraud and rolled the batch back",
    ),
    m(
        "rollup.undetected_forgeries",
        Counter,
        "Forged batches that finalized unchallenged (lazy-validator window)",
    ),
    m(
        "sequencer.base_fee_gwei",
        FloatSeries,
        "EIP-1559-style base fee after each sealed block, in gwei",
    ),
    m(
        "sequencer.blocks_sealed",
        Counter,
        "L2 blocks sealed by the sequencer",
    ),
    m(
        "sequencer.gas_used",
        Histogram,
        "Gas consumed per sealed block",
    ),
    m(
        "sequencer.mempool_depth",
        Histogram,
        "Mempool depth sampled at each seal",
    ),
    m(
        "sequencer.seal_block",
        Span,
        "One sequencer block-seal cycle: select, execute, commit",
    ),
    m(
        "sequencer.txs_deferred",
        Counter,
        "Transactions deferred at seal time (unmet nonce/fee constraints)",
    ),
    m(
        "sequencer.txs_sealed",
        Counter,
        "Transactions included in sealed blocks",
    ),
    m(
        "state.coll_leaves_flushed",
        Histogram,
        "Collection headers re-derived per state-root flush (sub-root or supply moved)",
    ),
    m(
        "state.commit_builds",
        Counter,
        "Full O(n) commitment-cache builds (first state_root on a state)",
    ),
    m(
        "state.dirty_records",
        Histogram,
        "Dirty records (accounts + collections) pending per non-clean flush",
    ),
    m(
        "state.keccak_per_root",
        Histogram,
        "Keccak-256 digests computed per state_root() call",
    ),
    m(
        "state.leaves_flushed",
        Histogram,
        "Top-level leaves created/destroyed/re-hashed per state-root flush",
    ),
    m(
        "state.revert_depth",
        Histogram,
        "Journal entries undone per rollback",
    ),
    m(
        "state.reverts",
        Counter,
        "Undo-log rollbacks (revert_to calls that undid at least one entry)",
    ),
    m(
        "state.root",
        Span,
        "One state_root() call: cache build, dirty flush, or clean hit",
    ),
    m(
        "state.root_calls",
        Counter,
        "state_root() invocations (incremental path)",
    ),
    m(
        "state.root_clean_hits",
        Counter,
        "state_root() calls served from a clean cache (no re-hash)",
    ),
    m(
        "state.token_leaves_flushed",
        Histogram,
        "Token leaves created/destroyed/re-hashed across all collection sub-trees per flush",
    ),
];

/// Looks up the descriptor for a metric name (binary search over the
/// sorted table).
pub fn describe(name: &str) -> Option<&'static MetricDescriptor> {
    METRICS
        .binary_search_by(|d| d.name.cmp(name))
        .ok()
        .map(|i| &METRICS[i])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_sorted_and_duplicate_free() {
        for pair in METRICS.windows(2) {
            assert!(
                pair[0].name < pair[1].name,
                "METRICS must stay sorted/unique: {:?} !< {:?}",
                pair[0].name,
                pair[1].name
            );
        }
    }

    #[test]
    fn describe_resolves_every_registered_name() {
        for d in METRICS {
            let found = describe(d.name).expect("registered name resolves");
            assert_eq!(found.name, d.name);
            assert_eq!(found.kind, d.kind);
        }
        assert!(describe("no.such.metric").is_none());
    }

    #[test]
    fn docs_are_nonempty_single_line() {
        for d in METRICS {
            assert!(!d.doc.is_empty(), "{} has an empty doc", d.name);
            assert!(!d.doc.contains('\n'), "{} doc must be one line", d.name);
        }
    }
}
