//! The exported view of the metrics registry: plain data, stable ordering,
//! self-contained JSON rendering.
//!
//! Everything in this module compiles regardless of the `enabled` feature so
//! downstream report machinery can handle a snapshot uniformly; with the
//! feature off, [`crate::snapshot`] simply returns
//! [`MetricsSnapshot::default`] (empty).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One exported log₂ histogram bucket: the closed value range it covers and
/// how many observations landed in it. Only non-empty buckets are exported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketCount {
    /// Smallest value the bucket covers.
    pub low: u64,
    /// Largest value the bucket covers (inclusive).
    pub high: u64,
    /// Observations in the bucket.
    pub count: u64,
}

/// Exported state of one log₂-bucketed histogram.
///
/// `count`, `sum` and the per-bucket counts are integer-additive across
/// thread-local merges, so they are **bit-stable**: the same work produces
/// the same histogram at any thread count.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values (u128: immune to u64 overflow).
    pub sum: u128,
    /// Smallest observed value (0 when `count == 0`).
    pub min: u64,
    /// Largest observed value (0 when `count == 0`).
    pub max: u64,
    /// Non-empty buckets in increasing value order.
    pub buckets: Vec<BucketCount>,
}

impl HistogramSnapshot {
    /// Mean observed value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Exported state of one floating-point series (per-episode rewards, TD
/// errors, ε trajectories, base-fee paths).
///
/// Unlike counters and histograms, float sums depend on merge order and are
/// **not** guaranteed bit-stable across thread counts; the instrumented
/// float series all live on single-threaded loops (the DRL trainer, the
/// sequencer), where the question does not arise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FloatStat {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Most recent observation (merge order across threads is unspecified).
    pub last: f64,
}

impl Default for FloatStat {
    fn default() -> Self {
        FloatStat {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            last: 0.0,
        }
    }
}

impl FloatStat {
    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// One node of the merged span tree: a span name in the context of its
/// ancestor chain, with call count and cumulative wall-clock time.
///
/// Timings are monotonic-clock wall time and inherently not bit-stable;
/// counts are.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SpanNode {
    /// Span name (the `&'static str` the instrumentation site used).
    pub name: String,
    /// Completed activations of this span under this ancestor chain.
    pub count: u64,
    /// Cumulative nanoseconds across all activations.
    pub total_ns: u128,
    /// Child spans in name order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    fn render_tree(&self, out: &mut String, depth: usize, parent_ns: u128) {
        let pct = if parent_ns > 0 {
            self.total_ns as f64 * 100.0 / parent_ns as f64
        } else {
            100.0
        };
        let label = format!("{}{}", "  ".repeat(depth), self.name);
        let _ = writeln!(
            out,
            "{label:<40} {:>10}x {:>12} {:>6.1}%",
            self.count,
            format_ns(self.total_ns),
            pct
        );
        for child in &self.children {
            child.render_tree(out, depth + 1, self.total_ns);
        }
    }
}

/// Human-readable duration with a fixed unit ladder.
fn format_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// A point-in-time export of every counter, histogram, float series and span
/// accumulated since the last [`crate::reset`].
///
/// All maps are `BTreeMap` and all child lists are name-sorted, so two
/// snapshots of identical registries render identical JSON byte-for-byte —
/// the property the cross-thread-count determinism checks diff on.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Monotonic event counters.
    pub counters: BTreeMap<String, u64>,
    /// Log₂-bucketed value distributions.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Floating-point series summaries.
    pub floats: BTreeMap<String, FloatStat>,
    /// Root-level spans of the merged span tree, in name order.
    pub spans: Vec<SpanNode>,
}

impl MetricsSnapshot {
    /// True when nothing was recorded (always the case with the `enabled`
    /// feature off).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.histograms.is_empty()
            && self.floats.is_empty()
            && self.spans.is_empty()
    }

    /// Value of a counter, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A histogram by name, if it recorded anything.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// A float series by name, if it recorded anything.
    pub fn float(&self, name: &str) -> Option<&FloatStat> {
        self.floats.get(name)
    }

    /// Renders the snapshot as pretty-printed JSON with deterministic key
    /// order (maps are sorted, buckets ordered by value). Zero-dependency by
    /// design: the report machinery embeds the result as a raw JSON
    /// fragment.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"counters\": {");
        render_map(&mut out, self.counters.iter(), 2, |out, v| {
            let _ = write!(out, "{v}");
        });
        out.push_str(",\n  \"histograms\": {");
        render_map(&mut out, self.histograms.iter(), 2, |out, h| {
            let _ = write!(
                out,
                "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"mean\": {}, \"buckets\": [",
                h.count,
                h.sum,
                h.min,
                h.max,
                json_f64(h.mean())
            );
            for (i, b) in h.buckets.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "[{}, {}, {}]", b.low, b.high, b.count);
            }
            out.push_str("]}");
        });
        out.push_str(",\n  \"floats\": {");
        render_map(&mut out, self.floats.iter(), 2, |out, f| {
            let _ = write!(
                out,
                "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"mean\": {}, \"last\": {}}}",
                f.count,
                json_f64(f.sum),
                json_f64(f.min),
                json_f64(f.max),
                json_f64(f.mean()),
                json_f64(f.last)
            );
        });
        out.push_str(",\n  \"spans\": [");
        render_spans_json(&mut out, &self.spans, 2);
        out.push_str("]\n}");
        out
    }

    /// Renders the merged span tree as an indented, flamegraph-style text
    /// profile: per node the activation count, cumulative wall time and the
    /// share of the parent's time.
    pub fn span_tree_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<40} {:>11} {:>12} {:>7}",
            "span", "count", "total", "parent%"
        );
        let root_total: u128 = self.spans.iter().map(|s| s.total_ns).sum();
        for span in &self.spans {
            span.render_tree(&mut out, 0, root_total);
        }
        out
    }
}

/// Renders a sorted `name -> value` map body (without the surrounding
/// braces' opening, which the caller already wrote).
fn render_map<'a, V: 'a>(
    out: &mut String,
    entries: impl Iterator<Item = (&'a String, &'a V)>,
    indent: usize,
    mut render_value: impl FnMut(&mut String, &V),
) {
    let pad = "  ".repeat(indent);
    let mut any = false;
    for (name, value) in entries {
        if any {
            out.push(',');
        }
        any = true;
        let _ = write!(out, "\n{pad}\"{}\": ", escape_json(name));
        render_value(out, value);
    }
    if any {
        let _ = write!(out, "\n{}}}", "  ".repeat(indent - 1));
    } else {
        out.push('}');
    }
}

fn render_spans_json(out: &mut String, spans: &[SpanNode], indent: usize) {
    let pad = "  ".repeat(indent);
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n{pad}{{\"name\": \"{}\", \"count\": {}, \"total_ns\": {}, \"children\": [",
            escape_json(&s.name),
            s.count,
            s.total_ns
        );
        render_spans_json(out, &s.children, indent + 1);
        out.push_str("]}");
    }
    if !spans.is_empty() {
        let _ = write!(out, "\n{}", "  ".repeat(indent - 1));
    }
}

/// Minimal JSON string escaping (metric names are ASCII identifiers, but a
/// renderer must not emit invalid output for any input).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Finite floats render via Rust's shortest-roundtrip `Debug` (valid JSON);
/// non-finite values become `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_snapshot_renders_valid_shape() {
        let s = MetricsSnapshot::default();
        assert!(s.is_empty());
        let json = s.to_json();
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"spans\": []"));
    }

    #[test]
    fn json_is_deterministic_for_equal_content() {
        let mut a = MetricsSnapshot::default();
        a.counters.insert("z.second".into(), 2);
        a.counters.insert("a.first".into(), 1);
        let mut b = MetricsSnapshot::default();
        b.counters.insert("a.first".into(), 1);
        b.counters.insert("z.second".into(), 2);
        assert_eq!(a.to_json(), b.to_json());
        // Sorted: a.first renders before z.second.
        let json = a.to_json();
        assert!(json.find("a.first").unwrap() < json.find("z.second").unwrap());
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(1.5), "1.5");
    }

    #[test]
    fn span_tree_text_indents_children() {
        let snap = MetricsSnapshot {
            spans: vec![SpanNode {
                name: "outer".into(),
                count: 2,
                total_ns: 2_000_000,
                children: vec![SpanNode {
                    name: "inner".into(),
                    count: 4,
                    total_ns: 500_000,
                    ..Default::default()
                }],
            }],
            ..Default::default()
        };
        let text = snap.span_tree_text();
        assert!(text.contains("outer"));
        assert!(text.contains("  inner"));
        assert!(text.contains("25.0%"));
    }

    #[test]
    fn escape_handles_controls_and_quotes() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }
}
