//! Integration tests for the live registry.
//!
//! The registry is process-global, so everything that records and snapshots
//! runs inside a single `#[test]` — cargo runs tests in one binary
//! concurrently, and two tests interleaving recordings would race on the
//! shared store.

#![cfg(feature = "enabled")]

use parole_telemetry as tel;

#[test]
fn registry_end_to_end() {
    // --- counters, histograms, floats -----------------------------------
    tel::reset();
    tel::counter("test.hits", 1);
    tel::counter("test.hits", 2);
    tel::observe("test.size", 0);
    tel::observe("test.size", 5);
    tel::observe("test.size", 1024);
    tel::observe_f64("test.fee", 1.5);
    tel::observe_f64("test.fee", 2.5);

    let snap = tel::snapshot();
    assert_eq!(snap.counter("test.hits"), 3);
    let h = snap.histogram("test.size").expect("histogram recorded");
    assert_eq!(h.count, 3);
    assert_eq!(h.sum, 1029);
    assert_eq!(h.min, 0);
    assert_eq!(h.max, 1024);
    assert_eq!(h.buckets.iter().map(|b| b.count).sum::<u64>(), 3);
    let f = snap.float("test.fee").expect("float recorded");
    assert_eq!(f.count, 2);
    assert!((f.mean() - 2.0).abs() < 1e-12);
    assert_eq!(f.last, 2.5);

    // Snapshotting twice exports the same totals (snapshot drains the local
    // buffer into the global store; nothing is lost or double-counted).
    let again = tel::snapshot();
    assert_eq!(again.counter("test.hits"), 3);
    assert_eq!(again.histogram("test.size").unwrap().count, 3);

    // --- spans nest and count deterministically --------------------------
    tel::reset();
    for _ in 0..4 {
        let _outer = tel::span("outer");
        for _ in 0..3 {
            let _inner = tel::span("inner");
        }
    }
    {
        let _solo = tel::span("solo");
    }
    let snap = tel::snapshot();
    assert_eq!(snap.spans.len(), 2, "two root spans: outer, solo");
    let outer = snap.spans.iter().find(|s| s.name == "outer").unwrap();
    assert_eq!(outer.count, 4);
    assert_eq!(outer.children.len(), 1);
    assert_eq!(outer.children[0].name, "inner");
    assert_eq!(outer.children[0].count, 12);
    assert!(outer.total_ns >= outer.children[0].total_ns);
    let text = snap.span_tree_text();
    assert!(text.contains("outer"));
    assert!(text.contains("inner"));

    // --- local_counter reads the unflushed thread total ------------------
    tel::reset();
    assert_eq!(tel::local_counter("test.local"), 0);
    tel::counter("test.local", 7);
    assert_eq!(tel::local_counter("test.local"), 7);
    let before = tel::local_counter("test.local");
    tel::counter("test.local", 5);
    assert_eq!(tel::local_counter("test.local") - before, 5);

    // --- worker threads merge on exit, totals are thread-count stable ----
    let run = |threads: usize| -> (u64, u128) {
        tel::reset();
        let per_thread = 100u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        tel::counter("test.par", 1);
                        tel::observe("test.par_hist", (t as u64) * per_thread + i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = tel::snapshot();
        (
            snap.counter("test.par"),
            snap.histogram("test.par_hist").map(|h| h.sum).unwrap_or(0),
        )
    };
    // 4 threads each record 100; totals must reflect every recording.
    let (c4, _) = run(4);
    assert_eq!(c4, 400);
    let (c1, s1) = run(1);
    assert_eq!(c1, 100);
    assert_eq!(s1, (0..100u128).sum::<u128>());

    // --- reset discards stale locals -------------------------------------
    tel::counter("test.stale", 99);
    tel::reset();
    // The recording above was never flushed; after reset it must not leak
    // into the fresh window.
    tel::counter("test.fresh", 1);
    let snap = tel::snapshot();
    assert_eq!(snap.counter("test.stale"), 0);
    assert_eq!(snap.counter("test.fresh"), 1);

    // --- JSON export is well-formed and stable ----------------------------
    tel::reset();
    tel::counter("json.a", 1);
    tel::observe("json.h", 42);
    let a = tel::snapshot().to_json();
    let b = tel::snapshot().to_json();
    assert_eq!(a, b, "same content renders byte-identically");
    assert!(a.contains("\"json.a\": 1"));

    tel::reset();
}
