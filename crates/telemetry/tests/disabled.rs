//! The default (no `enabled` feature) build must record nothing and export
//! an empty snapshot — instrumented hot paths pay for nothing.

#![cfg(not(feature = "enabled"))]

use parole_telemetry as tel;

#[test]
fn disabled_build_exports_empty_snapshot() {
    tel::counter("x", 1);
    tel::observe("y", 42);
    tel::observe_f64("z", 1.5);
    tel::local_counter("x");
    {
        let _g = tel::span("root");
        let _h = tel::span("child");
    }
    let snap = tel::snapshot();
    assert!(snap.is_empty());
    assert_eq!(snap.counter("x"), 0);
    assert!(snap.histogram("y").is_none());
    assert!(snap.float("z").is_none());
    assert!(snap.spans.is_empty());
    tel::reset();
    assert!(tel::snapshot().is_empty());
}

#[test]
fn disabled_span_guard_is_zero_sized() {
    assert_eq!(std::mem::size_of::<tel::SpanGuard>(), 0);
}
