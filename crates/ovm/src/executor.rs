//! The OVM execution engine.

use crate::logs::{Bloom, LogEntry};
use crate::{GasSchedule, NftTransaction, Receipt, RevertReason, TxKind, TxStatus};
use parole_nft::NftError;
use parole_primitives::Wei;
use parole_state::L2State;
use serde::{Deserialize, Serialize};

/// Execution policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OvmConfig {
    /// Gas accounting schedule.
    pub gas_schedule: GasSchedule,
    /// Block base fee used for fee computation.
    pub base_fee: Wei,
    /// Verify attached ECDSA signatures. Protocol tests enable this; the
    /// large fleet simulations leave transactions unsigned, and unsigned
    /// transactions always pass.
    pub verify_signatures: bool,
    /// Charge gas fees to sender balances. Off by default because the
    /// paper's case-study arithmetic (Fig. 5) ignores gas; the Table III
    /// harness switches it on.
    pub charge_fees: bool,
}

impl Default for OvmConfig {
    fn default() -> Self {
        OvmConfig {
            gas_schedule: GasSchedule::paper_calibrated(),
            base_fee: Wei::from_gwei(1),
            verify_signatures: true,
            charge_fees: false,
        }
    }
}

/// The Optimistic Virtual Machine.
///
/// Stateless by itself — every method takes the [`L2State`] it should act on,
/// which is what makes speculative forks trivial.
#[derive(Debug, Clone, Default)]
pub struct Ovm {
    config: OvmConfig,
}

impl Ovm {
    /// An OVM with the default (paper-calibrated) configuration.
    pub fn new() -> Self {
        Ovm::default()
    }

    /// An OVM with an explicit configuration.
    pub fn with_config(config: OvmConfig) -> Self {
        Ovm { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &OvmConfig {
        &self.config
    }

    /// Executes a single transaction against `state`, committing its effects
    /// on success and leaving `state` untouched by the operation (except gas
    /// and nonce accounting) on revert.
    ///
    /// # Nonce accounting
    ///
    /// Every processed transaction consumes exactly one nonce of its claimed
    /// sender, *regardless of outcome* — success and every revert reason
    /// alike (including [`RevertReason::BadSignature`] and
    /// [`RevertReason::CannotPayFees`]). A uniform rule keeps replay
    /// behaviour independent of why a transaction reverted, which the
    /// prefix-cache differential oracle and the conservation auditor rely
    /// on. (Reason-dependent nonce skips were a real accounting bug here
    /// once: two executions of the same window could disagree on nonces —
    /// hence state roots — purely based on revert reasons.)
    ///
    /// # Fee accounting
    ///
    /// `fee_paid` in the receipt reports the amount actually debited:
    /// the full fee for any transaction that passed the fee debit (fees are
    /// charged up front and burned, even when the operation later reverts),
    /// and zero for [`RevertReason::BadSignature`] /
    /// [`RevertReason::CannotPayFees`], where no debit ever happened.
    pub fn execute(&self, state: &mut L2State, tx: &NftTransaction) -> Receipt {
        let gas_used = self.config.gas_schedule.gas_for(&tx.kind);
        let fee = if self.config.charge_fees {
            tx.fees.total_fee(gas_used, self.config.base_fee)
        } else {
            Wei::ZERO
        };

        // Header-granular read: the price is a function of remaining supply
        // only, so this read conflicts with mints/burns of the collection
        // but not with its transfers/approvals (see `parole_state::RecordKey`).
        let price_before = state
            .collection_price(tx.kind.collection())
            .unwrap_or(Wei::ZERO);

        let receipt = |status: TxStatus, fee_paid: Wei, price_after: Wei, logs: Vec<LogEntry>| {
            let bloom = Bloom::of_logs(&logs);
            let r = Receipt {
                tx_hash: tx.tx_hash(),
                status,
                gas_used,
                fee_paid,
                price_before,
                price_after,
                logs,
                bloom,
            };
            Self::record_outcome(&r);
            r
        };

        // Uniform nonce accounting: the claimed sender's nonce is consumed
        // before any validity check can bail out.
        state.bump_nonce(tx.sender);

        // Signature check precedes everything else (an invalid signature
        // would never enter a block on the real chain; here it burns gas
        // like an invalid op so adversarial flooding is not free).
        if self.config.verify_signatures && !tx.verify_signature() {
            return receipt(
                TxStatus::Reverted(RevertReason::BadSignature),
                Wei::ZERO,
                price_before,
                Vec::new(),
            );
        }

        // Fees are charged up front; a sender who cannot pay reverts having
        // paid nothing.
        if self.config.charge_fees && state.debit(tx.sender, fee).is_err() {
            return receipt(
                TxStatus::Reverted(RevertReason::CannotPayFees),
                Wei::ZERO,
                price_before,
                Vec::new(),
            );
        }

        // Event capture brackets the operation: the collection's event log
        // is journaled with the rest of its state, so a reverted operation
        // leaves the high-water mark where it was and the slice below is
        // empty. The length probe records no read — receipts are execution
        // outputs, not state the OCC scheduler needs to serialize on.
        let collection_addr = tx.kind.collection();
        let events_start = state.collection_events_len(collection_addr).unwrap_or(0);
        let status = self.apply_operation(state, tx, price_before);
        let logs: Vec<LogEntry> = state
            .collection_events_since(collection_addr, events_start)
            .map(|events| {
                events
                    .iter()
                    .map(|&event| LogEntry {
                        collection: collection_addr,
                        event,
                    })
                    .collect()
            })
            .unwrap_or_default();
        let price_after = state.collection_price(collection_addr).unwrap_or(Wei::ZERO);
        receipt(status, fee, price_after, logs)
    }

    /// Records per-transaction outcome telemetry; called once per
    /// [`Ovm::execute`] at the single exit point.
    fn record_outcome(receipt: &Receipt) {
        parole_telemetry::counter("ovm.txs_executed", 1);
        if !receipt.is_success() {
            parole_telemetry::counter("ovm.txs_reverted", 1);
        }
        if !receipt.logs.is_empty() {
            parole_telemetry::counter("events.emitted", receipt.logs.len() as u64);
            parole_telemetry::counter("events.receipts_with_logs", 1);
        }
    }

    /// Applies the NFT operation itself; returns the resulting status.
    ///
    /// Reads go through the granular [`L2State`] constraint helpers
    /// (`nft_can_mint` / `nft_can_transfer` / `nft_can_burn`,
    /// `collection_creator`) rather than the coarse `collection()` accessor,
    /// so the read set recorded during speculative execution is exactly
    /// token- or header-granular — the precision the parallel scheduler's
    /// conflict detection depends on. A missing collection surfaces through
    /// the same helpers as [`RevertReason::NoSuchCollection`].
    fn apply_operation(&self, state: &mut L2State, tx: &NftTransaction, price: Wei) -> TxStatus {
        let collection_addr = tx.kind.collection();
        match tx.kind {
            // Eq. 1 / Eq. 2: mint — pay `P^{t-1}` to the creator, supply
            // shrinks, price rises.
            TxKind::Mint { token, .. } => {
                let Ok(contract_ok) = state.nft_can_mint(collection_addr, token) else {
                    return TxStatus::Reverted(RevertReason::NoSuchCollection);
                };
                if let Err(e) = contract_ok {
                    return map_nft_error(e);
                }
                if state.balance_of(tx.sender) < price {
                    return TxStatus::Reverted(RevertReason::InsufficientBalance);
                }
                let creator = state
                    .collection_creator(collection_addr)
                    .expect("checked above");
                state.debit(tx.sender, price).expect("balance just checked");
                state.credit(creator, price);
                state
                    .nft_mint(collection_addr, tx.sender, token)
                    .expect("checked above")
                    .expect("constraints just checked");
                TxStatus::Executed
            }
            // Eq. 3 / Eq. 4: transfer — buyer pays `P^{t-1}` to the seller,
            // ownership moves, price unchanged.
            TxKind::Transfer { token, to, .. } => {
                let Ok(contract_ok) = state.nft_can_transfer(collection_addr, tx.sender, to, token)
                else {
                    return TxStatus::Reverted(RevertReason::NoSuchCollection);
                };
                if let Err(e) = contract_ok {
                    return map_nft_error(e);
                }
                if state.balance_of(to) < price {
                    return TxStatus::Reverted(RevertReason::InsufficientBalance);
                }
                state
                    .transfer_balance(to, tx.sender, price)
                    .expect("just checked");
                state
                    .nft_transfer(collection_addr, tx.sender, to, token)
                    .expect("checked above")
                    .expect("constraints just checked");
                TxStatus::Executed
            }
            // Eq. 5 / Eq. 6: burn — supply grows, price falls, no payment.
            TxKind::Burn { token, .. } => {
                let Ok(contract_ok) = state.nft_can_burn(collection_addr, tx.sender, token) else {
                    return TxStatus::Reverted(RevertReason::NoSuchCollection);
                };
                if let Err(e) = contract_ok {
                    return map_nft_error(e);
                }
                state
                    .nft_burn(collection_addr, tx.sender, token)
                    .expect("checked above")
                    .expect("constraints just checked");
                TxStatus::Executed
            }
            // ERC-721 `approve`: per-token operator grant, no payment, no
            // curve movement. Reads exactly the token's leaf.
            TxKind::Approve {
                token, operator, ..
            } => {
                let Ok(contract_ok) = state.nft_can_approve(collection_addr, tx.sender, token)
                else {
                    return TxStatus::Reverted(RevertReason::NoSuchCollection);
                };
                if let Err(e) = contract_ok {
                    return map_nft_error(e);
                }
                state
                    .nft_approve(collection_addr, tx.sender, operator, token)
                    .expect("checked above")
                    .expect("constraints just checked");
                TxStatus::Executed
            }
            // ERC-721 `setApprovalForAll`: blanket operator grant/revoke.
            // Reads and writes only the sender's operator record — disjoint
            // from every token leaf and from the supply counters.
            TxKind::SetApprovalForAll {
                operator, approved, ..
            } => {
                let Ok(contract_ok) =
                    state.nft_can_set_approval_for_all(collection_addr, tx.sender, operator)
                else {
                    return TxStatus::Reverted(RevertReason::NoSuchCollection);
                };
                if let Err(e) = contract_ok {
                    return map_nft_error(e);
                }
                state
                    .nft_set_approval_for_all(collection_addr, tx.sender, operator, approved)
                    .expect("checked above")
                    .expect("constraints just checked");
                TxStatus::Executed
            }
        }
    }

    /// Commits the effects of an already-validated speculative execution of
    /// `tx` without re-running signature verification, hashing, or
    /// constraint checks — the parallel scheduler's cheap commit path.
    ///
    /// Soundness contract (upheld by `crate::parallel`): `receipt` came
    /// from executing `tx` against a state in which every record `tx` read
    /// or wrote held exactly the value it holds in `state` now. Under that
    /// premise the serial execution of `tx` here would retrace the
    /// speculative run step for step, so its effects can be replayed from
    /// the receipt alone:
    ///
    /// - the claimed sender's nonce is consumed (uniform rule, any status);
    /// - `fee_paid` is burned from the sender (it is zero exactly on the
    ///   paths where no debit happened);
    /// - on success, the operation's transfers and token mutation are
    ///   applied with `price_before` as the payment amount (the price the
    ///   payer was charged — and for mints/burns the supply movement
    ///   reprices the curve identically to the speculative run).
    ///
    /// # Panics
    ///
    /// Panics if the premise is violated (a debit no longer covered, a
    /// token op no longer valid): that is a scheduler bug, not a user
    /// error, and must not be silently absorbed.
    pub(crate) fn apply_validated(
        &self,
        state: &mut L2State,
        tx: &NftTransaction,
        receipt: &Receipt,
    ) {
        state.bump_nonce(tx.sender);
        if receipt.fee_paid > Wei::ZERO {
            state
                .debit(tx.sender, receipt.fee_paid)
                .expect("validated speculation: fee was covered");
        }
        if !receipt.is_success() {
            return;
        }
        let collection = tx.kind.collection();
        let price = receipt.price_before;
        match tx.kind {
            TxKind::Mint { token, .. } => {
                let creator = state
                    .collection_creator(collection)
                    .expect("validated speculation: collection exists");
                state
                    .debit(tx.sender, price)
                    .expect("validated speculation: price was covered");
                state.credit(creator, price);
                state
                    .nft_mint(collection, tx.sender, token)
                    .expect("validated speculation: collection exists")
                    .expect("validated speculation: mint constraints held");
            }
            TxKind::Transfer { token, to, .. } => {
                state
                    .transfer_balance(to, tx.sender, price)
                    .expect("validated speculation: buyer balance was covered");
                state
                    .nft_transfer(collection, tx.sender, to, token)
                    .expect("validated speculation: collection exists")
                    .expect("validated speculation: transfer constraints held");
            }
            TxKind::Burn { token, .. } => {
                state
                    .nft_burn(collection, tx.sender, token)
                    .expect("validated speculation: collection exists")
                    .expect("validated speculation: burn constraints held");
            }
            TxKind::Approve {
                token, operator, ..
            } => {
                state
                    .nft_approve(collection, tx.sender, operator, token)
                    .expect("validated speculation: collection exists")
                    .expect("validated speculation: approve constraints held");
            }
            TxKind::SetApprovalForAll {
                operator, approved, ..
            } => {
                state
                    .nft_set_approval_for_all(collection, tx.sender, operator, approved)
                    .expect("validated speculation: collection exists")
                    .expect("validated speculation: operator constraints held");
            }
        }
    }

    /// Executes a whole sequence in order, committing to `state`.
    pub fn execute_sequence(&self, state: &mut L2State, txs: &[NftTransaction]) -> Vec<Receipt> {
        txs.iter().map(|tx| self.execute(state, tx)).collect()
    }

    /// Speculatively executes a sequence on a fork of `state`, returning the
    /// receipts and the resulting state without touching the original.
    ///
    /// This is the primitive the GENTRANSEQ environment calls once per
    /// candidate ordering.
    pub fn simulate_sequence(
        &self,
        state: &L2State,
        txs: &[NftTransaction],
    ) -> (Vec<Receipt>, L2State) {
        let mut fork = state.clone();
        let receipts = self.execute_sequence(&mut fork, txs);
        (receipts, fork)
    }

    /// Whether `tx` would execute successfully as the next transaction on
    /// `state` (speculative single-transaction check).
    pub fn would_succeed(&self, state: &L2State, tx: &NftTransaction) -> bool {
        let mut fork = state.clone();
        self.execute(&mut fork, tx).is_success()
    }
}

/// Maps contract-level NFT errors to OVM revert reasons.
fn map_nft_error(e: NftError) -> TxStatus {
    let reason = match e {
        NftError::SoldOut => RevertReason::SoldOut,
        NftError::InvalidTokenId(_) | NftError::AlreadyMinted(_) => RevertReason::BadTokenId,
        NftError::NotMinted(_) => RevertReason::NoSuchToken,
        NftError::NotOwner { .. } | NftError::NotAuthorized { .. } => RevertReason::NotOwner,
        NftError::TransferToZero | NftError::SelfTransfer => RevertReason::BadTransfer,
        NftError::InvalidOperator { .. } => RevertReason::BadOperator,
    };
    TxStatus::Reverted(reason)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parole_nft::CollectionConfig;
    use parole_primitives::{Address, TokenId};

    fn addr(v: u64) -> Address {
        Address::from_low_u64(v)
    }

    /// The canonical case-study fixture: PT with 5 pre-minted tokens, the
    /// IFU holding 2 of them plus 1.5 ETH.
    fn case_study_state() -> (L2State, Address, Address) {
        let mut state = L2State::new();
        let pt = state.deploy_collection(CollectionConfig::parole_token());
        let ifu = addr(1000);
        state.credit(ifu, Wei::from_milli_eth(1500));
        let coll = state.collection_mut(pt).unwrap();
        coll.mint(ifu, TokenId::new(0)).unwrap();
        coll.mint(ifu, TokenId::new(1)).unwrap();
        coll.mint(addr(1), TokenId::new(2)).unwrap();
        coll.mint(addr(2), TokenId::new(3)).unwrap();
        coll.mint(addr(13), TokenId::new(4)).unwrap();
        (state, pt, ifu)
    }

    fn ovm() -> Ovm {
        Ovm::new()
    }

    #[test]
    fn case_study_initial_conditions() {
        let (state, pt, ifu) = case_study_state();
        assert_eq!(
            state.collection(pt).unwrap().price(),
            Wei::from_milli_eth(400)
        );
        assert_eq!(state.total_balance_of(ifu), Wei::from_milli_eth(2300));
    }

    #[test]
    fn mint_pays_pre_mint_price_and_moves_curve() {
        let (mut state, pt, ifu) = case_study_state();
        let tx = NftTransaction::simple(
            ifu,
            TxKind::Mint {
                collection: pt,
                token: TokenId::new(5),
            },
        );
        let r = ovm().execute(&mut state, &tx);
        assert!(r.is_success());
        assert_eq!(r.price_before, Wei::from_milli_eth(400));
        assert_eq!(r.price_after, Wei::from_milli_eth(500));
        // IFU paid 0.4; holds 3 tokens at 0.5 → total 1.1 + 1.5 = 2.6.
        assert_eq!(state.balance_of(ifu), Wei::from_milli_eth(1100));
        assert_eq!(state.total_balance_of(ifu), Wei::from_milli_eth(2600));
        // Creator received the primary-sale revenue.
        let creator = state.collection(pt).unwrap().config().creator;
        assert_eq!(state.balance_of(creator), Wei::from_milli_eth(400));
    }

    #[test]
    fn mint_reverts_when_broke() {
        let (mut state, pt, _) = case_study_state();
        let pauper = addr(77);
        let tx = NftTransaction::simple(
            pauper,
            TxKind::Mint {
                collection: pt,
                token: TokenId::new(5),
            },
        );
        let r = ovm().execute(&mut state, &tx);
        assert_eq!(r.revert_reason(), Some(RevertReason::InsufficientBalance));
        assert_eq!(state.collection(pt).unwrap().remaining_supply(), 5);
    }

    #[test]
    fn transfer_buyer_pays_seller() {
        let (mut state, pt, ifu) = case_study_state();
        let buyer = addr(11);
        state.credit(buyer, Wei::from_eth(1));
        let tx = NftTransaction::simple(
            ifu,
            TxKind::Transfer {
                collection: pt,
                token: TokenId::new(0),
                to: buyer,
            },
        );
        let r = ovm().execute(&mut state, &tx);
        assert!(r.is_success());
        // Price unchanged by transfer.
        assert_eq!(r.price_before, r.price_after);
        // Seller gained 0.4, buyer spent 0.4 and owns the token.
        assert_eq!(state.balance_of(ifu), Wei::from_milli_eth(1900));
        assert_eq!(state.balance_of(buyer), Wei::from_milli_eth(600));
        assert!(state
            .collection(pt)
            .unwrap()
            .is_owner(buyer, TokenId::new(0)));
    }

    #[test]
    fn transfer_reverts_when_buyer_broke() {
        let (mut state, pt, ifu) = case_study_state();
        let buyer = addr(11); // zero balance
        let tx = NftTransaction::simple(
            ifu,
            TxKind::Transfer {
                collection: pt,
                token: TokenId::new(0),
                to: buyer,
            },
        );
        let r = ovm().execute(&mut state, &tx);
        assert_eq!(r.revert_reason(), Some(RevertReason::InsufficientBalance));
        assert!(state.collection(pt).unwrap().is_owner(ifu, TokenId::new(0)));
    }

    #[test]
    fn transfer_reverts_for_non_owner() {
        let (mut state, pt, _) = case_study_state();
        let buyer = addr(11);
        state.credit(buyer, Wei::from_eth(1));
        let tx = NftTransaction::simple(
            addr(55),
            TxKind::Transfer {
                collection: pt,
                token: TokenId::new(0),
                to: buyer,
            },
        );
        assert_eq!(
            ovm().execute(&mut state, &tx).revert_reason(),
            Some(RevertReason::NotOwner)
        );
    }

    #[test]
    fn burn_lowers_price_for_everyone() {
        let (mut state, pt, ifu) = case_study_state();
        let tx = NftTransaction::simple(
            addr(2),
            TxKind::Burn {
                collection: pt,
                token: TokenId::new(3),
            },
        );
        let r = ovm().execute(&mut state, &tx);
        assert!(r.is_success());
        assert_eq!(r.price_after, Wei::from_milli_eth(330));
        // IFU's 2 tokens revalue at 0.33: total = 1.5 + 0.66 = 2.16.
        assert_eq!(state.total_balance_of(ifu), Wei::from_milli_eth(2160));
    }

    #[test]
    fn reverted_tx_preserves_state_root() {
        let (mut state, pt, _) = case_study_state();
        // Nonce accounting does change, so compare collection state + balances
        // via a fresh execution on a fork.
        let tx = NftTransaction::simple(
            addr(55),
            TxKind::Burn {
                collection: pt,
                token: TokenId::new(0),
            },
        );
        let balances_before: Vec<_> = (0..20).map(|i| state.balance_of(addr(i))).collect();
        let supply_before = state.collection(pt).unwrap().remaining_supply();
        let r = ovm().execute(&mut state, &tx);
        assert!(!r.is_success());
        let balances_after: Vec<_> = (0..20).map(|i| state.balance_of(addr(i))).collect();
        assert_eq!(balances_before, balances_after);
        assert_eq!(
            state.collection(pt).unwrap().remaining_supply(),
            supply_before
        );
    }

    #[test]
    fn missing_collection_reverts() {
        let mut state = L2State::new();
        let tx = NftTransaction::simple(
            addr(1),
            TxKind::Mint {
                collection: addr(9999),
                token: TokenId::new(0),
            },
        );
        assert_eq!(
            ovm().execute(&mut state, &tx).revert_reason(),
            Some(RevertReason::NoSuchCollection)
        );
    }

    #[test]
    fn signature_enforcement() {
        use parole_crypto::Wallet;
        use parole_primitives::{FeeBundle, TxNonce};

        let mut state = L2State::new();
        let pt = state.deploy_collection(CollectionConfig::parole_token());
        let wallet = Wallet::from_seed(5);
        state.credit(wallet.address(), Wei::from_eth(1));

        let good = NftTransaction::signed(
            &wallet,
            TxKind::Mint {
                collection: pt,
                token: TokenId::new(0),
            },
            FeeBundle::from_gwei(30, 2),
            TxNonce::new(0),
        );
        assert!(ovm().execute(&mut state, &good).is_success());

        // Forge: claim a different sender on signed material.
        let mut forged = good;
        forged.sender = addr(9);
        forged.kind = TxKind::Mint {
            collection: pt,
            token: TokenId::new(1),
        };
        assert_eq!(
            ovm().execute(&mut state, &forged).revert_reason(),
            Some(RevertReason::BadSignature)
        );
    }

    #[test]
    fn fee_charging_mode() {
        let config = OvmConfig {
            charge_fees: true,
            base_fee: Wei::from_gwei(1),
            ..Default::default()
        };
        let ovm = Ovm::with_config(config);

        let mut state = L2State::new();
        let pt = state.deploy_collection(CollectionConfig::parole_token());
        state.credit(addr(1), Wei::from_eth(1));
        let tx = NftTransaction::simple(
            addr(1),
            TxKind::Mint {
                collection: pt,
                token: TokenId::new(0),
            },
        );
        let r = ovm.execute(&mut state, &tx);
        assert!(r.is_success());
        assert!(r.fee_paid > Wei::ZERO);
        // Balance dropped by price + fee.
        assert_eq!(
            state.balance_of(addr(1)),
            Wei::from_eth(1) - Wei::from_milli_eth(200) - r.fee_paid
        );

        // A sender with nothing can't even pay fees.
        let broke_tx = NftTransaction::simple(
            addr(2),
            TxKind::Mint {
                collection: pt,
                token: TokenId::new(1),
            },
        );
        assert_eq!(
            ovm.execute(&mut state, &broke_tx).revert_reason(),
            Some(RevertReason::CannotPayFees)
        );
    }

    /// Regression for the reason-dependent nonce skip: `BadSignature` and
    /// `CannotPayFees` used to leave the nonce alone while every other
    /// revert consumed one. All paths must bump exactly once.
    #[test]
    fn nonce_bump_is_uniform_across_all_revert_paths() {
        use parole_crypto::Wallet;
        use parole_primitives::{FeeBundle, TxNonce};

        let nonce_of =
            |state: &L2State, who: Address| state.account(who).map_or(0, |a| a.nonce.value());

        // BadSignature path.
        let mut state = L2State::new();
        let pt = state.deploy_collection(CollectionConfig::parole_token());
        let wallet = Wallet::from_seed(9);
        state.credit(wallet.address(), Wei::from_eth(1));
        let good = NftTransaction::signed(
            &wallet,
            TxKind::Mint {
                collection: pt,
                token: TokenId::new(0),
            },
            FeeBundle::from_gwei(30, 2),
            TxNonce::new(0),
        );
        let mut forged = good;
        forged.sender = addr(9);
        let r = ovm().execute(&mut state, &forged);
        assert_eq!(r.revert_reason(), Some(RevertReason::BadSignature));
        assert_eq!(nonce_of(&state, addr(9)), 1, "BadSignature must bump");

        // CannotPayFees path.
        let fee_ovm = Ovm::with_config(OvmConfig {
            charge_fees: true,
            ..Default::default()
        });
        let broke = addr(42);
        let tx = NftTransaction::simple(
            broke,
            TxKind::Mint {
                collection: pt,
                token: TokenId::new(0),
            },
        );
        let r = fee_ovm.execute(&mut state, &tx);
        assert_eq!(r.revert_reason(), Some(RevertReason::CannotPayFees));
        assert_eq!(r.fee_paid, Wei::ZERO, "no debit happened, none reported");
        assert_eq!(nonce_of(&state, broke), 1, "CannotPayFees must bump");

        // Ordinary revert and success paths bump exactly once too.
        let (mut state, pt, ifu) = case_study_state();
        let bad = NftTransaction::simple(
            addr(55),
            TxKind::Burn {
                collection: pt,
                token: TokenId::new(0),
            },
        );
        ovm().execute(&mut state, &bad);
        assert_eq!(nonce_of(&state, addr(55)), 1);
        let mint = NftTransaction::simple(
            ifu,
            TxKind::Mint {
                collection: pt,
                token: TokenId::new(5),
            },
        );
        ovm().execute(&mut state, &mint);
        assert_eq!(nonce_of(&state, ifu), 1);
    }

    #[test]
    fn simulate_sequence_leaves_original_untouched() {
        let (state, pt, ifu) = case_study_state();
        let txs = vec![
            NftTransaction::simple(
                ifu,
                TxKind::Mint {
                    collection: pt,
                    token: TokenId::new(5),
                },
            ),
            NftTransaction::simple(
                addr(2),
                TxKind::Burn {
                    collection: pt,
                    token: TokenId::new(3),
                },
            ),
        ];
        let root_before = state.state_root();
        let (receipts, fork) = ovm().simulate_sequence(&state, &txs);
        assert!(receipts.iter().all(Receipt::is_success));
        assert_eq!(state.state_root(), root_before);
        assert_ne!(fork.state_root(), root_before);
    }

    #[test]
    fn would_succeed_is_side_effect_free() {
        let (state, pt, ifu) = case_study_state();
        let tx = NftTransaction::simple(
            ifu,
            TxKind::Mint {
                collection: pt,
                token: TokenId::new(5),
            },
        );
        assert!(ovm().would_succeed(&state, &tx));
        let bad = NftTransaction::simple(
            addr(77),
            TxKind::Mint {
                collection: pt,
                token: TokenId::new(5),
            },
        );
        assert!(!ovm().would_succeed(&state, &bad));
    }

    #[test]
    fn sequence_order_changes_outcome() {
        // The essence of the attack: the same set of transactions yields
        // different IFU balances in different orders.
        let (state, pt, ifu) = case_study_state();
        state.collection(pt).unwrap();
        let mint = NftTransaction::simple(
            ifu,
            TxKind::Mint {
                collection: pt,
                token: TokenId::new(5),
            },
        );
        let burn = NftTransaction::simple(
            addr(2),
            TxKind::Burn {
                collection: pt,
                token: TokenId::new(3),
            },
        );

        let (_, after_mint_first) = ovm().simulate_sequence(&state, &[mint, burn]);
        let (_, after_burn_first) = ovm().simulate_sequence(&state, &[burn, mint]);

        // Burn-first lets the IFU mint at 0.33 instead of 0.4.
        assert!(
            after_burn_first.total_balance_of(ifu) > after_mint_first.total_balance_of(ifu),
            "burn-first should be strictly better for the IFU"
        );
    }
}
