//! The OVM gas schedule.

use crate::TxKind;
use parole_primitives::Gas;
use serde::{Deserialize, Serialize};

/// Per-operation gas costs and limits.
///
/// Calibrated so that [`GasSchedule::paper_calibrated`] reproduces the gas
/// utilisation shape of the paper's Table III (PT transactions on OpenSea via
/// Optimism Goerli): minting is the heaviest operation and runs closest to
/// its limit (90.91%), while transfer (69.84%) and burn (69.82%) sit close
/// together at lower utilisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GasSchedule {
    /// Gas consumed by a mint.
    pub mint_gas: Gas,
    /// Gas limit a wallet attaches to a mint.
    pub mint_limit: Gas,
    /// Gas consumed by a transfer.
    pub transfer_gas: Gas,
    /// Gas limit a wallet attaches to a transfer.
    pub transfer_limit: Gas,
    /// Gas consumed by a burn.
    pub burn_gas: Gas,
    /// Gas limit a wallet attaches to a burn.
    pub burn_limit: Gas,
    /// Gas consumed by a per-token approve.
    pub approve_gas: Gas,
    /// Gas limit a wallet attaches to a per-token approve.
    pub approve_limit: Gas,
    /// Gas consumed by a blanket operator approval (`setApprovalForAll`).
    pub operator_approval_gas: Gas,
    /// Gas limit a wallet attaches to a blanket operator approval.
    pub operator_approval_limit: Gas,
}

impl GasSchedule {
    /// The schedule calibrated to Table III's utilisation percentages.
    pub fn paper_calibrated() -> Self {
        GasSchedule {
            // 100_001 / 110_000 = 90.91%
            mint_gas: Gas::new(100_001),
            mint_limit: Gas::new(110_000),
            // 48_888 / 70_000 = 69.84%
            transfer_gas: Gas::new(48_888),
            transfer_limit: Gas::new(70_000),
            // 48_874 / 70_000 = 69.82%
            burn_gas: Gas::new(48_874),
            burn_limit: Gas::new(70_000),
            // Approvals are cheaper than moves: one storage slot, no value
            // transfer. Mainnet ERC-721 approve ~48.5k, setApprovalForAll
            // ~46k against the same 70k wallet limit.
            approve_gas: Gas::new(48_500),
            approve_limit: Gas::new(70_000),
            operator_approval_gas: Gas::new(46_000),
            operator_approval_limit: Gas::new(70_000),
        }
    }

    /// A flat schedule where every operation costs the same — used by
    /// ablation benches to isolate fee effects.
    pub fn flat(gas: u64) -> Self {
        GasSchedule {
            mint_gas: Gas::new(gas),
            mint_limit: Gas::new(gas * 2),
            transfer_gas: Gas::new(gas),
            transfer_limit: Gas::new(gas * 2),
            burn_gas: Gas::new(gas),
            burn_limit: Gas::new(gas * 2),
            approve_gas: Gas::new(gas),
            approve_limit: Gas::new(gas * 2),
            operator_approval_gas: Gas::new(gas),
            operator_approval_limit: Gas::new(gas * 2),
        }
    }

    /// Gas consumed by an operation of the given kind.
    pub fn gas_for(&self, kind: &TxKind) -> Gas {
        match kind {
            TxKind::Mint { .. } => self.mint_gas,
            TxKind::Transfer { .. } => self.transfer_gas,
            TxKind::Burn { .. } => self.burn_gas,
            TxKind::Approve { .. } => self.approve_gas,
            TxKind::SetApprovalForAll { .. } => self.operator_approval_gas,
        }
    }

    /// Gas limit attached to an operation of the given kind.
    pub fn limit_for(&self, kind: &TxKind) -> Gas {
        match kind {
            TxKind::Mint { .. } => self.mint_limit,
            TxKind::Transfer { .. } => self.transfer_limit,
            TxKind::Burn { .. } => self.burn_limit,
            TxKind::Approve { .. } => self.approve_limit,
            TxKind::SetApprovalForAll { .. } => self.operator_approval_limit,
        }
    }

    /// Utilisation percentage for the given kind (Table III's "gas usage"
    /// column).
    pub fn utilisation_for(&self, kind: &TxKind) -> f64 {
        self.gas_for(kind).utilisation_pct(self.limit_for(kind))
    }
}

impl Default for GasSchedule {
    fn default() -> Self {
        GasSchedule::paper_calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parole_primitives::{Address, TokenId};

    fn kinds() -> [TxKind; 5] {
        let c = Address::from_low_u64(1);
        let t = TokenId::new(0);
        [
            TxKind::Mint {
                collection: c,
                token: t,
            },
            TxKind::Transfer {
                collection: c,
                token: t,
                to: Address::from_low_u64(2),
            },
            TxKind::Burn {
                collection: c,
                token: t,
            },
            TxKind::Approve {
                collection: c,
                token: t,
                operator: Address::from_low_u64(9),
            },
            TxKind::SetApprovalForAll {
                collection: c,
                operator: Address::from_low_u64(9),
                approved: true,
            },
        ]
    }

    #[test]
    fn paper_utilisation_matches_table3() {
        let sched = GasSchedule::paper_calibrated();
        let [mint, transfer, burn, _, _] = kinds();
        assert!((sched.utilisation_for(&mint) - 90.91).abs() < 0.01);
        assert!((sched.utilisation_for(&transfer) - 69.84).abs() < 0.01);
        assert!((sched.utilisation_for(&burn) - 69.82).abs() < 0.01);
    }

    #[test]
    fn mint_is_the_heaviest_operation() {
        let sched = GasSchedule::paper_calibrated();
        let [mint, transfer, burn, approve, sfa] = kinds();
        assert!(sched.gas_for(&mint) > sched.gas_for(&transfer));
        assert!(sched.gas_for(&mint) > sched.gas_for(&burn));
        // Approvals undercut every move; the blanket grant is cheapest.
        assert!(sched.gas_for(&approve) < sched.gas_for(&burn));
        assert!(sched.gas_for(&sfa) < sched.gas_for(&approve));
    }

    #[test]
    fn flat_schedule_is_uniform() {
        let sched = GasSchedule::flat(1000);
        let [mint, transfer, burn, approve, sfa] = kinds();
        assert_eq!(sched.gas_for(&mint), sched.gas_for(&transfer));
        assert_eq!(sched.gas_for(&burn), Gas::new(1000));
        assert_eq!(sched.gas_for(&approve), Gas::new(1000));
        assert_eq!(sched.gas_for(&sfa), Gas::new(1000));
        assert!((sched.utilisation_for(&mint) - 50.0).abs() < f64::EPSILON);
    }
}
