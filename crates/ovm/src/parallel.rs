//! Optimistic-concurrency parallel block execution (Block-STM-style OCC).
//!
//! The serial [`Ovm::execute_sequence`] path pays per transaction for
//! keccak hashing, ECDSA verification and constraint evaluation, all on one
//! core. This module runs the same block on a bounded pool of workers
//! ([`parole_par::parallel_map`]) and commits a result that is **bit
//! identical to the serial path at any thread count** — receipts, gas and
//! fee accounting, and the resulting state root.
//!
//! # How it works
//!
//! 1. **Speculate.** Transactions are dealt round-robin to the workers.
//!    Each worker forks the block-base state once (`L2State::fork`, sharing
//!    the commitment cache copy-on-write), arms undo-log journaling and
//!    read tracking, and runs its transactions *each against the pristine
//!    base*: checkpoint → execute → collect the receipt, the read set
//!    (recorded [`RecordKey`]s) and the write set (journal entries since
//!    the checkpoint) → revert. Speculation therefore never observes
//!    another transaction's effects, which is what makes its outcome
//!    independent of the worker partition and of scheduling.
//! 2. **Validate & commit, in transaction-index order.** A speculative run
//!    of transaction *i* is valid iff none of the records it read *or*
//!    wrote was written by a transaction committed before it
//!    (`key_sets_conflict`; write-write overlaps matter because nonces and
//!    balances are read-modify-write from base values). Valid runs commit
//!    through [`Ovm::apply_validated`] — the cheap replay that skips
//!    hashing, signature checks and constraint evaluation. Invalidated
//!    runs are aborted and re-executed serially against the committed
//!    state, which by induction equals the serial state at that slot.
//!
//! The conflict domains are the commitment tree's leaves (account records,
//! collection headers, token leaves — see [`RecordKey`]). Every
//! transaction reads its collection's header (the bonding-curve price it
//! pays), and mints/burns write it (supply moves), so mint/burn traffic on
//! a hot collection degenerates toward serial — correctly so, since the
//! price each transaction pays depends on its predecessors. Transfer and
//! approval traffic on disjoint tokens and accounts commits clean.
//!
//! Determinism note: the serial fallback for `threads == 1` still runs the
//! full speculate/validate/commit pipeline (inline, no worker threads), so
//! per-transaction telemetry totals are identical at 1, 2 or N threads —
//! the cross-thread-count determinism contract the telemetry layer pins.

use crate::{NftTransaction, Ovm, Receipt, TxKind};
use parole_par::parallel_map;
use parole_state::{key_sets_conflict, L2State, RecordKey};
use serde::Serialize;
use std::collections::BTreeSet;

/// One transaction's speculative outcome: its receipt plus the conflict
/// sets the validator needs.
#[derive(Debug)]
struct Speculation {
    receipt: Receipt,
    reads: BTreeSet<RecordKey>,
    writes: BTreeSet<RecordKey>,
}

/// Counters describing one [`ParallelExecutor::execute_block`] run.
///
/// All counts are deterministic functions of the base state and the
/// transaction order — never of the thread count (the determinism tests
/// pin this).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct ParallelStats {
    /// Transactions in the block.
    pub txs: u64,
    /// Worker threads the speculation phase ran on.
    pub workers: u64,
    /// Speculative executions performed (one per transaction).
    pub speculations: u64,
    /// Speculations that validated and committed through the cheap path.
    pub committed_clean: u64,
    /// Speculations invalidated by a conflict with an earlier commit.
    pub conflicts: u64,
    /// Serial re-executions of conflicted transactions (current policy:
    /// exactly one per conflict, performed at commit time).
    pub reexecutions: u64,
    /// Maximal runs of consecutive clean commits ("commit waves").
    pub waves: u64,
    /// Width of the widest commit wave.
    pub max_wave_width: u64,
}

/// The optimistic-concurrency block executor.
///
/// Stateless apart from configuration, like [`Ovm`] itself: every
/// [`ParallelExecutor::execute_block`] call takes the state it commits to.
#[derive(Debug, Clone)]
pub struct ParallelExecutor {
    ovm: Ovm,
    threads: usize,
}

impl ParallelExecutor {
    /// An executor over `ovm` with the pool size taken from the
    /// `PAROLE_THREADS` environment variable (`0`/unset = the machine's
    /// available parallelism).
    pub fn new(ovm: Ovm) -> Self {
        Self::with_threads(ovm, parole_par::threads_from_env())
    }

    /// An executor with an explicit pool size (`0` = auto).
    pub fn with_threads(ovm: Ovm, threads: usize) -> Self {
        ParallelExecutor { ovm, threads }
    }

    /// The wrapped OVM.
    pub fn ovm(&self) -> &Ovm {
        &self.ovm
    }

    /// The configured pool size (`0` = auto).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Executes `txs` as one block against `state`, in parallel, with
    /// output bit-identical to `self.ovm().execute_sequence(state, txs)`.
    pub fn execute_block(
        &self,
        state: &mut L2State,
        txs: &[NftTransaction],
    ) -> (Vec<Receipt>, ParallelStats) {
        let _span = parole_telemetry::span("parallel.execute_block");
        parole_telemetry::counter("parallel.blocks", 1);
        let mut stats = ParallelStats {
            txs: txs.len() as u64,
            workers: 1,
            ..ParallelStats::default()
        };
        if txs.is_empty() {
            return (Vec::new(), stats);
        }

        // Phase 1: speculation against the immutable block base.
        let workers = effective_workers(self.threads, txs.len());
        stats.workers = workers as u64;
        stats.speculations = txs.len() as u64;
        parole_telemetry::counter("parallel.speculations", txs.len() as u64);
        let specs = self.speculate(state, txs, workers);

        // Phase 2: validation and commit in transaction-index order.
        let mut receipts = Vec::with_capacity(txs.len());
        let mut committed_writes: BTreeSet<RecordKey> = BTreeSet::new();
        let mut wave = 0u64;
        for (tx, spec) in txs.iter().zip(specs) {
            let conflict = key_sets_conflict(&spec.reads, &committed_writes)
                || key_sets_conflict(&spec.writes, &committed_writes);
            if conflict {
                stats.close_wave(&mut wave);
                stats.conflicts += 1;
                stats.reexecutions += 1;
                parole_telemetry::counter("parallel.conflicts", 1);
                parole_telemetry::counter("parallel.reexecutions", 1);
                // Abort: the speculative receipt is discarded and the
                // transaction re-executes serially against the committed
                // state (== the serial state at this slot).
                let receipt = self.ovm.execute(state, tx);
                committed_writes.append(&mut serial_write_set(state, tx, &receipt));
                receipts.push(receipt);
            } else {
                self.ovm.apply_validated(state, tx, &spec.receipt);
                stats.committed_clean += 1;
                wave += 1;
                let mut writes = spec.writes;
                committed_writes.append(&mut writes);
                receipts.push(spec.receipt);
            }
        }
        stats.close_wave(&mut wave);
        parole_telemetry::counter("parallel.txs_committed_clean", stats.committed_clean);

        (receipts, stats)
    }

    /// Runs every transaction against a fork of `base` on `workers` scoped
    /// threads, returning speculations in transaction order.
    ///
    /// Each worker forks once and amortizes the clone across its share of
    /// the block via checkpoint/revert — O(ops) per transaction instead of
    /// O(world). Which worker runs which transaction cannot influence the
    /// result: every run starts from the identical base image.
    fn speculate(
        &self,
        base: &L2State,
        txs: &[NftTransaction],
        workers: usize,
    ) -> Vec<Speculation> {
        let mut chunks: Vec<Vec<(usize, NftTransaction)>> = vec![Vec::new(); workers];
        for (i, tx) in txs.iter().enumerate() {
            chunks[i % workers].push((i, *tx));
        }

        let per_chunk: Vec<Vec<(usize, Speculation)>> =
            parallel_map(chunks, workers, |chunk: Vec<(usize, NftTransaction)>| {
                let mut fork = base.fork();
                fork.begin_recording();
                fork.begin_read_tracking();
                let cp = fork.checkpoint();
                chunk
                    .into_iter()
                    .map(|(i, tx)| {
                        let receipt = self.ovm.execute(&mut fork, &tx);
                        let mut writes = fork.touched_since(cp);
                        if receipt.is_success() {
                            add_header_write(&mut writes, &tx);
                        }
                        let reads = fork.take_read_set();
                        fork.revert_to(cp);
                        (
                            i,
                            Speculation {
                                receipt,
                                reads,
                                writes,
                            },
                        )
                    })
                    .collect()
            });

        let mut slots: Vec<Option<Speculation>> = txs.iter().map(|_| None).collect();
        for (i, spec) in per_chunk.into_iter().flatten() {
            slots[i] = Some(spec);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every tx speculated exactly once"))
            .collect()
    }
}

impl ParallelStats {
    /// Ends the current clean-commit wave, recording its width.
    fn close_wave(&mut self, wave: &mut u64) {
        if *wave > 0 {
            self.waves += 1;
            self.max_wave_width = self.max_wave_width.max(*wave);
            parole_telemetry::observe("parallel.commit_wave_width", *wave);
            *wave = 0;
        }
    }
}

/// Pool size for a block: explicit `threads` (0 = machine parallelism),
/// never more than the transaction count, never less than one.
fn effective_workers(threads: usize, txs: usize) -> usize {
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        threads
    };
    threads.min(txs).max(1)
}

/// The undo log's per-token entries do not say whether the operation moved
/// the supply counters; the transaction kind does. Executed mints and burns
/// reprice the collection, so their write set gains the header key.
fn add_header_write(writes: &mut BTreeSet<RecordKey>, tx: &NftTransaction) {
    match tx.kind {
        TxKind::Mint { collection, .. } | TxKind::Burn { collection, .. } => {
            writes.insert(RecordKey::Coll(collection));
        }
        // Transfers and approvals never move the supply counters. (Approvals
        // do move the header's approval/operator counts, but — like a
        // transfer clearing a per-token approval — no execution path *reads*
        // those counts, so they stay outside the header conflict domain.)
        TxKind::Transfer { .. } | TxKind::Approve { .. } | TxKind::SetApprovalForAll { .. } => {}
    }
}

/// Write set of a transaction just executed *serially*, derived statically
/// from its kind and receipt (the committed state is not journaled, so the
/// undo log cannot supply it). This is a conservative superset of the
/// actual mutations — exactly the keys the serial execution paths touch.
fn serial_write_set(
    state: &L2State,
    tx: &NftTransaction,
    receipt: &Receipt,
) -> BTreeSet<RecordKey> {
    let mut writes = BTreeSet::new();
    // Uniform nonce rule (+ fee burn): the sender record always moves.
    writes.insert(RecordKey::Acct(tx.sender));
    if !receipt.is_success() {
        return writes;
    }
    let collection = tx.kind.collection();
    match tx.kind {
        TxKind::Mint { token, .. } => {
            if let Some(creator) = state.collection_creator(collection) {
                writes.insert(RecordKey::Acct(creator));
            }
            writes.insert(RecordKey::Token(collection, token));
            writes.insert(RecordKey::Coll(collection));
        }
        TxKind::Transfer { token, to, .. } => {
            writes.insert(RecordKey::Acct(to));
            writes.insert(RecordKey::Token(collection, token));
        }
        TxKind::Burn { token, .. } => {
            writes.insert(RecordKey::Token(collection, token));
            writes.insert(RecordKey::Coll(collection));
        }
        TxKind::Approve { token, .. } => {
            writes.insert(RecordKey::Token(collection, token));
        }
        TxKind::SetApprovalForAll { .. } => {
            writes.insert(RecordKey::Oper(collection, tx.sender));
        }
    }
    writes
}

#[cfg(test)]
mod tests {
    use super::*;
    use parole_nft::CollectionConfig;
    use parole_primitives::{Address, TokenId, Wei};

    fn addr(v: u64) -> Address {
        Address::from_low_u64(v)
    }

    /// A funded world with one collection and a few minted tokens.
    fn base_state() -> (L2State, Address) {
        let mut state = L2State::new();
        let pt = state.deploy_collection(CollectionConfig::limited_edition("PX", 64, 200));
        for u in 1..=16u64 {
            state.credit(addr(u), Wei::from_eth(10));
        }
        for t in 0..8u64 {
            state
                .nft_mint(pt, addr(t + 1), TokenId::new(t))
                .unwrap()
                .unwrap();
        }
        (state, pt)
    }

    fn transfer(sender: u64, token: u64, to: u64, pt: Address) -> NftTransaction {
        NftTransaction::simple(
            addr(sender),
            TxKind::Transfer {
                collection: pt,
                token: TokenId::new(token),
                to: addr(to),
            },
        )
    }

    #[test]
    fn disjoint_transfers_commit_clean() {
        let (base, pt) = base_state();
        let txs: Vec<_> = (0..4u64).map(|t| transfer(t + 1, t, t + 9, pt)).collect();

        let mut serial = base.clone();
        let want = Ovm::new().execute_sequence(&mut serial, &txs);

        let mut state = base.clone();
        let exec = ParallelExecutor::with_threads(Ovm::new(), 2);
        let (got, stats) = exec.execute_block(&mut state, &txs);

        assert_eq!(got, want);
        assert_eq!(state.state_root(), serial.state_root());
        assert_eq!(stats.committed_clean, 4);
        assert_eq!(stats.conflicts, 0);
        assert_eq!(stats.waves, 1);
        assert_eq!(stats.max_wave_width, 4);
    }

    #[test]
    fn same_sender_txs_conflict_and_still_match_serial() {
        let (base, pt) = base_state();
        // Same sender: the nonce record is write-write shared, so every
        // later tx must abort and re-execute.
        let txs = vec![transfer(1, 0, 9, pt), transfer(1, 7, 10, pt)];

        let mut serial = base.clone();
        let want = Ovm::new().execute_sequence(&mut serial, &txs);

        let mut state = base.clone();
        let (got, stats) =
            ParallelExecutor::with_threads(Ovm::new(), 2).execute_block(&mut state, &txs);

        assert_eq!(got, want);
        assert_eq!(state.state_root(), serial.state_root());
        assert_eq!(stats.conflicts, 1);
    }

    #[test]
    fn mint_repricing_conflicts_with_later_transfer() {
        let (base, pt) = base_state();
        let mint = NftTransaction::simple(
            addr(3),
            TxKind::Mint {
                collection: pt,
                token: TokenId::new(20),
            },
        );
        // The transfer pays the post-mint price serially; its speculation
        // observed the pre-mint price and must be invalidated.
        let txs = vec![mint, transfer(1, 0, 9, pt)];

        let mut serial = base.clone();
        let want = Ovm::new().execute_sequence(&mut serial, &txs);

        let mut state = base.clone();
        let (got, stats) =
            ParallelExecutor::with_threads(Ovm::new(), 2).execute_block(&mut state, &txs);

        assert_eq!(got, want);
        assert_eq!(state.state_root(), serial.state_root());
        assert_eq!(
            stats.conflicts, 1,
            "price read must conflict with supply write"
        );
    }

    #[test]
    fn empty_block_is_a_noop() {
        let (base, _) = base_state();
        let mut state = base.clone();
        let (receipts, stats) =
            ParallelExecutor::with_threads(Ovm::new(), 4).execute_block(&mut state, &[]);
        assert!(receipts.is_empty());
        assert_eq!(stats.txs, 0);
        assert_eq!(state.state_root(), base.state_root());
    }
}
