//! Prefix-cached incremental sequence execution.
//!
//! The GENTRANSEQ reorder search evaluates thousands of candidate orderings
//! of the *same* transaction window, and consecutive candidates differ only
//! by a swap of two positions: a swap of positions `(i, j)` leaves execution
//! identical up to `min(i, j)`. [`PrefixExecutor`] exploits that by keeping
//! one journaled working state plus checkpoints taken at a configurable
//! stride; the next evaluation reverts to the deepest checkpoint at or
//! before the divergence point and replays only the suffix, instead of
//! cloning the world and replaying the whole window from scratch.
//!
//! Receipts and the post-state are bit-identical to
//! [`Ovm::simulate_sequence`] — the equivalence proptests in `parole`
//! (`tests/prefix_equivalence.rs`) pin that down.

use crate::{NftTransaction, Ovm, Receipt};
use parole_state::{Checkpoint, L2State};

/// Cumulative work counters, used by the benchmarks to report how much
/// replay the cache avoided.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefixStats {
    /// Sequences evaluated.
    pub evaluations: u64,
    /// Transaction slots actually executed.
    pub slots_executed: u64,
    /// Slots skipped because they were still valid from the previous
    /// evaluation (naive execution would have replayed them).
    pub slots_skipped: u64,
}

/// Incremental executor for repeated evaluations of reorderings of one
/// transaction window against one base state.
///
/// The working state records an undo journal (see `parole-state`); marks
/// pair a slot index with the journal [`Checkpoint`] taken *before* that
/// slot executed, so reverting to a mark yields exactly the state after
/// slots `0..slot`.
#[derive(Debug)]
pub struct PrefixExecutor {
    ovm: Ovm,
    /// The journaled working state; always positioned at the end of the
    /// most recently executed sequence.
    work: L2State,
    /// The previously executed sequence.
    prev: Vec<NftTransaction>,
    /// Receipts of `prev`, slot for slot.
    receipts: Vec<Receipt>,
    /// `(slot, checkpoint-before-slot)` pairs in increasing slot order. The
    /// first mark is always `(0, base)`; the last one sits at the end of
    /// `prev` so re-evaluating an identical sequence replays nothing.
    marks: Vec<(usize, Checkpoint)>,
    /// Checkpoints are taken every `stride` slots during replay (1 = every
    /// slot: maximum reuse, maximum mark bookkeeping).
    stride: usize,
    stats: PrefixStats,
}

impl PrefixExecutor {
    /// Builds an executor over its own journaled copy of `base`.
    ///
    /// `stride` of 0 is treated as 1.
    pub fn new(ovm: Ovm, base: &L2State, stride: usize) -> Self {
        let mut work = base.clone();
        work.begin_recording();
        let root = work.checkpoint();
        PrefixExecutor {
            ovm,
            work,
            prev: Vec::new(),
            receipts: Vec::new(),
            marks: vec![(0, root)],
            stride: stride.max(1),
            stats: PrefixStats::default(),
        }
    }

    /// Executes `seq`, reusing the longest still-valid prefix of the
    /// previous evaluation, and returns the receipts (slot for slot) and the
    /// post-execution state. Equivalent to
    /// `Ovm::simulate_sequence(base, seq)` but with only the diverged
    /// suffix replayed.
    pub fn execute(&mut self, seq: &[NftTransaction]) -> (&[Receipt], &L2State) {
        let _span = parole_telemetry::span("ovm.prefix_execute");
        // Divergence point: the longest common prefix with the previous
        // sequence (`NftTransaction` is `Copy + PartialEq`, so this is a
        // plain field comparison, not a hash).
        let common = self
            .prev
            .iter()
            .zip(seq)
            .take_while(|(a, b)| *a == *b)
            .count();

        // Deepest mark at or before the divergence point.
        let keep = self
            .marks
            .iter()
            .rposition(|&(slot, _)| slot <= common)
            .expect("mark (0, base) always present");
        let (resume, cp) = self.marks[keep];
        // A "hit" means some prefix survived: the search paid for replaying
        // strictly less than the full window.
        if resume > 0 {
            parole_telemetry::counter("ovm.prefix_checkpoint_hits", 1);
        } else {
            parole_telemetry::counter("ovm.prefix_checkpoint_misses", 1);
        }
        parole_telemetry::observe("ovm.prefix_replay_len", (seq.len() - resume) as u64);
        self.work.revert_to(cp);
        self.marks.truncate(keep + 1);
        self.receipts.truncate(resume);

        // Replay the suffix, dropping a mark every `stride` slots.
        for (slot, tx) in seq.iter().enumerate().skip(resume) {
            let last_marked = self.marks.last().expect("non-empty").0;
            if slot > last_marked && (slot - last_marked) >= self.stride {
                self.marks.push((slot, self.work.checkpoint()));
            }
            self.receipts.push(self.ovm.execute(&mut self.work, tx));
        }
        // Terminal mark: an identical re-evaluation replays nothing.
        if self.marks.last().expect("non-empty").0 < seq.len() {
            self.marks.push((seq.len(), self.work.checkpoint()));
        }

        self.prev.clear();
        self.prev.extend_from_slice(seq);
        self.stats.evaluations += 1;
        self.stats.slots_executed += (seq.len() - resume) as u64;
        self.stats.slots_skipped += resume as u64;
        parole_telemetry::counter("ovm.prefix_evaluations", 1);
        parole_telemetry::counter("ovm.prefix_slots_executed", (seq.len() - resume) as u64);
        parole_telemetry::counter("ovm.prefix_slots_skipped", resume as u64);
        (&self.receipts, &self.work)
    }

    /// Cumulative work counters since construction.
    pub fn stats(&self) -> PrefixStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TxKind;
    use parole_nft::CollectionConfig;
    use parole_primitives::{Address, TokenId, Wei};

    fn addr(v: u64) -> Address {
        Address::from_low_u64(v)
    }

    /// Case-study-like fixture plus a window mixing mints, transfers, burns
    /// and guaranteed reverts.
    fn fixture() -> (L2State, Vec<NftTransaction>) {
        let mut state = L2State::new();
        let pt = state.deploy_collection(CollectionConfig::parole_token());
        for u in 1..=4 {
            state.credit(addr(u), Wei::from_eth(2));
        }
        let coll = state.collection_mut(pt).unwrap();
        for i in 0..4 {
            coll.mint(addr(i + 1), TokenId::new(i)).unwrap();
        }
        let window = vec![
            NftTransaction::simple(
                addr(1),
                TxKind::Mint {
                    collection: pt,
                    token: TokenId::new(4),
                },
            ),
            NftTransaction::simple(
                addr(2),
                TxKind::Transfer {
                    collection: pt,
                    token: TokenId::new(1),
                    to: addr(3),
                },
            ),
            NftTransaction::simple(
                addr(3),
                TxKind::Burn {
                    collection: pt,
                    token: TokenId::new(2),
                },
            ),
            // Reverts: not the owner.
            NftTransaction::simple(
                addr(4),
                TxKind::Burn {
                    collection: pt,
                    token: TokenId::new(0),
                },
            ),
            NftTransaction::simple(
                addr(4),
                TxKind::Mint {
                    collection: pt,
                    token: TokenId::new(5),
                },
            ),
            NftTransaction::simple(
                addr(3),
                TxKind::Transfer {
                    collection: pt,
                    token: TokenId::new(1),
                    to: addr(1),
                },
            ),
        ];
        (state, window)
    }

    #[test]
    fn matches_naive_simulation_across_swaps() {
        let (base, mut seq) = fixture();
        let ovm = Ovm::new();
        let mut exec = PrefixExecutor::new(ovm.clone(), &base, 1);
        let swaps = [(0, 3), (2, 5), (1, 2), (0, 5), (3, 4), (2, 5), (0, 1)];
        for &(i, j) in &swaps {
            seq.swap(i, j);
            let (naive_receipts, naive_state) = ovm.simulate_sequence(&base, &seq);
            let (receipts, state) = exec.execute(&seq);
            assert_eq!(receipts, naive_receipts.as_slice());
            assert_eq!(state, &naive_state);
        }
    }

    #[test]
    fn strides_do_not_change_results() {
        let (base, mut seq) = fixture();
        let ovm = Ovm::new();
        let mut execs: Vec<PrefixExecutor> = [1usize, 2, 3, 7]
            .iter()
            .map(|&s| PrefixExecutor::new(ovm.clone(), &base, s))
            .collect();
        for &(i, j) in &[(4, 5), (0, 2), (1, 4), (3, 5), (0, 1)] {
            seq.swap(i, j);
            let (want, _) = ovm.simulate_sequence(&base, &seq);
            for exec in &mut execs {
                let (got, _) = exec.execute(&seq);
                assert_eq!(got, want.as_slice());
            }
        }
    }

    #[test]
    fn identical_sequences_replay_nothing() {
        let (base, seq) = fixture();
        let mut exec = PrefixExecutor::new(Ovm::new(), &base, 1);
        exec.execute(&seq);
        let executed_before = exec.stats().slots_executed;
        exec.execute(&seq);
        assert_eq!(exec.stats().slots_executed, executed_before);
        assert_eq!(exec.stats().slots_skipped, seq.len() as u64);
    }

    #[test]
    fn late_swaps_replay_only_the_suffix() {
        let (base, mut seq) = fixture();
        let mut exec = PrefixExecutor::new(Ovm::new(), &base, 1);
        exec.execute(&seq);
        seq.swap(4, 5);
        exec.execute(&seq);
        // Slots 0..4 were reused, only 4 and 5 replayed.
        assert_eq!(exec.stats().slots_executed, (seq.len() + 2) as u64);
    }
}
