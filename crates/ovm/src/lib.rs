//! # parole-ovm
//!
//! The Optimistic Virtual Machine: the execution engine that applies NFT
//! transaction sequences to an [`parole_state::L2State`].
//!
//! The paper's GENTRANSEQ module "executes each candidate solution using an
//! optimistic virtual machine (OVM) and observes the balance update of the
//! IFU" (§IV-B) — this crate is that OVM. It implements:
//!
//! - the three NFT transaction types ([`TxKind::Mint`], [`TxKind::Transfer`],
//!   [`TxKind::Burn`]) with the full constraint semantics of the paper's
//!   Eq. 1–6 (contract-level ownership/supply checks *and* balance checks),
//!   plus the ERC-721 approval operations ([`TxKind::Approve`],
//!   [`TxKind::SetApprovalForAll`]);
//! - chain-level observability: every [`Receipt`] carries the ordered
//!   [`LogEntry`] slice its operation emitted and a 2048-bit [`Bloom`]
//!   over it, queryable through [`LogFilter`] (see `crate::logs`);
//! - revert semantics: a transaction whose constraints fail is skipped with a
//!   [`Receipt`] recording the reason, leaving state untouched;
//! - a calibrated [`GasSchedule`] reproducing the shape of the paper's
//!   Table III (mint is the heaviest and highest-utilisation operation);
//! - speculative execution: [`Ovm::simulate_sequence`] forks the state,
//!   executes, and reports the outcome without committing.
//!
//! # Example
//!
//! ```
//! use parole_ovm::{Ovm, NftTransaction, TxKind};
//! use parole_state::L2State;
//! use parole_nft::CollectionConfig;
//! use parole_primitives::{Address, TokenId, Wei};
//!
//! let mut state = L2State::new();
//! let pt = state.deploy_collection(CollectionConfig::parole_token());
//! let alice = Address::from_low_u64(1);
//! state.credit(alice, Wei::from_eth(1));
//!
//! let ovm = Ovm::new();
//! let tx = NftTransaction::simple(alice, TxKind::Mint { collection: pt, token: TokenId::new(0) });
//! let receipt = ovm.execute(&mut state, &tx);
//! assert!(receipt.is_success());
//! assert_eq!(state.balance_of(alice), Wei::from_milli_eth(800)); // paid 0.2 ETH
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod executor;
mod gas;
mod logs;
mod parallel;
mod prefix;
mod receipt;
mod tx;

pub use executor::{Ovm, OvmConfig};
pub use gas::GasSchedule;
pub use logs::{
    BlockLogs, Bloom, EventKind, LogEntry, LogFilter, LogHit, LogIndex, ReceiptLogs, BLOOM_BYTES,
};
pub use parallel::{ParallelExecutor, ParallelStats};
pub use prefix::{PrefixExecutor, PrefixStats};
pub use receipt::{Receipt, RevertReason, TxStatus};
pub use tx::{NftTransaction, TxAuth, TxKind};
