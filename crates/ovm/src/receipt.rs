//! Execution receipts.

use crate::logs::{Bloom, LogEntry};
use parole_primitives::{Gas, Hash32, Wei};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a transaction reverted instead of executing.
///
/// Each variant corresponds to one of the paper's execution constraints
/// (Eq. 1, 3, 5) or to protocol-level validity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RevertReason {
    /// The payer could not afford the bonding-curve price
    /// (the `B ≥ P` half of Eq. 1 / Eq. 3).
    InsufficientBalance,
    /// The collection had no mintable supply left (`S ≥ 1` half of Eq. 1).
    SoldOut,
    /// An ownership precondition failed (`O_k^{i,t-1}` in Eq. 3 / Eq. 5).
    NotOwner,
    /// The token does not exist (never minted or already burned).
    NoSuchToken,
    /// The token id is already active or out of range.
    BadTokenId,
    /// The referenced collection is not deployed.
    NoSuchCollection,
    /// The attached signature failed verification.
    BadSignature,
    /// Degenerate transfer (to zero address or self).
    BadTransfer,
    /// Degenerate operator for a blanket approval (zero or self).
    BadOperator,
    /// The sender could not cover the gas fee (only with fee charging on).
    CannotPayFees,
}

impl fmt::Display for RevertReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RevertReason::InsufficientBalance => "insufficient balance for price",
            RevertReason::SoldOut => "collection sold out",
            RevertReason::NotOwner => "sender does not own token",
            RevertReason::NoSuchToken => "token does not exist",
            RevertReason::BadTokenId => "invalid or duplicate token id",
            RevertReason::NoSuchCollection => "collection not deployed",
            RevertReason::BadSignature => "signature verification failed",
            RevertReason::BadTransfer => "degenerate transfer",
            RevertReason::BadOperator => "degenerate operator",
            RevertReason::CannotPayFees => "cannot pay gas fees",
        };
        f.write_str(s)
    }
}

/// Outcome of executing one transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TxStatus {
    /// The transaction executed and its state changes committed.
    Executed,
    /// The transaction reverted; state is unchanged.
    Reverted(RevertReason),
}

/// The record the OVM produces for every processed transaction.
///
/// Carries the ordered event logs the operation emitted plus a per-receipt
/// bloom over them — reverted transactions always carry an empty log slice
/// and the zero bloom (emission is journaled with the state mutations, so a
/// revert unwinds its pending events).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Receipt {
    /// Hash of the transaction this receipt belongs to.
    pub tx_hash: Hash32,
    /// Execution outcome.
    pub status: TxStatus,
    /// Gas consumed (reverted transactions still burn their gas, as on the
    /// real chain).
    pub gas_used: Gas,
    /// Total fee charged to the sender (zero when fee charging is off).
    pub fee_paid: Wei,
    /// The collection's bonding-curve price observed *before* this
    /// transaction executed (`P^{t-1}` — the price the payer was charged).
    pub price_before: Wei,
    /// The price after execution (`P^t`; differs only for mints and burns).
    pub price_after: Wei,
    /// The event log entries this transaction emitted, in emission order
    /// (empty for reverted transactions).
    pub logs: Vec<LogEntry>,
    /// Bloom filter over [`Receipt::logs`] (the zero bloom when empty).
    pub bloom: Bloom,
}

impl Receipt {
    /// `true` when the transaction executed successfully.
    pub fn is_success(&self) -> bool {
        matches!(self.status, TxStatus::Executed)
    }

    /// The revert reason, if any.
    pub fn revert_reason(&self) -> Option<RevertReason> {
        match self.status {
            TxStatus::Executed => None,
            TxStatus::Reverted(r) => Some(r),
        }
    }

    /// Recomputes the bloom from the carried logs and checks it matches —
    /// the audit-mode receipt invariant.
    pub fn bloom_consistent(&self) -> bool {
        Bloom::of_logs(&self.logs) == self.bloom
    }
}

impl fmt::Display for Receipt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.status {
            TxStatus::Executed => write!(
                f,
                "receipt({}: executed, {}, price {} -> {})",
                self.tx_hash.short(),
                self.gas_used,
                self.price_before,
                self.price_after
            ),
            TxStatus::Reverted(r) => {
                write!(f, "receipt({}: reverted: {r})", self.tx_hash.short())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_helpers() {
        let ok = Receipt {
            tx_hash: Hash32::ZERO,
            status: TxStatus::Executed,
            gas_used: Gas::new(100),
            fee_paid: Wei::ZERO,
            price_before: Wei::from_eth(1),
            price_after: Wei::from_eth(1),
            logs: Vec::new(),
            bloom: Bloom::ZERO,
        };
        assert!(ok.is_success());
        assert!(ok.bloom_consistent());
        assert_eq!(ok.revert_reason(), None);

        let bad = Receipt {
            status: TxStatus::Reverted(RevertReason::SoldOut),
            ..ok.clone()
        };
        assert!(!bad.is_success());
        assert_eq!(bad.revert_reason(), Some(RevertReason::SoldOut));
        assert!(bad.to_string().contains("sold out"));
    }
}
