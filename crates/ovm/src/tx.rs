//! The NFT transaction model.

use parole_crypto::secp256k1::{PublicKey, Signature};
use parole_crypto::{keccak256, Hash32, Wallet};
use parole_primitives::{Address, FeeBundle, TokenId, TxNonce};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The operation a transaction performs — the paper's three NFT transaction
/// types (`M_k^{i,t}`, `T_{k,j}^{i,t}`, `D_k^{i,t}`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TxKind {
    /// Mint `token` from `collection` to the sender, paying the current
    /// bonding-curve price to the collection creator.
    Mint {
        /// Collection contract address.
        collection: Address,
        /// Token identifier to mint.
        token: TokenId,
    },
    /// Sell `token` to `to`: ownership moves sender → `to`, and `to` pays the
    /// current bonding-curve price to the sender.
    Transfer {
        /// Collection contract address.
        collection: Address,
        /// Token identifier to transfer.
        token: TokenId,
        /// The buyer receiving the token and paying the price.
        to: Address,
    },
    /// Destroy `token`, returning one unit of mintable supply.
    Burn {
        /// Collection contract address.
        collection: Address,
        /// Token identifier to burn.
        token: TokenId,
    },
    /// Approve `operator` to move `token` (ERC-721 `approve`; a zero
    /// operator clears the approval).
    Approve {
        /// Collection contract address.
        collection: Address,
        /// Token identifier the approval covers.
        token: TokenId,
        /// The operator being approved ([`Address::ZERO`] clears).
        operator: Address,
    },
    /// Grant or revoke `operator`'s blanket right to move any of the
    /// sender's tokens in `collection` (ERC-721 `setApprovalForAll`).
    SetApprovalForAll {
        /// Collection contract address.
        collection: Address,
        /// The operator the grant applies to.
        operator: Address,
        /// `true` grants, `false` revokes.
        approved: bool,
    },
}

impl TxKind {
    /// The collection this operation touches.
    pub fn collection(&self) -> Address {
        match self {
            TxKind::Mint { collection, .. }
            | TxKind::Transfer { collection, .. }
            | TxKind::Burn { collection, .. }
            | TxKind::Approve { collection, .. }
            | TxKind::SetApprovalForAll { collection, .. } => *collection,
        }
    }

    /// The token this operation touches, if it names one (blanket operator
    /// approvals are per-owner, not per-token).
    pub fn token(&self) -> Option<TokenId> {
        match self {
            TxKind::Mint { token, .. }
            | TxKind::Transfer { token, .. }
            | TxKind::Burn { token, .. }
            | TxKind::Approve { token, .. } => Some(*token),
            TxKind::SetApprovalForAll { .. } => None,
        }
    }

    /// Short label for displays and feature encodings.
    pub fn label(&self) -> &'static str {
        match self {
            TxKind::Mint { .. } => "mint",
            TxKind::Transfer { .. } => "transfer",
            TxKind::Burn { .. } => "burn",
            TxKind::Approve { .. } => "approve",
            TxKind::SetApprovalForAll { .. } => "set_approval_for_all",
        }
    }
}

/// Signature material attached to a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TxAuth {
    /// The sender's public key (the simulated chain resolves addresses from
    /// keys directly rather than using signature recovery).
    pub public_key: PublicKey,
    /// ECDSA signature over [`NftTransaction::signing_digest`].
    pub signature: Signature,
}

/// A signed (or simulation-unsigned) NFT transaction.
///
/// Large-scale experiments construct unsigned transactions via
/// [`NftTransaction::simple`] because signing thousands of transactions with
/// the from-scratch ECDSA dominates runtime without changing any measured
/// quantity; protocol-level tests use [`NftTransaction::signed`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NftTransaction {
    /// The submitting user (`U_k`).
    pub sender: Address,
    /// The operation.
    pub kind: TxKind,
    /// EIP-1559-style fee parameters (the mempool's only ordering key).
    pub fees: FeeBundle,
    /// Sender nonce (informational in the simulation; the OVM does not
    /// enforce nonce ordering because the attack's whole point is that the
    /// aggregator controls ordering).
    pub nonce: TxNonce,
    /// Optional signature material.
    pub auth: Option<TxAuth>,
}

impl NftTransaction {
    /// Builds an unsigned transaction with default fees.
    pub fn simple(sender: Address, kind: TxKind) -> Self {
        NftTransaction {
            sender,
            kind,
            fees: FeeBundle::from_gwei(30, 2),
            nonce: TxNonce::default(),
            auth: None,
        }
    }

    /// Builds an unsigned transaction with explicit fees.
    pub fn with_fees(sender: Address, kind: TxKind, fees: FeeBundle) -> Self {
        NftTransaction {
            sender,
            kind,
            fees,
            nonce: TxNonce::default(),
            auth: None,
        }
    }

    /// Builds and signs a transaction with `wallet` (whose address becomes
    /// the sender).
    pub fn signed(wallet: &Wallet, kind: TxKind, fees: FeeBundle, nonce: TxNonce) -> Self {
        let mut tx = NftTransaction {
            sender: wallet.address(),
            kind,
            fees,
            nonce,
            auth: None,
        };
        let digest = tx.signing_digest();
        tx.auth = Some(TxAuth {
            public_key: *wallet.public_key(),
            signature: wallet.sign(digest.as_bytes()),
        });
        tx
    }

    /// Deterministic byte encoding of the signed fields.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(96);
        out.extend_from_slice(self.sender.as_bytes());
        match self.kind {
            TxKind::Mint { collection, token } => {
                out.push(0);
                out.extend_from_slice(collection.as_bytes());
                out.extend_from_slice(&token.value().to_be_bytes());
            }
            TxKind::Transfer {
                collection,
                token,
                to,
            } => {
                out.push(1);
                out.extend_from_slice(collection.as_bytes());
                out.extend_from_slice(&token.value().to_be_bytes());
                out.extend_from_slice(to.as_bytes());
            }
            TxKind::Burn { collection, token } => {
                out.push(2);
                out.extend_from_slice(collection.as_bytes());
                out.extend_from_slice(&token.value().to_be_bytes());
            }
            TxKind::Approve {
                collection,
                token,
                operator,
            } => {
                out.push(3);
                out.extend_from_slice(collection.as_bytes());
                out.extend_from_slice(&token.value().to_be_bytes());
                out.extend_from_slice(operator.as_bytes());
            }
            TxKind::SetApprovalForAll {
                collection,
                operator,
                approved,
            } => {
                out.push(4);
                out.extend_from_slice(collection.as_bytes());
                out.extend_from_slice(operator.as_bytes());
                out.push(approved as u8);
            }
        }
        out.extend_from_slice(&self.fees.max_fee_per_gas.wei().to_be_bytes());
        out.extend_from_slice(&self.fees.max_priority_fee_per_gas.wei().to_be_bytes());
        out.extend_from_slice(&self.nonce.value().to_be_bytes());
        out
    }

    /// The digest a wallet signs.
    pub fn signing_digest(&self) -> Hash32 {
        keccak256(&self.encode())
    }

    /// The transaction hash (over the encoding; signatures are simulation
    /// metadata and excluded so signed and unsigned copies of the same
    /// logical transaction coincide).
    pub fn tx_hash(&self) -> Hash32 {
        self.signing_digest()
    }

    /// Verifies the attached signature, if any.
    ///
    /// Returns `false` when signature material is present but invalid or the
    /// key does not belong to the sender; `true` for unsigned transactions
    /// (the simulation's permissive mode) and valid signatures.
    pub fn verify_signature(&self) -> bool {
        match &self.auth {
            None => true,
            Some(auth) => {
                let wallet_addr = {
                    let digest = keccak256(&auth.public_key.to_bytes());
                    let mut a = [0u8; 20];
                    a.copy_from_slice(&digest.as_bytes()[12..]);
                    Address::from_bytes(a)
                };
                wallet_addr == self.sender
                    && auth
                        .public_key
                        .verify(self.signing_digest().as_bytes(), &auth.signature)
            }
        }
    }

    /// `true` when `who` is a party to this transaction (sender, or buyer of
    /// a transfer) — the IFU-involvement test of the arbitrage assessment.
    pub fn involves(&self, who: Address) -> bool {
        if self.sender == who {
            return true;
        }
        matches!(self.kind, TxKind::Transfer { to, .. } if to == who)
    }
}

impl fmt::Display for NftTransaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            TxKind::Mint { token, .. } => write!(f, "Mint {} by {}", token, self.sender),
            TxKind::Transfer { token, to, .. } => {
                write!(f, "Transfer {}: {} -> {}", token, self.sender, to)
            }
            TxKind::Burn { token, .. } => write!(f, "Burn {} by {}", token, self.sender),
            TxKind::Approve {
                token, operator, ..
            } => write!(f, "Approve {}: {} -> {}", token, self.sender, operator),
            TxKind::SetApprovalForAll {
                operator, approved, ..
            } => {
                let verb = if approved { "grants" } else { "revokes" };
                write!(
                    f,
                    "SetApprovalForAll: {} {} {}",
                    self.sender, verb, operator
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(v: u64) -> Address {
        Address::from_low_u64(v)
    }

    fn kind() -> TxKind {
        TxKind::Mint {
            collection: addr(100),
            token: TokenId::new(3),
        }
    }

    #[test]
    fn encoding_distinguishes_kinds() {
        let c = addr(100);
        let t = TokenId::new(1);
        let mint = NftTransaction::simple(
            addr(1),
            TxKind::Mint {
                collection: c,
                token: t,
            },
        );
        let burn = NftTransaction::simple(
            addr(1),
            TxKind::Burn {
                collection: c,
                token: t,
            },
        );
        let xfer = NftTransaction::simple(
            addr(1),
            TxKind::Transfer {
                collection: c,
                token: t,
                to: addr(2),
            },
        );
        assert_ne!(mint.tx_hash(), burn.tx_hash());
        assert_ne!(mint.tx_hash(), xfer.tx_hash());
        assert_ne!(burn.tx_hash(), xfer.tx_hash());
    }

    #[test]
    fn unsigned_txs_verify_permissively() {
        assert!(NftTransaction::simple(addr(1), kind()).verify_signature());
    }

    #[test]
    fn signed_tx_verifies_and_binds_sender() {
        let wallet = Wallet::from_seed(42);
        let tx = NftTransaction::signed(
            &wallet,
            kind(),
            FeeBundle::from_gwei(30, 2),
            TxNonce::new(0),
        );
        assert_eq!(tx.sender, wallet.address());
        assert!(tx.verify_signature());

        // Tampering with the payload breaks verification.
        let mut forged = tx;
        forged.sender = addr(9);
        assert!(!forged.verify_signature());
        let mut bumped = tx;
        bumped.nonce = TxNonce::new(7);
        assert!(!bumped.verify_signature());
    }

    #[test]
    fn involvement_covers_buyer_side() {
        let seller = addr(1);
        let buyer = addr(2);
        let tx = NftTransaction::simple(
            seller,
            TxKind::Transfer {
                collection: addr(100),
                token: TokenId::new(0),
                to: buyer,
            },
        );
        assert!(tx.involves(seller));
        assert!(tx.involves(buyer));
        assert!(!tx.involves(addr(3)));
    }

    #[test]
    fn kind_accessors() {
        let k = kind();
        assert_eq!(k.collection(), addr(100));
        assert_eq!(k.token(), Some(TokenId::new(3)));
        assert_eq!(k.label(), "mint");

        let sfa = TxKind::SetApprovalForAll {
            collection: addr(100),
            operator: addr(9),
            approved: true,
        };
        assert_eq!(sfa.collection(), addr(100));
        assert_eq!(sfa.token(), None);
        assert_eq!(sfa.label(), "set_approval_for_all");
    }

    #[test]
    fn approval_encodings_are_distinct() {
        let c = addr(100);
        let approve = NftTransaction::simple(
            addr(1),
            TxKind::Approve {
                collection: c,
                token: TokenId::new(1),
                operator: addr(9),
            },
        );
        let grant = NftTransaction::simple(
            addr(1),
            TxKind::SetApprovalForAll {
                collection: c,
                operator: addr(9),
                approved: true,
            },
        );
        let revoke = NftTransaction::simple(
            addr(1),
            TxKind::SetApprovalForAll {
                collection: c,
                operator: addr(9),
                approved: false,
            },
        );
        assert_ne!(approve.tx_hash(), grant.tx_hash());
        assert_ne!(grant.tx_hash(), revoke.tx_hash());
    }

    #[test]
    fn display_shapes() {
        let tx = NftTransaction::simple(addr(1), kind());
        assert!(tx.to_string().starts_with("Mint token#3 by"));
    }
}
