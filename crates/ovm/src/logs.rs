//! Receipt event logs and Ethereum-style bloom filters.
//!
//! Every executed transaction carries the ordered [`LogEntry`] slice its
//! operation emitted (the collection's [`Erc721Event`]s, tagged with the
//! emitting collection address) plus a per-receipt [`Bloom`] over the
//! entries. Blocks OR their receipts' blooms into a block bloom, so a log
//! query ([`LogFilter`]) can skip whole blocks — and within a block, whole
//! receipts — without touching the entries themselves.
//!
//! The bloom is the Ethereum design at the same parameters: 2048 bits
//! (256 bytes), three bit positions per indexed item, each position taken
//! from a big-endian byte pair of the item's keccak-256 digest modulo 2048.
//! Three kinds of item are indexed per entry: the emitting collection, the
//! event kind, and every non-zero address the event involves — each behind
//! a distinct domain tag so a collection address can never alias an
//! involved address. Blooms are **false-positive-only by construction**: a
//! member's bits are all set at insertion and never cleared, so a negative
//! answer is definitive while a positive one merely licenses the exact
//! scan. The proptests in `tests/logs.rs` pin the no-false-negative side.

use crate::Receipt;
use parole_crypto::keccak256;
use parole_nft::Erc721Event;
use parole_primitives::{Address, Hash32};
use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// Bytes in a bloom filter (2048 bits — Ethereum's log-bloom width).
pub const BLOOM_BYTES: usize = 256;

/// Domain tag for an indexed collection address.
const TOPIC_COLLECTION: u8 = 0x01;
/// Domain tag for an indexed event kind.
const TOPIC_KIND: u8 = 0x02;
/// Domain tag for an indexed involved address.
const TOPIC_ADDRESS: u8 = 0x03;

/// One receipt log entry: an ERC-721 event plus the collection that
/// emitted it (the event alone does not name its contract, exactly as on
/// the real chain where the emitting address rides in the log, not the
/// event payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogEntry {
    /// The collection contract that emitted the event.
    pub collection: Address,
    /// The event payload.
    pub event: Erc721Event,
}

impl LogEntry {
    /// The entry's event kind (the coarse classification queries filter on).
    pub fn kind(&self) -> EventKind {
        EventKind::of(&self.event)
    }

    /// The non-zero addresses the event involves, in payload order. Mints
    /// and burns suppress the zero side of their transfer, and
    /// `PriceChanged` involves nobody.
    pub fn addresses(&self) -> impl Iterator<Item = Address> {
        let pair = match self.event {
            Erc721Event::Transfer { from, to, .. } => [Some(from), Some(to)],
            Erc721Event::Approval {
                owner, approved, ..
            } => [Some(owner), Some(approved)],
            Erc721Event::ApprovalForAll {
                owner, operator, ..
            } => [Some(owner), Some(operator)],
            Erc721Event::PriceChanged { .. } => [None, None],
        };
        pair.into_iter().flatten().filter(|a| !a.is_zero())
    }
}

impl fmt::Display for LogEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @ {}", self.event, self.collection)
    }
}

/// The coarse event classification a [`LogFilter`] can select on — one
/// variant per [`Erc721Event`] variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EventKind {
    /// `Transfer` (covers mints and burns — zero-address convention).
    Transfer,
    /// Per-token `Approval`.
    Approval,
    /// Blanket `ApprovalForAll`.
    ApprovalForAll,
    /// Bonding-curve `PriceChanged`.
    PriceChanged,
}

impl EventKind {
    /// The kind of an event payload.
    pub fn of(event: &Erc721Event) -> EventKind {
        match event {
            Erc721Event::Transfer { .. } => EventKind::Transfer,
            Erc721Event::Approval { .. } => EventKind::Approval,
            Erc721Event::ApprovalForAll { .. } => EventKind::ApprovalForAll,
            Erc721Event::PriceChanged { .. } => EventKind::PriceChanged,
        }
    }

    /// Stable one-byte tag (the bloom item payload).
    fn tag(self) -> u8 {
        match self {
            EventKind::Transfer => 0,
            EventKind::Approval => 1,
            EventKind::ApprovalForAll => 2,
            EventKind::PriceChanged => 3,
        }
    }

    /// Short label for displays.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Transfer => "Transfer",
            EventKind::Approval => "Approval",
            EventKind::ApprovalForAll => "ApprovalForAll",
            EventKind::PriceChanged => "PriceChanged",
        }
    }
}

/// A 2048-bit bloom filter over log entries (per-receipt, and OR-folded
/// per-block).
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Bloom([u8; BLOOM_BYTES]);

impl Bloom {
    /// The empty bloom (matches nothing, definitively).
    pub const ZERO: Bloom = Bloom([0u8; BLOOM_BYTES]);

    /// `true` when no bit is set.
    pub fn is_empty(&self) -> bool {
        self.0.iter().all(|&b| b == 0)
    }

    /// Number of set bits (diagnostics; density drives the false-positive
    /// rate).
    pub fn bits_set(&self) -> u32 {
        self.0.iter().map(|b| b.count_ones()).sum()
    }

    /// Raw filter bytes.
    pub fn as_bytes(&self) -> &[u8; BLOOM_BYTES] {
        &self.0
    }

    /// The three bit positions of one item: big-endian byte pairs 0-1, 2-3
    /// and 4-5 of `keccak256(item)`, each modulo 2048 (the Ethereum
    /// derivation at yellow-paper parameters).
    fn positions(item: &[u8]) -> [u16; 3] {
        let h = keccak256(item);
        let b = h.as_bytes();
        let pos = |i: usize| u16::from_be_bytes([b[i], b[i + 1]]) % 2048;
        [pos(0), pos(2), pos(4)]
    }

    fn set(&mut self, item: &[u8]) {
        for p in Self::positions(item) {
            self.0[(p / 8) as usize] |= 1 << (p % 8);
        }
    }

    fn contains(&self, item: &[u8]) -> bool {
        Self::positions(item)
            .into_iter()
            .all(|p| self.0[(p / 8) as usize] & (1 << (p % 8)) != 0)
    }

    /// Folds `other` into `self` (set union) — how a block bloom accrues
    /// its receipts' blooms.
    pub fn accrue(&mut self, other: &Bloom) {
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a |= b;
        }
    }

    /// Indexes one log entry: its collection, its event kind, and every
    /// non-zero involved address, each under its domain tag.
    pub fn accrue_log(&mut self, log: &LogEntry) {
        self.set(&Self::collection_item(log.collection));
        self.set(&[TOPIC_KIND, log.kind().tag()]);
        for who in log.addresses() {
            self.set(&Self::address_item(who));
        }
    }

    /// A bloom over exactly the given entries.
    pub fn of_logs<'a>(logs: impl IntoIterator<Item = &'a LogEntry>) -> Bloom {
        let mut bloom = Bloom::ZERO;
        for log in logs {
            bloom.accrue_log(log);
        }
        bloom
    }

    /// Membership probe for an emitting collection. `false` is definitive;
    /// `true` may be a false positive.
    pub fn might_contain_collection(&self, collection: Address) -> bool {
        self.contains(&Self::collection_item(collection))
    }

    /// Membership probe for an event kind.
    pub fn might_contain_kind(&self, kind: EventKind) -> bool {
        self.contains(&[TOPIC_KIND, kind.tag()])
    }

    /// Membership probe for an involved address.
    pub fn might_contain_address(&self, who: Address) -> bool {
        self.contains(&Self::address_item(who))
    }

    fn collection_item(addr: Address) -> [u8; 21] {
        let mut item = [0u8; 21];
        item[0] = TOPIC_COLLECTION;
        item[1..].copy_from_slice(addr.as_bytes());
        item
    }

    fn address_item(addr: Address) -> [u8; 21] {
        let mut item = [0u8; 21];
        item[0] = TOPIC_ADDRESS;
        item[1..].copy_from_slice(addr.as_bytes());
        item
    }
}

impl Default for Bloom {
    fn default() -> Self {
        Bloom::ZERO
    }
}

impl fmt::Debug for Bloom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bloom({} bits set)", self.bits_set())
    }
}

impl Serialize for Bloom {
    fn to_value(&self) -> Value {
        // Hex-compact: 512 chars instead of a 256-element number array.
        let mut s = String::with_capacity(2 * BLOOM_BYTES);
        for b in self.0 {
            s.push(char::from_digit((b >> 4) as u32, 16).expect("nibble < 16"));
            s.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble < 16"));
        }
        Value::Str(s)
    }
}

impl Deserialize for Bloom {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let Value::Str(s) = value else {
            return Err(DeError::custom("Bloom: expected hex string"));
        };
        if s.len() != 2 * BLOOM_BYTES {
            return Err(DeError::custom(format!(
                "Bloom: expected {} hex chars, found {}",
                2 * BLOOM_BYTES,
                s.len()
            )));
        }
        let nibble = |c: char| {
            c.to_digit(16)
                .map(|d| d as u8)
                .ok_or_else(|| DeError::custom(format!("Bloom: bad hex digit {c:?}")))
        };
        let mut bytes = [0u8; BLOOM_BYTES];
        let mut chars = s.chars();
        for byte in &mut bytes {
            let hi = nibble(chars.next().expect("length checked"))?;
            let lo = nibble(chars.next().expect("length checked"))?;
            *byte = (hi << 4) | lo;
        }
        Ok(Bloom(bytes))
    }
}

/// A log query: block range × collection × event kind × involved address.
/// Every constraint is optional; an unset field matches everything.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogFilter {
    /// Lowest block number to scan (inclusive); unset = from genesis.
    pub from_block: Option<u64>,
    /// Highest block number to scan (inclusive); unset = to tip.
    pub to_block: Option<u64>,
    /// Only entries emitted by this collection.
    pub collection: Option<Address>,
    /// Only entries of this event kind.
    pub kind: Option<EventKind>,
    /// Only entries involving this address (owner, buyer, seller, operator
    /// — any non-zero payload address).
    pub address: Option<Address>,
}

impl LogFilter {
    /// The unconstrained filter (matches every log everywhere).
    pub fn all() -> LogFilter {
        LogFilter::default()
    }

    /// Restricts the block range (inclusive on both ends).
    pub fn in_blocks(mut self, from: u64, to: u64) -> LogFilter {
        self.from_block = Some(from);
        self.to_block = Some(to);
        self
    }

    /// Restricts to one emitting collection.
    pub fn in_collection(mut self, collection: Address) -> LogFilter {
        self.collection = Some(collection);
        self
    }

    /// Restricts to one event kind.
    pub fn of_kind(mut self, kind: EventKind) -> LogFilter {
        self.kind = Some(kind);
        self
    }

    /// Restricts to entries involving `who`.
    pub fn involving(mut self, who: Address) -> LogFilter {
        self.address = Some(who);
        self
    }

    /// Whether `block` falls inside the filter's range.
    pub fn covers_block(&self, block: u64) -> bool {
        self.from_block.is_none_or(|lo| block >= lo) && self.to_block.is_none_or(|hi| block <= hi)
    }

    /// Bloom pre-check: `false` means the filtered-on items are definitely
    /// absent and the bloom's scope (receipt or block) can be skipped;
    /// `true` means the exact scan must run. An unconstrained filter always
    /// passes — there is nothing to probe.
    pub fn might_match(&self, bloom: &Bloom) -> bool {
        self.collection
            .is_none_or(|c| bloom.might_contain_collection(c))
            && self.kind.is_none_or(|k| bloom.might_contain_kind(k))
            && self.address.is_none_or(|a| bloom.might_contain_address(a))
    }

    /// Exact per-entry predicate (block range not consulted — the caller
    /// scopes the scan to in-range blocks).
    pub fn matches(&self, log: &LogEntry) -> bool {
        self.collection.is_none_or(|c| log.collection == c)
            && self.kind.is_none_or(|k| log.kind() == k)
            && self
                .address
                .is_none_or(|a| log.addresses().any(|who| who == a))
    }
}

/// One transaction's logs inside a [`LogIndex`] block record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReceiptLogs {
    /// Hash of the transaction that emitted the entries.
    pub tx_hash: Hash32,
    /// The receipt's bloom (over exactly `logs`).
    pub bloom: Bloom,
    /// The emitted entries, in emission order.
    pub logs: Vec<LogEntry>,
}

/// One block's entry in a [`LogIndex`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockLogs {
    /// The block number the logs were emitted in.
    pub number: u64,
    /// OR-fold of every receipt bloom in the block.
    pub bloom: Bloom,
    /// Per-transaction logs, in block order. Transactions that emitted
    /// nothing are not recorded.
    pub receipts: Vec<ReceiptLogs>,
}

/// One matching log entry returned by [`LogIndex::query`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHit {
    /// Block the entry was emitted in.
    pub block: u64,
    /// Hash of the emitting transaction.
    pub tx_hash: Hash32,
    /// Position of the entry within its receipt's log slice.
    pub log_index: usize,
    /// The entry itself.
    pub entry: LogEntry,
}

/// The chain-level log index: per-block blooms over per-receipt blooms over
/// log entries, supporting [`LogFilter`] queries that skip whole blocks —
/// and within a scanned block, whole receipts — on definitive bloom misses.
///
/// Query-time telemetry (`bloom.block_skips` vs `bloom.block_scans`,
/// `bloom.receipt_skips` vs `bloom.receipt_scans`) measures exactly how
/// much scanning the blooms save; since blooms are false-positive-only, a
/// skip is always sound and a scan may still yield nothing.
#[derive(Debug, Clone, Default)]
pub struct LogIndex {
    blocks: Vec<BlockLogs>,
}

impl LogIndex {
    /// An empty index.
    pub fn new() -> Self {
        LogIndex::default()
    }

    /// Indexes one executed block's receipts, returning the block bloom
    /// (the OR-fold of the receipt blooms). Blocks must be indexed in
    /// ascending number order; empty blocks still get an entry so queries
    /// can distinguish "no logs" from "not indexed".
    pub fn index_block(&mut self, number: u64, receipts: &[Receipt]) -> Bloom {
        debug_assert!(
            self.blocks.last().is_none_or(|b| b.number < number),
            "blocks must be indexed in ascending order"
        );
        let mut block_bloom = Bloom::ZERO;
        let mut indexed = Vec::new();
        for r in receipts {
            if r.logs.is_empty() {
                continue;
            }
            block_bloom.accrue(&r.bloom);
            indexed.push(ReceiptLogs {
                tx_hash: r.tx_hash,
                bloom: r.bloom,
                logs: r.logs.clone(),
            });
        }
        parole_telemetry::counter("events.blocks_indexed", 1);
        self.blocks.push(BlockLogs {
            number,
            bloom: block_bloom,
            receipts: indexed,
        });
        block_bloom
    }

    /// Number of indexed blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// `true` when nothing has been indexed.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The indexed blocks, oldest first.
    pub fn blocks(&self) -> &[BlockLogs] {
        &self.blocks
    }

    /// The block bloom for `number`, if that block is indexed.
    pub fn block_bloom(&self, number: u64) -> Option<&Bloom> {
        self.blocks
            .binary_search_by_key(&number, |b| b.number)
            .ok()
            .map(|i| &self.blocks[i].bloom)
    }

    /// Runs a [`LogFilter`] over the index: block-range restriction, then
    /// block-bloom pre-check, then receipt-bloom pre-check, then the exact
    /// per-entry scan. Results come back in chain order (block, then
    /// transaction, then emission order).
    pub fn query(&self, filter: &LogFilter) -> Vec<LogHit> {
        parole_telemetry::counter("events.queries", 1);
        let mut hits = Vec::new();
        for block in &self.blocks {
            if !filter.covers_block(block.number) {
                continue;
            }
            if !filter.might_match(&block.bloom) {
                parole_telemetry::counter("bloom.block_skips", 1);
                continue;
            }
            parole_telemetry::counter("bloom.block_scans", 1);
            for receipt in &block.receipts {
                if !filter.might_match(&receipt.bloom) {
                    parole_telemetry::counter("bloom.receipt_skips", 1);
                    continue;
                }
                parole_telemetry::counter("bloom.receipt_scans", 1);
                for (log_index, entry) in receipt.logs.iter().enumerate() {
                    if filter.matches(entry) {
                        hits.push(LogHit {
                            block: block.number,
                            tx_hash: receipt.tx_hash,
                            log_index,
                            entry: *entry,
                        });
                    }
                }
            }
        }
        parole_telemetry::counter("events.query_hits", hits.len() as u64);
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parole_primitives::{TokenId, Wei};

    fn addr(v: u64) -> Address {
        Address::from_low_u64(v)
    }

    fn transfer_log(coll: u64, from: u64, to: u64) -> LogEntry {
        LogEntry {
            collection: addr(coll),
            event: Erc721Event::Transfer {
                from: addr(from),
                to: addr(to),
                token: TokenId::new(0),
            },
        }
    }

    #[test]
    fn bloom_has_no_false_negatives() {
        let log = transfer_log(100, 1, 2);
        let bloom = Bloom::of_logs([&log]);
        assert!(bloom.might_contain_collection(addr(100)));
        assert!(bloom.might_contain_kind(EventKind::Transfer));
        assert!(bloom.might_contain_address(addr(1)));
        assert!(bloom.might_contain_address(addr(2)));
    }

    #[test]
    fn empty_bloom_is_definitive() {
        let bloom = Bloom::ZERO;
        assert!(bloom.is_empty());
        assert!(!bloom.might_contain_collection(addr(100)));
        assert!(!bloom.might_contain_kind(EventKind::PriceChanged));
        assert!(!bloom.might_contain_address(addr(1)));
        assert!(!LogFilter::all().in_collection(addr(1)).might_match(&bloom));
        // The unconstrained filter has nothing to probe.
        assert!(LogFilter::all().might_match(&bloom));
    }

    #[test]
    fn accrue_is_set_union() {
        let a = Bloom::of_logs([&transfer_log(100, 1, 2)]);
        let b = Bloom::of_logs([&transfer_log(200, 3, 4)]);
        let mut both = a;
        both.accrue(&b);
        assert!(both.might_contain_collection(addr(100)));
        assert!(both.might_contain_collection(addr(200)));
        assert!(both.bits_set() >= a.bits_set().max(b.bits_set()));
    }

    #[test]
    fn zero_addresses_are_not_indexed() {
        // A mint's zero-address "from" side must not be indexed: querying
        // for the zero address is meaningless and indexing it would set
        // shared bits on every mint and burn.
        let mint = LogEntry {
            collection: addr(100),
            event: Erc721Event::Transfer {
                from: Address::ZERO,
                to: addr(1),
                token: TokenId::new(0),
            },
        };
        assert_eq!(mint.addresses().collect::<Vec<_>>(), vec![addr(1)]);
        let price = LogEntry {
            collection: addr(100),
            event: Erc721Event::PriceChanged {
                old_price: Wei::from_eth(1),
                new_price: Wei::from_eth(2),
                remaining_supply: 3,
            },
        };
        assert_eq!(price.addresses().count(), 0);
    }

    #[test]
    fn filter_matches_exactly() {
        let log = transfer_log(100, 1, 2);
        assert!(LogFilter::all().matches(&log));
        assert!(LogFilter::all().in_collection(addr(100)).matches(&log));
        assert!(!LogFilter::all().in_collection(addr(200)).matches(&log));
        assert!(LogFilter::all().of_kind(EventKind::Transfer).matches(&log));
        assert!(!LogFilter::all().of_kind(EventKind::Approval).matches(&log));
        assert!(LogFilter::all().involving(addr(2)).matches(&log));
        assert!(!LogFilter::all().involving(addr(3)).matches(&log));
        assert!(LogFilter::all().in_blocks(2, 5).covers_block(3));
        assert!(!LogFilter::all().in_blocks(2, 5).covers_block(6));
    }

    #[test]
    fn bloom_serde_roundtrip() {
        let bloom = Bloom::of_logs([&transfer_log(100, 1, 2)]);
        let value = bloom.to_value();
        let back = Bloom::from_value(&value).unwrap();
        assert_eq!(bloom, back);
        assert!(Bloom::from_value(&Value::Str("zz".into())).is_err());
    }

    #[test]
    fn index_queries_respect_range_and_filters() {
        use parole_primitives::Gas;
        let receipt = |tag: u64, logs: Vec<LogEntry>| Receipt {
            tx_hash: parole_crypto::keccak256(&tag.to_be_bytes()),
            status: crate::TxStatus::Executed,
            gas_used: Gas::new(1),
            fee_paid: Wei::ZERO,
            price_before: Wei::ZERO,
            price_after: Wei::ZERO,
            bloom: Bloom::of_logs(&logs),
            logs,
        };
        let mut index = LogIndex::new();
        index.index_block(1, &[receipt(0, vec![transfer_log(100, 1, 2)])]);
        index.index_block(
            2,
            &[
                receipt(1, vec![]),
                receipt(2, vec![transfer_log(200, 3, 4)]),
            ],
        );
        index.index_block(3, &[]);
        assert_eq!(index.len(), 3);
        assert!(index.block_bloom(3).unwrap().is_empty());
        assert!(index.block_bloom(4).is_none());

        let all = index.query(&LogFilter::all());
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].block, 1);
        assert_eq!(all[1].block, 2);
        assert_eq!(all[1].log_index, 0);

        let ranged = index.query(&LogFilter::all().in_blocks(2, 3));
        assert_eq!(ranged.len(), 1);
        assert_eq!(ranged[0].entry.collection, addr(200));

        let by_coll = index.query(&LogFilter::all().in_collection(addr(100)));
        assert_eq!(by_coll.len(), 1);
        assert_eq!(by_coll[0].block, 1);

        let by_addr = index.query(&LogFilter::all().involving(addr(4)));
        assert_eq!(by_addr.len(), 1);
        assert!(index
            .query(&LogFilter::all().involving(addr(99)))
            .is_empty());
    }

    #[test]
    fn kind_classification_covers_all_variants() {
        let approval = LogEntry {
            collection: addr(1),
            event: Erc721Event::Approval {
                owner: addr(1),
                approved: addr(2),
                token: TokenId::new(0),
            },
        };
        assert_eq!(approval.kind(), EventKind::Approval);
        let afa = LogEntry {
            collection: addr(1),
            event: Erc721Event::ApprovalForAll {
                owner: addr(1),
                operator: addr(2),
                approved: true,
            },
        };
        assert_eq!(afa.kind(), EventKind::ApprovalForAll);
        assert_eq!(EventKind::ApprovalForAll.label(), "ApprovalForAll");
    }
}
