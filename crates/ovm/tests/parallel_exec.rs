//! Bit-identity of the OCC parallel block executor against the serial OVM.
//!
//! The contract under test: for any block and any thread count,
//! [`ParallelExecutor::execute_block`] produces the same receipts (status,
//! gas, fees, prices), the same state root, and the same scheduler
//! statistics as every other thread count — and the receipts/root match
//! [`Ovm::execute_sequence`] exactly. Conflict density is tunable through
//! the generator's user/token pool sizes: a tiny pool makes almost every
//! transaction contend for the same records, a large pool makes the block
//! embarrassingly parallel.

use parole_nft::CollectionConfig;
use parole_ovm::{NftTransaction, Ovm, OvmConfig, ParallelExecutor, ParallelStats, TxKind};
use parole_primitives::{Address, FeeBundle, TokenId, Wei};
use parole_state::L2State;
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

#[derive(Debug, Clone)]
enum RawOp {
    Mint { sender: u64, token: u64 },
    Transfer { sender: u64, token: u64, to: u64 },
    Burn { sender: u64, token: u64 },
    Approve { sender: u64, token: u64, to: u64 },
    SetForAll { sender: u64, to: u64, on: bool },
}

/// Operations over a bounded pool; `users`/`tokens` set conflict density.
fn arb_op(users: u64, tokens: u64) -> impl Strategy<Value = RawOp> {
    // Transfer arms repeated: transfer-heavy traffic is the parallelizable
    // regime (mints/burns serialize on the collection header).
    prop_oneof![
        (0..users, 0..tokens).prop_map(|(sender, token)| RawOp::Mint { sender, token }),
        (0..users, 0..tokens, 0..users).prop_map(|(sender, token, to)| RawOp::Transfer {
            sender,
            token,
            to
        }),
        (0..users, 0..tokens, 0..users).prop_map(|(sender, token, to)| RawOp::Transfer {
            sender,
            token,
            to
        }),
        (0..users, 0..tokens, 0..users).prop_map(|(sender, token, to)| RawOp::Transfer {
            sender,
            token,
            to
        }),
        (0..users, 0..tokens).prop_map(|(sender, token)| RawOp::Burn { sender, token }),
        (0..users, 0..tokens, 0..users).prop_map(|(sender, token, to)| RawOp::Approve {
            sender,
            token,
            to
        }),
        (0..users, 0..users, any::<bool>()).prop_map(|(sender, to, on)| RawOp::SetForAll {
            sender,
            to,
            on
        }),
    ]
}

/// A funded world with one collection and the first half of the token pool
/// pre-minted so transfers/burns have material.
fn world(users: u64, tokens: u64) -> (L2State, Address) {
    let mut state = L2State::new();
    let coll =
        state.deploy_collection(CollectionConfig::limited_edition("Par", tokens.max(4), 200));
    for u in 1..=users {
        state.credit(Address::from_low_u64(u), Wei::from_eth(50));
    }
    for t in 0..tokens / 2 {
        state
            .nft_mint(coll, Address::from_low_u64(t % users + 1), TokenId::new(t))
            .unwrap()
            .unwrap();
    }
    (state, coll)
}

fn to_tx(op: &RawOp, coll: Address, fees: FeeBundle) -> NftTransaction {
    let a = |v: u64| Address::from_low_u64(v + 1);
    let kind = match *op {
        RawOp::Mint { token, .. } => TxKind::Mint {
            collection: coll,
            token: TokenId::new(token),
        },
        RawOp::Transfer { token, to, .. } => TxKind::Transfer {
            collection: coll,
            token: TokenId::new(token),
            to: a(to),
        },
        RawOp::Burn { token, .. } => TxKind::Burn {
            collection: coll,
            token: TokenId::new(token),
        },
        RawOp::Approve { token, to, .. } => TxKind::Approve {
            collection: coll,
            token: TokenId::new(token),
            operator: a(to),
        },
        RawOp::SetForAll { to, on, .. } => TxKind::SetApprovalForAll {
            collection: coll,
            operator: a(to),
            approved: on,
        },
    };
    let sender = match *op {
        RawOp::Mint { sender, .. }
        | RawOp::Transfer { sender, .. }
        | RawOp::Burn { sender, .. }
        | RawOp::Approve { sender, .. }
        | RawOp::SetForAll { sender, .. } => a(sender),
    };
    NftTransaction::with_fees(sender, kind, fees)
}

/// Scheduler counters that must not depend on the worker count (everything
/// except `workers` itself).
fn partition_invariant(s: &ParallelStats) -> (u64, u64, u64, u64, u64, u64, u64) {
    (
        s.txs,
        s.speculations,
        s.committed_clean,
        s.conflicts,
        s.reexecutions,
        s.waves,
        s.max_wave_width,
    )
}

/// Runs `txs` serially and at every thread count, asserting bit-identity
/// of receipts, state root and user balances, plus stats determinism.
fn assert_bit_identical(ovm: Ovm, base: &L2State, txs: &[NftTransaction], users: u64) {
    let mut serial = base.clone();
    let want = ovm.execute_sequence(&mut serial, txs);
    let want_root = serial.state_root();

    let mut reference_stats: Option<ParallelStats> = None;
    for threads in THREAD_COUNTS {
        let mut state = base.clone();
        let exec = ParallelExecutor::with_threads(ovm.clone(), threads);
        let (got, stats) = exec.execute_block(&mut state, txs);

        assert_eq!(got, want, "receipts diverge at {threads} threads");
        // Receipt equality already covers logs/blooms, but the observability
        // contract is load-bearing enough to pin explicitly: the ordered
        // event stream and its bloom must be bit-identical to serial, and
        // each receipt bloom must be exactly the bloom of its own logs.
        for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
            assert_eq!(
                g.logs, w.logs,
                "log stream of tx {i} diverges at {threads} threads"
            );
            assert_eq!(
                g.bloom, w.bloom,
                "bloom of tx {i} diverges at {threads} threads"
            );
            assert!(
                g.bloom_consistent(),
                "tx {i} bloom inconsistent at {threads} threads"
            );
        }
        let block_bloom = got.iter().fold(parole_ovm::Bloom::ZERO, |mut acc, r| {
            acc.accrue(&r.bloom);
            acc
        });
        let want_block_bloom = want.iter().fold(parole_ovm::Bloom::ZERO, |mut acc, r| {
            acc.accrue(&r.bloom);
            acc
        });
        assert_eq!(
            block_bloom, want_block_bloom,
            "block bloom diverges at {threads} threads"
        );
        assert_eq!(
            state.state_root(),
            want_root,
            "state root diverges at {threads} threads"
        );
        assert_eq!(
            state.total_supply(),
            serial.total_supply(),
            "fee burn diverges at {threads} threads"
        );
        for u in 1..=users {
            let who = Address::from_low_u64(u);
            assert_eq!(
                state.balance_of(who),
                serial.balance_of(who),
                "balance of user {u} diverges at {threads} threads"
            );
        }
        match &reference_stats {
            None => reference_stats = Some(stats),
            Some(first) => assert_eq!(
                partition_invariant(&stats),
                partition_invariant(first),
                "scheduler stats diverge at {threads} threads"
            ),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sparse pool: many users and tokens, transfer-heavy traffic. Most
    /// speculations should commit clean, and whatever the conflict pattern,
    /// the result is bit-identical to serial at 1, 2 and 8 threads.
    #[test]
    fn sparse_blocks_match_serial(ops in prop::collection::vec(arb_op(12, 24), 1..60)) {
        let (base, coll) = world(12, 24);
        let txs: Vec<_> = ops.iter().map(|o| to_tx(o, coll, FeeBundle::default())).collect();
        assert_bit_identical(Ovm::new(), &base, &txs, 12);
    }

    /// Dense pool: three users fighting over six tokens with mint/burn
    /// repricing in the mix — high abort rates, same bit-identity bar.
    #[test]
    fn dense_blocks_match_serial(ops in prop::collection::vec(arb_op(3, 6), 1..40)) {
        let (base, coll) = world(3, 6);
        let txs: Vec<_> = ops.iter().map(|o| to_tx(o, coll, FeeBundle::default())).collect();
        assert_bit_identical(Ovm::new(), &base, &txs, 3);
    }

    /// Fee charging exercises the validated-commit fast path's fee debit
    /// and the CannotPayFees revert shape (user pools include broke
    /// senders whose accounts don't exist in the base state).
    #[test]
    fn fee_charging_blocks_match_serial(ops in prop::collection::vec(arb_op(8, 12), 1..40)) {
        let (base, coll) = world(6, 12); // users 7..=8 unfunded
        let txs: Vec<_> = ops
            .iter()
            .map(|o| to_tx(o, coll, FeeBundle::from_gwei(30, 2)))
            .collect();
        let charging = Ovm::with_config(OvmConfig { charge_fees: true, ..Default::default() });
        assert_bit_identical(charging, &base, &txs, 8);
    }
}

/// Every transaction shares one sender: the nonce record serializes the
/// whole block, so exactly the first transaction commits clean and every
/// other one aborts and re-executes — still bit-identical.
#[test]
fn all_conflict_same_sender_block() {
    let (base, coll) = world(4, 16);
    let sender = Address::from_low_u64(1);
    let txs: Vec<_> = (0..12u64)
        .map(|t| {
            NftTransaction::simple(
                sender,
                TxKind::Transfer {
                    collection: coll,
                    token: TokenId::new(t % 8),
                    to: Address::from_low_u64(2 + t % 3),
                },
            )
        })
        .collect();

    let mut serial = base.clone();
    let want = Ovm::new().execute_sequence(&mut serial, &txs);

    for threads in THREAD_COUNTS {
        let mut state = base.clone();
        let (got, stats) =
            ParallelExecutor::with_threads(Ovm::new(), threads).execute_block(&mut state, &txs);
        assert_eq!(got, want);
        assert_eq!(state.state_root(), serial.state_root());
        assert_eq!(stats.committed_clean, 1, "only tx 0 can commit clean");
        assert_eq!(stats.conflicts, 11);
        assert_eq!(stats.reexecutions, 11);
    }
}

/// Hot-mint block: distinct senders all minting the same collection. Every
/// mint writes the collection header (supply → price), so each transaction
/// after the first conflicts on the header and pays the serially-correct,
/// monotonically increasing bonding-curve price.
#[test]
fn all_conflict_hot_mint_block() {
    let (base, coll) = world(8, 16);
    let txs: Vec<_> = (0..6u64)
        .map(|i| {
            NftTransaction::simple(
                Address::from_low_u64(i + 1),
                TxKind::Mint {
                    collection: coll,
                    token: TokenId::new(8 + i),
                },
            )
        })
        .collect();

    let mut serial = base.clone();
    let want = Ovm::new().execute_sequence(&mut serial, &txs);
    assert!(want.iter().all(|r| r.is_success()));
    // The serial prices must strictly increase along the block.
    for pair in want.windows(2) {
        assert!(pair[1].price_before > pair[0].price_before);
    }

    for threads in THREAD_COUNTS {
        let mut state = base.clone();
        let (got, stats) =
            ParallelExecutor::with_threads(Ovm::new(), threads).execute_block(&mut state, &txs);
        assert_eq!(got, want);
        assert_eq!(state.state_root(), serial.state_root());
        assert_eq!(stats.conflicts, 5, "header write serializes the block");
    }
}
