//! Property-based tests for the OVM: economic conservation laws and
//! execution invariants under random transaction streams.

use parole_nft::CollectionConfig;
use parole_ovm::{NftTransaction, Ovm, OvmConfig, TxKind};
use parole_primitives::{Address, TokenId, Wei};
use parole_state::L2State;
use proptest::prelude::*;

/// A raw operation the strategy generates; may or may not be executable.
#[derive(Debug, Clone)]
enum RawOp {
    Mint { sender: u64, token: u64 },
    Transfer { sender: u64, token: u64, to: u64 },
    Burn { sender: u64, token: u64 },
}

fn arb_op(users: u64, tokens: u64) -> impl Strategy<Value = RawOp> {
    prop_oneof![
        (0..users, 0..tokens).prop_map(|(sender, token)| RawOp::Mint { sender, token }),
        (0..users, 0..tokens, 0..users).prop_map(|(sender, token, to)| RawOp::Transfer {
            sender,
            token,
            to
        }),
        (0..users, 0..tokens).prop_map(|(sender, token)| RawOp::Burn { sender, token }),
    ]
}

fn world() -> (L2State, Address) {
    let mut state = L2State::new();
    let coll = state.deploy_collection(CollectionConfig::limited_edition("Prop", 12, 200));
    for u in 1..=6u64 {
        state.credit(Address::from_low_u64(u), Wei::from_eth(5));
    }
    (state, coll)
}

fn to_tx(op: &RawOp, coll: Address) -> NftTransaction {
    let a = |v: u64| Address::from_low_u64(v + 1);
    match *op {
        RawOp::Mint { sender, token } => NftTransaction::simple(
            a(sender),
            TxKind::Mint {
                collection: coll,
                token: TokenId::new(token),
            },
        ),
        RawOp::Transfer { sender, token, to } => NftTransaction::simple(
            a(sender),
            TxKind::Transfer {
                collection: coll,
                token: TokenId::new(token),
                to: a(to),
            },
        ),
        RawOp::Burn { sender, token } => NftTransaction::simple(
            a(sender),
            TxKind::Burn {
                collection: coll,
                token: TokenId::new(token),
            },
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// L2 token supply is conserved by every NFT transaction sequence
    /// (payments only move balances between accounts).
    #[test]
    fn value_conservation(ops in prop::collection::vec(arb_op(6, 12), 1..60)) {
        let (mut state, coll) = world();
        let supply_before = state.total_supply();
        let ovm = Ovm::new();
        for op in &ops {
            let _ = ovm.execute(&mut state, &to_tx(op, coll));
        }
        prop_assert_eq!(state.total_supply(), supply_before);
    }

    /// The bonding-curve invariant holds after any stream:
    /// `active + remaining == max_supply` and the price matches Eq. 10.
    #[test]
    fn supply_invariant(ops in prop::collection::vec(arb_op(6, 12), 1..60)) {
        let (mut state, coll) = world();
        let ovm = Ovm::new();
        for op in &ops {
            let _ = ovm.execute(&mut state, &to_tx(op, coll));
        }
        let c = state.collection(coll).unwrap();
        prop_assert_eq!(c.active_supply() + c.remaining_supply(), 12);
        prop_assert_eq!(c.price(), c.price_at_remaining(c.remaining_supply()));
    }

    /// Reverted transactions change nothing except the sender's nonce:
    /// executing the same stream with reverts filtered out produces the
    /// same balances and ownership.
    #[test]
    fn reverts_are_side_effect_free(ops in prop::collection::vec(arb_op(6, 12), 1..40)) {
        let (state, coll) = world();
        let ovm = Ovm::new();
        let txs: Vec<NftTransaction> = ops.iter().map(|o| to_tx(o, coll)).collect();

        let (receipts, full_run) = ovm.simulate_sequence(&state, &txs);
        let executed_only: Vec<NftTransaction> = txs
            .iter()
            .zip(&receipts)
            .filter(|(_, r)| r.is_success())
            .map(|(t, _)| *t)
            .collect();
        let (_, filtered_run) = ovm.simulate_sequence(&state, &executed_only);

        for u in 1..=6u64 {
            let who = Address::from_low_u64(u);
            prop_assert_eq!(full_run.balance_of(who), filtered_run.balance_of(who));
        }
        let a: Vec<_> = full_run.collection(coll).unwrap().iter().collect();
        let b: Vec<_> = filtered_run.collection(coll).unwrap().iter().collect();
        prop_assert_eq!(a, b);
    }

    /// `simulate_sequence` never mutates the input state, and re-running is
    /// deterministic.
    #[test]
    fn simulation_is_pure(ops in prop::collection::vec(arb_op(6, 12), 1..30)) {
        let (state, coll) = world();
        let ovm = Ovm::new();
        let txs: Vec<NftTransaction> = ops.iter().map(|o| to_tx(o, coll)).collect();
        let root_before = state.state_root();
        let (r1, s1) = ovm.simulate_sequence(&state, &txs);
        let (r2, s2) = ovm.simulate_sequence(&state, &txs);
        prop_assert_eq!(state.state_root(), root_before);
        prop_assert_eq!(r1, r2);
        prop_assert_eq!(s1.state_root(), s2.state_root());
    }

    /// Total wealth (L2 balance + NFT holdings at current price) summed over
    /// all users changes only through price moves, never through transfers:
    /// in a stream of transfers only, every user's total-balance sum is
    /// constant.
    #[test]
    fn transfers_conserve_total_wealth(
        pairs in prop::collection::vec((0u64..6, 0u64..6, 0u64..6), 1..30),
    ) {
        let (mut state, coll) = world();
        // Mint a few tokens first so transfers have material.
        let ovm = Ovm::new();
        for i in 0..6u64 {
            let tx = to_tx(&RawOp::Mint { sender: i % 6, token: i }, coll);
            prop_assert!(ovm.execute(&mut state, &tx).is_success());
        }
        let users: Vec<Address> = (1..=6).map(Address::from_low_u64).collect();
        let wealth = |s: &L2State| -> Wei {
            users.iter().map(|&u| s.total_balance_of(u)).sum()
        };
        let before = wealth(&state);
        for (sender, token, to) in pairs {
            let tx = to_tx(&RawOp::Transfer { sender, token, to }, coll);
            let _ = ovm.execute(&mut state, &tx);
        }
        // The creator received mint revenue before the snapshot; transfers
        // keep the user-side wealth pool constant.
        prop_assert_eq!(wealth(&state), before);
    }

    /// Nonce accounting is uniform: every processed transaction bumps the
    /// claimed sender's nonce by exactly one, whatever the outcome. The
    /// stream deliberately mixes every revert reason the OVM can produce —
    /// including `BadSignature` (forged auth) and `CannotPayFees` (broke
    /// senders under fee charging) which historically skipped the bump.
    #[test]
    fn nonce_bump_is_uniform_for_every_outcome(
        ops in prop::collection::vec(arb_op(8, 12), 1..50),
        forge_mask in prop::collection::vec(any::<bool>(), 50),
        fee_mask in prop::collection::vec(any::<bool>(), 50),
    ) {
        use parole_crypto::Wallet;
        use parole_primitives::{FeeBundle, TxNonce};

        let mut state = L2State::new();
        let coll = state.deploy_collection(CollectionConfig::limited_edition("Prop", 12, 200));
        // Users 1..=6 are funded; 7..=8 are broke (CannotPayFees fodder).
        for u in 1..=6u64 {
            state.credit(Address::from_low_u64(u), Wei::from_eth(5));
        }
        let honest = Ovm::new();
        let charging = Ovm::with_config(OvmConfig {
            charge_fees: true,
            ..Default::default()
        });
        let wallet = Wallet::from_seed(3);

        for (i, op) in ops.iter().enumerate() {
            let mut tx = to_tx(op, coll);
            if forge_mask[i] {
                // Signed material re-labelled with a different sender:
                // guaranteed BadSignature.
                let signed = NftTransaction::signed(
                    &wallet,
                    tx.kind,
                    FeeBundle::from_gwei(30, 2),
                    TxNonce::new(0),
                );
                tx = signed;
                tx.sender = to_tx(op, coll).sender;
            }
            let ovm = if fee_mask[i] { &charging } else { &honest };
            let before = state.account(tx.sender).map_or(0, |a| a.nonce.value());
            let _ = ovm.execute(&mut state, &tx);
            let after = state.account(tx.sender).map_or(0, |a| a.nonce.value());
            prop_assert_eq!(
                after,
                before + 1,
                "sender {} nonce must bump exactly once (op {})",
                tx.sender,
                i
            );
        }
    }
}
