//! Property: bloom-accelerated log queries are false-positive-only.
//!
//! [`LogIndex::query`] prunes whole blocks and whole receipts on definitive
//! bloom misses before running the exact per-entry scan. Soundness of that
//! pruning is the contract under test here: for *any* executed history and
//! *any* filter, the accelerated query must return exactly the hits an
//! exhaustive scan over every indexed entry returns — pruning may only ever
//! remove non-matches, never matches. A second property pins the no-false-
//! negative direction at the bloom level: a filter built from items that are
//! actually present in a receipt's logs always passes that receipt's bloom.

use parole_nft::CollectionConfig;
use parole_ovm::{EventKind, LogFilter, LogHit, LogIndex, NftTransaction, Ovm, Receipt, TxKind};
use parole_primitives::{Address, TokenId, Wei};
use parole_state::L2State;
use proptest::prelude::*;

const USERS: u64 = 6;
const TOKENS: u64 = 10;

#[derive(Debug, Clone)]
enum RawOp {
    Mint {
        sender: u64,
        coll: usize,
        token: u64,
    },
    Transfer {
        sender: u64,
        coll: usize,
        token: u64,
        to: u64,
    },
    Burn {
        sender: u64,
        coll: usize,
        token: u64,
    },
    Approve {
        sender: u64,
        coll: usize,
        token: u64,
        to: u64,
    },
    SetForAll {
        sender: u64,
        coll: usize,
        to: u64,
        on: bool,
    },
}

fn arb_op(colls: usize) -> impl Strategy<Value = RawOp> {
    prop_oneof![
        (0..USERS, 0..colls, 0..TOKENS).prop_map(|(sender, coll, token)| RawOp::Mint {
            sender,
            coll,
            token
        }),
        (0..USERS, 0..colls, 0..TOKENS, 0..USERS).prop_map(|(sender, coll, token, to)| {
            RawOp::Transfer {
                sender,
                coll,
                token,
                to,
            }
        }),
        (0..USERS, 0..colls, 0..TOKENS).prop_map(|(sender, coll, token)| RawOp::Burn {
            sender,
            coll,
            token
        }),
        (0..USERS, 0..colls, 0..TOKENS, 0..USERS).prop_map(|(sender, coll, token, to)| {
            RawOp::Approve {
                sender,
                coll,
                token,
                to,
            }
        }),
        (0..USERS, 0..colls, 0..USERS, any::<bool>()).prop_map(|(sender, coll, to, on)| {
            RawOp::SetForAll {
                sender,
                coll,
                to,
                on,
            }
        }),
    ]
}

/// A filter assembled from independently-optional constraints. Alien values
/// (collection 999, user 999) are in the pools so queries that match nothing
/// — the pure bloom-skip regime — are generated too.
fn arb_filter(max_block: u64) -> impl Strategy<Value = LogFilter> {
    let coll_pool = prop_oneof![0..4usize, Just(999usize)];
    let user_pool = prop_oneof![0..USERS, Just(999u64)];
    let kind_pool = prop_oneof![
        Just(EventKind::Transfer),
        Just(EventKind::Approval),
        Just(EventKind::ApprovalForAll),
        Just(EventKind::PriceChanged),
    ];
    (
        (any::<bool>(), 0..=max_block, 0..=max_block),
        (any::<bool>(), coll_pool),
        (any::<bool>(), kind_pool),
        (any::<bool>(), user_pool),
    )
        .prop_map(
            |((use_range, a, b), (use_coll, c), (use_kind, k), (use_addr, u))| {
                let mut filter = LogFilter::all();
                if use_range {
                    filter = filter.in_blocks(a.min(b), a.max(b));
                }
                if use_coll {
                    filter = filter.in_collection(coll_addr(c));
                }
                if use_kind {
                    filter = filter.of_kind(k);
                }
                if use_addr {
                    filter = filter.involving(Address::from_low_u64(u + 1));
                }
                filter
            },
        )
}

fn coll_addr(i: usize) -> Address {
    // Deterministic stand-in used only for filters that target a collection
    // by pool position; resolved against the really-deployed addresses in
    // `executed_history`. Index 999 maps to an address no deploy ever uses.
    Address::from_low_u64(77_000 + i as u64)
}

fn to_tx(op: &RawOp, colls: &[Address]) -> NftTransaction {
    let a = |v: u64| Address::from_low_u64(v + 1);
    let (sender, kind) = match *op {
        RawOp::Mint {
            sender,
            coll,
            token,
        } => (
            sender,
            TxKind::Mint {
                collection: colls[coll],
                token: TokenId::new(token),
            },
        ),
        RawOp::Transfer {
            sender,
            coll,
            token,
            to,
        } => (
            sender,
            TxKind::Transfer {
                collection: colls[coll],
                token: TokenId::new(token),
                to: a(to),
            },
        ),
        RawOp::Burn {
            sender,
            coll,
            token,
        } => (
            sender,
            TxKind::Burn {
                collection: colls[coll],
                token: TokenId::new(token),
            },
        ),
        RawOp::Approve {
            sender,
            coll,
            token,
            to,
        } => (
            sender,
            TxKind::Approve {
                collection: colls[coll],
                token: TokenId::new(token),
                operator: a(to),
            },
        ),
        RawOp::SetForAll {
            sender,
            coll,
            to,
            on,
        } => (
            sender,
            TxKind::SetApprovalForAll {
                collection: colls[coll],
                operator: a(to),
                approved: on,
            },
        ),
    };
    NftTransaction::simple(a(sender), kind)
}

/// Per-block receipts of an executed history: `(block number, receipts)`.
type BlockReceipts = Vec<(u64, Vec<Receipt>)>;

/// Executes `ops` in blocks of `block_size`, indexing each block; returns
/// the index, the per-block receipts, and the deployed collection addresses.
fn executed_history(
    ops: &[RawOp],
    block_size: usize,
    colls: usize,
) -> (LogIndex, BlockReceipts, Vec<Address>) {
    let mut state = L2State::new();
    let addrs: Vec<Address> = (0..colls)
        .map(|i| {
            state.deploy_collection(CollectionConfig::limited_edition(
                &format!("Lp{i}"),
                TOKENS.max(4),
                150,
            ))
        })
        .collect();
    for u in 1..=USERS {
        state.credit(Address::from_low_u64(u), Wei::from_eth(10));
    }
    // Pre-mint half the pool per collection so transfers/burns have material.
    for (i, &addr) in addrs.iter().enumerate() {
        for t in 0..TOKENS / 2 {
            state
                .nft_mint(
                    addr,
                    Address::from_low_u64((t + i as u64) % USERS + 1),
                    TokenId::new(t),
                )
                .expect("deployed")
                .unwrap();
        }
    }

    let ovm = Ovm::new();
    let mut index = LogIndex::new();
    let mut blocks = Vec::new();
    for (number, chunk) in ops.chunks(block_size.max(1)).enumerate() {
        let txs: Vec<_> = chunk.iter().map(|op| to_tx(op, &addrs)).collect();
        let receipts = ovm.execute_sequence(&mut state, &txs);
        index.index_block(number as u64, &receipts);
        blocks.push((number as u64, receipts));
    }
    (index, blocks, addrs)
}

/// The specification `LogIndex::query` must agree with: scan every entry of
/// every in-range block with no bloom shortcuts at all.
fn exhaustive_query(blocks: &[(u64, Vec<Receipt>)], filter: &LogFilter) -> Vec<LogHit> {
    let mut hits = Vec::new();
    for (number, receipts) in blocks {
        if !filter.covers_block(*number) {
            continue;
        }
        for r in receipts {
            for (log_index, entry) in r.logs.iter().enumerate() {
                if filter.matches(entry) {
                    hits.push(LogHit {
                        block: *number,
                        tx_hash: r.tx_hash,
                        log_index,
                        entry: *entry,
                    });
                }
            }
        }
    }
    hits
}

/// Rewrites pool-position filter targets onto the really-deployed addresses
/// (position 999 stays alien on purpose).
fn resolve_collection(filter: LogFilter, addrs: &[Address]) -> LogFilter {
    let mut filter = filter;
    if let Some(c) = filter.collection {
        if let Some(i) = (0..addrs.len()).find(|&i| coll_addr(i) == c) {
            filter.collection = Some(addrs[i]);
        }
    }
    filter
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// For any executed history and any batch of filters, the bloom-pruned
    /// query equals the exhaustive scan exactly — order included. Pruning
    /// is thereby false-positive-only: a bloom skip never drops a hit.
    #[test]
    fn bloom_pruned_queries_equal_exhaustive_scans(
        ops in prop::collection::vec(arb_op(3), 1..80),
        filters in prop::collection::vec(arb_filter(12), 1..12),
    ) {
        let (index, blocks, addrs) = executed_history(&ops, 7, 3);
        for raw in filters {
            let filter = resolve_collection(raw, &addrs);
            let fast = index.query(&filter);
            let slow = exhaustive_query(&blocks, &filter);
            prop_assert_eq!(fast, slow, "bloom pruning changed the result set for {:?}", filter);
        }
    }

    /// No false negatives at the bloom level: a filter built from items that
    /// really occur in a receipt's log stream always passes that receipt's
    /// bloom and the enclosing block bloom.
    #[test]
    fn present_items_always_pass_the_bloom(
        ops in prop::collection::vec(arb_op(2), 1..60),
    ) {
        let (index, blocks, _) = executed_history(&ops, 5, 2);
        for (number, receipts) in &blocks {
            let block_bloom = index.block_bloom(*number).expect("indexed");
            for r in receipts {
                for entry in &r.logs {
                    let f = LogFilter::all()
                        .in_collection(entry.collection)
                        .of_kind(entry.kind());
                    prop_assert!(f.might_match(&r.bloom));
                    prop_assert!(f.might_match(block_bloom));
                    for who in entry.addresses() {
                        let fa = LogFilter::all().involving(who);
                        prop_assert!(fa.might_match(&r.bloom));
                        prop_assert!(fa.might_match(block_bloom));
                    }
                }
            }
        }
    }
}
