//! The OCC scheduler's telemetry is thread-count invariant: running the
//! same block at 1, 2 and 8 workers must export bit-identical counter and
//! histogram totals (`parallel.*` scheduler metrics and the underlying
//! `ovm.*` execution counters alike). This holds because the pipeline never
//! short-circuits — even one worker speculates, validates and commits — and
//! speculation outcomes are partition-independent.
//!
//! Exactly one `#[test]` in this binary: the telemetry registry is
//! process-global, and a single-test integration binary is the isolation
//! unit that keeps concurrent test runners from interleaving recordings.

#![cfg(feature = "telemetry")]

use parole_nft::CollectionConfig;
use parole_ovm::{NftTransaction, Ovm, ParallelExecutor, TxKind};
use parole_primitives::{Address, TokenId, Wei};
use parole_state::L2State;
use parole_telemetry as tel;

#[test]
fn occ_scheduler_telemetry_is_thread_count_invariant() {
    let mut base = L2State::new();
    let coll = base.deploy_collection(CollectionConfig::limited_edition("Tel", 64, 200));
    for u in 1..=16u64 {
        base.credit(Address::from_low_u64(u), Wei::from_eth(10));
    }
    for t in 0..8u64 {
        base.nft_mint(coll, Address::from_low_u64(t + 1), TokenId::new(t))
            .unwrap()
            .unwrap();
    }
    // A block mixing clean transfer traffic with header-conflicting mints
    // and one all-conflict same-sender pair.
    let mut txs: Vec<NftTransaction> = (0..6u64)
        .map(|t| {
            NftTransaction::simple(
                Address::from_low_u64(t + 1),
                TxKind::Transfer {
                    collection: coll,
                    token: TokenId::new(t),
                    to: Address::from_low_u64(t + 9),
                },
            )
        })
        .collect();
    for i in 0..3u64 {
        txs.push(NftTransaction::simple(
            Address::from_low_u64(7 + i % 2),
            TxKind::Mint {
                collection: coll,
                token: TokenId::new(20 + i),
            },
        ));
    }

    let mut snaps = Vec::new();
    let mut roots = Vec::new();
    for &threads in &[1usize, 2, 8] {
        tel::reset();
        let mut state = base.clone();
        let (receipts, stats) =
            ParallelExecutor::with_threads(Ovm::new(), threads).execute_block(&mut state, &txs);
        assert_eq!(receipts.len(), txs.len());
        assert_eq!(stats.speculations, txs.len() as u64);
        snaps.push(tel::snapshot());
        roots.push(state.state_root());
    }
    tel::reset();

    let base_snap = &snaps[0];
    assert!(
        base_snap.counter("parallel.blocks") >= 1,
        "scheduler counters must be armed under the telemetry feature"
    );
    assert!(
        base_snap.counter("parallel.conflicts") >= 1,
        "mint pair must conflict"
    );
    for snap in &snaps[1..] {
        assert_eq!(
            snap.counters, base_snap.counters,
            "counter totals must not depend on the worker count"
        );
        assert_eq!(
            snap.histograms, base_snap.histograms,
            "histogram contents must not depend on the worker count"
        );
    }
    assert!(roots.windows(2).all(|w| w[0] == w[1]));
}
