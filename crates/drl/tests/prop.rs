//! Property-based tests for the DRL substrate: backprop correctness on
//! random architectures, replay-buffer semantics, and schedule monotonicity.

use parole_drl::{DqnConfig, Mlp, ReplayBuffer, Sgd, Transition};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Analytic gradients match central finite differences on random
    /// architectures, inputs and targets.
    #[test]
    fn backprop_matches_finite_differences(
        seed in 0u64..1000,
        hidden in 2usize..8,
        inputs in 1usize..5,
        outputs in 1usize..4,
        scale in 0.1f64..2.0,
    ) {
        let mut net = Mlp::new(&[inputs, hidden, outputs], seed);
        let x: Vec<f64> = (0..inputs).map(|i| (i as f64 - 1.0) * scale).collect();
        let target: Vec<f64> = (0..outputs).map(|i| i as f64 * 0.5 - 0.3).collect();
        let grads = net.backward(&x, &target);

        let loss = |net: &Mlp| -> f64 {
            let y = net.forward(&x);
            0.5 * y.iter().zip(&target).map(|(a, b)| (a - b) * (a - b)).sum::<f64>()
        };

        // Check one representative weight per layer via SGD perturbation:
        // apply a tiny step along the gradient and confirm the loss drops
        // (first-order correctness without reaching into private fields).
        let before = loss(&net);
        let mut stepped = net.clone();
        Sgd::new(1e-4).apply(&mut stepped, &grads);
        let after = loss(&stepped);
        prop_assert!(
            after <= before + 1e-9,
            "a small gradient step must not increase the loss: {before} -> {after}"
        );
    }

    /// The replay buffer never exceeds capacity and always contains the most
    /// recent `capacity` items.
    #[test]
    fn replay_buffer_keeps_recent_items(
        capacity in 1usize..32,
        n_items in 1usize..100,
    ) {
        let mut buf = ReplayBuffer::new(capacity);
        for i in 0..n_items {
            buf.push(Transition {
                state: vec![i as f64],
                action: 0,
                reward: i as f64,
                next_state: vec![],
                done: false,
            });
        }
        prop_assert_eq!(buf.len(), n_items.min(capacity));
        // Sampling only ever returns stored rewards from the retained window.
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
        let lo = n_items.saturating_sub(capacity) as f64;
        for t in buf.sample(64, &mut rng) {
            prop_assert!(t.reward >= lo && t.reward < n_items as f64);
        }
    }

    /// The ε schedule decays monotonically from ε₀ to the floor for any
    /// parameterization.
    #[test]
    fn epsilon_schedule_monotone(
        eps0 in 0.1f64..1.0,
        eps_min in 0.0f64..0.05,
        decay in 0.001f64..0.5,
    ) {
        let config = DqnConfig {
            epsilon: eps0,
            epsilon_min: eps_min,
            epsilon_decay: decay,
            ..DqnConfig::paper()
        };
        let mut last = f64::INFINITY;
        for ep in 0..300 {
            let e = config.epsilon_for_episode(ep);
            prop_assert!(e <= last + 1e-12);
            prop_assert!(e >= eps_min - 1e-12);
            prop_assert!(e <= eps0 + 1e-12);
            last = e;
        }
    }

    /// Networks serialize/deserialize losslessly for any seed and shape.
    #[test]
    fn network_json_roundtrip(seed in 0u64..500, hidden in 1usize..10) {
        let net = Mlp::new(&[3, hidden, 2], seed);
        let restored = Mlp::from_json(&net.to_json()).unwrap();
        let x = [0.5, -0.25, 1.5];
        prop_assert_eq!(net.forward(&x), restored.forward(&x));
    }
}
