//! The deep Q-network agent.

use crate::{Adam, BatchScratch, Environment, Mlp, ReplayBuffer, Transition};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// DQN hyper-parameters.
///
/// [`DqnConfig::paper`] reproduces the paper's Table II. The paper prints the
/// ε-decay schedule (its Eq. 9) as
/// `ε_i = ε_min + (ε_max − ε_min)^{−(d·i)}`, which as written is
/// dimensionally wrong (it exceeds 1 for every `i > 0`); we implement the
/// standard exponential decay the text describes ("the value of ε decays"):
/// `ε_i = ε_min + (ε_max − ε_min)·e^{−d·i}`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DqnConfig {
    /// Initial exploration rate ε (Table II: 0.95).
    pub epsilon: f64,
    /// Floor the exploration rate decays towards.
    pub epsilon_min: f64,
    /// Decay parameter `d` (Table II: 0.05).
    pub epsilon_decay: f64,
    /// Discount factor γ (Table II: 0.618).
    pub gamma: f64,
    /// Training episodes (Table II: 100).
    pub episodes: usize,
    /// Steps per episode (Table II: 200).
    pub max_steps: usize,
    /// TD blending rate α (Table II: 0.7): the regression target is
    /// `Q + α·(TD-target − Q)` rather than the raw TD target.
    pub alpha: f64,
    /// Replay memory capacity (Table II: 5 000).
    pub replay_capacity: usize,
    /// Train the Q-network every this many steps (Table II: 5).
    pub q_update_every: usize,
    /// Copy Q-network weights into the target network every this many steps
    /// (Table II: 30).
    pub target_update_every: usize,
    /// Minibatch size per Q-network update.
    pub batch_size: usize,
    /// Hidden layer widths of the Q-network.
    pub hidden: [usize; 2],
    /// Adam step size for the network fit (distinct from `alpha`, which
    /// blends TD targets).
    pub nn_learning_rate: f64,
    /// RNG seed (exploration, replay sampling, weight init).
    pub seed: u64,
    /// Use Double-DQN targets (van Hasselt et al.): the online network
    /// selects the bootstrap action, the target network values it. Off in
    /// [`DqnConfig::paper`] (the paper describes vanilla DQN); exposed for
    /// the ablation benches.
    pub double_dqn: bool,
}

impl DqnConfig {
    /// The exact Table II configuration.
    pub fn paper() -> Self {
        DqnConfig {
            epsilon: 0.95,
            epsilon_min: 0.01,
            epsilon_decay: 0.05,
            gamma: 0.618,
            episodes: 100,
            max_steps: 200,
            alpha: 0.7,
            replay_capacity: 5_000,
            q_update_every: 5,
            target_update_every: 30,
            batch_size: 32,
            hidden: [128, 128],
            nn_learning_rate: 1e-3,
            seed: 0,
            double_dqn: false,
        }
    }

    /// A scaled-down configuration for fast tests and smoke benches.
    pub fn fast() -> Self {
        DqnConfig {
            episodes: 30,
            max_steps: 60,
            hidden: [32, 32],
            ..DqnConfig::paper()
        }
    }

    /// Returns the exploration rate for episode `i` (see the type-level note
    /// on the paper's Eq. 9).
    pub fn epsilon_for_episode(&self, episode: usize) -> f64 {
        self.epsilon_min
            + (self.epsilon - self.epsilon_min) * (-self.epsilon_decay * episode as f64).exp()
    }
}

impl Default for DqnConfig {
    fn default() -> Self {
        DqnConfig::paper()
    }
}

/// Per-episode training statistics (drives the Fig. 8 reward curves).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpisodeStats {
    /// Episode index.
    pub episode: usize,
    /// Sum of rewards over the episode (`R^i` in the paper's Eq. 7).
    pub total_reward: f64,
    /// ε used during the episode.
    pub epsilon: f64,
    /// Steps actually taken (≤ `max_steps`; early termination on `done`).
    pub steps: usize,
}

/// A deep Q-network agent: Q-network + target network + replay buffer +
/// ε-greedy policy (paper Fig. 2 / Fig. 4).
#[derive(Debug, Clone)]
pub struct DqnAgent {
    config: DqnConfig,
    q_net: Mlp,
    target_net: Mlp,
    buffer: ReplayBuffer,
    optimizer: Adam,
    rng: StdRng,
    steps_seen: usize,
    /// Reusable flat batch buffers and activation planes for
    /// [`DqnAgent::train_step`]; kept across updates so a training run does
    /// not re-allocate per minibatch.
    batch_states: Vec<f64>,
    batch_next: Vec<f64>,
    batch_targets: Vec<f64>,
    scratch: BatchScratch,
    next_scratch: BatchScratch,
}

impl DqnAgent {
    /// Creates an agent for the given observation/action dimensions.
    pub fn new(state_dim: usize, action_count: usize, config: DqnConfig) -> Self {
        let sizes = [state_dim, config.hidden[0], config.hidden[1], action_count];
        let q_net = Mlp::new(&sizes, config.seed);
        let mut target_net = Mlp::new(&sizes, config.seed.wrapping_add(1));
        target_net.copy_from(&q_net);
        DqnAgent {
            q_net,
            target_net,
            buffer: ReplayBuffer::new(config.replay_capacity),
            optimizer: Adam::new(config.nn_learning_rate),
            rng: StdRng::seed_from_u64(config.seed.wrapping_add(2)),
            config,
            steps_seen: 0,
            batch_states: Vec::new(),
            batch_next: Vec::new(),
            batch_targets: Vec::new(),
            scratch: BatchScratch::default(),
            next_scratch: BatchScratch::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &DqnConfig {
        &self.config
    }

    /// The Q-network (e.g. for parameter counting in Fig. 11(b)).
    pub fn q_network(&self) -> &Mlp {
        &self.q_net
    }

    /// Number of experiences currently in the replay buffer.
    pub fn replay_len(&self) -> usize {
        self.buffer.len()
    }

    /// Greedy action for `state` (pure exploitation — inference mode).
    pub fn act_greedy(&self, state: &[f64]) -> usize {
        argmax(&self.q_net.forward(state))
    }

    /// ε-greedy action for `state` with the given exploration rate.
    pub fn act(&mut self, state: &[f64], epsilon: f64) -> usize {
        if self.rng.gen::<f64>() < epsilon {
            self.rng.gen_range(0..self.q_net.output_dim())
        } else {
            self.act_greedy(state)
        }
    }

    /// Stores an experience in the replay buffer.
    pub fn remember(&mut self, t: Transition) {
        self.buffer.push(t);
    }

    /// Performs one minibatch Q-network update from replay (the `QNet.update`
    /// line of the paper's Algorithm 1). Returns the mean TD error of the
    /// batch, or `None` when the buffer is still empty.
    ///
    /// The whole minibatch goes through [`Mlp::forward_batch`] /
    /// [`Mlp::backward_batch`] (one matrix-shaped pass over reusable scratch
    /// planes instead of `batch_size` per-sample passes), which is
    /// bit-identical to the per-sample formulation: sampling consumes the RNG
    /// draw for draw like [`ReplayBuffer::sample`], and the batched backward
    /// accumulates per-sample gradients in the same order the old
    /// `Gradients::accumulate` chain did.
    pub fn train_step(&mut self) -> Option<f64> {
        let indices = self
            .buffer
            .sample_indices(self.config.batch_size, &mut self.rng);
        if indices.is_empty() {
            return None;
        }
        let batch = indices.len();
        let out_dim = self.q_net.output_dim();

        // Gather the sampled transitions into flat sample-major planes.
        self.batch_states.clear();
        self.batch_next.clear();
        let mut actions = Vec::with_capacity(batch);
        let mut rewards = Vec::with_capacity(batch);
        let mut dones = Vec::with_capacity(batch);
        for &i in &indices {
            let t = self.buffer.get(i);
            self.batch_states.extend_from_slice(&t.state);
            self.batch_next.extend_from_slice(&t.next_state);
            actions.push(t.action);
            rewards.push(t.reward);
            dones.push(t.done);
        }

        // TD bootstrap through the *target* network, one batched forward.
        // `done` rows ride along (forwarding is side-effect free and their
        // outputs are discarded) — cheaper than compacting the plane.
        let mut bootstrap = vec![0.0; batch];
        if self.config.double_dqn {
            // Double DQN: online net picks the action, target net rates it.
            let target_next = self
                .target_net
                .forward_batch(&self.batch_next, batch, &mut self.next_scratch)
                .to_vec();
            let online_next =
                self.q_net
                    .forward_batch(&self.batch_next, batch, &mut self.next_scratch);
            for b in 0..batch {
                if !dones[b] {
                    let row = &online_next[b * out_dim..(b + 1) * out_dim];
                    let chosen = argmax(row);
                    bootstrap[b] = self.config.gamma * target_next[b * out_dim + chosen];
                }
            }
        } else {
            let target_next =
                self.target_net
                    .forward_batch(&self.batch_next, batch, &mut self.next_scratch);
            for b in 0..batch {
                if !dones[b] {
                    let row = &target_next[b * out_dim..(b + 1) * out_dim];
                    bootstrap[b] =
                        self.config.gamma * row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                }
            }
        }

        // Online forward last, so the activation planes left in `scratch`
        // belong to the states and feed straight into the backward pass.
        let q_rows = self
            .q_net
            .forward_batch(&self.batch_states, batch, &mut self.scratch);
        self.batch_targets.clear();
        self.batch_targets.extend_from_slice(q_rows);
        let mut total_td = 0.0;
        for b in 0..batch {
            let slot = b * out_dim + actions[b];
            let current_q = self.batch_targets[slot];
            let td_error = (rewards[b] + bootstrap[b]) - current_q;
            total_td += td_error.abs();
            // α-blended regression target (Table II's learning rate).
            self.batch_targets[slot] = current_q + self.config.alpha * td_error;
        }

        let mut grads = self
            .q_net
            .backward_batch(&self.batch_targets, batch, &self.scratch);
        grads.scale(1.0 / batch as f64);
        grads.clip(10.0);
        self.optimizer.apply(&mut self.q_net, &grads);
        let mean_td = total_td / batch as f64;
        parole_telemetry::counter("drl.train_steps", 1);
        parole_telemetry::observe_f64("drl.td_error", mean_td);
        Some(mean_td)
    }

    /// Copies the Q-network into the target network.
    pub fn sync_target(&mut self) {
        self.target_net.copy_from(&self.q_net);
    }

    /// Runs one training episode against `env` with exploration rate
    /// `epsilon`, handling replay, periodic Q-updates and target syncs.
    pub fn run_episode<E: Environment>(
        &mut self,
        env: &mut E,
        episode: usize,
        epsilon: f64,
    ) -> EpisodeStats {
        let _span = parole_telemetry::span("drl.run_episode");
        let mut state = env.reset();
        let mut total_reward = 0.0;
        let mut steps = 0;
        for _ in 0..self.config.max_steps {
            let action = self.act(&state, epsilon);
            let outcome = env.step(action);
            total_reward += outcome.reward;
            self.remember(Transition {
                state: state.clone(),
                action,
                reward: outcome.reward,
                next_state: outcome.next_state.clone(),
                done: outcome.done,
            });
            state = outcome.next_state;
            steps += 1;
            self.steps_seen += 1;
            if self.steps_seen.is_multiple_of(self.config.q_update_every) {
                self.train_step();
            }
            if self
                .steps_seen
                .is_multiple_of(self.config.target_update_every)
            {
                self.sync_target();
            }
            if outcome.done {
                break;
            }
        }
        parole_telemetry::counter("drl.episodes", 1);
        parole_telemetry::counter("drl.steps", steps as u64);
        parole_telemetry::observe_f64("drl.episode_reward", total_reward);
        parole_telemetry::observe_f64("drl.epsilon", epsilon);
        parole_telemetry::observe("drl.replay_occupancy", self.buffer.len() as u64);
        EpisodeStats {
            episode,
            total_reward,
            epsilon,
            steps,
        }
    }

    /// Full training run: `config.episodes` episodes with the ε schedule,
    /// returning per-episode statistics.
    pub fn train<E: Environment>(&mut self, env: &mut E) -> Vec<EpisodeStats> {
        (0..self.config.episodes)
            .map(|ep| {
                let epsilon = self.config.epsilon_for_episode(ep);
                self.run_episode(env, ep, epsilon)
            })
            .collect()
    }
}

/// Index of the maximum element (first on ties).
fn argmax(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

/// Moving average with the paper's Fig. 8 window (window size 9).
pub fn moving_average(values: &[f64], window: usize) -> Vec<f64> {
    if window == 0 || values.is_empty() {
        return Vec::new();
    }
    values
        .windows(window.min(values.len()))
        .map(|w| w.iter().sum::<f64>() / w.len() as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StepOutcome;

    /// A 1-D line world: start at 0, goal at +4, actions {left, right}.
    /// Optimal return under γ < 1 requires heading right every step.
    struct LineWorld {
        pos: i32,
    }

    impl Environment for LineWorld {
        fn state_dim(&self) -> usize {
            1
        }
        fn action_count(&self) -> usize {
            2
        }
        fn reset(&mut self) -> Vec<f64> {
            self.pos = 0;
            vec![0.0]
        }
        fn step(&mut self, action: usize) -> StepOutcome {
            self.pos += if action == 1 { 1 } else { -1 };
            let done = self.pos >= 4 || self.pos <= -4;
            let reward = if self.pos >= 4 {
                10.0
            } else if self.pos <= -4 {
                -10.0
            } else {
                -0.1
            };
            StepOutcome {
                reward,
                next_state: vec![self.pos as f64 / 4.0],
                done,
            }
        }
    }

    #[test]
    fn epsilon_schedule_decays_to_floor() {
        let config = DqnConfig::paper();
        assert!((config.epsilon_for_episode(0) - 0.95).abs() < 1e-12);
        let mid = config.epsilon_for_episode(50);
        assert!(mid < 0.95 && mid > config.epsilon_min);
        let late = config.epsilon_for_episode(10_000);
        assert!((late - config.epsilon_min).abs() < 1e-6);
        // Monotone non-increasing.
        let mut last = f64::INFINITY;
        for ep in 0..200 {
            let e = config.epsilon_for_episode(ep);
            assert!(e <= last);
            last = e;
        }
    }

    #[test]
    fn double_dqn_also_learns_line_world() {
        let config = DqnConfig {
            episodes: 60,
            max_steps: 30,
            hidden: [16, 16],
            nn_learning_rate: 5e-3,
            seed: 3,
            double_dqn: true,
            ..DqnConfig::paper()
        };
        let mut agent = DqnAgent::new(1, 2, config);
        let mut env = LineWorld { pos: 0 };
        let stats = agent.train(&mut env);
        let late: f64 = stats[stats.len() - 10..]
            .iter()
            .map(|s| s.total_reward)
            .sum::<f64>()
            / 10.0;
        let early: f64 = stats[..10].iter().map(|s| s.total_reward).sum::<f64>() / 10.0;
        assert!(
            late > early,
            "double-DQN reward should improve: {early} -> {late}"
        );
    }

    #[test]
    fn table2_defaults() {
        let c = DqnConfig::paper();
        assert_eq!(c.epsilon, 0.95);
        assert_eq!(c.epsilon_decay, 0.05);
        assert_eq!(c.gamma, 0.618);
        assert_eq!(c.episodes, 100);
        assert_eq!(c.max_steps, 200);
        assert_eq!(c.alpha, 0.7);
        assert_eq!(c.replay_capacity, 5_000);
        assert_eq!(c.q_update_every, 5);
        assert_eq!(c.target_update_every, 30);
    }

    #[test]
    fn agent_learns_line_world() {
        let config = DqnConfig {
            episodes: 60,
            max_steps: 30,
            hidden: [16, 16],
            nn_learning_rate: 5e-3,
            seed: 3,
            ..DqnConfig::paper()
        };
        let mut agent = DqnAgent::new(1, 2, config);
        let mut env = LineWorld { pos: 0 };
        let stats = agent.train(&mut env);
        assert_eq!(stats.len(), 60);

        // After training, greedy policy should walk straight to the goal.
        let mut env = LineWorld { pos: 0 };
        let mut state = env.reset();
        let mut reached = false;
        for _ in 0..8 {
            let action = agent.act_greedy(&state);
            let out = env.step(action);
            state = out.next_state;
            if out.done && out.reward > 0.0 {
                reached = true;
                break;
            }
        }
        assert!(reached, "trained agent should reach the +4 goal greedily");

        // Later episodes should outperform the earliest ones on average.
        let early: f64 = stats[..10].iter().map(|s| s.total_reward).sum::<f64>() / 10.0;
        let late: f64 = stats[stats.len() - 10..]
            .iter()
            .map(|s| s.total_reward)
            .sum::<f64>()
            / 10.0;
        assert!(
            late > early,
            "reward should improve: early {early}, late {late}"
        );
    }

    #[test]
    fn act_greedy_is_deterministic() {
        let agent = DqnAgent::new(2, 3, DqnConfig::fast());
        let s = [0.3, -0.2];
        assert_eq!(agent.act_greedy(&s), agent.act_greedy(&s));
    }

    #[test]
    fn epsilon_one_explores_epsilon_zero_exploits() {
        let mut agent = DqnAgent::new(
            1,
            4,
            DqnConfig {
                seed: 9,
                ..DqnConfig::fast()
            },
        );
        let s = [0.5];
        let greedy = agent.act_greedy(&s);
        // ε = 0 always matches greedy.
        for _ in 0..10 {
            assert_eq!(agent.act(&s, 0.0), greedy);
        }
        // ε = 1 eventually picks something else.
        let mut saw_other = false;
        for _ in 0..100 {
            if agent.act(&s, 1.0) != greedy {
                saw_other = true;
                break;
            }
        }
        assert!(saw_other);
    }

    #[test]
    fn train_step_reports_td_error() {
        let mut agent = DqnAgent::new(1, 2, DqnConfig::fast());
        assert!(
            agent.train_step().is_none(),
            "empty buffer yields no update"
        );
        agent.remember(Transition {
            state: vec![0.0],
            action: 0,
            reward: 1.0,
            next_state: vec![0.5],
            done: false,
        });
        let td = agent.train_step().expect("buffer non-empty");
        assert!(td.is_finite());
    }

    #[test]
    fn moving_average_matches_paper_window() {
        let vals: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let ma = moving_average(&vals, 9);
        assert_eq!(ma.len(), 4);
        assert!((ma[0] - 4.0).abs() < 1e-12); // mean of 0..=8
        assert!(moving_average(&[], 9).is_empty());
        assert!(moving_average(&vals, 0).is_empty());
    }
}
