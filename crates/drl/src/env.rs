//! The environment abstraction the DQN agent trains against.

/// Result of taking one action in an [`Environment`].
#[derive(Debug, Clone, PartialEq)]
pub struct StepOutcome {
    /// Reward for the action.
    pub reward: f64,
    /// Observation after the action.
    pub next_state: Vec<f64>,
    /// Whether the episode should terminate now.
    pub done: bool,
}

/// A discrete-action MDP.
///
/// The GENTRANSEQ transaction re-ordering environment implements this in the
/// `parole` core crate; the tests here use a toy line-world.
pub trait Environment {
    /// Dimensionality of the observation vector.
    fn state_dim(&self) -> usize;

    /// Number of discrete actions.
    fn action_count(&self) -> usize;

    /// Resets the environment for a new episode, returning the initial
    /// observation.
    fn reset(&mut self) -> Vec<f64>;

    /// Applies `action`, returning the outcome.
    ///
    /// # Panics
    ///
    /// Implementations may panic when `action ≥ action_count()`.
    fn step(&mut self, action: usize) -> StepOutcome;
}
