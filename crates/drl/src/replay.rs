//! The replay memory buffer.

use rand::rngs::StdRng;
use rand::Rng;

/// One stored experience `(s, a, r, s', done)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// Observation before the action.
    pub state: Vec<f64>,
    /// The action taken (index into the Q-value vector).
    pub action: usize,
    /// Reward received.
    pub reward: f64,
    /// Observation after the action.
    pub next_state: Vec<f64>,
    /// Whether the episode terminated at this step (no bootstrap).
    pub done: bool,
}

/// A fixed-capacity ring buffer of [`Transition`]s — the paper's "reply
/// memory buffer" of 5 000 experiences (Table II).
///
/// # Example
///
/// ```
/// use parole_drl::{ReplayBuffer, Transition};
/// let mut buf = ReplayBuffer::new(2);
/// for i in 0..3 {
///     buf.push(Transition {
///         state: vec![i as f64],
///         action: 0,
///         reward: 0.0,
///         next_state: vec![],
///         done: false,
///     });
/// }
/// assert_eq!(buf.len(), 2); // oldest evicted
/// ```
#[derive(Debug, Clone)]
pub struct ReplayBuffer {
    items: Vec<Transition>,
    capacity: usize,
    /// Next write position once the buffer is full.
    write: usize,
}

impl ReplayBuffer {
    /// Creates a buffer holding at most `capacity` transitions.
    ///
    /// # Panics
    ///
    /// Panics on zero capacity.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        ReplayBuffer {
            items: Vec::with_capacity(capacity.min(4096)),
            capacity,
            write: 0,
        }
    }

    /// Number of stored transitions.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Stores a transition, evicting the oldest when full.
    pub fn push(&mut self, t: Transition) {
        if self.items.len() < self.capacity {
            self.items.push(t);
        } else {
            self.items[self.write] = t;
            self.write = (self.write + 1) % self.capacity;
        }
    }

    /// Samples `batch` transitions uniformly **with replacement**: every
    /// draw is independent, so the result can (and for `batch > len()`
    /// *must*) contain duplicates, and always has exactly `batch` entries.
    /// This mirrors the common DQN formulation where each minibatch slot is
    /// an i.i.d. draw from replay memory; it deliberately does not dedupe or
    /// shrink the batch while the buffer is still filling.
    ///
    /// Returns an empty vector when the buffer is empty.
    pub fn sample(&self, batch: usize, rng: &mut StdRng) -> Vec<&Transition> {
        self.sample_indices(batch, rng)
            .into_iter()
            .map(|i| &self.items[i])
            .collect()
    }

    /// Index-returning variant of [`ReplayBuffer::sample`] (same
    /// with-replacement semantics, same RNG consumption draw for draw), for
    /// callers that gather fields into flat batch buffers instead of cloning
    /// whole transitions.
    pub fn sample_indices(&self, batch: usize, rng: &mut StdRng) -> Vec<usize> {
        if self.items.is_empty() {
            return Vec::new();
        }
        (0..batch)
            .map(|_| rng.gen_range(0..self.items.len()))
            .collect()
    }

    /// The transition in storage slot `idx` (as returned by
    /// [`ReplayBuffer::sample_indices`]).
    ///
    /// # Panics
    ///
    /// Panics when `idx >= len()`.
    pub fn get(&self, idx: usize) -> &Transition {
        &self.items[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn t(v: f64) -> Transition {
        Transition {
            state: vec![v],
            action: 0,
            reward: v,
            next_state: vec![v + 1.0],
            done: false,
        }
    }

    #[test]
    fn fills_then_wraps() {
        let mut buf = ReplayBuffer::new(3);
        for i in 0..5 {
            buf.push(t(i as f64));
        }
        assert_eq!(buf.len(), 3);
        // Items 3 and 4 overwrote 0 and 1; 2 survives.
        let rewards: Vec<f64> = buf.items.iter().map(|x| x.reward).collect();
        assert!(rewards.contains(&2.0));
        assert!(rewards.contains(&3.0));
        assert!(rewards.contains(&4.0));
    }

    #[test]
    fn sample_respects_batch_size() {
        let mut buf = ReplayBuffer::new(10);
        for i in 0..4 {
            buf.push(t(i as f64));
        }
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(buf.sample(32, &mut rng).len(), 32);
        assert!(ReplayBuffer::new(5).sample(8, &mut rng).is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = ReplayBuffer::new(0);
    }

    #[test]
    fn oversized_batches_sample_with_replacement() {
        // Pins the with-replacement contract: batch_size > len() still
        // yields a full batch, necessarily containing duplicates, with every
        // draw in range.
        let mut buf = ReplayBuffer::new(10);
        for i in 0..3 {
            buf.push(t(i as f64));
        }
        let mut rng = StdRng::seed_from_u64(7);
        let batch = buf.sample(8, &mut rng);
        assert_eq!(batch.len(), 8);
        let distinct: std::collections::BTreeSet<u64> =
            batch.iter().map(|t| t.reward as u64).collect();
        assert!(distinct.len() <= 3);
        assert!(batch.iter().all(|t| t.reward < 3.0));
    }

    #[test]
    fn sample_indices_matches_sample_draw_for_draw() {
        let mut buf = ReplayBuffer::new(10);
        for i in 0..5 {
            buf.push(t(i as f64));
        }
        let mut rng_a = StdRng::seed_from_u64(42);
        let mut rng_b = StdRng::seed_from_u64(42);
        let by_ref: Vec<f64> = buf
            .sample(12, &mut rng_a)
            .iter()
            .map(|t| t.reward)
            .collect();
        let by_idx: Vec<f64> = buf
            .sample_indices(12, &mut rng_b)
            .into_iter()
            .map(|i| buf.get(i).reward)
            .collect();
        assert_eq!(by_ref, by_idx);
        // Both RNGs ended in the same state.
        assert_eq!(rng_a.gen_range(0..1000), rng_b.gen_range(0..1000));
    }
}
