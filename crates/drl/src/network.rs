//! Dense feed-forward networks with backpropagation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One fully-connected layer: `y = W·x + b`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Dense {
    /// Row-major `out × in` weight matrix.
    weights: Vec<f64>,
    bias: Vec<f64>,
    inputs: usize,
    outputs: usize,
}

impl Dense {
    /// He-uniform initialisation, suited to the ReLU hidden layers.
    fn new(inputs: usize, outputs: usize, rng: &mut StdRng) -> Self {
        let limit = (6.0 / inputs as f64).sqrt();
        Dense {
            weights: (0..inputs * outputs)
                .map(|_| rng.gen_range(-limit..limit))
                .collect(),
            bias: vec![0.0; outputs],
            inputs,
            outputs,
        }
    }

    fn forward(&self, x: &[f64], out: &mut Vec<f64>) {
        debug_assert_eq!(x.len(), self.inputs);
        out.clear();
        out.reserve(self.outputs);
        for o in 0..self.outputs {
            let row = &self.weights[o * self.inputs..(o + 1) * self.inputs];
            let mut acc = self.bias[o];
            for (w, xi) in row.iter().zip(x) {
                acc += w * xi;
            }
            out.push(acc);
        }
    }
}

/// Per-layer gradient buffers produced by [`Mlp::backward`].
#[derive(Debug, Clone, PartialEq)]
pub struct Gradients {
    weight_grads: Vec<Vec<f64>>,
    bias_grads: Vec<Vec<f64>>,
}

impl Gradients {
    /// Elementwise accumulation (for minibatch averaging).
    ///
    /// Both operands must come from networks of identical architecture; a
    /// mismatch is a caller bug (zip would silently truncate), caught by the
    /// debug assertions.
    pub fn accumulate(&mut self, other: &Gradients) {
        debug_assert_eq!(
            self.weight_grads.len(),
            other.weight_grads.len(),
            "gradient layer count mismatch"
        );
        debug_assert_eq!(
            self.bias_grads.len(),
            other.bias_grads.len(),
            "gradient layer count mismatch"
        );
        for (a, b) in self.weight_grads.iter_mut().zip(&other.weight_grads) {
            debug_assert_eq!(a.len(), b.len(), "weight gradient shape mismatch");
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
        }
        for (a, b) in self.bias_grads.iter_mut().zip(&other.bias_grads) {
            debug_assert_eq!(a.len(), b.len(), "bias gradient shape mismatch");
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
        }
    }

    /// Scales every gradient by `factor` (e.g. `1/batch`).
    pub fn scale(&mut self, factor: f64) {
        debug_assert!(factor.is_finite(), "non-finite gradient scale {factor}");
        for g in self
            .weight_grads
            .iter_mut()
            .chain(self.bias_grads.iter_mut())
        {
            for x in g.iter_mut() {
                *x *= factor;
            }
        }
    }

    /// Global L2 norm of all gradients (for clipping / diagnostics).
    pub fn l2_norm(&self) -> f64 {
        let mut acc = 0.0;
        for g in self.weight_grads.iter().chain(self.bias_grads.iter()) {
            for x in g {
                acc += x * x;
            }
        }
        acc.sqrt()
    }

    /// Rescales gradients so their global norm does not exceed `max_norm`.
    pub fn clip(&mut self, max_norm: f64) {
        let norm = self.l2_norm();
        if norm > max_norm && norm > 0.0 {
            self.scale(max_norm / norm);
        }
    }
}

/// Reusable activation planes for [`Mlp::forward_batch`] /
/// [`Mlp::backward_batch`], so repeated minibatch updates allocate nothing
/// after the first.
///
/// `acts[l]` holds layer `l`'s post-activation outputs for the whole batch
/// in sample-major layout (`acts[0]` is the input plane itself).
#[derive(Debug, Clone, Default)]
pub struct BatchScratch {
    acts: Vec<Vec<f64>>,
}

/// A multi-layer perceptron with ReLU hidden activations and a linear output
/// layer — the paper's Q-network shape (Fig. 4: flatten → input → hidden
/// layers → `C(N,2)`-wide output).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Dense>,
}

impl Mlp {
    /// Builds a network with the given layer sizes, e.g. `&[8, 64, 64, 3]`
    /// for 8 inputs, two 64-wide hidden layers and 3 outputs.
    ///
    /// # Panics
    ///
    /// Panics when fewer than two sizes are given.
    pub fn new(sizes: &[usize], seed: u64) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        let mut rng = StdRng::seed_from_u64(seed);
        let layers = sizes
            .windows(2)
            .map(|w| Dense::new(w[0], w[1], &mut rng))
            .collect();
        Mlp { layers }
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.layers.first().expect("non-empty").inputs
    }

    /// Output width.
    pub fn output_dim(&self) -> usize {
        self.layers.last().expect("non-empty").outputs
    }

    /// Total trainable parameter count.
    pub fn parameter_count(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.weights.len() + l.bias.len())
            .sum()
    }

    /// Approximate resident memory of the parameters in bytes (used by the
    /// Fig. 11(b) memory comparison).
    pub fn parameter_bytes(&self) -> usize {
        self.parameter_count() * std::mem::size_of::<f64>()
    }

    /// Runs the network forward, returning the output activations.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut cur = x.to_vec();
        let mut next = Vec::new();
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            layer.forward(&cur, &mut next);
            if i != last {
                for v in next.iter_mut() {
                    *v = v.max(0.0); // ReLU
                }
            }
            std::mem::swap(&mut cur, &mut next);
        }
        cur
    }

    /// Forward pass keeping every layer's post-activation output (index 0 is
    /// the input itself) for backpropagation.
    fn forward_cached(&self, x: &[f64]) -> Vec<Vec<f64>> {
        let mut acts = Vec::with_capacity(self.layers.len() + 1);
        acts.push(x.to_vec());
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            let mut out = Vec::new();
            layer.forward(acts.last().expect("non-empty"), &mut out);
            if i != last {
                for v in out.iter_mut() {
                    *v = v.max(0.0);
                }
            }
            acts.push(out);
        }
        acts
    }

    /// Runs the network forward over a whole minibatch at once (matrix–matrix
    /// instead of `batch` matrix–vector passes), keeping every layer's
    /// activations in `scratch` for a following [`Mlp::backward_batch`].
    ///
    /// `xs` is sample-major (`batch × input_dim` flattened); the returned
    /// slice is the output plane, `batch × output_dim`. Per-sample arithmetic
    /// is performed in exactly the order of [`Mlp::forward`], so results are
    /// bit-identical to `batch` individual passes.
    ///
    /// # Panics
    ///
    /// Panics when `xs.len() != batch * input_dim`.
    pub fn forward_batch<'a>(
        &self,
        xs: &[f64],
        batch: usize,
        scratch: &'a mut BatchScratch,
    ) -> &'a [f64] {
        assert_eq!(xs.len(), batch * self.input_dim(), "bad input plane shape");
        let planes = &mut scratch.acts;
        planes.resize(self.layers.len() + 1, Vec::new());
        planes[0].clear();
        planes[0].extend_from_slice(xs);

        let last = self.layers.len() - 1;
        for (li, layer) in self.layers.iter().enumerate() {
            let (done, todo) = planes.split_at_mut(li + 1);
            let src = &done[li];
            let dst = &mut todo[0];
            dst.clear();
            dst.reserve(batch * layer.outputs);
            for b in 0..batch {
                let x = &src[b * layer.inputs..(b + 1) * layer.inputs];
                for o in 0..layer.outputs {
                    let row = &layer.weights[o * layer.inputs..(o + 1) * layer.inputs];
                    let mut acc = layer.bias[o];
                    for (w, xi) in row.iter().zip(x) {
                        acc += w * xi;
                    }
                    dst.push(if li != last { acc.max(0.0) } else { acc });
                }
            }
        }
        planes.last().expect("non-empty")
    }

    /// Backpropagates the MSE loss for a whole minibatch in one pass,
    /// reusing the activations left in `scratch` by the immediately
    /// preceding [`Mlp::forward_batch`] call on the same inputs.
    ///
    /// Returns the *sum* of per-sample gradients, accumulated in sample
    /// order — bit-identical to calling [`Mlp::backward`] per sample and
    /// chaining [`Gradients::accumulate`], but with one gradient allocation
    /// for the whole batch instead of one per sample.
    ///
    /// # Panics
    ///
    /// Panics when `targets` does not match `batch × output_dim` or the
    /// scratch planes do not match this network.
    pub fn backward_batch(
        &self,
        targets: &[f64],
        batch: usize,
        scratch: &BatchScratch,
    ) -> Gradients {
        let layer_count = self.layers.len();
        let out_w = self.output_dim();
        assert_eq!(targets.len(), batch * out_w, "bad target plane shape");
        assert_eq!(
            scratch.acts.len(),
            layer_count + 1,
            "scratch not from forward_batch"
        );
        assert_eq!(
            scratch.acts[layer_count].len(),
            batch * out_w,
            "scratch batch mismatch"
        );

        let mut weight_grads: Vec<Vec<f64>> = self
            .layers
            .iter()
            .map(|l| vec![0.0; l.weights.len()])
            .collect();
        let mut bias_grads: Vec<Vec<f64>> =
            self.layers.iter().map(|l| vec![0.0; l.outputs]).collect();

        let mut delta: Vec<f64> = Vec::new();
        let mut prev_delta: Vec<f64> = Vec::new();
        for b in 0..batch {
            let output = &scratch.acts[layer_count][b * out_w..(b + 1) * out_w];
            let target = &targets[b * out_w..(b + 1) * out_w];
            delta.clear();
            delta.extend(output.iter().zip(target).map(|(o, t)| o - t));

            for li in (0..layer_count).rev() {
                let layer = &self.layers[li];
                let input = &scratch.acts[li][b * layer.inputs..(b + 1) * layer.inputs];
                for (o, &d) in delta.iter().enumerate() {
                    let grow = &mut weight_grads[li][o * layer.inputs..(o + 1) * layer.inputs];
                    // First sample assigns, later ones add — reproducing the
                    // per-sample accumulate chain float-op for float-op.
                    if b == 0 {
                        for (g, xi) in grow.iter_mut().zip(input) {
                            *g = d * xi;
                        }
                    } else {
                        for (g, xi) in grow.iter_mut().zip(input) {
                            *g += d * xi;
                        }
                    }
                }
                if b == 0 {
                    bias_grads[li].copy_from_slice(&delta);
                } else {
                    for (g, d) in bias_grads[li].iter_mut().zip(&delta) {
                        *g += d;
                    }
                }

                if li > 0 {
                    prev_delta.clear();
                    prev_delta.resize(layer.inputs, 0.0);
                    for (o, &d) in delta.iter().enumerate() {
                        let row = &layer.weights[o * layer.inputs..(o + 1) * layer.inputs];
                        for (pd, w) in prev_delta.iter_mut().zip(row) {
                            *pd += d * w;
                        }
                    }
                    for (pd, a) in prev_delta.iter_mut().zip(input) {
                        if *a <= 0.0 {
                            *pd = 0.0;
                        }
                    }
                    std::mem::swap(&mut delta, &mut prev_delta);
                }
            }
        }

        Gradients {
            weight_grads,
            bias_grads,
        }
    }

    /// Backpropagates the MSE loss `½‖y − target‖²` for one sample, returning
    /// the gradients (the caller applies them through an optimizer).
    ///
    /// For Q-learning, pass a `target` equal to the current prediction except
    /// at the trained action's index — untouched outputs then contribute zero
    /// gradient, which is the standard DQN masking trick.
    pub fn backward(&mut self, x: &[f64], target: &[f64]) -> Gradients {
        let acts = self.forward_cached(x);
        let output = acts.last().expect("non-empty");
        debug_assert_eq!(output.len(), target.len());

        // dL/dy for MSE.
        let mut delta: Vec<f64> = output.iter().zip(target).map(|(o, t)| o - t).collect();

        let mut weight_grads = vec![Vec::new(); self.layers.len()];
        let mut bias_grads = vec![Vec::new(); self.layers.len()];

        for li in (0..self.layers.len()).rev() {
            let layer = &self.layers[li];
            let input = &acts[li];
            // Gradients for this layer.
            let mut wg = vec![0.0; layer.weights.len()];
            for o in 0..layer.outputs {
                let d = delta[o];
                let row = &mut wg[o * layer.inputs..(o + 1) * layer.inputs];
                for (g, xi) in row.iter_mut().zip(input) {
                    *g = d * xi;
                }
            }
            weight_grads[li] = wg;
            bias_grads[li] = delta.clone();

            // Propagate to the previous layer (through the ReLU if li > 0).
            if li > 0 {
                let mut prev_delta = vec![0.0; layer.inputs];
                for (o, &d) in delta.iter().enumerate() {
                    let row = &layer.weights[o * layer.inputs..(o + 1) * layer.inputs];
                    for (pd, w) in prev_delta.iter_mut().zip(row) {
                        *pd += d * w;
                    }
                }
                // ReLU derivative uses the post-activation value: zero where
                // the unit was inactive.
                for (pd, a) in prev_delta.iter_mut().zip(&acts[li]) {
                    if *a <= 0.0 {
                        *pd = 0.0;
                    }
                }
                delta = prev_delta;
            }
        }

        Gradients {
            weight_grads,
            bias_grads,
        }
    }

    /// Serializes the network (architecture + parameters) to JSON — the
    /// paper's workflow has the IFU train the model *offline* and hand it to
    /// the aggregator, which is exactly a serialize/deserialize boundary.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("Mlp serialization cannot fail")
    }

    /// Restores a network from [`Mlp::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns the underlying JSON error for malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Copies all parameters from `source` (the DQN target-network sync).
    ///
    /// # Panics
    ///
    /// Panics when the architectures differ.
    pub fn copy_from(&mut self, source: &Mlp) {
        assert_eq!(
            self.layers.len(),
            source.layers.len(),
            "architecture mismatch"
        );
        for (dst, src) in self.layers.iter_mut().zip(&source.layers) {
            assert_eq!(
                dst.weights.len(),
                src.weights.len(),
                "architecture mismatch"
            );
            dst.weights.copy_from_slice(&src.weights);
            dst.bias.copy_from_slice(&src.bias);
        }
    }

    fn apply_update(&mut self, updates: &Gradients) {
        for (li, layer) in self.layers.iter_mut().enumerate() {
            for (w, u) in layer.weights.iter_mut().zip(&updates.weight_grads[li]) {
                *w -= u;
            }
            for (b, u) in layer.bias.iter_mut().zip(&updates.bias_grads[li]) {
                *b -= u;
            }
        }
    }
}

/// Plain stochastic gradient descent.
#[derive(Debug, Clone, Copy)]
pub struct Sgd {
    /// Step size.
    pub learning_rate: f64,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(learning_rate: f64) -> Self {
        Sgd { learning_rate }
    }

    /// Applies `grads` to `net`.
    pub fn apply(&self, net: &mut Mlp, grads: &Gradients) {
        let mut update = grads.clone();
        update.scale(self.learning_rate);
        net.apply_update(&update);
    }
}

/// Adam optimizer (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    m: Option<Gradients>,
    v: Option<Gradients>,
}

impl Adam {
    /// Creates an Adam optimizer with standard betas (0.9, 0.999).
    pub fn new(lr: f64) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: None,
            v: None,
        }
    }

    /// Applies one Adam step of `grads` to `net`.
    pub fn apply(&mut self, net: &mut Mlp, grads: &Gradients) {
        self.t += 1;
        let m = self.m.get_or_insert_with(|| {
            let mut z = grads.clone();
            z.scale(0.0);
            z
        });
        let v = self.v.get_or_insert_with(|| {
            let mut z = grads.clone();
            z.scale(0.0);
            z
        });

        let mut update = grads.clone();
        let (b1, b2) = (self.beta1, self.beta2);
        let bc1 = 1.0 - b1.powi(self.t as i32);
        let bc2 = 1.0 - b2.powi(self.t as i32);

        let apply_buf = |m: &mut Vec<f64>, v: &mut Vec<f64>, g: &mut Vec<f64>| {
            for i in 0..g.len() {
                m[i] = b1 * m[i] + (1.0 - b1) * g[i];
                v[i] = b2 * v[i] + (1.0 - b2) * g[i] * g[i];
                let mhat = m[i] / bc1;
                let vhat = v[i] / bc2;
                g[i] = self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        };

        for li in 0..update.weight_grads.len() {
            apply_buf(
                &mut m.weight_grads[li],
                &mut v.weight_grads[li],
                &mut update.weight_grads[li],
            );
            apply_buf(
                &mut m.bias_grads[li],
                &mut v.bias_grads[li],
                &mut update.bias_grads[li],
            );
        }
        net.apply_update(&update);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_counts() {
        let net = Mlp::new(&[8, 16, 4], 1);
        assert_eq!(net.input_dim(), 8);
        assert_eq!(net.output_dim(), 4);
        assert_eq!(net.parameter_count(), 8 * 16 + 16 + 16 * 4 + 4);
        assert_eq!(net.parameter_bytes(), net.parameter_count() * 8);
        assert_eq!(net.forward(&[0.1; 8]).len(), 4);
    }

    #[test]
    fn deterministic_for_seed() {
        let a = Mlp::new(&[4, 8, 2], 7);
        let b = Mlp::new(&[4, 8, 2], 7);
        assert_eq!(
            a.forward(&[1.0, 2.0, 3.0, 4.0]),
            b.forward(&[1.0, 2.0, 3.0, 4.0])
        );
        let c = Mlp::new(&[4, 8, 2], 8);
        assert_ne!(
            a.forward(&[1.0, 2.0, 3.0, 4.0]),
            c.forward(&[1.0, 2.0, 3.0, 4.0])
        );
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut net = Mlp::new(&[3, 5, 2], 3);
        let x = [0.3, -0.7, 1.2];
        let target = [0.5, -0.5];
        let grads = net.backward(&x, &target);

        // Perturb one weight in layer 0 and compare numeric vs analytic.
        let eps = 1e-6;
        let loss = |net: &Mlp| -> f64 {
            let y = net.forward(&x);
            0.5 * y
                .iter()
                .zip(&target)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
        };
        for (li, wi) in [(0usize, 4usize), (1usize, 7usize)] {
            let mut plus = net.clone();
            plus.layers[li].weights[wi] += eps;
            let mut minus = net.clone();
            minus.layers[li].weights[wi] -= eps;
            let numeric = (loss(&plus) - loss(&minus)) / (2.0 * eps);
            let analytic = grads.weight_grads[li][wi];
            assert!(
                (numeric - analytic).abs() < 1e-5,
                "layer {li} weight {wi}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn sgd_reduces_loss_on_regression() {
        let mut net = Mlp::new(&[2, 16, 1], 5);
        let opt = Sgd::new(0.05);
        let samples = [
            ([0.0, 0.0], 0.0),
            ([0.0, 1.0], 1.0),
            ([1.0, 0.0], 1.0),
            ([1.0, 1.0], 0.0),
        ];
        let loss = |net: &Mlp| -> f64 {
            samples
                .iter()
                .map(|(x, y)| {
                    let o = net.forward(x)[0];
                    (o - y) * (o - y)
                })
                .sum()
        };
        let before = loss(&net);
        for _ in 0..2000 {
            for (x, y) in &samples {
                let g = net.backward(x, &[*y]);
                opt.apply(&mut net, &g);
            }
        }
        let after = loss(&net);
        assert!(after < before * 0.05, "XOR loss {before} -> {after}");
    }

    #[test]
    fn adam_converges_faster_than_sgd_on_scaled_problem() {
        let target_fn = |x: f64| 3.0 * x;
        let xs = [-1.0, -0.5, 0.0, 0.5, 1.0];
        let run = |use_adam: bool| -> f64 {
            let mut net = Mlp::new(&[1, 8, 1], 11);
            let mut adam = Adam::new(0.01);
            let sgd = Sgd::new(0.01);
            for _ in 0..100 {
                for x in xs {
                    let g = net.backward(&[x], &[target_fn(x)]);
                    if use_adam {
                        adam.apply(&mut net, &g);
                    } else {
                        sgd.apply(&mut net, &g);
                    }
                }
            }
            xs.iter()
                .map(|&x| {
                    let o = net.forward(&[x])[0];
                    (o - target_fn(x)).powi(2)
                })
                .sum()
        };
        // Not a strict race — just check Adam learns the task.
        assert!(run(true) < 0.5);
    }

    #[test]
    fn copy_from_syncs_parameters() {
        let mut a = Mlp::new(&[2, 4, 1], 1);
        let b = Mlp::new(&[2, 4, 1], 2);
        assert_ne!(a.forward(&[1.0, 1.0]), b.forward(&[1.0, 1.0]));
        a.copy_from(&b);
        assert_eq!(a.forward(&[1.0, 1.0]), b.forward(&[1.0, 1.0]));
    }

    #[test]
    #[should_panic(expected = "architecture mismatch")]
    fn copy_from_rejects_mismatch() {
        let mut a = Mlp::new(&[2, 4, 1], 1);
        let b = Mlp::new(&[2, 5, 1], 2);
        a.copy_from(&b);
    }

    #[test]
    fn json_roundtrip_preserves_behaviour() {
        let net = Mlp::new(&[3, 8, 2], 21);
        let restored = Mlp::from_json(&net.to_json()).unwrap();
        let x = [0.1, -0.4, 0.9];
        assert_eq!(net.forward(&x), restored.forward(&x));
        assert!(Mlp::from_json("not json").is_err());
    }

    #[test]
    fn forward_batch_is_bit_identical_to_singles() {
        let net = Mlp::new(&[4, 9, 5, 3], 13);
        let batch = 6;
        let xs: Vec<f64> = (0..batch * 4).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut scratch = BatchScratch::default();
        let plane = net.forward_batch(&xs, batch, &mut scratch).to_vec();
        for b in 0..batch {
            let single = net.forward(&xs[b * 4..(b + 1) * 4]);
            assert_eq!(&plane[b * 3..(b + 1) * 3], single.as_slice());
        }
    }

    #[test]
    fn backward_batch_is_bit_identical_to_accumulated_singles() {
        let mut net = Mlp::new(&[3, 7, 4], 17);
        let batch = 5;
        let xs: Vec<f64> = (0..batch * 3).map(|i| (i as f64 * 0.73).cos()).collect();
        let targets: Vec<f64> = (0..batch * 4).map(|i| (i as f64 * 0.11).sin()).collect();

        let mut scratch = BatchScratch::default();
        net.forward_batch(&xs, batch, &mut scratch);
        let batched = net.backward_batch(&targets, batch, &scratch);

        let mut accumulated: Option<Gradients> = None;
        for b in 0..batch {
            let g = net.backward(&xs[b * 3..(b + 1) * 3], &targets[b * 4..(b + 1) * 4]);
            match accumulated.as_mut() {
                None => accumulated = Some(g),
                Some(acc) => acc.accumulate(&g),
            }
        }
        assert_eq!(batched, accumulated.unwrap());
    }

    #[test]
    fn gradient_clipping_bounds_norm() {
        let mut net = Mlp::new(&[3, 4, 2], 9);
        let mut g = net.backward(&[10.0, -10.0, 10.0], &[100.0, -100.0]);
        g.clip(1.0);
        assert!(g.l2_norm() <= 1.0 + 1e-9);
    }
}
