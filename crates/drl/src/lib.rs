//! # parole-drl
//!
//! A from-scratch deep reinforcement learning substrate sized for the
//! GENTRANSEQ module (paper §II-C, §V-C): dense feed-forward networks with
//! backpropagation, a replay memory buffer, and a deep Q-network agent with
//! a target network and ε-greedy exploration.
//!
//! Everything is plain `f64` CPU math — the paper's Q-network is small
//! (`8·N` inputs, `C(N,2)` outputs for a mempool of `N` transactions), so no
//! external tensor library is warranted.
//!
//! The crate is deliberately generic: the [`Environment`] trait carries no
//! NFT or rollup vocabulary, so the DQN here can drive any discrete-action
//! task (the unit tests train it on a toy line-world). The transaction
//! re-ordering MDP lives in the `parole` core crate.
//!
//! # Table II hyper-parameters
//!
//! [`DqnConfig::paper`] reproduces the paper's Table II exactly:
//! ε₀ = 0.95, decay d = 0.05, γ = 0.618, 100 episodes × 200 steps,
//! α = 0.7, replay buffer 5 000, Q-network update every 5 steps, target
//! network update every 30 steps.
//!
//! # Example
//!
//! ```
//! use parole_drl::{Mlp, Adam};
//!
//! // Learn y = x on a tiny network.
//! let mut net = Mlp::new(&[1, 8, 1], 42);
//! let mut opt = Adam::new(0.01);
//! for _ in 0..400 {
//!     for x in [-1.0f64, -0.5, 0.0, 0.5, 1.0] {
//!         let grads = net.backward(&[x], &[x]);
//!         opt.apply(&mut net, &grads);
//!     }
//! }
//! let out = net.forward(&[0.25]);
//! assert!((out[0] - 0.25).abs() < 0.1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dqn;
mod env;
mod network;
mod replay;

pub use dqn::{moving_average, DqnAgent, DqnConfig, EpisodeStats};
pub use env::{Environment, StepOutcome};
pub use network::{Adam, BatchScratch, Gradients, Mlp, Sgd};
pub use replay::{ReplayBuffer, Transition};
