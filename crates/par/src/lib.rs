//! Bounded, deterministic fork/join helpers.
//!
//! The experiment sweeps (fleet cells, figure grids) are embarrassingly
//! parallel, but spawning one OS thread per cell — as the figure binaries
//! originally did — oversubscribes small machines and gives no way to pin
//! thread count for reproducibility measurements. [`parallel_map`] runs a
//! work list over a fixed-size pool of scoped workers and returns results in
//! input order, so the output is **independent of the pool size**: callers
//! that keep per-item work self-contained get bit-identical results at 1, 2
//! or N threads (the fleet determinism test pins this).
//!
//! Extracted into its own crate so lower layers (the OVM's parallel block
//! executor) can share the pool without depending on the attack core; the
//! `parole` crate re-exports this as `parole::par`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Pool size requested through the `PAROLE_THREADS` environment variable.
///
/// Returns `0` ("auto" — see [`parallel_map`]) when the variable is unset,
/// empty or not a positive integer.
pub fn threads_from_env() -> usize {
    std::env::var("PAROLE_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(0)
}

/// Applies `f` to every item on a bounded pool of scoped worker threads and
/// returns the results **in input order**.
///
/// `threads` is the pool size; `0` means "auto" (the machine's available
/// parallelism). The pool never exceeds the item count, and a pool of one —
/// or an empty/singleton input — runs inline on the calling thread. Items
/// are dealt round-robin to workers, but because results are re-assembled by
/// input index, the observable output does not depend on the partition or on
/// scheduling.
///
/// # Panics
///
/// Propagates a panic from `f`.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        threads
    };
    let workers = threads.min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }

    let mut chunks: Vec<Vec<(usize, T)>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        chunks[i % workers].push((i, item));
    }

    let f = &f;
    let per_worker: Vec<Vec<(usize, R)>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                scope.spawn(move |_| {
                    chunk
                        .into_iter()
                        .map(|(i, t)| (i, f(t)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
    .expect("scope panicked");

    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in per_worker.into_iter().flatten() {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index produced exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..37).collect();
        let got = parallel_map(items.clone(), 4, |x| x * 3);
        let want: Vec<u64> = items.iter().map(|x| x * 3).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn pool_size_does_not_change_results() {
        let items: Vec<u64> = (0..25).collect();
        let reference = parallel_map(items.clone(), 1, |x| x * x + 1);
        for threads in [0usize, 2, 3, 8, 64] {
            assert_eq!(
                parallel_map(items.clone(), threads, |x| x * x + 1),
                reference
            );
        }
    }

    #[test]
    fn handles_empty_and_singleton_inputs() {
        assert!(parallel_map(Vec::<u8>::new(), 4, |x| x).is_empty());
        assert_eq!(parallel_map(vec![7u8], 4, |x| x + 1), vec![8]);
    }

    #[test]
    fn env_override_parses_only_positive_integers() {
        // Can't mutate the process environment safely in a test harness that
        // runs tests concurrently; exercise the default path only.
        let auto = threads_from_env();
        assert!(auto == 0 || std::env::var("PAROLE_THREADS").is_ok());
    }
}
