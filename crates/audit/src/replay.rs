//! The event-replay oracle: a block's receipt log stream, replayed against
//! the pre-block state, must reproduce the post-block ownership, approval
//! and operator maps exactly.
//!
//! This is the observability analogue of the differential oracle. The OVM
//! emits one ordered [`LogEntry`] slice per committed transaction (reverted
//! transactions emit nothing); if those logs are a faithful journal of every
//! state transition, then *folding the stream over the pre-state* is an
//! independent second derivation of the post-state token maps. The replay
//! interpreter here is written against the raw ERC-721 event semantics —
//! mint is a `Transfer` from the zero address, any transfer clears the
//! per-token approval, `ApprovalForAll` toggles an `(owner, operator)` pair
//! — and never calls the production execution path, so an OVM bug that
//! drops, duplicates or reorders an event cannot agree with its own checker.
//!
//! The oracle is fail-stop in both directions: a stream that is internally
//! inconsistent (a transfer from the wrong owner, an event for an unknown
//! collection) is reported even when the final maps happen to match, and a
//! consistent stream that lands on the wrong maps reports the first
//! divergent entry.

use parole_nft::Erc721Event;
use parole_ovm::{LogEntry, Receipt};
use parole_primitives::{Address, TokenId, Wei};
use parole_state::L2State;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The replayable portion of one collection's state: exactly the maps the
/// ERC-721 event stream journals.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CollectionMaps {
    /// `token -> owner` for every active token.
    pub owners: BTreeMap<TokenId, Address>,
    /// `token -> approved operator` for every outstanding per-token approval.
    pub approvals: BTreeMap<TokenId, Address>,
    /// Outstanding `(owner, operator)` blanket approvals.
    pub operators: BTreeSet<(Address, Address)>,
    /// Current bonding-curve price (journaled by `PriceChanged`).
    pub price: Wei,
    /// Remaining mintable supply. Derived from mint/burn transfers during
    /// replay — a quantized-flat curve mints without a `PriceChanged`, so
    /// the curve event's payload is only a cross-check.
    pub remaining_supply: u64,
}

/// Per-collection replayable maps for a whole state.
pub type StateMaps = BTreeMap<Address, CollectionMaps>;

/// Extracts the replayable maps from every collection in `state`.
pub fn snapshot_maps(state: &L2State) -> StateMaps {
    state
        .collections()
        .map(|(addr, coll)| {
            let maps = CollectionMaps {
                owners: coll.iter().collect(),
                approvals: coll.approvals().collect(),
                operators: coll.operator_pairs().collect(),
                price: coll.price(),
                remaining_supply: coll.remaining_supply(),
            };
            (addr, maps)
        })
        .collect()
}

/// A violation raised by the event-replay oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventReplayViolation {
    /// An event referenced a collection the pre-block state does not have.
    UnknownCollection {
        /// The collection address the log entry named.
        collection: Address,
        /// The offending event, rendered.
        event: String,
    },
    /// The stream itself is inconsistent: an event contradicts the maps the
    /// stream built up to that point (e.g. a transfer from a non-owner).
    StreamInconsistent {
        /// The collection the entry belongs to.
        collection: Address,
        /// The offending event, rendered.
        event: String,
        /// What the replay interpreter expected instead.
        expected: String,
    },
    /// Replayed and actual ownership of one token disagree.
    OwnershipMismatch {
        /// The collection holding the token.
        collection: Address,
        /// The token whose owner diverged.
        token: TokenId,
        /// Owner according to the replayed event stream.
        replayed: Option<Address>,
        /// Owner in the actual post-block state.
        actual: Option<Address>,
    },
    /// Replayed and actual per-token approval of one token disagree.
    ApprovalMismatch {
        /// The collection holding the token.
        collection: Address,
        /// The token whose approval diverged.
        token: TokenId,
        /// Approved operator according to the replayed event stream.
        replayed: Option<Address>,
        /// Approved operator in the actual post-block state.
        actual: Option<Address>,
    },
    /// Replayed and actual blanket operator approval disagree.
    OperatorMismatch {
        /// The collection the pair belongs to.
        collection: Address,
        /// The granting owner.
        owner: Address,
        /// The operator in question.
        operator: Address,
        /// Whether the replayed stream says the grant is outstanding.
        replayed: bool,
    },
    /// Replayed and actual bonding-curve position disagree.
    PriceMismatch {
        /// The collection whose curve diverged.
        collection: Address,
        /// `(price, remaining_supply)` according to the replayed stream.
        replayed: (Wei, u64),
        /// `(price, remaining_supply)` in the actual post-block state.
        actual: (Wei, u64),
    },
    /// A collection present before the block vanished after it (or vice
    /// versa) — blocks cannot deploy or destroy collections.
    CollectionSetChanged {
        /// Collections only the pre/replayed side has.
        replayed_only: Vec<Address>,
        /// Collections only the post side has.
        actual_only: Vec<Address>,
    },
}

impl fmt::Display for EventReplayViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventReplayViolation::UnknownCollection { collection, event } => {
                write!(f, "event {event} names unknown collection {collection}")
            }
            EventReplayViolation::StreamInconsistent {
                collection,
                event,
                expected,
            } => write!(
                f,
                "inconsistent event stream for {collection}: {event} ({expected})"
            ),
            EventReplayViolation::OwnershipMismatch {
                collection,
                token,
                replayed,
                actual,
            } => write!(
                f,
                "ownership of {token} in {collection}: replay says {replayed:?}, state says {actual:?}"
            ),
            EventReplayViolation::ApprovalMismatch {
                collection,
                token,
                replayed,
                actual,
            } => write!(
                f,
                "approval of {token} in {collection}: replay says {replayed:?}, state says {actual:?}"
            ),
            EventReplayViolation::OperatorMismatch {
                collection,
                owner,
                operator,
                replayed,
            } => write!(
                f,
                "operator grant {owner}->{operator} in {collection}: replay says {replayed}, state says {}",
                !replayed
            ),
            EventReplayViolation::PriceMismatch {
                collection,
                replayed,
                actual,
            } => write!(
                f,
                "curve position of {collection}: replay says {replayed:?}, state says {actual:?}"
            ),
            EventReplayViolation::CollectionSetChanged {
                replayed_only,
                actual_only,
            } => write!(
                f,
                "collection set changed across the block: replay-only {replayed_only:?}, state-only {actual_only:?}"
            ),
        }
    }
}

impl std::error::Error for EventReplayViolation {}

/// Folds one log entry into the replayed maps, fail-stopping on entries
/// that contradict the maps built so far.
fn apply_entry(maps: &mut StateMaps, entry: &LogEntry) -> Result<(), EventReplayViolation> {
    let coll =
        maps.get_mut(&entry.collection)
            .ok_or_else(|| EventReplayViolation::UnknownCollection {
                collection: entry.collection,
                event: entry.event.to_string(),
            })?;
    let inconsistent = |expected: String| EventReplayViolation::StreamInconsistent {
        collection: entry.collection,
        event: entry.event.to_string(),
        expected,
    };
    match entry.event {
        Erc721Event::Transfer { from, to, token } => {
            let current = coll.owners.get(&token).copied();
            if from.is_zero() {
                // Mint: the token must not already exist.
                if let Some(owner) = current {
                    return Err(inconsistent(format!("mint of token owned by {owner}")));
                }
            } else if current != Some(from) {
                return Err(inconsistent(format!(
                    "transfer from {from} but replayed owner is {current:?}"
                )));
            }
            if to.is_zero() {
                coll.owners.remove(&token);
            } else {
                coll.owners.insert(token, to);
            }
            // Every ownership change clears the per-token approval — the
            // ERC-721 implicit-clear rule the contract implements.
            coll.approvals.remove(&token);
            // Remaining supply is `max_supply − active tokens`, so it moves
            // with mints and burns, not with `PriceChanged` (a quantized-flat
            // curve mints without emitting one). Derive it here; the
            // `PriceChanged` payload below is then a cross-check, not the
            // source of truth.
            if from.is_zero() {
                coll.remaining_supply = coll
                    .remaining_supply
                    .checked_sub(1)
                    .ok_or_else(|| inconsistent("mint with zero remaining supply".into()))?;
            } else if to.is_zero() {
                coll.remaining_supply += 1;
            }
        }
        Erc721Event::Approval {
            owner,
            approved,
            token,
        } => {
            let current = coll.owners.get(&token).copied();
            if current != Some(owner) {
                return Err(inconsistent(format!(
                    "approval by {owner} but replayed owner is {current:?}"
                )));
            }
            if approved.is_zero() {
                coll.approvals.remove(&token);
            } else {
                coll.approvals.insert(token, approved);
            }
        }
        Erc721Event::ApprovalForAll {
            owner,
            operator,
            approved,
        } => {
            if approved {
                coll.operators.insert((owner, operator));
            } else {
                coll.operators.remove(&(owner, operator));
            }
        }
        Erc721Event::PriceChanged {
            new_price,
            remaining_supply,
            ..
        } => {
            // The payload's remaining supply must agree with the value the
            // mint/burn transfers replayed so far imply — a forged or
            // misplaced curve event is a stream inconsistency, not a map
            // update.
            if remaining_supply != coll.remaining_supply {
                return Err(inconsistent(format!(
                    "curve event claims {remaining_supply} remaining, replay says {}",
                    coll.remaining_supply
                )));
            }
            coll.price = new_price;
        }
    }
    Ok(())
}

/// Compares replayed maps against the actual post-block maps, reporting the
/// first divergence in deterministic (sorted) order.
fn diff_maps(replayed: &StateMaps, actual: &StateMaps) -> Result<(), EventReplayViolation> {
    if replayed.keys().ne(actual.keys()) {
        return Err(EventReplayViolation::CollectionSetChanged {
            replayed_only: replayed
                .keys()
                .filter(|a| !actual.contains_key(a))
                .copied()
                .collect(),
            actual_only: actual
                .keys()
                .filter(|a| !replayed.contains_key(a))
                .copied()
                .collect(),
        });
    }
    for (addr, rep) in replayed {
        let act = &actual[addr];
        for token in rep.owners.keys().chain(act.owners.keys()) {
            let (r, a) = (rep.owners.get(token), act.owners.get(token));
            if r != a {
                return Err(EventReplayViolation::OwnershipMismatch {
                    collection: *addr,
                    token: *token,
                    replayed: r.copied(),
                    actual: a.copied(),
                });
            }
        }
        for token in rep.approvals.keys().chain(act.approvals.keys()) {
            let (r, a) = (rep.approvals.get(token), act.approvals.get(token));
            if r != a {
                return Err(EventReplayViolation::ApprovalMismatch {
                    collection: *addr,
                    token: *token,
                    replayed: r.copied(),
                    actual: a.copied(),
                });
            }
        }
        if let Some(&(owner, operator)) = rep.operators.symmetric_difference(&act.operators).next()
        {
            return Err(EventReplayViolation::OperatorMismatch {
                collection: *addr,
                owner,
                operator,
                replayed: rep.operators.contains(&(owner, operator)),
            });
        }
        if (rep.price, rep.remaining_supply) != (act.price, act.remaining_supply) {
            return Err(EventReplayViolation::PriceMismatch {
                collection: *addr,
                replayed: (rep.price, rep.remaining_supply),
                actual: (act.price, act.remaining_supply),
            });
        }
    }
    Ok(())
}

/// Replays `logs` over `pre` maps and returns the resulting maps.
///
/// # Errors
///
/// Fails when the stream is internally inconsistent against `pre` (see
/// [`EventReplayViolation::StreamInconsistent`]).
pub fn replay_events(
    pre: &StateMaps,
    logs: impl IntoIterator<Item = LogEntry>,
) -> Result<StateMaps, EventReplayViolation> {
    let mut maps = pre.clone();
    for entry in logs {
        apply_entry(&mut maps, &entry)?;
    }
    Ok(maps)
}

/// The full oracle: replays every log entry in `receipts` (in receipt
/// order) over the pre-block maps and diffs the result against the actual
/// post-block state.
///
/// # Errors
///
/// Returns the first [`EventReplayViolation`] found: an inconsistent
/// stream, or any divergence between the replayed and actual ownership,
/// approval, operator or bonding-curve maps.
pub fn check_event_replay(
    pre: &StateMaps,
    receipts: &[Receipt],
    post: &L2State,
) -> Result<(), EventReplayViolation> {
    let logs = receipts.iter().flat_map(|r| r.logs.iter().copied());
    let replayed = replay_events(pre, logs)?;
    diff_maps(&replayed, &snapshot_maps(post))
}

#[cfg(test)]
mod tests {
    use super::*;
    use parole_nft::CollectionConfig;
    use parole_ovm::{NftTransaction, Ovm, TxKind};

    fn funded_state() -> (L2State, Address, Vec<Address>) {
        let mut state = L2State::new();
        let coll = state.deploy_collection(CollectionConfig::parole_token());
        let users: Vec<Address> = (1..=4).map(Address::from_low_u64).collect();
        for &u in &users {
            state.credit(u, Wei::from_eth(10));
        }
        (state, coll, users)
    }

    #[test]
    fn honest_block_replays_exactly() {
        let (mut state, coll, users) = funded_state();
        let ovm = Ovm::new();
        let txs = [
            NftTransaction::simple(
                users[0],
                TxKind::Mint {
                    collection: coll,
                    token: TokenId::new(0),
                },
            ),
            NftTransaction::simple(
                users[1],
                TxKind::Mint {
                    collection: coll,
                    token: TokenId::new(1),
                },
            ),
            NftTransaction::simple(
                users[0],
                TxKind::Approve {
                    collection: coll,
                    token: TokenId::new(0),
                    operator: users[2],
                },
            ),
            NftTransaction::simple(
                users[1],
                TxKind::SetApprovalForAll {
                    collection: coll,
                    operator: users[3],
                    approved: true,
                },
            ),
            NftTransaction::simple(
                users[0],
                TxKind::Transfer {
                    collection: coll,
                    token: TokenId::new(0),
                    to: users[3],
                },
            ),
            NftTransaction::simple(
                users[1],
                TxKind::Burn {
                    collection: coll,
                    token: TokenId::new(1),
                },
            ),
        ];
        let pre = snapshot_maps(&state);
        let receipts = ovm.execute_sequence(&mut state, &txs);
        assert!(receipts.iter().all(|r| r.is_success()));
        check_event_replay(&pre, &receipts, &state).expect("honest block must replay");
    }

    /// Regression (caught live by the armed sequencer under the traffic
    /// harness): on a quantized-flat bonding curve a mint emits *no*
    /// `PriceChanged`, so remaining supply must be derived from the mint
    /// and burn transfers themselves, not read off curve events.
    #[test]
    fn flat_curve_mints_replay_without_price_events() {
        let mut state = L2State::new();
        // 10⁴ supply at 1-milli-eth quantum: the first mints move the raw
        // price by < one quantum, so the event stream is Transfer-only.
        let coll = state.deploy_collection(CollectionConfig::limited_edition("Flat", 10_000, 1));
        let users: Vec<Address> = (1..=3).map(Address::from_low_u64).collect();
        for &u in &users {
            state.credit(u, Wei::from_eth(10));
        }
        let ovm = Ovm::new();
        let txs = [
            NftTransaction::simple(
                users[0],
                TxKind::Mint {
                    collection: coll,
                    token: TokenId::new(0),
                },
            ),
            NftTransaction::simple(
                users[1],
                TxKind::Mint {
                    collection: coll,
                    token: TokenId::new(1),
                },
            ),
            NftTransaction::simple(
                users[1],
                TxKind::Burn {
                    collection: coll,
                    token: TokenId::new(1),
                },
            ),
        ];
        let pre = snapshot_maps(&state);
        let receipts = ovm.execute_sequence(&mut state, &txs);
        assert!(receipts.iter().all(|r| r.is_success()));
        assert!(
            receipts
                .iter()
                .flat_map(|r| r.logs.iter())
                .all(|l| matches!(l.event, Erc721Event::Transfer { .. })),
            "the whole point: no PriceChanged in this stream"
        );
        check_event_replay(&pre, &receipts, &state).expect("flat-curve block must replay");
    }

    /// A curve event whose payload disagrees with the supply the transfers
    /// imply is a stream inconsistency, even if final maps would match.
    #[test]
    fn forged_curve_payload_is_fail_stop() {
        let (mut state, coll, users) = funded_state();
        let ovm = Ovm::new();
        let txs = [NftTransaction::simple(
            users[0],
            TxKind::Mint {
                collection: coll,
                token: TokenId::new(0),
            },
        )];
        let pre = snapshot_maps(&state);
        let mut receipts = ovm.execute_sequence(&mut state, &txs);
        for log in &mut receipts[0].logs {
            if let Erc721Event::PriceChanged {
                remaining_supply, ..
            } = &mut log.event
            {
                *remaining_supply += 5;
            }
        }
        assert!(matches!(
            check_event_replay(&pre, &receipts, &state),
            Err(EventReplayViolation::StreamInconsistent { .. })
        ));
    }

    #[test]
    fn reverted_txs_contribute_nothing_and_still_replay() {
        let (mut state, coll, users) = funded_state();
        let ovm = Ovm::new();
        let txs = [
            NftTransaction::simple(
                users[0],
                TxKind::Mint {
                    collection: coll,
                    token: TokenId::new(0),
                },
            ),
            // Reverts: token 0 already minted.
            NftTransaction::simple(
                users[1],
                TxKind::Mint {
                    collection: coll,
                    token: TokenId::new(0),
                },
            ),
            // Reverts: users[1] does not own token 0.
            NftTransaction::simple(
                users[1],
                TxKind::Transfer {
                    collection: coll,
                    token: TokenId::new(0),
                    to: users[2],
                },
            ),
        ];
        let pre = snapshot_maps(&state);
        let receipts = ovm.execute_sequence(&mut state, &txs);
        assert!(receipts[0].is_success());
        assert!(!receipts[1].is_success() && receipts[1].logs.is_empty());
        assert!(!receipts[2].is_success() && receipts[2].logs.is_empty());
        check_event_replay(&pre, &receipts, &state).expect("reverts emit nothing");
    }

    #[test]
    fn dropped_event_is_detected() {
        let (mut state, coll, users) = funded_state();
        let ovm = Ovm::new();
        let tx = NftTransaction::simple(
            users[0],
            TxKind::Mint {
                collection: coll,
                token: TokenId::new(0),
            },
        );
        let pre = snapshot_maps(&state);
        let mut receipts = vec![ovm.execute(&mut state, &tx)];
        // Mutation: the OVM "forgets" to emit the mint's Transfer event.
        receipts[0].logs.clear();
        let err = check_event_replay(&pre, &receipts, &state).unwrap_err();
        assert!(
            matches!(err, EventReplayViolation::OwnershipMismatch { token, .. }
                if token == TokenId::new(0)),
            "got {err}"
        );
    }

    #[test]
    fn forged_event_stream_is_fail_stop() {
        let (mut state, coll, users) = funded_state();
        let ovm = Ovm::new();
        let tx = NftTransaction::simple(
            users[0],
            TxKind::Mint {
                collection: coll,
                token: TokenId::new(0),
            },
        );
        let pre = snapshot_maps(&state);
        let mut receipts = vec![ovm.execute(&mut state, &tx)];
        // Mutation: inject a transfer from an address that never owned the
        // token. The stream is now internally inconsistent even though a
        // matching counter-entry could restore the final maps.
        receipts[0].logs.push(parole_ovm::LogEntry {
            collection: coll,
            event: Erc721Event::Transfer {
                from: users[3],
                to: users[2],
                token: TokenId::new(0),
            },
        });
        let err = check_event_replay(&pre, &receipts, &state).unwrap_err();
        assert!(
            matches!(err, EventReplayViolation::StreamInconsistent { .. }),
            "got {err}"
        );
    }

    #[test]
    fn missed_operator_revocation_is_detected() {
        let (mut state, coll, users) = funded_state();
        let ovm = Ovm::new();
        let grant = NftTransaction::simple(
            users[0],
            TxKind::SetApprovalForAll {
                collection: coll,
                operator: users[1],
                approved: true,
            },
        );
        let pre = snapshot_maps(&state);
        let mut receipts = vec![ovm.execute(&mut state, &grant)];
        receipts[0].logs.clear(); // mutation: grant went unjournaled
        let err = check_event_replay(&pre, &receipts, &state).unwrap_err();
        assert!(
            matches!(
                err,
                EventReplayViolation::OperatorMismatch {
                    replayed: false,
                    ..
                }
            ),
            "got {err}"
        );
    }

    #[test]
    fn price_divergence_is_detected() {
        let (mut state, coll, users) = funded_state();
        let ovm = Ovm::new();
        let tx = NftTransaction::simple(
            users[0],
            TxKind::Mint {
                collection: coll,
                token: TokenId::new(0),
            },
        );
        let pre = snapshot_maps(&state);
        let mut receipts = vec![ovm.execute(&mut state, &tx)];
        // Mutation: strip only the PriceChanged entry; ownership still
        // replays, the curve position does not.
        receipts[0]
            .logs
            .retain(|l| !matches!(l.event, Erc721Event::PriceChanged { .. }));
        let err = check_event_replay(&pre, &receipts, &state).unwrap_err();
        assert!(
            matches!(err, EventReplayViolation::PriceMismatch { .. }),
            "got {err}"
        );
    }
}
