//! ERC-721 / bonding-curve state invariants (paper Eqs. 1–6 and Eq. 10).
//!
//! [`CollectionFacts`] extracts everything the checks need into a plain
//! value, and [`check_facts`] judges that value with arithmetic re-derived
//! from the paper — it never calls back into `parole-nft`. The split lets
//! the mutation harness perturb extracted facts directly (duplicate owners,
//! inflated ledgers, bent curves) and prove each check fires, something a
//! well-typed `Collection` would never let it construct.
//!
//! [`check_collection`] adds the cross-checks that need the live object
//! (owner/balance index consistency, event-log replay), and [`check_state`]
//! sweeps every collection of an [`L2State`].

use parole_nft::{Collection, Erc721Event};
use parole_primitives::{Address, TokenId, Wei};
use parole_state::L2State;
use std::collections::BTreeMap;
use std::fmt;

/// How many points of the bonding curve are sampled per collection. Every
/// collection in the paper's experiments is far smaller; the cap only guards
/// degenerate configurations.
const CURVE_SAMPLES: u64 = 512;

/// The facts about one collection the pure checks judge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollectionFacts {
    /// Maximum simultaneously existing tokens (`S^0`).
    pub max_supply: u64,
    /// Price at full availability (`P^0`).
    pub initial_price: Wei,
    /// Quantum prices are floored to.
    pub price_quantum: Wei,
    /// Mintable supply the collection reports (`S^t`).
    pub remaining_supply: u64,
    /// The current price the collection reports (`P^t`).
    pub price: Wei,
    /// `(token, owner)` pairs of active tokens, in token-id order.
    pub active: Vec<(TokenId, Address)>,
    /// Lifetime `(mints, transfers, burns)` counters.
    pub lifetime: (u64, u64, u64),
    /// Sampled `(remaining, price_at_remaining)` curve points, increasing in
    /// `remaining` starting at 1.
    pub curve: Vec<(u64, Wei)>,
}

impl CollectionFacts {
    /// Extracts the facts from a live collection.
    pub fn gather(c: &Collection) -> Self {
        let cfg = c.config();
        let samples = cfg.max_supply.min(CURVE_SAMPLES);
        CollectionFacts {
            max_supply: cfg.max_supply,
            initial_price: cfg.initial_price,
            price_quantum: cfg.price_quantum,
            remaining_supply: c.remaining_supply(),
            price: c.price(),
            active: c.iter().collect(),
            lifetime: c.lifetime_counts(),
            curve: (1..=samples)
                .map(|r| (r, c.price_at_remaining(r)))
                .collect(),
        }
    }
}

/// An ERC-721 / bonding-curve invariant that does not hold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvariantViolation {
    /// More active tokens than the supply cap allows (Eq. 1).
    SupplyCapExceeded {
        /// Active token count.
        active: u64,
        /// The cap.
        max_supply: u64,
    },
    /// `active + remaining ≠ max_supply`.
    SupplyAccounting {
        /// Active token count.
        active: u64,
        /// Reported mintable supply.
        remaining: u64,
        /// The cap.
        max_supply: u64,
    },
    /// A token id at or beyond the cap is active.
    TokenOutOfRange(TokenId),
    /// The same token id appears twice in the ownership index.
    DuplicateToken(TokenId),
    /// An active token is owned by the zero address.
    ZeroOwner(TokenId),
    /// `mints − burns ≠ active` (the lifetime ledger went out of balance).
    LifetimeLedger {
        /// Lifetime mints.
        mints: u64,
        /// Lifetime burns.
        burns: u64,
        /// Active token count.
        active: u64,
    },
    /// The reported price disagrees with the Eq. 10 curve.
    PriceMismatch {
        /// Price the curve mandates.
        expected: Wei,
        /// Price reported.
        got: Wei,
    },
    /// A sampled curve point deviates from `P^0 × S^0 / S^t` (quantized).
    CurveNotEq10 {
        /// The remaining supply of the offending sample.
        remaining: u64,
        /// The sampled price.
        got: Wei,
    },
    /// The curve rose with increasing remaining supply (scarcity must make
    /// prices non-increasing in `S^t`).
    CurveNotMonotone {
        /// The remaining supply where the rise was observed.
        remaining: u64,
    },
    /// `balance_of` disagrees with a recount of the ownership index.
    BalanceIndex {
        /// The owner whose balance is inconsistent.
        owner: Address,
        /// Recounted holdings.
        expected: u64,
        /// `balance_of` report.
        got: u64,
    },
    /// Replaying the event log does not reconstruct current ownership.
    EventReplayMismatch,
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvariantViolation::SupplyCapExceeded { active, max_supply } => {
                write!(f, "{active} active tokens exceed cap {max_supply}")
            }
            InvariantViolation::SupplyAccounting {
                active,
                remaining,
                max_supply,
            } => write!(
                f,
                "active {active} + remaining {remaining} != max supply {max_supply}"
            ),
            InvariantViolation::TokenOutOfRange(t) => {
                write!(f, "active token {t} is out of range")
            }
            InvariantViolation::DuplicateToken(t) => {
                write!(f, "token {t} appears twice in the ownership index")
            }
            InvariantViolation::ZeroOwner(t) => {
                write!(f, "token {t} is owned by the zero address")
            }
            InvariantViolation::LifetimeLedger {
                mints,
                burns,
                active,
            } => write!(
                f,
                "lifetime ledger unbalanced: {mints} mints - {burns} burns != {active} active"
            ),
            InvariantViolation::PriceMismatch { expected, got } => {
                write!(f, "price {got} disagrees with curve price {expected}")
            }
            InvariantViolation::CurveNotEq10 { remaining, got } => {
                write!(
                    f,
                    "curve point at remaining {remaining} = {got} violates Eq. 10"
                )
            }
            InvariantViolation::CurveNotMonotone { remaining } => {
                write!(f, "curve rises at remaining {remaining}")
            }
            InvariantViolation::BalanceIndex {
                owner,
                expected,
                got,
            } => write!(
                f,
                "balance_of({owner}) = {got}, ownership index counts {expected}"
            ),
            InvariantViolation::EventReplayMismatch => {
                write!(f, "event-log replay does not reconstruct ownership")
            }
        }
    }
}

impl std::error::Error for InvariantViolation {}

/// Judges extracted facts with independently re-derived arithmetic.
///
/// # Errors
///
/// Returns the first violated invariant.
pub fn check_facts(facts: &CollectionFacts) -> Result<(), InvariantViolation> {
    let active = facts.active.len() as u64;

    // Eq. 1's supply cap and the `S^t` accounting identity.
    if active > facts.max_supply {
        return Err(InvariantViolation::SupplyCapExceeded {
            active,
            max_supply: facts.max_supply,
        });
    }
    if active + facts.remaining_supply != facts.max_supply {
        return Err(InvariantViolation::SupplyAccounting {
            active,
            remaining: facts.remaining_supply,
            max_supply: facts.max_supply,
        });
    }

    // Unique ownership: ids in range, strictly increasing (no duplicates),
    // no zero owners.
    let mut prev: Option<TokenId> = None;
    for &(token, owner) in &facts.active {
        if token.value() >= facts.max_supply {
            return Err(InvariantViolation::TokenOutOfRange(token));
        }
        if prev.is_some_and(|p| p >= token) {
            return Err(InvariantViolation::DuplicateToken(token));
        }
        if owner.is_zero() {
            return Err(InvariantViolation::ZeroOwner(token));
        }
        prev = Some(token);
    }

    // Lifetime ledger: every active token was minted and not burned.
    let (mints, _, burns) = facts.lifetime;
    if mints < burns || mints - burns != active {
        return Err(InvariantViolation::LifetimeLedger {
            mints,
            burns,
            active,
        });
    }

    // Scarcity monotonicity: price never rises as supply becomes plentiful.
    // Checked before the point-wise Eq. 10 re-derivation so a bent curve is
    // reported as the shape violation it is, not as one bad sample.
    for pair in facts.curve.windows(2) {
        if pair[1].1 > pair[0].1 {
            return Err(InvariantViolation::CurveNotMonotone {
                remaining: pair[1].0,
            });
        }
    }

    // Eq. 10, re-derived: each sampled point must equal
    // `P^0 × S^0 / S^t` floored to the quantum.
    for &(remaining, got) in &facts.curve {
        let raw = facts.initial_price.wei() * facts.max_supply as u128 / remaining as u128;
        let expected = Wei::from_wei(raw).quantize_floor(facts.price_quantum);
        if got != expected {
            return Err(InvariantViolation::CurveNotEq10 { remaining, got });
        }
    }

    // The reported price sits on the curve (sold-out collections report the
    // supremum at `S^t = 1`).
    if let Some(&(_, expected)) = facts
        .curve
        .iter()
        .find(|&&(r, _)| r == facts.remaining_supply.max(1))
    {
        if facts.price != expected {
            return Err(InvariantViolation::PriceMismatch {
                expected,
                got: facts.price,
            });
        }
    }

    Ok(())
}

/// Checks a live collection: extracted facts plus the owner/balance index
/// and event-log replay cross-checks.
///
/// # Errors
///
/// Returns the first violated invariant.
pub fn check_collection(c: &Collection) -> Result<(), InvariantViolation> {
    let facts = CollectionFacts::gather(c);
    check_facts(&facts)?;

    // Owner/balance index consistency: `balance_of` must agree with a
    // recount of the ownership index for every holder.
    let mut holdings: BTreeMap<Address, u64> = BTreeMap::new();
    for &(_, owner) in &facts.active {
        *holdings.entry(owner).or_default() += 1;
    }
    for (&owner, &expected) in &holdings {
        let got = c.balance_of(owner);
        if got != expected {
            return Err(InvariantViolation::BalanceIndex {
                owner,
                expected,
                got,
            });
        }
    }

    // Replaying the append-only event log must reconstruct ownership.
    let mut replay: BTreeMap<TokenId, Address> = BTreeMap::new();
    for ev in c.events() {
        if let Erc721Event::Transfer { to, token, .. } = ev {
            if to.is_zero() {
                replay.remove(token);
            } else {
                replay.insert(*token, *to);
            }
        }
    }
    let live: BTreeMap<TokenId, Address> = facts.active.iter().copied().collect();
    if replay != live {
        return Err(InvariantViolation::EventReplayMismatch);
    }
    Ok(())
}

/// Sweeps every collection of a state.
///
/// # Errors
///
/// Returns the first offending collection's address with its violation.
pub fn check_state(state: &L2State) -> Result<(), (Address, InvariantViolation)> {
    for (addr, c) in state.collections() {
        check_collection(c).map_err(|v| (addr, v))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use parole_nft::CollectionConfig;

    fn addr(v: u64) -> Address {
        Address::from_low_u64(v)
    }

    fn minted() -> Collection {
        let mut c = Collection::new(CollectionConfig::parole_token());
        for i in 0..5 {
            c.mint(addr(i % 2 + 1), TokenId::new(i)).unwrap();
        }
        c
    }

    #[test]
    fn fresh_and_exercised_collections_pass() {
        assert_eq!(
            check_collection(&Collection::new(CollectionConfig::parole_token())),
            Ok(())
        );
        let mut c = minted();
        c.transfer(addr(1), addr(3), TokenId::new(0)).unwrap();
        c.burn(addr(2), TokenId::new(1)).unwrap();
        assert_eq!(check_collection(&c), Ok(()));
    }

    #[test]
    fn state_sweep_passes_on_honest_state() {
        let mut s = L2State::new();
        s.deploy_collection(CollectionConfig::parole_token());
        s.deploy_collection(CollectionConfig::limited_edition("X", 4, 100));
        assert_eq!(check_state(&s), Ok(()));
    }

    #[test]
    fn quantized_and_unquantized_curves_both_satisfy_eq10() {
        let mut cfg = CollectionConfig::limited_edition("Raw", 7, 130);
        cfg.price_quantum = Wei::ZERO;
        assert_eq!(check_collection(&Collection::new(cfg)), Ok(()));
    }
}
