//! Independent adjudication of claimed execution traces.
//!
//! `parole-rollup`'s interactive bisection game trusts nothing but two root
//! vectors and one witness state — but the *game itself* is production code,
//! and a bug in its binary search would mislocalize fraud while looking
//! perfectly convergent. This oracle re-derives everything from raw
//! primitives:
//!
//! - the **honest trace** is recomputed from the pre-state and the batch's
//!   transactions, one [`Ovm::execute`](parole_ovm::Ovm::execute) per step;
//! - the first forged step is found **twice**, by two algorithms that share
//!   no code: a brute-force linear scan (ground truth, O(n)) and the
//!   oracle's own binary search (the protocol's shape, O(log n));
//! - the two answers are cross-checked and any disagreement is a
//!   **fail-stop** [`BisectionViolation::SearchInconsistent`] — the oracle
//!   refuses to pick a winner between its own two derivations.
//!
//! The linear scan makes the oracle strictly stronger than the interactive
//! game: a forged trace that diverges mid-batch but *reconverges* to the
//! honest final root would send the game to the block-advance dispute
//! (where the defender wins — the commitment is honest), yet it is still a
//! lie about intermediate state. The oracle reports it as
//! [`TraceVerdict::ForgedReconverging`] so harnesses can distinguish
//! "protocol-sound" from "trace-honest".

use parole_crypto::Hash32;
use parole_ovm::{NftTransaction, Ovm};
use parole_state::L2State;
use std::fmt;

/// What the oracle concluded about a claimed trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceVerdict {
    /// Every claimed root matches honest re-execution.
    Honest,
    /// The claimed trace first lies at the transition `step → step + 1`,
    /// and its final root differs from the honest one, so the interactive
    /// game converges to the same step — in `rounds` midpoint queries by
    /// the oracle's own binary search.
    Forged {
        /// Index of the first forged transaction step.
        step: usize,
        /// Midpoint queries the oracle's binary search needed.
        rounds: u32,
    },
    /// The claimed trace lies at `step` but reconverges to the honest
    /// final root: sound for the commitment, dishonest about intermediate
    /// state. Binary search cannot localize this; only the linear scan
    /// sees it.
    ForgedReconverging {
        /// Index of the first forged transaction step.
        step: usize,
    },
}

/// A reason the oracle could not (or refused to) adjudicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BisectionViolation {
    /// The claimed trace does not hold `txs.len() + 1` roots.
    LengthMismatch {
        /// Roots an honest trace of this batch holds.
        expected: usize,
        /// Roots the claimed trace holds.
        got: usize,
    },
    /// The claimed trace starts from a different pre-state root, so the
    /// two sides are not even arguing about the same batch.
    PreRootMismatch {
        /// Root of the supplied pre-state.
        expected: Hash32,
        /// The claimed trace's first root.
        got: Hash32,
    },
    /// Fail-stop: the oracle's linear scan and its binary search disagree
    /// on the first forged step. One of the oracle's own derivations is
    /// wrong and no verdict can be trusted.
    SearchInconsistent {
        /// First divergent step per the linear scan.
        linear: usize,
        /// First divergent step per the binary search.
        binary: usize,
    },
}

impl fmt::Display for BisectionViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BisectionViolation::LengthMismatch { expected, got } => {
                write!(f, "claimed trace holds {got} roots, batch needs {expected}")
            }
            BisectionViolation::PreRootMismatch { expected, got } => {
                write!(
                    f,
                    "claimed pre-root {got} is not the batch pre-root {expected}"
                )
            }
            BisectionViolation::SearchInconsistent { linear, binary } => write!(
                f,
                "fail-stop: linear scan localizes step {linear}, binary search step {binary}"
            ),
        }
    }
}

impl std::error::Error for BisectionViolation {}

/// Re-derives honest traces and adjudicates claimed ones from scratch.
#[derive(Debug, Clone, Default)]
pub struct BisectionOracle {
    ovm: Ovm,
}

impl BisectionOracle {
    /// An oracle executing with `ovm`'s rules.
    pub fn new(ovm: Ovm) -> Self {
        BisectionOracle { ovm }
    }

    /// The honest root vector for `txs` from a fork of `pre`:
    /// `txs.len() + 1` roots, the first being `pre`'s own root.
    pub fn honest_trace(&self, pre: &L2State, txs: &[NftTransaction]) -> Vec<Hash32> {
        let mut state = pre.clone();
        let mut roots = Vec::with_capacity(txs.len() + 1);
        roots.push(state.state_root());
        for tx in txs {
            let _ = self.ovm.execute(&mut state, tx);
            roots.push(state.state_root());
        }
        roots
    }

    /// Adjudicates `claimed` against honest re-execution of `txs` from
    /// `pre`, localizing the first forged step by two independent
    /// algorithms and cross-checking them.
    ///
    /// # Errors
    ///
    /// [`BisectionViolation::LengthMismatch`] / [`PreRootMismatch`]
    /// (malformed games the caller must reject before playing), or the
    /// fail-stop [`SearchInconsistent`] when the oracle's own two
    /// derivations disagree.
    ///
    /// [`PreRootMismatch`]: BisectionViolation::PreRootMismatch
    /// [`SearchInconsistent`]: BisectionViolation::SearchInconsistent
    pub fn audit_trace(
        &self,
        pre: &L2State,
        txs: &[NftTransaction],
        claimed: &[Hash32],
    ) -> Result<TraceVerdict, BisectionViolation> {
        let honest = self.honest_trace(pre, txs);
        if claimed.len() != honest.len() {
            return Err(BisectionViolation::LengthMismatch {
                expected: honest.len(),
                got: claimed.len(),
            });
        }
        if claimed[0] != honest[0] {
            return Err(BisectionViolation::PreRootMismatch {
                expected: honest[0],
                got: claimed[0],
            });
        }

        // Ground truth: brute-force scan for the first divergent root.
        // `roots[i]` covers the transition `i - 1 → i`, so the first
        // divergence at index `i` convicts step `i - 1`.
        let linear = honest
            .iter()
            .zip(claimed.iter())
            .position(|(h, c)| h != c)
            .map(|i| i - 1);
        let Some(linear_step) = linear else {
            return Ok(TraceVerdict::Honest);
        };

        let n = txs.len();
        if claimed[n] == honest[n] {
            // Diverged then reconverged — invisible to any endpoint-driven
            // binary search, so only the linear verdict exists.
            return Ok(TraceVerdict::ForgedReconverging { step: linear_step });
        }

        // The protocol's shape, re-implemented without sharing code with
        // `parole-rollup`: roots agree at `lo`, disagree at `hi`.
        let (mut lo, mut hi) = (0usize, n);
        let mut rounds = 0u32;
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            rounds += 1;
            if claimed[mid] == honest[mid] {
                lo = mid;
            } else {
                hi = mid;
            }
        }

        if lo != linear_step {
            return Err(BisectionViolation::SearchInconsistent {
                linear: linear_step,
                binary: lo,
            });
        }
        Ok(TraceVerdict::Forged {
            step: linear_step,
            rounds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parole_nft::CollectionConfig;
    use parole_ovm::TxKind;
    use parole_primitives::{Address, TokenId, Wei};

    fn addr(v: u64) -> Address {
        Address::from_low_u64(v)
    }

    fn world(n: u64) -> (L2State, Vec<NftTransaction>) {
        let mut state = L2State::new();
        let pt = state.deploy_collection(CollectionConfig::parole_token());
        for i in 1..=n {
            state.credit(addr(i), Wei::from_eth(2));
        }
        let txs = (0..n)
            .map(|i| {
                NftTransaction::simple(
                    addr(i + 1),
                    TxKind::Mint {
                        collection: pt,
                        token: TokenId::new(i),
                    },
                )
            })
            .collect();
        (state, txs)
    }

    #[test]
    fn honest_trace_is_honest() {
        let (state, txs) = world(4);
        let oracle = BisectionOracle::new(Ovm::new());
        let claimed = oracle.honest_trace(&state, &txs);
        assert_eq!(
            oracle.audit_trace(&state, &txs, &claimed),
            Ok(TraceVerdict::Honest)
        );
    }

    #[test]
    fn every_forged_suffix_localizes_in_log_rounds() {
        let (state, txs) = world(8);
        let oracle = BisectionOracle::new(Ovm::new());
        let honest = oracle.honest_trace(&state, &txs);
        for step in 0..8usize {
            let mut claimed = honest.clone();
            for root in claimed.iter_mut().skip(step + 1) {
                *root = parole_crypto::keccak256(root.as_bytes());
            }
            assert_eq!(
                oracle.audit_trace(&state, &txs, &claimed),
                Ok(TraceVerdict::Forged { step, rounds: 3 })
            );
        }
    }

    #[test]
    fn reconverging_forgery_is_seen_only_by_the_scan() {
        let (state, txs) = world(4);
        let oracle = BisectionOracle::new(Ovm::new());
        let mut claimed = oracle.honest_trace(&state, &txs);
        // Lie about the middle, keep both endpoints honest.
        claimed[2] = parole_crypto::keccak256(claimed[2].as_bytes());
        assert_eq!(
            oracle.audit_trace(&state, &txs, &claimed),
            Ok(TraceVerdict::ForgedReconverging { step: 1 })
        );
    }

    #[test]
    fn malformed_games_are_rejected_before_play() {
        let (state, txs) = world(4);
        let oracle = BisectionOracle::new(Ovm::new());
        let honest = oracle.honest_trace(&state, &txs);

        let short = &honest[..3];
        assert!(matches!(
            oracle.audit_trace(&state, &txs, short),
            Err(BisectionViolation::LengthMismatch {
                expected: 5,
                got: 3
            })
        ));

        let mut wrong_pre = honest.clone();
        wrong_pre[0] = parole_crypto::keccak256(wrong_pre[0].as_bytes());
        assert!(matches!(
            oracle.audit_trace(&state, &txs, &wrong_pre),
            Err(BisectionViolation::PreRootMismatch { .. })
        ));
    }
}
