//! Conservation auditing around single executions.
//!
//! [`ExecutionSnapshot`] captures the handful of facts one
//! [`Ovm::execute`](parole_ovm::Ovm::execute) call is allowed to move —
//! circulating Wei, the claimed sender's nonce, and every collection's
//! token-ledger counters — *before* the call, and
//! [`check_execution`] verifies the post-state moved them in exact lockstep
//! with the receipt:
//!
//! - Wei never appears out of thin air, and only leaves circulation as the
//!   burned fee the receipt reports;
//! - the claimed sender's nonce advances exactly once, whatever the outcome
//!   (the reason-dependent nonce skip was a real bug here once);
//! - a successful mint/transfer/burn moves exactly one token and exactly one
//!   lifetime counter of exactly the collection the transaction names, and a
//!   revert moves none;
//! - `BadSignature` / `CannotPayFees` reverts report a zero `fee_paid`,
//!   since no debit ever happened on those paths.
//!
//! The snapshot-based design is what makes the mutation harness possible:
//! a deliberately buggy execution can be supplied externally and the auditor
//! judges it from the outside, exactly as it judges the real OVM.

use parole_ovm::{NftTransaction, Ovm, Receipt, RevertReason, TxKind};
use parole_primitives::{Address, Wei};
use parole_state::L2State;
use std::collections::BTreeMap;
use std::fmt;

/// One collection's ledger counters at a point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CollectionCounts {
    /// Currently active (minted, not burned) tokens.
    pub active: u64,
    /// Lifetime mints.
    pub mints: u64,
    /// Lifetime transfers.
    pub transfers: u64,
    /// Lifetime burns.
    pub burns: u64,
}

/// The conservation-relevant facts captured before one execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecutionSnapshot {
    /// Total circulating Wei.
    pub total_supply: Wei,
    /// The claimed sender.
    pub sender: Address,
    /// The sender's nonce (0 for a fresh account).
    pub sender_nonce: u64,
    /// Ledger counters of every deployed collection.
    pub collections: BTreeMap<Address, CollectionCounts>,
}

impl ExecutionSnapshot {
    /// Captures the facts [`check_execution`] will re-derive afterwards.
    pub fn take(state: &L2State, sender: Address) -> Self {
        ExecutionSnapshot {
            total_supply: state.total_supply(),
            sender,
            sender_nonce: state.account(sender).map_or(0, |a| a.nonce.value()),
            collections: collection_counts(state),
        }
    }
}

fn collection_counts(state: &L2State) -> BTreeMap<Address, CollectionCounts> {
    state
        .collections()
        .map(|(addr, c)| {
            let (mints, transfers, burns) = c.lifetime_counts();
            (
                addr,
                CollectionCounts {
                    active: c.active_supply(),
                    mints,
                    transfers,
                    burns,
                },
            )
        })
        .collect()
}

/// A conservation law one execution broke.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConservationViolation {
    /// Circulating Wei moved by something other than the burned fee.
    WeiNotConserved {
        /// Supply before the execution.
        before: Wei,
        /// Supply after the execution.
        after: Wei,
        /// The fee the receipt claims was burned.
        fee_paid: Wei,
    },
    /// The claimed sender's nonce did not advance exactly once.
    NonceNotUniform {
        /// The sender whose nonce misbehaved.
        sender: Address,
        /// Nonce before the execution.
        before: u64,
        /// Nonce after the execution.
        after: u64,
    },
    /// A revert path that never debits fees reported a non-zero `fee_paid`.
    GhostFee {
        /// The reason the transaction reverted.
        reason: RevertReason,
        /// The fee the receipt claims was paid.
        claimed: Wei,
    },
    /// A collection's token-ledger counters moved out of lockstep with the
    /// receipt.
    TokenLedgerDrift {
        /// The collection whose counters drifted.
        collection: Address,
        /// Counters the receipt mandates.
        expected: CollectionCounts,
        /// Counters actually observed.
        got: CollectionCounts,
    },
    /// The set of deployed collections changed across a plain execution.
    CollectionSetChanged,
    /// A fraud slash did not split exactly into reward plus burn.
    BondNotConserved {
        /// The bond amount slashed from the fraudulent party.
        slashed: Wei,
        /// The share paid out to the successful challenger.
        reward: Wei,
        /// The share removed from circulation.
        burned: Wei,
    },
}

impl fmt::Display for ConservationViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConservationViolation::WeiNotConserved {
                before,
                after,
                fee_paid,
            } => write!(
                f,
                "wei supply {before} -> {after} inconsistent with burned fee {fee_paid}"
            ),
            ConservationViolation::NonceNotUniform {
                sender,
                before,
                after,
            } => write!(
                f,
                "sender {sender} nonce {before} -> {after}, must advance exactly once"
            ),
            ConservationViolation::GhostFee { reason, claimed } => write!(
                f,
                "revert '{reason}' happens before any debit but claims fee {claimed}"
            ),
            ConservationViolation::TokenLedgerDrift {
                collection,
                expected,
                got,
            } => write!(
                f,
                "collection {collection} ledger drifted: expected {expected:?}, got {got:?}"
            ),
            ConservationViolation::CollectionSetChanged => {
                write!(f, "set of deployed collections changed during execution")
            }
            ConservationViolation::BondNotConserved {
                slashed,
                reward,
                burned,
            } => write!(
                f,
                "slashed bond {slashed} must equal reward {reward} + burn {burned}"
            ),
        }
    }
}

impl std::error::Error for ConservationViolation {}

/// Audits one execution: `pre` was taken on the pre-state, `post` is the
/// state after the OVM processed `tx` and produced `receipt`.
///
/// # Errors
///
/// Returns the first [`ConservationViolation`] found, checking nonce
/// uniformity, fee honesty, Wei conservation, then token-ledger lockstep.
pub fn check_execution(
    pre: &ExecutionSnapshot,
    post: &L2State,
    tx: &NftTransaction,
    receipt: &Receipt,
) -> Result<(), ConservationViolation> {
    // Nonce uniformity: exactly one bump of the claimed sender.
    let nonce_after = post.account(pre.sender).map_or(0, |a| a.nonce.value());
    if nonce_after != pre.sender_nonce + 1 {
        return Err(ConservationViolation::NonceNotUniform {
            sender: pre.sender,
            before: pre.sender_nonce,
            after: nonce_after,
        });
    }

    // Fee honesty: the pre-debit revert paths charge nothing.
    if let Some(reason) = receipt.revert_reason() {
        if matches!(
            reason,
            RevertReason::BadSignature | RevertReason::CannotPayFees
        ) && !receipt.fee_paid.is_zero()
        {
            return Err(ConservationViolation::GhostFee {
                reason,
                claimed: receipt.fee_paid,
            });
        }
    }

    // Wei conservation: the burned fee is the only sink, and there is no
    // source at all. Prices move balances between accounts, never the total.
    let supply_after = post.total_supply();
    if pre.total_supply.checked_sub(receipt.fee_paid) != Ok(supply_after) {
        return Err(ConservationViolation::WeiNotConserved {
            before: pre.total_supply,
            after: supply_after,
            fee_paid: receipt.fee_paid,
        });
    }

    // Token-ledger lockstep: only the named collection may move, and only in
    // the single step the receipt's outcome mandates.
    let after = collection_counts(post);
    if after.len() != pre.collections.len() {
        return Err(ConservationViolation::CollectionSetChanged);
    }
    for (addr, before) in &pre.collections {
        let Some(got) = after.get(addr) else {
            return Err(ConservationViolation::CollectionSetChanged);
        };
        let mut expected = *before;
        if receipt.is_success() && *addr == tx.kind.collection() {
            match tx.kind {
                TxKind::Mint { .. } => {
                    expected.active += 1;
                    expected.mints += 1;
                }
                TxKind::Transfer { .. } => expected.transfers += 1,
                TxKind::Burn { .. } => {
                    expected.active -= 1;
                    expected.burns += 1;
                }
                // Approvals move no tokens: every ledger counter holds.
                TxKind::Approve { .. } | TxKind::SetApprovalForAll { .. } => {}
            }
        }
        if *got != expected {
            return Err(ConservationViolation::TokenLedgerDrift {
                collection: *addr,
                expected,
                got: *got,
            });
        }
    }
    Ok(())
}

/// Audits one fraud slash: the full slashed bond must split *exactly* into
/// the challenger's reward plus the burned remainder — no Wei may vanish
/// between the slash and its two sinks, and the reward can never exceed
/// the bond it came from. (The remainder used to be dropped silently on
/// the challenge path; this checker pins the fixed accounting from the
/// outside.)
///
/// # Errors
///
/// Returns [`ConservationViolation::BondNotConserved`] when
/// `reward + burned != slashed` (including the reward-exceeds-bond case).
pub fn check_bond_flow(
    slashed: Wei,
    reward: Wei,
    burned: Wei,
) -> Result<(), ConservationViolation> {
    if slashed.checked_sub(reward) != Ok(burned) {
        return Err(ConservationViolation::BondNotConserved {
            slashed,
            reward,
            burned,
        });
    }
    Ok(())
}

/// An [`Ovm`] wrapper that audits every execution it performs.
///
/// ```
/// use parole_audit::AuditedOvm;
/// use parole_ovm::{NftTransaction, Ovm, TxKind};
/// use parole_nft::CollectionConfig;
/// use parole_primitives::{Address, TokenId, Wei};
/// use parole_state::L2State;
///
/// let mut state = L2State::new();
/// let pt = state.deploy_collection(CollectionConfig::parole_token());
/// let minter = Address::from_low_u64(1);
/// state.credit(minter, Wei::from_eth(1));
/// let mut audited = AuditedOvm::new(Ovm::new());
/// let tx = NftTransaction::simple(minter, TxKind::Mint { collection: pt, token: TokenId::new(0) });
/// let receipt = audited.execute(&mut state, &tx).expect("conserves");
/// assert!(receipt.is_success());
/// ```
#[derive(Debug, Clone)]
pub struct AuditedOvm {
    ovm: Ovm,
    checks: u64,
}

impl AuditedOvm {
    /// Wraps `ovm` so every execution is conservation-checked.
    pub fn new(ovm: Ovm) -> Self {
        AuditedOvm { ovm, checks: 0 }
    }

    /// The wrapped OVM.
    pub fn ovm(&self) -> &Ovm {
        &self.ovm
    }

    /// Number of executions audited so far.
    pub fn checks_performed(&self) -> u64 {
        self.checks
    }

    /// Executes `tx` and audits the transition.
    ///
    /// # Errors
    ///
    /// Returns the violation instead of the receipt when a conservation law
    /// broke; `state` keeps the (corrupt) post-execution contents so the
    /// caller can inspect it.
    pub fn execute(
        &mut self,
        state: &mut L2State,
        tx: &NftTransaction,
    ) -> Result<Receipt, ConservationViolation> {
        let pre = ExecutionSnapshot::take(state, tx.sender);
        let receipt = self.ovm.execute(state, tx);
        self.checks += 1;
        check_execution(&pre, state, tx, &receipt)?;
        Ok(receipt)
    }

    /// Executes a whole sequence, auditing every step.
    ///
    /// # Errors
    ///
    /// Stops at (and returns) the first violating step.
    pub fn execute_sequence(
        &mut self,
        state: &mut L2State,
        txs: &[NftTransaction],
    ) -> Result<Vec<Receipt>, ConservationViolation> {
        txs.iter().map(|tx| self.execute(state, tx)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parole_nft::CollectionConfig;
    use parole_primitives::TokenId;

    fn addr(v: u64) -> Address {
        Address::from_low_u64(v)
    }

    fn world() -> (L2State, Address) {
        let mut state = L2State::new();
        let pt = state.deploy_collection(CollectionConfig::parole_token());
        for u in 1..=3 {
            state.credit(addr(u), Wei::from_eth(2));
        }
        (state, pt)
    }

    #[test]
    fn honest_executions_pass() {
        let (mut state, pt) = world();
        let mut audited = AuditedOvm::new(Ovm::new());
        let txs = vec![
            NftTransaction::simple(
                addr(1),
                TxKind::Mint {
                    collection: pt,
                    token: TokenId::new(0),
                },
            ),
            NftTransaction::simple(
                addr(1),
                TxKind::Transfer {
                    collection: pt,
                    token: TokenId::new(0),
                    to: addr(2),
                },
            ),
            NftTransaction::simple(
                addr(2),
                TxKind::Burn {
                    collection: pt,
                    token: TokenId::new(0),
                },
            ),
            // Guaranteed revert: not the owner.
            NftTransaction::simple(
                addr(3),
                TxKind::Burn {
                    collection: pt,
                    token: TokenId::new(9),
                },
            ),
        ];
        let receipts = audited.execute_sequence(&mut state, &txs).expect("honest");
        assert_eq!(receipts.len(), 4);
        assert_eq!(audited.checks_performed(), 4);
    }

    #[test]
    fn thin_air_credit_is_caught() {
        let (mut state, pt) = world();
        let tx = NftTransaction::simple(
            addr(1),
            TxKind::Mint {
                collection: pt,
                token: TokenId::new(0),
            },
        );
        let pre = ExecutionSnapshot::take(&state, tx.sender);
        let receipt = Ovm::new().execute(&mut state, &tx);
        // A corrupt executor that conjures value for the sender.
        state.credit(addr(1), Wei::from_wei(1));
        let err = check_execution(&pre, &state, &tx, &receipt).unwrap_err();
        assert!(matches!(err, ConservationViolation::WeiNotConserved { .. }));
    }

    #[test]
    fn bond_flow_must_split_exactly() {
        let slashed = Wei::from_eth(10);
        let reward = Wei::from_eth(5);
        assert_eq!(check_bond_flow(slashed, reward, Wei::from_eth(5)), Ok(()));
        // A leaked remainder (the historical silent drop) fires.
        assert!(matches!(
            check_bond_flow(slashed, reward, Wei::ZERO),
            Err(ConservationViolation::BondNotConserved { .. })
        ));
        // An over-burn fires just the same.
        assert!(check_bond_flow(slashed, reward, Wei::from_eth(6)).is_err());
        // A reward exceeding the bond can never balance.
        assert!(check_bond_flow(Wei::from_eth(1), Wei::from_eth(2), Wei::ZERO).is_err());
    }

    #[test]
    fn double_count_mint_is_caught() {
        let (mut state, pt) = world();
        let tx = NftTransaction::simple(
            addr(1),
            TxKind::Mint {
                collection: pt,
                token: TokenId::new(0),
            },
        );
        let pre = ExecutionSnapshot::take(&state, tx.sender);
        let receipt = Ovm::new().execute(&mut state, &tx);
        // A corrupt executor that minted a second token behind the receipt.
        state
            .collection_mut(pt)
            .unwrap()
            .mint(addr(2), TokenId::new(1))
            .unwrap();
        let err = check_execution(&pre, &state, &tx, &receipt).unwrap_err();
        assert!(matches!(
            err,
            ConservationViolation::TokenLedgerDrift { .. }
        ));
    }
}
