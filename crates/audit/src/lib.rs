//! Runtime invariant auditors and differential oracles for the PAROLE
//! reproduction.
//!
//! Every other crate in the workspace *implements* the protocol; this one
//! *distrusts* it. Each auditor is an independent re-derivation of a rule the
//! system is supposed to uphold, written against raw primitives so that a bug
//! in the production code path cannot silently agree with its own checker:
//!
//! - [`bisection`] — independent adjudication of claimed per-transaction
//!   execution traces: the honest trace is re-derived from scratch and the
//!   first forged step localized twice (brute-force scan and an own binary
//!   search) with a fail-stop cross-check between the two.
//! - [`conservation`] — value and token-ledger conservation around every
//!   [`parole_ovm::Ovm::execute`] call: Wei only moves or burns as fees,
//!   the claimed sender's nonce advances exactly once per processed
//!   transaction, and per-collection mint/transfer/burn counters move in
//!   lockstep with the receipt.
//! - [`invariants`] — the ERC-721 bonding-curve post-conditions of the
//!   paper's Eqs. 1–6 and Eq. 10 checked against any [`parole_state::L2State`]:
//!   supply cap, unique ownership, owner/balance index consistency, lifetime
//!   ledger balance, and a monotone scarcity curve.
//! - [`differential`] — replay oracles diffing the prefix-cached incremental
//!   executor ([`parole_ovm::PrefixExecutor`]) and the optimistic-concurrency
//!   parallel block executor ([`parole_ovm::ParallelExecutor`], at several
//!   thread counts) against naive fresh execution, receipt by receipt and
//!   state root by state root.
//! - [`fee`] — an independent EIP-1559 base-fee recomputation used to audit
//!   the sequencer's fee controller block by block.
//! - [`replay`] — the event-replay oracle: folding a block's receipt log
//!   stream over the pre-block state must reproduce the post-block
//!   ownership, approval, operator and bonding-curve maps exactly, with a
//!   fail-stop on internally inconsistent streams.
//!
//! The auditors are pure functions over snapshots and states; production
//! crates wire them in behind their `audit` cargo feature so the release hot
//! path pays nothing. The crate's own test suite doubles as a *mutation
//! harness*: it re-introduces each historical bug (the at-target fee bump,
//! the reason-dependent nonce skip, linkage-only L1 verification, stale
//! incremental caches, out-of-thin-air credits) and proves the corresponding
//! auditor fires.

#![warn(missing_docs)]

pub mod bisection;
pub mod conservation;
pub mod differential;
pub mod fee;
pub mod invariants;
pub mod replay;

pub use bisection::{BisectionOracle, BisectionViolation, TraceVerdict};
pub use conservation::{
    check_bond_flow, AuditedOvm, CollectionCounts, ConservationViolation, ExecutionSnapshot,
};
pub use differential::{diff_execution, DifferentialOracle, Divergence, ParallelOracle};
pub use fee::{check_fee_update, expected_base_fee, FeeViolation};
pub use invariants::{
    check_collection, check_facts, check_state, CollectionFacts, InvariantViolation,
};
pub use replay::{
    check_event_replay, replay_events, snapshot_maps, CollectionMaps, EventReplayViolation,
    StateMaps,
};

use std::fmt;

/// Umbrella over every violation the crate can report, for call sites that
/// run several auditors and surface one error channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditViolation {
    /// A claimed execution trace was malformed, or the bisection oracle's
    /// own derivations disagreed (fail-stop).
    Bisection(BisectionViolation),
    /// A conservation law around one execution broke.
    Conservation(ConservationViolation),
    /// An ERC-721 / bonding-curve state invariant broke.
    Invariant(InvariantViolation),
    /// Incremental and naive execution disagreed.
    Differential(Divergence),
    /// A base-fee update deviated from the EIP-1559 rule.
    FeeMarket(FeeViolation),
    /// Replaying a block's receipt event stream over the pre-block state
    /// failed to reproduce the post-block token maps.
    EventReplay(EventReplayViolation),
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditViolation::Bisection(v) => write!(f, "bisection audit: {v}"),
            AuditViolation::Conservation(v) => write!(f, "conservation audit: {v}"),
            AuditViolation::Invariant(v) => write!(f, "invariant audit: {v}"),
            AuditViolation::Differential(v) => write!(f, "differential audit: {v}"),
            AuditViolation::FeeMarket(v) => write!(f, "fee-market audit: {v}"),
            AuditViolation::EventReplay(v) => write!(f, "event-replay audit: {v}"),
        }
    }
}

impl std::error::Error for AuditViolation {}

impl From<BisectionViolation> for AuditViolation {
    fn from(v: BisectionViolation) -> Self {
        AuditViolation::Bisection(v)
    }
}

impl From<ConservationViolation> for AuditViolation {
    fn from(v: ConservationViolation) -> Self {
        AuditViolation::Conservation(v)
    }
}

impl From<InvariantViolation> for AuditViolation {
    fn from(v: InvariantViolation) -> Self {
        AuditViolation::Invariant(v)
    }
}

impl From<Divergence> for AuditViolation {
    fn from(v: Divergence) -> Self {
        AuditViolation::Differential(v)
    }
}

impl From<FeeViolation> for AuditViolation {
    fn from(v: FeeViolation) -> Self {
        AuditViolation::FeeMarket(v)
    }
}

impl From<EventReplayViolation> for AuditViolation {
    fn from(v: EventReplayViolation) -> Self {
        AuditViolation::EventReplay(v)
    }
}
