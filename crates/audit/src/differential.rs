//! Differential oracle: incremental vs naive execution.
//!
//! The GENTRANSEQ hot path evaluates candidate orderings through
//! [`PrefixExecutor`], which replays only the suffix that diverged from the
//! previous candidate. Its contract is bit-identical equivalence with
//! [`Ovm::simulate_sequence`]; a stale checkpoint, a mark placed one slot
//! off, or an undo-log gap silently corrupts *every* downstream profit
//! estimate. The oracle re-executes windows naively from the pristine base
//! state and diffs receipts slot by slot plus the final state roots.

use parole_crypto::Hash32;
use parole_ovm::{NftTransaction, Ovm, ParallelExecutor, PrefixExecutor, Receipt};
use parole_state::L2State;
use std::fmt;

/// The first observed disagreement between two executions of one sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Divergence {
    /// The executions produced different receipt counts.
    ReceiptCount {
        /// Receipts from the reference (naive) execution.
        expected: usize,
        /// Receipts from the audited execution.
        got: usize,
    },
    /// The executions disagree at one slot.
    ReceiptMismatch {
        /// The first disagreeing slot.
        slot: usize,
        /// The reference receipt.
        expected: Box<Receipt>,
        /// The audited receipt.
        got: Box<Receipt>,
    },
    /// Identical receipts but different post-states.
    StateRootMismatch {
        /// The reference state root.
        expected: Hash32,
        /// The audited state root.
        got: Hash32,
    },
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Divergence::ReceiptCount { expected, got } => {
                write!(f, "receipt count {got} differs from reference {expected}")
            }
            Divergence::ReceiptMismatch {
                slot,
                expected,
                got,
            } => write!(
                f,
                "slot {slot} diverged: reference {expected}, audited {got}"
            ),
            Divergence::StateRootMismatch { expected, got } => {
                write!(
                    f,
                    "state roots diverged: reference {expected}, audited {got}"
                )
            }
        }
    }
}

impl std::error::Error for Divergence {}

/// Diffs one execution's outputs against a reference execution's.
///
/// # Errors
///
/// Returns the first [`Divergence`] found: count, then slot-by-slot
/// receipts, then state roots.
pub fn diff_execution(
    reference: &[Receipt],
    reference_root: Hash32,
    audited: &[Receipt],
    audited_root: Hash32,
) -> Result<(), Divergence> {
    if reference.len() != audited.len() {
        return Err(Divergence::ReceiptCount {
            expected: reference.len(),
            got: audited.len(),
        });
    }
    for (slot, (want, got)) in reference.iter().zip(audited).enumerate() {
        if want != got {
            return Err(Divergence::ReceiptMismatch {
                slot,
                expected: Box::new(want.clone()),
                got: Box::new(got.clone()),
            });
        }
    }
    if reference_root != audited_root {
        return Err(Divergence::StateRootMismatch {
            expected: reference_root,
            got: audited_root,
        });
    }
    Ok(())
}

/// Replays windows through a [`PrefixExecutor`] and a naive fresh execution
/// and diffs the two.
#[derive(Debug)]
pub struct DifferentialOracle {
    ovm: Ovm,
    stride: usize,
}

impl DifferentialOracle {
    /// An oracle executing with `ovm`, using checkpoint `stride` for the
    /// incremental side.
    pub fn new(ovm: Ovm, stride: usize) -> Self {
        DifferentialOracle { ovm, stride }
    }

    /// Runs one sequence both ways from `base` and diffs the outcomes.
    ///
    /// # Errors
    ///
    /// Returns the first divergence between incremental and naive execution.
    pub fn check_sequence(&self, base: &L2State, seq: &[NftTransaction]) -> Result<(), Divergence> {
        self.check_schedule(base, std::slice::from_ref(&seq.to_vec()))
    }

    /// Runs a whole schedule of candidate orderings through *one*
    /// incremental executor — the exact reuse pattern the reorder search
    /// performs — diffing every evaluation against a fresh naive run.
    ///
    /// # Errors
    ///
    /// Returns the first divergence across the schedule.
    pub fn check_schedule(
        &self,
        base: &L2State,
        orders: &[Vec<NftTransaction>],
    ) -> Result<(), Divergence> {
        let mut incremental = PrefixExecutor::new(self.ovm.clone(), base, self.stride);
        for seq in orders {
            let (naive_receipts, naive_state) = self.ovm.simulate_sequence(base, seq);
            let (receipts, state) = incremental.execute(seq);
            let (receipts, root) = (receipts.to_vec(), state.state_root());
            // The reference side rebuilds its root from scratch
            // (`state_root_naive`) so the oracle never vouches for the
            // incremental commitment cache with the cache's own output: a
            // missed invalidation on the incremental side shows up as a
            // root mismatch here.
            diff_execution(
                &naive_receipts,
                naive_state.state_root_naive(),
                &receipts,
                root,
            )?;
        }
        Ok(())
    }
}

/// Replays blocks through the optimistic-concurrency parallel executor at
/// several thread counts and diffs every run against a naive serial
/// execution from the pristine base.
///
/// The reference side recomputes its root from scratch
/// (`state_root_naive`), so neither the OCC scheduler nor the incremental
/// commitment cache it commits through can vouch for itself: a wrongly
/// validated speculation, a cheap-commit replay that skips an effect, or a
/// missed cache invalidation all surface as receipt or root divergences.
#[derive(Debug)]
pub struct ParallelOracle {
    ovm: Ovm,
    thread_counts: Vec<usize>,
}

impl ParallelOracle {
    /// An oracle exercising the scheduler at 1, 2 and 8 worker threads —
    /// the inline path, the minimal concurrent partition, and an
    /// oversubscribed pool.
    pub fn new(ovm: Ovm) -> Self {
        Self::with_thread_counts(ovm, vec![1, 2, 8])
    }

    /// An oracle with explicit thread counts to exercise.
    pub fn with_thread_counts(ovm: Ovm, thread_counts: Vec<usize>) -> Self {
        ParallelOracle { ovm, thread_counts }
    }

    /// Executes `txs` serially and at every configured thread count from
    /// `base`, diffing receipts and state roots.
    ///
    /// # Errors
    ///
    /// Returns the first divergence between serial and parallel execution.
    pub fn check_block(&self, base: &L2State, txs: &[NftTransaction]) -> Result<(), Divergence> {
        let (reference, reference_state) = self.ovm.simulate_sequence(base, txs);
        let reference_root = reference_state.state_root_naive();
        for &threads in &self.thread_counts {
            let mut fork = base.clone();
            let executor = ParallelExecutor::with_threads(self.ovm.clone(), threads);
            let (receipts, _stats) = executor.execute_block(&mut fork, txs);
            diff_execution(&reference, reference_root, &receipts, fork.state_root())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parole_nft::CollectionConfig;
    use parole_ovm::TxKind;
    use parole_primitives::{Address, TokenId, Wei};

    fn addr(v: u64) -> Address {
        Address::from_low_u64(v)
    }

    fn window() -> (L2State, Vec<NftTransaction>) {
        let mut state = L2State::new();
        let pt = state.deploy_collection(CollectionConfig::parole_token());
        for u in 1..=3 {
            state.credit(addr(u), Wei::from_eth(2));
        }
        let seq = vec![
            NftTransaction::simple(
                addr(1),
                TxKind::Mint {
                    collection: pt,
                    token: TokenId::new(0),
                },
            ),
            NftTransaction::simple(
                addr(1),
                TxKind::Transfer {
                    collection: pt,
                    token: TokenId::new(0),
                    to: addr(2),
                },
            ),
            NftTransaction::simple(
                addr(2),
                TxKind::Burn {
                    collection: pt,
                    token: TokenId::new(0),
                },
            ),
            NftTransaction::simple(
                addr(3),
                TxKind::Burn {
                    collection: pt,
                    token: TokenId::new(4),
                },
            ),
        ];
        (state, seq)
    }

    #[test]
    fn honest_incremental_execution_matches_across_swaps() {
        let (base, mut seq) = window();
        let oracle = DifferentialOracle::new(Ovm::new(), 2);
        let mut schedule = vec![seq.clone()];
        for &(i, j) in &[(0usize, 3usize), (1, 2), (0, 1), (2, 3)] {
            seq.swap(i, j);
            schedule.push(seq.clone());
        }
        assert_eq!(oracle.check_schedule(&base, &schedule), Ok(()));
    }

    /// The parallel oracle stays silent on honest OCC execution, including
    /// the worst case for the scheduler: a conflict-dense window where the
    /// same sender and token appear in every slot.
    #[test]
    fn honest_parallel_execution_passes_the_oracle() {
        let (base, seq) = window();
        let oracle = ParallelOracle::new(Ovm::new());
        assert_eq!(oracle.check_block(&base, &seq), Ok(()));
        assert_eq!(oracle.check_block(&base, &[]), Ok(()));
    }

    /// A fabricated parallel result (receipts from a different ordering)
    /// is rejected by the same diff the oracle runs.
    #[test]
    fn reordered_parallel_claims_are_caught() {
        let (base, mut seq) = window();
        let ovm = Ovm::new();
        let (honest, honest_state) = ovm.simulate_sequence(&base, &seq);
        seq.swap(0, 1);
        let mut fork = base.clone();
        let (reordered, _) = ParallelExecutor::with_threads(ovm, 2).execute_block(&mut fork, &seq);
        let err = diff_execution(
            &honest,
            honest_state.state_root_naive(),
            &reordered,
            fork.state_root(),
        )
        .unwrap_err();
        assert!(matches!(err, Divergence::ReceiptMismatch { .. }));
    }

    #[test]
    fn stale_cache_claims_are_caught() {
        let (base, mut seq) = window();
        let ovm = Ovm::new();
        // Emulate a broken cache: receipts of the *old* ordering are claimed
        // for the swapped one.
        let (stale_receipts, stale_state) = ovm.simulate_sequence(&base, &seq);
        seq.swap(0, 2);
        let (fresh_receipts, fresh_state) = ovm.simulate_sequence(&base, &seq);
        let err = diff_execution(
            &fresh_receipts,
            fresh_state.state_root(),
            &stale_receipts,
            stale_state.state_root(),
        )
        .unwrap_err();
        assert!(matches!(err, Divergence::ReceiptMismatch { .. }));
    }
}
