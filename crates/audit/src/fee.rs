//! Independent EIP-1559 base-fee recomputation.
//!
//! The sequencer's `BaseFeeController` once bumped the fee by its 1-wei
//! minimum on *exactly-on-target* blocks, turning the fixed point into a slow
//! upward ratchet. The rule is re-derived here from raw primitives — not by
//! calling the controller — so the auditor and the implementation can only
//! agree when both are right.

use parole_primitives::{Gas, Wei};
use std::fmt;

/// Maximum per-block change denominator of the EIP-1559 rule.
const CHANGE_DENOMINATOR: u128 = 8;

/// A base-fee update that deviated from the EIP-1559 rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeeViolation {
    /// The fee before the block was applied.
    pub old: Wei,
    /// The block's gas consumption.
    pub gas_used: Gas,
    /// The fee the rule mandates.
    pub expected: Wei,
    /// The fee the implementation produced.
    pub got: Wei,
}

impl fmt::Display for FeeViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "base-fee update from {} with {} used: expected {}, got {}",
            self.old, self.gas_used, self.expected, self.got
        )
    }
}

impl std::error::Error for FeeViolation {}

/// Recomputes the mandated next base fee from scratch:
/// `new = old ± old × |used − target| / target / 8`, with a 1-wei minimum
/// move *only* for over-target blocks, clamped at `floor`. A block exactly
/// on target is the fixed point.
pub fn expected_base_fee(old: Wei, gas_used: Gas, target_gas: Gas, floor: Wei) -> Wei {
    let target = target_gas.units() as u128;
    let used = gas_used.units() as u128;
    let old_wei = old.wei();
    let new = if used > target {
        let delta = old_wei * (used - target) / target / CHANGE_DENOMINATOR;
        old_wei + delta.max(1)
    } else {
        let delta = old_wei * (target - used) / target / CHANGE_DENOMINATOR;
        old_wei.saturating_sub(delta)
    };
    Wei::from_wei(new).max(floor)
}

/// Audits one base-fee update against the recomputed rule.
///
/// # Errors
///
/// Returns a [`FeeViolation`] when `new` differs from the mandated fee.
pub fn check_fee_update(
    old: Wei,
    gas_used: Gas,
    target_gas: Gas,
    floor: Wei,
    new: Wei,
) -> Result<(), FeeViolation> {
    let expected = expected_base_fee(old, gas_used, target_gas, floor);
    if new == expected {
        Ok(())
    } else {
        Err(FeeViolation {
            old,
            gas_used,
            expected,
            got: new,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TARGET: Gas = Gas::new(1_000_000);
    const FLOOR: Wei = Wei::from_wei(7);

    #[test]
    fn at_target_is_the_fixed_point() {
        let old = Wei::from_gwei(13);
        assert_eq!(expected_base_fee(old, TARGET, TARGET, FLOOR), old);
    }

    #[test]
    fn over_target_always_moves() {
        let old = Wei::from_wei(100);
        let new = expected_base_fee(old, Gas::new(1_000_001), TARGET, FLOOR);
        assert_eq!(new.wei(), 101);
    }

    #[test]
    fn floor_clamps_the_decay() {
        let new = expected_base_fee(Wei::from_wei(8), Gas::ZERO, TARGET, FLOOR);
        assert_eq!(new, FLOOR);
    }

    #[test]
    fn mismatch_is_reported_with_both_fees() {
        let old = Wei::from_gwei(10);
        let bogus = old + Wei::from_wei(1);
        let err = check_fee_update(old, TARGET, TARGET, FLOOR, bogus).unwrap_err();
        assert_eq!(err.expected, old);
        assert_eq!(err.got, bogus);
        assert!(err.to_string().contains("expected"));
    }
}
