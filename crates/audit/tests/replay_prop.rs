//! Property suite for the event-replay oracle.
//!
//! The oracle's quiet-half contract: replaying every honest block's receipt
//! log stream over the pre-block maps reproduces the post-block ownership,
//! approval, operator and pricing maps exactly — under arbitrary
//! interleavings of mint/transfer/burn/approve/setApprovalForAll (valid and
//! reverting), across state forks at block boundaries, and after mid-block
//! checkpoint/revert speculation (reverted work must leave no event residue
//! behind for the oracle to trip over).

use parole_audit::replay::{check_event_replay, snapshot_maps};
use parole_nft::CollectionConfig;
use parole_ovm::{NftTransaction, Ovm, TxKind};
use parole_primitives::{Address, TokenId, Wei};
use parole_state::L2State;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum RawOp {
    Mint { sender: u64, token: u64 },
    Transfer { sender: u64, token: u64, to: u64 },
    Burn { sender: u64, token: u64 },
    Approve { sender: u64, token: u64, to: u64 },
    SetForAll { sender: u64, to: u64, on: bool },
}

fn arb_op(users: u64, tokens: u64) -> impl Strategy<Value = RawOp> {
    prop_oneof![
        (0..users, 0..tokens).prop_map(|(sender, token)| RawOp::Mint { sender, token }),
        (0..users, 0..tokens, 0..users).prop_map(|(sender, token, to)| RawOp::Transfer {
            sender,
            token,
            to
        }),
        (0..users, 0..tokens).prop_map(|(sender, token)| RawOp::Burn { sender, token }),
        (0..users, 0..tokens, 0..users).prop_map(|(sender, token, to)| RawOp::Approve {
            sender,
            token,
            to
        }),
        (0..users, 0..users, any::<bool>()).prop_map(|(sender, to, on)| RawOp::SetForAll {
            sender,
            to,
            on
        }),
    ]
}

fn world(users: u64, tokens: u64) -> (L2State, Address) {
    let mut state = L2State::new();
    let coll = state.deploy_collection(CollectionConfig::limited_edition(
        "Replay",
        tokens.max(4),
        200,
    ));
    for u in 1..=users {
        state.credit(Address::from_low_u64(u), Wei::from_eth(10));
    }
    (state, coll)
}

fn to_tx(op: &RawOp, coll: Address) -> NftTransaction {
    let a = |v: u64| Address::from_low_u64(v + 1);
    let (sender, kind) = match *op {
        RawOp::Mint { sender, token } => (
            sender,
            TxKind::Mint {
                collection: coll,
                token: TokenId::new(token),
            },
        ),
        RawOp::Transfer { sender, token, to } => (
            sender,
            TxKind::Transfer {
                collection: coll,
                token: TokenId::new(token),
                to: a(to),
            },
        ),
        RawOp::Burn { sender, token } => (
            sender,
            TxKind::Burn {
                collection: coll,
                token: TokenId::new(token),
            },
        ),
        RawOp::Approve { sender, token, to } => (
            sender,
            TxKind::Approve {
                collection: coll,
                token: TokenId::new(token),
                operator: a(to),
            },
        ),
        RawOp::SetForAll { sender, to, on } => (
            sender,
            TxKind::SetApprovalForAll {
                collection: coll,
                operator: a(to),
                approved: on,
            },
        ),
    };
    NftTransaction::simple(a(sender), kind)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Block-by-block honest execution replays exactly: no interleaving of
    /// the five operation kinds — including reverting transactions, which
    /// must emit nothing — ever trips the oracle.
    #[test]
    fn honest_blocks_replay_exactly(
        ops in prop::collection::vec(arb_op(6, 10), 1..60),
        block_size in 1usize..9,
    ) {
        let (mut state, coll) = world(6, 10);
        let ovm = Ovm::new();
        for chunk in ops.chunks(block_size) {
            let txs: Vec<_> = chunk.iter().map(|o| to_tx(o, coll)).collect();
            let pre = snapshot_maps(&state);
            let receipts = ovm.execute_sequence(&mut state, &txs);
            prop_assert_eq!(
                check_event_replay(&pre, &receipts, &state).map_err(|v| v.to_string()),
                Ok(())
            );
        }
    }

    /// Forking the chain at a block boundary and executing divergent suffix
    /// blocks on each branch keeps both branches replayable — the oracle
    /// sees two independent honest histories, not a tangled one.
    #[test]
    fn forked_branches_both_replay(
        prefix in prop::collection::vec(arb_op(5, 8), 1..25),
        left in prop::collection::vec(arb_op(5, 8), 1..25),
        right in prop::collection::vec(arb_op(5, 8), 1..25),
    ) {
        let (mut trunk, coll) = world(5, 8);
        let ovm = Ovm::new();
        let txs: Vec<_> = prefix.iter().map(|o| to_tx(o, coll)).collect();
        let pre = snapshot_maps(&trunk);
        let receipts = ovm.execute_sequence(&mut trunk, &txs);
        prop_assert_eq!(
            check_event_replay(&pre, &receipts, &trunk).map_err(|v| v.to_string()),
            Ok(())
        );

        let mut branch = trunk.fork();
        for (state, branch_ops) in [(&mut trunk, &left), (&mut branch, &right)] {
            let txs: Vec<_> = branch_ops.iter().map(|o| to_tx(o, coll)).collect();
            let pre = snapshot_maps(state);
            let receipts = ovm.execute_sequence(state, &txs);
            prop_assert_eq!(
                check_event_replay(&pre, &receipts, state).map_err(|v| v.to_string()),
                Ok(())
            );
        }
    }

    /// Mid-block speculation leaves no event residue: execute sacrificial
    /// transactions under a checkpoint, roll them back with `revert_to`,
    /// then execute a real block — the oracle replays the real block against
    /// the pre-speculation maps as if the speculation never happened.
    #[test]
    fn reverted_speculation_leaves_no_event_residue(
        speculative in prop::collection::vec(arb_op(5, 8), 1..20),
        committed in prop::collection::vec(arb_op(5, 8), 1..20),
    ) {
        let (mut state, coll) = world(5, 8);
        let ovm = Ovm::new();
        state.begin_recording();

        let pre = snapshot_maps(&state);
        let cp = state.checkpoint();
        let spec_txs: Vec<_> = speculative.iter().map(|o| to_tx(o, coll)).collect();
        let _ = ovm.execute_sequence(&mut state, &spec_txs);
        state.revert_to(cp);

        // The rollback must restore the exact pre-speculation maps…
        prop_assert_eq!(snapshot_maps(&state), pre.clone());

        // …and the block that actually commits replays against them.
        let txs: Vec<_> = committed.iter().map(|o| to_tx(o, coll)).collect();
        let receipts = ovm.execute_sequence(&mut state, &txs);
        prop_assert_eq!(
            check_event_replay(&pre, &receipts, &state).map_err(|v| v.to_string()),
            Ok(())
        );
    }
}
