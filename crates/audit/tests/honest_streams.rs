//! No-false-positives property suite: honest components must pass every
//! auditor under arbitrary workloads. A checker that cries wolf is as
//! useless as one that never fires — these tests pin down the quiet half of
//! the contract the mutation harness pins down the loud half of.

use parole_audit::conservation::AuditedOvm;
use parole_audit::differential::DifferentialOracle;
use parole_audit::fee::check_fee_update;
use parole_audit::invariants::check_state;
use parole_mempool::BaseFeeController;
use parole_nft::CollectionConfig;
use parole_ovm::{NftTransaction, Ovm, OvmConfig, TxKind};
use parole_primitives::{Address, Gas, TokenId, Wei};
use parole_state::L2State;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum RawOp {
    Mint { sender: u64, token: u64 },
    Transfer { sender: u64, token: u64, to: u64 },
    Burn { sender: u64, token: u64 },
}

fn arb_op(users: u64, tokens: u64) -> impl Strategy<Value = RawOp> {
    prop_oneof![
        (0..users, 0..tokens).prop_map(|(sender, token)| RawOp::Mint { sender, token }),
        (0..users, 0..tokens, 0..users).prop_map(|(sender, token, to)| RawOp::Transfer {
            sender,
            token,
            to
        }),
        (0..users, 0..tokens).prop_map(|(sender, token)| RawOp::Burn { sender, token }),
    ]
}

fn world() -> (L2State, Address) {
    let mut state = L2State::new();
    let coll = state.deploy_collection(CollectionConfig::limited_edition("Audit", 12, 200));
    // Users 1..=5 funded, 6..=8 broke (CannotPayFees fodder when fees are on).
    for u in 1..=5u64 {
        state.credit(Address::from_low_u64(u), Wei::from_eth(5));
    }
    (state, coll)
}

fn to_tx(op: &RawOp, coll: Address) -> NftTransaction {
    let a = |v: u64| Address::from_low_u64(v + 1);
    match *op {
        RawOp::Mint { sender, token } => NftTransaction::simple(
            a(sender),
            TxKind::Mint {
                collection: coll,
                token: TokenId::new(token),
            },
        ),
        RawOp::Transfer { sender, token, to } => NftTransaction::simple(
            a(sender),
            TxKind::Transfer {
                collection: coll,
                token: TokenId::new(token),
                to: a(to),
            },
        ),
        RawOp::Burn { sender, token } => NftTransaction::simple(
            a(sender),
            TxKind::Burn {
                collection: coll,
                token: TokenId::new(token),
            },
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every honest execution — success, every revert reason, fees on or
    /// off — passes the conservation auditor, and the resulting state passes
    /// the full ERC-721 invariant sweep.
    #[test]
    fn honest_streams_pass_conservation_and_invariants(
        ops in prop::collection::vec(arb_op(8, 12), 1..50),
        fee_mask in prop::collection::vec(any::<bool>(), 50),
    ) {
        let (mut state, coll) = world();
        let mut plain = AuditedOvm::new(Ovm::new());
        let mut charging = AuditedOvm::new(Ovm::with_config(OvmConfig {
            charge_fees: true,
            ..Default::default()
        }));
        for (i, op) in ops.iter().enumerate() {
            let tx = to_tx(op, coll);
            let audited = if fee_mask[i] { &mut charging } else { &mut plain };
            let receipt = audited.execute(&mut state, &tx);
            prop_assert!(receipt.is_ok(), "conservation violated: {:?}", receipt);
        }
        prop_assert_eq!(check_state(&state), Ok(()));
    }

    /// The prefix-cached executor agrees with naive execution across random
    /// swap schedules — the differential oracle stays silent on honest runs.
    #[test]
    fn honest_incremental_execution_passes_the_differential_oracle(
        ops in prop::collection::vec(arb_op(5, 10), 2..20),
        swaps in prop::collection::vec((0usize..20, 0usize..20), 1..8),
        stride in 1usize..4,
    ) {
        let (base, coll) = world();
        let mut seq: Vec<NftTransaction> = ops.iter().map(|o| to_tx(o, coll)).collect();
        let mut schedule = vec![seq.clone()];
        for &(i, j) in &swaps {
            let len = seq.len();
            seq.swap(i % len, j % len);
            schedule.push(seq.clone());
        }
        let oracle = DifferentialOracle::new(Ovm::new(), stride);
        prop_assert_eq!(oracle.check_schedule(&base, &schedule), Ok(()));
    }

    /// The shipped base-fee controller never deviates from the re-derived
    /// EIP-1559 rule, whatever gas stream it sees.
    #[test]
    fn honest_fee_controller_passes_the_fee_auditor(
        initial in 1u128..1_000_000_000_000,
        blocks in prop::collection::vec(0u64..3_000_000, 1..100),
    ) {
        let target = Gas::new(1_000_000);
        let mut ctl = BaseFeeController::new(Wei::from_wei(initial), target);
        for used in blocks {
            let old = ctl.base_fee();
            let new = ctl.on_block(Gas::new(used));
            prop_assert_eq!(
                check_fee_update(old, Gas::new(used), target, ctl.floor(), new),
                Ok(())
            );
        }
    }
}
