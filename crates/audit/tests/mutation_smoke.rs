//! Mutation smoke harness: re-introduce each historical bug and prove the
//! corresponding auditor fires.
//!
//! Every test here models one *fixed* defect of this codebase (or a seeded
//! corruption an auditor exists to catch) from the outside — a buggy rule
//! reimplemented locally, a tampered chain, a perturbed fact sheet — and
//! asserts the auditor rejects it while the shipped implementation passes.
//! If a future refactor re-introduces one of these bugs, the wired-in
//! auditors fail loudly instead of letting experiments drift.

use parole_audit::bisection::{BisectionOracle, TraceVerdict};
use parole_audit::conservation::{
    check_bond_flow, check_execution, ConservationViolation, ExecutionSnapshot,
};
use parole_audit::differential::{diff_execution, DifferentialOracle, Divergence};
use parole_audit::fee::{check_fee_update, expected_base_fee};
use parole_audit::invariants::{check_facts, CollectionFacts, InvariantViolation};
use parole_crypto::Wallet;
use parole_mempool::BaseFeeController;
use parole_nft::{Collection, CollectionConfig};
use parole_ovm::{Bloom, NftTransaction, Ovm, Receipt, RevertReason, TxKind, TxStatus};
use parole_primitives::{
    Address, AggregatorId, BlockNumber, FeeBundle, Gas, TokenId, TxNonce, VerifierId, Wei,
};
use parole_rollup::{
    bisect, Aggregator, BatchId, ChallengeOutcome, DisputedStep, ExecutionTrace, L1Chain,
    RollupConfig, RollupContract, TracedExecution, Verifier,
};
use parole_state::L2State;

fn addr(v: u64) -> Address {
    Address::from_low_u64(v)
}

// ---------------------------------------------------------------------------
// Bug 1: the at-target base-fee bump.
// ---------------------------------------------------------------------------

/// The historical buggy update rule: the 1-wei minimum applied at `>=`
/// target, turning the fixed point into a ratchet.
fn buggy_on_block(old: Wei, gas_used: Gas, target: Gas, floor: Wei) -> Wei {
    let t = target.units() as u128;
    let u = gas_used.units() as u128;
    let new = if u >= t {
        let delta = old.wei() * (u - t) / t / 8;
        old.wei() + delta.max(1)
    } else {
        let delta = old.wei() * (t - u) / t / 8;
        old.wei().saturating_sub(delta)
    };
    Wei::from_wei(new).max(floor)
}

#[test]
fn reintroduced_at_target_bump_trips_the_fee_auditor() {
    let target = Gas::new(1_000_000);
    let floor = Wei::from_wei(7);
    let old = Wei::from_gwei(10);

    // The buggy rule deviates exactly at the fixed point...
    let got = buggy_on_block(old, target, target, floor);
    let err = check_fee_update(old, target, target, floor, got).unwrap_err();
    assert_eq!(err.expected, old);
    assert_eq!(err.got, old + Wei::from_wei(1));

    // ...and agrees everywhere else, which is why it survived so long.
    for used in [0u64, 500_000, 999_999, 1_000_001, 2_000_000] {
        let g = Gas::new(used);
        assert_eq!(
            buggy_on_block(old, g, target, floor),
            expected_base_fee(old, g, target, floor)
        );
    }
}

#[test]
fn shipped_fee_controller_passes_the_auditor_block_by_block() {
    let mut ctl = BaseFeeController::new(Wei::from_gwei(9), Gas::new(1_000_000));
    let blocks = [0u64, 1_000_000, 2_000_000, 1_000_000, 1_500_000, 3, 999_999];
    for &used in blocks.iter().cycle().take(200) {
        let old = ctl.base_fee();
        let new = ctl.on_block(Gas::new(used));
        check_fee_update(old, Gas::new(used), ctl.target_gas(), ctl.floor(), new)
            .expect("shipped controller follows the rule");
    }
}

// ---------------------------------------------------------------------------
// Bug 2: the reason-dependent nonce skip (and its ghost-fee cousin).
// ---------------------------------------------------------------------------

/// The historical buggy execution for a forged signature: bail out before
/// any nonce accounting, leaving the state untouched.
fn buggy_execute_bad_signature(tx: &NftTransaction) -> Receipt {
    Receipt {
        tx_hash: tx.tx_hash(),
        status: TxStatus::Reverted(RevertReason::BadSignature),
        gas_used: Gas::new(21_000),
        fee_paid: Wei::ZERO,
        price_before: Wei::ZERO,
        price_after: Wei::ZERO,
        logs: Vec::new(),
        bloom: Bloom::ZERO,
    }
}

#[test]
fn reintroduced_nonce_skip_trips_the_conservation_auditor() {
    let mut state = L2State::new();
    let pt = state.deploy_collection(CollectionConfig::parole_token());
    let wallet = Wallet::from_seed(7);
    state.credit(wallet.address(), Wei::from_eth(1));

    let mut forged = NftTransaction::signed(
        &wallet,
        TxKind::Mint {
            collection: pt,
            token: TokenId::new(0),
        },
        FeeBundle::from_gwei(30, 2),
        TxNonce::new(0),
    );
    forged.sender = addr(9);

    let pre = ExecutionSnapshot::take(&state, forged.sender);
    // Buggy path: no state mutation at all.
    let receipt = buggy_execute_bad_signature(&forged);
    let err = check_execution(&pre, &state, &forged, &receipt).unwrap_err();
    assert!(matches!(
        err,
        ConservationViolation::NonceNotUniform {
            before: 0,
            after: 0,
            ..
        }
    ));

    // The shipped OVM passes the same audit on the same transaction.
    let pre = ExecutionSnapshot::take(&state, forged.sender);
    let receipt = Ovm::new().execute(&mut state, &forged);
    assert_eq!(receipt.revert_reason(), Some(RevertReason::BadSignature));
    check_execution(&pre, &state, &forged, &receipt).expect("fixed OVM is uniform");
}

#[test]
fn ghost_fee_on_cannot_pay_fees_trips_the_conservation_auditor() {
    let mut state = L2State::new();
    let pt = state.deploy_collection(CollectionConfig::parole_token());
    let broke = addr(42);
    let tx = NftTransaction::simple(
        broke,
        TxKind::Mint {
            collection: pt,
            token: TokenId::new(0),
        },
    );

    let pre = ExecutionSnapshot::take(&state, broke);
    // Buggy variant: the nonce is bumped, but the receipt claims a fee the
    // broke sender never paid.
    state.bump_nonce(broke);
    let receipt = Receipt {
        tx_hash: tx.tx_hash(),
        status: TxStatus::Reverted(RevertReason::CannotPayFees),
        gas_used: Gas::new(21_000),
        fee_paid: Wei::from_gwei(42),
        price_before: Wei::ZERO,
        price_after: Wei::ZERO,
        logs: Vec::new(),
        bloom: Bloom::ZERO,
    };
    let err = check_execution(&pre, &state, &tx, &receipt).unwrap_err();
    assert!(matches!(err, ConservationViolation::GhostFee { .. }));
}

// ---------------------------------------------------------------------------
// Bug 3: linkage-only L1 verification.
// ---------------------------------------------------------------------------

/// The historical buggy check: parent linkage and numbering only, never
/// recomputing any block hash from its contents.
fn linkage_only_verify(chain: &L1Chain) -> bool {
    let blocks: Vec<_> = chain.iter().collect();
    blocks
        .windows(2)
        .all(|w| w[1].parent_hash == w[0].hash && w[1].number.value() == w[0].number.value() + 1)
}

#[test]
fn content_tampering_passes_the_buggy_check_but_not_the_fixed_one() {
    let mut chain = L1Chain::new();
    chain.seal_block(vec![BatchId::new(1)]);
    chain.seal_block(vec![BatchId::new(2)]);
    assert!(chain.verify_integrity());

    // Rewrite sealed history: every stored hash and all linkage stay intact.
    chain
        .block_mut_for_tampering(BlockNumber::new(1))
        .expect("sealed above")
        .finalized_batches = vec![BatchId::new(666)];

    assert!(
        linkage_only_verify(&chain),
        "the historical check is blind to content tampering"
    );
    assert!(
        !chain.verify_integrity(),
        "content recomputation must reject the rewrite"
    );
}

// ---------------------------------------------------------------------------
// Seeded corruption: out-of-thin-air value.
// ---------------------------------------------------------------------------

#[test]
fn out_of_thin_air_credit_trips_the_conservation_auditor() {
    let mut state = L2State::new();
    let pt = state.deploy_collection(CollectionConfig::parole_token());
    state.credit(addr(1), Wei::from_eth(1));
    let tx = NftTransaction::simple(
        addr(1),
        TxKind::Mint {
            collection: pt,
            token: TokenId::new(0),
        },
    );
    let pre = ExecutionSnapshot::take(&state, tx.sender);
    let receipt = Ovm::new().execute(&mut state, &tx);
    // An IFU-style corruption: the sequencer quietly refunds the mint price.
    state.credit(addr(1), Wei::from_milli_eth(200));
    let err = check_execution(&pre, &state, &tx, &receipt).unwrap_err();
    assert!(matches!(err, ConservationViolation::WeiNotConserved { .. }));
}

// ---------------------------------------------------------------------------
// Seeded corruption: perturbed ERC-721 fact sheets.
// ---------------------------------------------------------------------------

fn exercised_facts() -> CollectionFacts {
    let mut c = Collection::new(CollectionConfig::parole_token());
    for i in 0..5 {
        c.mint(addr(i + 1), TokenId::new(i)).unwrap();
    }
    c.transfer(addr(1), addr(9), TokenId::new(0)).unwrap();
    c.burn(addr(2), TokenId::new(1)).unwrap();
    let facts = CollectionFacts::gather(&c);
    assert_eq!(check_facts(&facts), Ok(()));
    facts
}

#[test]
fn every_fact_perturbation_trips_the_invariant_checker() {
    let facts = exercised_facts();

    // Supply cap: more active tokens than the cap allows.
    let mut f = facts.clone();
    for i in 0..10 {
        f.active.push((TokenId::new(5 + i), addr(50 + i)));
    }
    f.remaining_supply = 0;
    assert!(matches!(
        check_facts(&f),
        Err(InvariantViolation::SupplyCapExceeded { .. })
    ));

    // Supply accounting: remaining supply drifts off the identity.
    let mut f = facts.clone();
    f.remaining_supply += 1;
    assert!(matches!(
        check_facts(&f),
        Err(InvariantViolation::SupplyAccounting { .. })
    ));

    // Unique ownership: the same token indexed twice.
    let mut f = facts.clone();
    f.active[1] = f.active[0];
    assert!(matches!(
        check_facts(&f),
        Err(InvariantViolation::DuplicateToken(_))
    ));

    // Out-of-range token id.
    let mut f = facts.clone();
    let last = f.active.len() - 1;
    f.active[last] = (TokenId::new(f.max_supply), addr(1));
    assert!(matches!(
        check_facts(&f),
        Err(InvariantViolation::TokenOutOfRange(_))
    ));

    // Zero-address owner.
    let mut f = facts.clone();
    f.active[0].1 = Address::ZERO;
    assert!(matches!(
        check_facts(&f),
        Err(InvariantViolation::ZeroOwner(_))
    ));

    // Lifetime ledger: a phantom mint.
    let mut f = facts.clone();
    f.lifetime.0 += 1;
    assert!(matches!(
        check_facts(&f),
        Err(InvariantViolation::LifetimeLedger { .. })
    ));

    // Bent curve: one point raised above its scarcer neighbour.
    let mut f = facts.clone();
    f.curve[3].1 = f.curve[0].1 + Wei::from_milli_eth(10);
    assert!(matches!(
        check_facts(&f),
        Err(InvariantViolation::CurveNotMonotone { .. })
    ));

    // Eq. 10 violation that keeps the shape: the whole curve shifted down.
    let mut f = facts.clone();
    for p in &mut f.curve {
        p.1 = p.1.saturating_sub(Wei::from_centi_eth(1));
    }
    assert!(matches!(
        check_facts(&f),
        Err(InvariantViolation::CurveNotEq10 { .. })
    ));

    // Reported price off the curve.
    let mut f = facts.clone();
    f.price += Wei::from_centi_eth(1);
    assert!(matches!(
        check_facts(&f),
        Err(InvariantViolation::PriceMismatch { .. })
    ));
}

// ---------------------------------------------------------------------------
// Seeded corruption: stale incremental caches.
// ---------------------------------------------------------------------------

#[test]
fn stale_incremental_cache_trips_the_differential_oracle() {
    let mut base = L2State::new();
    let pt = base.deploy_collection(CollectionConfig::parole_token());
    for u in 1..=3 {
        base.credit(addr(u), Wei::from_eth(2));
    }
    let mut seq = vec![
        NftTransaction::simple(
            addr(1),
            TxKind::Mint {
                collection: pt,
                token: TokenId::new(0),
            },
        ),
        NftTransaction::simple(
            addr(2),
            TxKind::Mint {
                collection: pt,
                token: TokenId::new(1),
            },
        ),
        NftTransaction::simple(
            addr(1),
            TxKind::Transfer {
                collection: pt,
                token: TokenId::new(0),
                to: addr(3),
            },
        ),
        NftTransaction::simple(
            addr(3),
            TxKind::Burn {
                collection: pt,
                token: TokenId::new(0),
            },
        ),
    ];
    let ovm = Ovm::new();

    // A cache that never invalidates: it keeps serving the first ordering's
    // receipts and post-state for every later candidate.
    let (cached_receipts, cached_state) = ovm.simulate_sequence(&base, &seq);
    let cached_root = cached_state.state_root();
    seq.swap(0, 3);
    let (want_receipts, want_state) = ovm.simulate_sequence(&base, &seq);
    let err = diff_execution(
        &want_receipts,
        want_state.state_root(),
        &cached_receipts,
        cached_root,
    )
    .unwrap_err();
    assert!(matches!(err, Divergence::ReceiptMismatch { .. }));

    // The real PrefixExecutor survives the same schedule under the oracle.
    let oracle = DifferentialOracle::new(ovm, 2);
    let mut schedule = vec![seq.clone()];
    for &(i, j) in &[(0usize, 3usize), (1, 2), (0, 2), (2, 3), (0, 1)] {
        seq.swap(i, j);
        schedule.push(seq.clone());
    }
    assert_eq!(oracle.check_schedule(&base, &schedule), Ok(()));
}

// ---------------------------------------------------------------------------
// Seeded corruption: a stale state-commitment cache.
// ---------------------------------------------------------------------------

/// The incremental state-root cache with one leaf silently tampered — the
/// exact failure a missed dirty-marking hook would produce — must be caught
/// by the differential oracle, whose reference side rebuilds its root from
/// scratch via `state_root_naive` and so never trusts the cache.
#[test]
fn stale_commitment_cache_trips_the_root_differential() {
    let mut state = L2State::new();
    let pt = state.deploy_collection(CollectionConfig::parole_token());
    for u in 1..=4 {
        state.credit(addr(u), Wei::from_eth(1));
    }
    let _ = Ovm::new().execute(
        &mut state,
        &NftTransaction::simple(
            addr(1),
            TxKind::Mint {
                collection: pt,
                token: TokenId::new(0),
            },
        ),
    );
    // A healthy warm cache agrees with the from-scratch rebuild.
    assert_eq!(state.state_root(), state.state_root_naive());

    // Sabotage: overwrite one cached leaf *without* marking it dirty.
    assert!(state.corrupt_commit_cache_for_tests());

    // The cache now lies; the naive rebuild stays honest, and the
    // differential comparison reports the root mismatch.
    let err = diff_execution(&[], state.state_root_naive(), &[], state.state_root()).unwrap_err();
    assert!(matches!(err, Divergence::StateRootMismatch { .. }));

    // A real mutation of the tampered record marks it dirty, so the next
    // flush re-derives the leaf and repairs the damage.
    state.credit(addr(1), Wei::from_wei(1));
    assert_eq!(state.state_root(), state.state_root_naive());
}

/// The same class of failure one level down the hierarchy: a token leaf
/// inside a collection's sub-tree silently tampered (the stale sub-root
/// propagated up through the collection header), as a missed token-granular
/// dirty hook would produce. The naive side re-derives the whole two-level
/// scheme independently, so the differential oracle still fires — even when
/// unrelated records flush in between.
#[test]
fn stale_commitment_subtree_trips_the_root_differential() {
    let mut state = L2State::new();
    let pt = state.deploy_collection(CollectionConfig::parole_token());
    for u in 1..=4 {
        state.credit(addr(u), Wei::from_eth(1));
    }
    for t in 0..3 {
        let _ = Ovm::new().execute(
            &mut state,
            &NftTransaction::simple(
                addr(1),
                TxKind::Mint {
                    collection: pt,
                    token: TokenId::new(t),
                },
            ),
        );
    }
    assert_eq!(state.state_root(), state.state_root_naive());

    // Sabotage: overwrite one cached *token* leaf without marking it dirty.
    assert!(state.corrupt_commit_subtree_for_tests());

    // Unrelated dirt flushing through the top tree must not mask the stale
    // sub-root.
    state.credit(addr(2), Wei::from_wei(3));
    let err = diff_execution(&[], state.state_root_naive(), &[], state.state_root()).unwrap_err();
    assert!(matches!(err, Divergence::StateRootMismatch { .. }));

    // Touching the corrupted token re-derives its leaf from live state and
    // heals the sub-tree.
    let _ = Ovm::new().execute(
        &mut state,
        &NftTransaction::simple(
            addr(1),
            TxKind::Transfer {
                collection: pt,
                token: TokenId::new(0),
                to: addr(3),
            },
        ),
    );
    assert_eq!(state.state_root(), state.state_root_naive());
}

// ---------------------------------------------------------------------------
// Seeded corruption: a forged intermediate state root.
// ---------------------------------------------------------------------------

fn fraud_world(n: u64) -> (L2State, Vec<NftTransaction>) {
    let mut state = L2State::new();
    let pt = state.deploy_collection(CollectionConfig::parole_token());
    state.credit(addr(1), Wei::from_eth(5));
    state.credit(addr(2), Wei::from_eth(5));
    let txs = (0..n)
        .map(|i| {
            NftTransaction::simple(
                addr(1 + i % 2),
                TxKind::Mint {
                    collection: pt,
                    token: TokenId::new(i),
                },
            )
        })
        .collect();
    (state, txs)
}

/// A batch executed honestly up to step 5, then continued on a state with a
/// hidden credit smuggled in — the canonical mid-stream forgery. The
/// [`BisectionOracle`] must localize the exact step, and its verdict must
/// agree with the production game's bisection, round count included.
#[test]
fn forged_intermediate_root_is_caught_and_localized() {
    let (pre, txs) = fraud_world(8);
    let forged_step = 5usize;
    let ovm = Ovm::new();

    let tampered = TracedExecution::record_with(&ovm, &pre, &txs, |i, st| {
        if i == forged_step {
            st.credit(addr(1 + forged_step as u64 % 2), Wei::from_eth(1));
        }
    });

    // The oracle re-derives the honest trace from scratch and convicts the
    // exact step, in exactly log2(8) = 3 of its own bisection rounds.
    let oracle = BisectionOracle::new(Ovm::new());
    assert_eq!(
        oracle.audit_trace(&pre, &txs, tampered.trace().roots()),
        Ok(TraceVerdict::Forged {
            step: forged_step,
            rounds: 3
        })
    );

    // Cross-check: the production game, bisecting the tampered trace
    // against an honest one, isolates the same step in the same rounds.
    let honest = ExecutionTrace::record(&ovm, &pre, &txs);
    let game = bisect(tampered.trace(), &honest);
    assert_eq!(game.step, DisputedStep::Tx(forged_step));
    assert_eq!(game.rounds, 3);
}

/// A trace that lies about the middle but reconverges to the honest final
/// root: the interactive game can only send it to the (winning-defender)
/// block-advance dispute, while the oracle's linear scan still convicts the
/// intermediate lie — the oracle is strictly stronger than the protocol.
#[test]
fn reconverging_trace_forgery_evades_the_game_but_not_the_oracle() {
    let (pre, txs) = fraud_world(4);
    let ovm = Ovm::new();
    let honest = ExecutionTrace::record(&ovm, &pre, &txs);
    let mut roots = honest.roots().to_vec();
    roots[2] = parole_crypto::keccak256(roots[2].as_bytes());
    let forged = ExecutionTrace::from_roots(roots.clone());

    // The game sees agreeing endpoints and disputes only the advance.
    let game = bisect(&forged, &honest);
    assert_eq!(game.step, DisputedStep::BlockAdvance);

    // The oracle sees the lie itself.
    let oracle = BisectionOracle::new(Ovm::new());
    assert_eq!(
        oracle.audit_trace(&pre, &txs, &roots),
        Ok(TraceVerdict::ForgedReconverging { step: 1 })
    );
}

// ---------------------------------------------------------------------------
// Bug 4: the silently dropped slash remainder.
// ---------------------------------------------------------------------------

/// The historical buggy accounting: a fraud slash paid the challenger's cut
/// and simply forgot the rest — `burned` was never computed, so half the
/// bond vanished from every ledger. The bond-flow checker rejects that
/// split, and the shipped contract's real slash passes it.
#[test]
fn dropped_slash_remainder_trips_the_bond_flow_auditor() {
    let mut rollup = RollupContract::new(RollupConfig::default());
    let pt = rollup
        .l2_state_for_setup()
        .deploy_collection(CollectionConfig::parole_token());
    rollup.commit_setup();
    rollup.deposit(addr(1), Wei::from_eth(5)).unwrap();
    rollup.deposit(addr(2), Wei::from_eth(5)).unwrap();
    rollup.bond_aggregator(AggregatorId::new(0));
    rollup.bond_verifier(VerifierId::new(0));
    let mut agg = Aggregator::honest(AggregatorId::new(0), Wei::from_eth(10));
    let ver = Verifier::new(VerifierId::new(0), Wei::from_eth(5));

    let txs = (0..2u64)
        .map(|i| {
            NftTransaction::simple(
                addr(1 + i % 2),
                TxKind::Mint {
                    collection: pt,
                    token: TokenId::new(i),
                },
            )
        })
        .collect();
    let batch = agg.build_forged_batch(rollup.l2_state(), txs);
    let id = rollup.submit_batch(batch).unwrap();
    let ChallengeOutcome::FraudProven {
        slashed,
        reward,
        burned,
    } = rollup.challenge(ver.id(), id).unwrap()
    else {
        panic!("forged batch must be convicted");
    };

    // The shipped split conserves, and the contract's cumulative burn
    // matches what this slash destroyed.
    check_bond_flow(slashed, reward, burned).expect("fixed contract conserves the bond");
    assert_eq!(rollup.burned_total(), burned);

    // The buggy split — reward accounted, remainder dropped — fires.
    let err = check_bond_flow(slashed, reward, Wei::ZERO).unwrap_err();
    assert!(matches!(
        err,
        ConservationViolation::BondNotConserved { .. }
    ));
}

// ---------------------------------------------------------------------------
// Bug 5 (seeded): state mutations that bypass the event journal.
// ---------------------------------------------------------------------------

/// The defect the event-replay oracle exists to catch: a code path that
/// mutates token state without emitting the corresponding receipt logs —
/// here modelled as a direct `collection_mut` transfer applied after block
/// execution, invisible to every receipt. Replaying the receipt streams
/// over the pre-block maps lands on the pre-tamper owner and the oracle
/// reports the divergent token; the untampered execution passes.
#[test]
fn unjournaled_state_mutation_trips_the_event_replay_oracle() {
    use parole_audit::replay::{check_event_replay, snapshot_maps, EventReplayViolation};

    let mut state = L2State::new();
    let pt = state.deploy_collection(CollectionConfig::parole_token());
    for u in 1..=3u64 {
        state.credit(addr(u), Wei::from_eth(5));
    }
    let ovm = Ovm::new();
    let txs = [
        NftTransaction::simple(
            addr(1),
            TxKind::Mint {
                collection: pt,
                token: TokenId::new(0),
            },
        ),
        NftTransaction::simple(
            addr(1),
            TxKind::Approve {
                collection: pt,
                token: TokenId::new(0),
                operator: addr(2),
            },
        ),
    ];
    let pre = snapshot_maps(&state);
    let receipts = ovm.execute_sequence(&mut state, &txs);
    assert!(receipts.iter().all(Receipt::is_success));
    check_event_replay(&pre, &receipts, &state).expect("honest execution replays");

    // Tamper: move the token behind the receipts' back.
    state
        .collection_mut(pt)
        .unwrap()
        .transfer(addr(1), addr(3), TokenId::new(0))
        .unwrap();
    let err = check_event_replay(&pre, &receipts, &state).unwrap_err();
    assert!(
        matches!(err, EventReplayViolation::OwnershipMismatch { token, .. }
            if token == TokenId::new(0)),
        "got {err}"
    );
}
