//! Criterion micro-benchmarks of the reproduction's hot kernels: the
//! cryptographic substrate, OVM sequence execution, mempool ordering and the
//! DQN forward/backward passes.

use criterion::{criterion_group, BenchmarkId, Criterion};
use parole_bench::economy::Economy;
use parole_crypto::{keccak256, MerkleTree};
use parole_drl::Mlp;
use parole_mempool::BedrockMempool;
use parole_ovm::Ovm;
use parole_primitives::Wei;
use std::hint::black_box;

fn bench_crypto(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto");
    let payload = vec![0xA5u8; 256];
    group.bench_function("keccak256_256B", |b| {
        b.iter(|| keccak256(black_box(&payload)))
    });
    let leaves: Vec<_> = (0..256u64).map(|i| keccak256(&i.to_be_bytes())).collect();
    group.bench_function("merkle_256_leaves", |b| {
        b.iter(|| MerkleTree::from_leaves(black_box(leaves.clone())).root())
    });
    let tree = MerkleTree::from_leaves(leaves.clone());
    let proof = tree.prove(100).unwrap();
    group.bench_function("merkle_verify", |b| {
        b.iter(|| black_box(&proof).verify(leaves[100], tree.root()))
    });
    group.finish();
}

fn bench_ovm(c: &mut Criterion) {
    let mut group = c.benchmark_group("ovm");
    for n in [10usize, 50] {
        let economy = Economy::build(n, 1, 1);
        let window = economy.window(n, 1);
        let ovm = Ovm::new();
        group.bench_with_input(BenchmarkId::new("simulate_sequence", n), &n, |b, _| {
            b.iter(|| ovm.simulate_sequence(black_box(&economy.state), black_box(&window)))
        });
        group.bench_with_input(BenchmarkId::new("state_root", n), &n, |b, _| {
            b.iter(|| black_box(&economy.state).state_root())
        });
    }
    group.finish();
}

fn bench_state_root(c: &mut Criterion) {
    use parole_nft::CollectionConfig;
    use parole_primitives::{Address, TokenId};
    use parole_state::L2State;

    let mut group = c.benchmark_group("state_root");
    // Full rebuild vs the dirty-tracked incremental flush, across world
    // sizes (10^2..10^5 accounts) and dirty-set sizes (1 and 64 records).
    for n in [100usize, 1_000, 10_000, 100_000] {
        let mut state = L2State::new();
        for i in 0..n as u64 {
            state.credit(Address::from_low_u64(i + 1), Wei::from_gwei(i + 1));
        }
        for k in 0..16u64 {
            let coll = state.deploy_collection(CollectionConfig::limited_edition("BR", 64, 100));
            for t in 0..8u64 {
                state
                    .nft_mint(
                        coll,
                        Address::from_low_u64((k * 8 + t) % n as u64 + 1),
                        TokenId::new(t),
                    )
                    .unwrap()
                    .unwrap();
            }
        }

        group.bench_with_input(BenchmarkId::new("full", n), &n, |b, _| {
            b.iter(|| black_box(&state).state_root_naive())
        });

        for dirty in [1usize, 64] {
            let mut warm = state.clone();
            let _ = warm.state_root(); // materialize the cache
            group.bench_with_input(
                BenchmarkId::new(format!("incremental_dirty{dirty}"), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        for d in 0..dirty as u64 {
                            warm.credit(Address::from_low_u64(d % n as u64 + 1), Wei::from_wei(1));
                        }
                        black_box(warm.state_root())
                    })
                },
            );
            report_keccak_per_flush(&mut warm, n, dirty);
        }
    }
    group.finish();
}

/// Telemetry-armed companion readout for the incremental state-root bench:
/// the distribution of keccak invocations each flush actually performs, the
/// quantity the wall-clock numbers above are a proxy for.
#[cfg(feature = "telemetry")]
fn report_keccak_per_flush(warm: &mut parole_state::L2State, n: usize, dirty: usize) {
    use parole_primitives::Address;
    use parole_telemetry as tel;

    tel::reset();
    for round in 0..50u64 {
        for d in 0..dirty as u64 {
            warm.credit(
                Address::from_low_u64((round * dirty as u64 + d) % n as u64 + 1),
                Wei::from_wei(1),
            );
        }
        black_box(warm.state_root());
    }
    let snap = tel::snapshot();
    if let Some(h) = snap.histogram("state.keccak_per_root") {
        println!(
            "state_root/incremental_dirty{dirty}/{n}: keccak per flush min {} max {} mean {:.1} over {} flushes",
            h.min,
            h.max,
            h.mean(),
            h.count
        );
    }
    tel::reset();
}

#[cfg(not(feature = "telemetry"))]
fn report_keccak_per_flush(_warm: &mut parole_state::L2State, _n: usize, _dirty: usize) {}

fn bench_nft_flush(c: &mut Criterion) {
    use parole_nft::CollectionConfig;
    use parole_primitives::{Address, TokenId};
    use parole_state::L2State;

    let mut group = c.benchmark_group("nft_flush");
    // Single token op in a collection with n active tokens: the retired
    // flat commitment re-absorbed the entire ownership list into one leaf
    // preimage (O(n) hashing per op); the hierarchical pipeline re-hashes
    // one 52-byte token leaf plus O(log n) sub-tree nodes and the 80-byte
    // collection header.
    for n in [1_000usize, 10_000, 100_000] {
        let mut state = L2State::new();
        for i in 0..64u64 {
            state.credit(Address::from_low_u64(i + 1), Wei::from_gwei(i + 1));
        }
        let coll_addr =
            state.deploy_collection(CollectionConfig::limited_edition("NF", n as u64, 100));
        for t in 0..n as u64 {
            state
                .nft_mint(
                    coll_addr,
                    Address::from_low_u64(t % 64 + 1),
                    TokenId::new(t),
                )
                .unwrap()
                .unwrap();
        }

        // Flat baseline, reimplemented locally: the pre-hierarchy
        // `coll_leaf` preimage ("coll" ‖ addr ‖ supplies ‖ (token ‖ owner)*)
        // every token op used to re-hash in full.
        let coll = state.collection(coll_addr).unwrap().clone();
        group.bench_with_input(BenchmarkId::new("flat_rehash", n), &n, |b, _| {
            b.iter(|| {
                let mut buf = Vec::with_capacity(48 + coll.active_supply() as usize * 28);
                buf.extend_from_slice(b"coll");
                buf.extend_from_slice(coll_addr.as_bytes());
                buf.extend_from_slice(&coll.remaining_supply().to_be_bytes());
                buf.extend_from_slice(&coll.active_supply().to_be_bytes());
                for (token, owner) in coll.iter() {
                    buf.extend_from_slice(&token.value().to_be_bytes());
                    buf.extend_from_slice(owner.as_bytes());
                }
                black_box(keccak256(&buf))
            })
        });

        // Hierarchical path: one real transfer plus the incremental flush.
        let mut warm = state.clone();
        let _ = warm.state_root(); // materialize the two-level cache
        let mut t = 0u64;
        group.bench_with_input(BenchmarkId::new("hierarchical_token_op", n), &n, |b, _| {
            b.iter(|| {
                t = (t + 1) % n as u64;
                let token = TokenId::new(t);
                let owner = warm.collection(coll_addr).unwrap().owner_of(token).unwrap();
                let to = if owner == Address::from_low_u64(1) {
                    Address::from_low_u64(2)
                } else {
                    Address::from_low_u64(1)
                };
                warm.nft_transfer(coll_addr, owner, to, token)
                    .unwrap()
                    .unwrap();
                black_box(warm.state_root())
            })
        });
    }
    group.finish();
}

fn bench_mempool(c: &mut Criterion) {
    let mut group = c.benchmark_group("mempool");
    let economy = Economy::build(100, 1, 2);
    let txs = economy.window(100, 2);
    group.bench_function("collect_100_of_100", |b| {
        b.iter(|| {
            let mut pool = BedrockMempool::new(Wei::from_gwei(1));
            pool.submit_all(txs.iter().copied());
            black_box(pool.collect(100))
        })
    });
    group.finish();
}

fn bench_calldata(c: &mut Criterion) {
    use parole_primitives::{AggregatorId, Hash32};
    use parole_rollup::{calldata, Batch, StateCommitment};

    let economy = Economy::build(50, 1, 3);
    let txs = economy.window(50, 3);
    let batch = Batch {
        aggregator: AggregatorId::new(0),
        commitment: StateCommitment {
            pre_state_root: Hash32::ZERO,
            post_state_root: Hash32::ZERO,
            tx_root: Batch::compute_tx_root(&txs),
        },
        txs,
        receipts: vec![],
    };
    let mut group = c.benchmark_group("calldata");
    group.bench_function("encode_compress_50tx", |b| {
        b.iter(|| calldata::compress(&calldata::encode_batch(black_box(&batch))))
    });
    group.bench_function("posting_cost_50tx", |b| {
        b.iter(|| calldata::batch_posting_cost(black_box(&batch)))
    });
    group.finish();
}

fn bench_reorder_env(c: &mut Criterion) {
    use parole::{ActionSpace, EvalConfig, ReorderEnv, RewardConfig};
    use parole_drl::Environment;

    let mut group = c.benchmark_group("reorder_env");
    // The GENTRANSEQ training hot loop is step() — swap two positions,
    // re-evaluate the window. Naive evaluation clones the world and replays
    // all N slots; the prefix-cached path replays only the diverged suffix
    // and never copies state the window doesn't touch — hence the rich
    // background state.
    for n in [10usize, 20] {
        let economy = Economy::build(n, 1, 1).with_background(10_000, 16);
        let window = economy.window(n, 1);
        for (label, eval) in [
            ("step_naive", EvalConfig::naive()),
            ("step_cached", EvalConfig::default()),
        ] {
            let mut env = ReorderEnv::with_eval_config(
                economy.state.clone(),
                window.clone(),
                economy.ifus.clone(),
                RewardConfig::default(),
                ActionSpace::AllPairs,
                eval,
            );
            env.reset();
            let actions = env.action_count();
            let mut a = 0usize;
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| {
                    a = (a + 7) % actions;
                    black_box(env.step(a))
                })
            });
        }
    }
    group.finish();
}

fn bench_parallel_exec(c: &mut Criterion) {
    use parole_nft::CollectionConfig;
    use parole_ovm::{NftTransaction, ParallelExecutor, TxKind};
    use parole_primitives::{Address, TokenId};
    use parole_state::L2State;

    let mut group = c.benchmark_group("parallel_exec");
    // Conflict-sparse block: distinct senders, tokens and recipients, so
    // every speculation validates. Serial `execute_sequence` is the
    // baseline the OCC scheduler must stay bit-identical to.
    let n = 256usize;
    let mut base = L2State::new();
    let coll = base.deploy_collection(CollectionConfig::limited_edition("PE", 2 * n as u64, 100));
    let txs: Vec<NftTransaction> = (0..n as u64)
        .map(|i| {
            let sender = Address::from_low_u64(1 + i);
            let recipient = Address::from_low_u64(1_000_000 + i);
            base.credit(sender, Wei::from_eth(1));
            base.credit(recipient, Wei::from_eth(10));
            base.nft_mint(coll, sender, TokenId::new(i))
                .unwrap()
                .unwrap();
            NftTransaction::simple(
                sender,
                TxKind::Transfer {
                    collection: coll,
                    token: TokenId::new(i),
                    to: recipient,
                },
            )
        })
        .collect();

    let ovm = Ovm::new();
    group.bench_with_input(BenchmarkId::new("serial", n), &n, |b, _| {
        b.iter(|| {
            let mut state = base.clone();
            black_box(ovm.execute_sequence(&mut state, black_box(&txs)))
        })
    });
    for threads in [1usize, 2, 4] {
        let executor = ParallelExecutor::with_threads(ovm.clone(), threads);
        group.bench_with_input(BenchmarkId::new("occ", threads), &threads, |b, _| {
            b.iter(|| {
                let mut state = base.clone();
                black_box(executor.execute_block(&mut state, black_box(&txs)))
            })
        });
    }
    group.finish();
}

fn bench_traffic(c: &mut Criterion) {
    use parole_bench::traffic::{generate_blocks, run_traffic, PoolVariant, TrafficConfig};
    use parole_mempool::ExecMode;
    use parole_primitives::StorageBackend;

    let mut group = c.benchmark_group("traffic");
    // One iteration is a whole (small) sustained-traffic run — world build,
    // standing backlog, warm-up block and timed blocks — so keep the
    // dimensions modest and the sample count low.
    group.sample_size(10);
    let mut cfg = TrafficConfig::fast();
    cfg.accounts = 2_000;
    cfg.blocks = 6;
    cfg.backlog = 2_000;
    let schedule = generate_blocks(&cfg);
    for (name, variant) in [
        ("arena_indexed", PoolVariant::Indexed),
        ("btree_legacy_sort", PoolVariant::LegacyFullSort),
    ] {
        let backend = match variant {
            PoolVariant::Indexed => StorageBackend::Arena,
            PoolVariant::LegacyFullSort => StorageBackend::BTree,
        };
        group.bench_with_input(
            BenchmarkId::new("seal_pipeline", name),
            &variant,
            |b, &v| {
                b.iter(|| {
                    let run = run_traffic(&cfg, &schedule, backend, v, ExecMode::Serial);
                    assert!(run.root_matches_naive);
                    black_box(run.blocks_per_sec)
                })
            },
        );
    }
    group.finish();
}

fn bench_dqn(c: &mut Criterion) {
    let mut group = c.benchmark_group("dqn");
    // The paper-shaped network for a mempool of 50: 400 inputs, C(50,2)
    // outputs.
    let mut net = Mlp::new(&[400, 128, 128, 1225], 1);
    let obs = vec![0.3f64; 400];
    group.bench_function("forward_n50", |b| b.iter(|| net.forward(black_box(&obs))));
    let target = net.forward(&obs);
    group.bench_function("backward_n50", |b| {
        b.iter(|| net.backward(black_box(&obs), black_box(&target)))
    });
    group.finish();
}

criterion_group!(
    name = kernels;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_crypto, bench_ovm, bench_state_root, bench_nft_flush, bench_mempool, bench_calldata, bench_reorder_env, bench_parallel_exec, bench_traffic, bench_dqn
);
// Hand-rolled `criterion_main!`: identical dispatch, plus the telemetry
// panic hook so an assertion inside a benchmark still dumps the armed
// metrics snapshot.
fn main() {
    parole_telemetry::install_panic_hook();
    kernels();
}
