//! Criterion benchmarks of each figure's computational kernel at reduced
//! scale, plus the ablation benches DESIGN.md calls out (reward weight,
//! ε-decay schedule, swap-action space, price quantization).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parole::casestudy::CaseStudy;
use parole::defense::max_reorder_profit;
use parole::fleet::{run_fleet, FleetConfig};
use parole::{GentranseqModule, ReorderEnv, RewardConfig};
use parole_bench::economy::Economy;
use parole_bench::kde::KernelDensity;
use parole_drl::DqnConfig;
use parole_snapshots::{scan_corpus, CaptureModel, SnapshotConfig, SnapshotCorpus};
use parole_solvers::{MinosLike, SequenceSolver, SnoptLike};
use std::hint::black_box;

/// A tiny GENTRANSEQ profile so criterion iterations stay sub-second.
fn tiny_module(seed: u64) -> GentranseqModule {
    GentranseqModule::new(
        DqnConfig {
            episodes: 4,
            max_steps: 20,
            hidden: [16, 16],
            batch_size: 4,
            seed,
            ..DqnConfig::paper()
        },
        RewardConfig::default(),
    )
}

fn bench_case_studies(c: &mut Criterion) {
    let cs = CaseStudy::paper_setup();
    c.bench_function("fig5/evaluate_case3", |b| {
        b.iter(|| cs.evaluate(black_box(&cs.optimal_order())))
    });
}

fn bench_fleet(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_fig7/fleet");
    group.sample_size(10);
    let config = FleetConfig {
        n_aggregators: 3,
        adversarial_fraction: 0.34,
        mempool_size: 8,
        n_users: 10,
        collection_supply: 60,
        gentranseq: tiny_module(1),
        ..FleetConfig::default()
    };
    group.bench_function("3_aggregators_mempool_8", |b| {
        b.iter(|| run_fleet(black_box(&config)))
    });
    group.finish();
}

fn bench_gentranseq(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_fig9/gentranseq");
    group.sample_size(10);
    for n in [6usize, 10] {
        let economy = Economy::build(n, 1, 1);
        let window = economy.window(n, 1);
        let module = tiny_module(2);
        group.bench_with_input(BenchmarkId::new("train_and_infer", n), &n, |b, _| {
            b.iter(|| module.run(black_box(&economy.state), black_box(&window), &economy.ifus))
        });
    }
    group.finish();
}

fn bench_snapshots(c: &mut Criterion) {
    let corpus = SnapshotCorpus::generate(SnapshotConfig {
        collections_per_cell: 4,
        ..SnapshotConfig::default()
    });
    c.bench_function("fig10/scan_corpus", |b| {
        b.iter(|| scan_corpus(black_box(&corpus), &CaptureModel::default()))
    });
}

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11/solvers");
    group.sample_size(10);
    let economy = Economy::build(8, 1, 1);
    let window = economy.window(8, 1);
    let env = ReorderEnv::new(
        economy.state.clone(),
        window,
        economy.ifus.clone(),
        RewardConfig::default(),
    );
    group.bench_function("minos_like_n8", |b| {
        b.iter(|| MinosLike::default().solve(black_box(&env)))
    });
    group.bench_function("snopt_like_n8", |b| {
        b.iter(|| SnoptLike::default().solve(black_box(&env)))
    });
    group.finish();
}

fn bench_kde(c: &mut Criterion) {
    let samples: Vec<f64> = (0..200).map(|i| (i % 17) as f64).collect();
    let kde = KernelDensity::fit(&samples);
    c.bench_function("fig9/kde_curve", |b| {
        b.iter(|| kde.curve(0.0, 20.0, black_box(200)))
    });
}

/// Ablation: the reward weight `W` (Eq. 8). Compares search effectiveness
/// with the paper's high-penalty shaping against flat rewards.
fn bench_ablation_reward_weight(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/reward_weight");
    group.sample_size(10);
    let economy = Economy::build(8, 1, 4);
    let window = economy.window(8, 4);
    for (label, weight) in [("paper_w10", 10.0), ("flat_w1", 1.0)] {
        let module = GentranseqModule::new(
            DqnConfig {
                episodes: 4,
                max_steps: 20,
                hidden: [16, 16],
                batch_size: 4,
                ..DqnConfig::paper()
            },
            RewardConfig {
                penalty_weight: weight,
                ..RewardConfig::default()
            },
        );
        group.bench_function(label, |b| {
            b.iter(|| module.run(black_box(&economy.state), black_box(&window), &economy.ifus))
        });
    }
    group.finish();
}

/// Ablation: the paper's C(N,2) swap-action space vs adjacent-only swaps.
fn bench_ablation_action_space(c: &mut Criterion) {
    use parole::ActionSpace;
    use parole_drl::{DqnAgent, Environment};

    let mut group = c.benchmark_group("ablation/action_space");
    group.sample_size(10);
    let economy = Economy::build(10, 1, 6);
    let window = economy.window(10, 6);
    for (label, space) in [
        ("all_pairs", ActionSpace::AllPairs),
        ("adjacent", ActionSpace::AdjacentOnly),
    ] {
        let economy = economy.clone();
        let window = window.clone();
        group.bench_function(label, move |b| {
            b.iter(|| {
                let mut env = parole::ReorderEnv::with_action_space(
                    economy.state.clone(),
                    window.clone(),
                    economy.ifus.clone(),
                    RewardConfig::default(),
                    space,
                );
                let mut agent = DqnAgent::new(
                    env.state_dim(),
                    env.action_count().max(1),
                    DqnConfig {
                        episodes: 4,
                        max_steps: 20,
                        hidden: [16, 16],
                        batch_size: 4,
                        ..DqnConfig::paper()
                    },
                );
                agent.train(&mut env);
                black_box(env.best_profit())
            })
        });
    }
    group.finish();
}

/// Ablation: vanilla DQN (the paper) vs Double-DQN targets.
fn bench_ablation_double_dqn(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/double_dqn");
    group.sample_size(10);
    let economy = Economy::build(8, 1, 7);
    let window = economy.window(8, 7);
    for (label, double) in [("vanilla", false), ("double", true)] {
        let module = GentranseqModule::new(
            DqnConfig {
                episodes: 4,
                max_steps: 20,
                hidden: [16, 16],
                batch_size: 4,
                double_dqn: double,
                ..DqnConfig::paper()
            },
            RewardConfig::default(),
        );
        let economy = economy.clone();
        let window = window.clone();
        group.bench_function(label, move |b| {
            b.iter(|| module.run(black_box(&economy.state), black_box(&window), &economy.ifus))
        });
    }
    group.finish();
}

/// Ablation: hill-climb passes for the §VIII defense detector.
fn bench_ablation_defense_passes(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/defense_passes");
    group.sample_size(10);
    let cs = CaseStudy::paper_setup();
    for passes in [1usize, 3] {
        group.bench_with_input(BenchmarkId::new("hill_climb", passes), &passes, |b, &p| {
            b.iter(|| max_reorder_profit(black_box(cs.state()), cs.window(), &[cs.ifu], p))
        });
    }
    group.finish();
}

/// Ablation: price quantization (the paper's two-decimal truncation) versus
/// exact rational pricing, exercised through case-study evaluation.
fn bench_ablation_quantization(c: &mut Criterion) {
    use parole_nft::{Collection, CollectionConfig};
    use parole_primitives::{Address, TokenId, Wei};
    let mut group = c.benchmark_group("ablation/price_quantization");
    for (label, quantum) in [("paper_2dp", Wei::from_centi_eth(1)), ("exact", Wei::ZERO)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut config = CollectionConfig::parole_token();
                config.price_quantum = quantum;
                let mut coll = Collection::new(config);
                for i in 0..10u64 {
                    coll.mint(Address::from_low_u64(1), TokenId::new(i))
                        .unwrap();
                    black_box(coll.price());
                }
            })
        });
    }
    group.finish();
}

criterion_group!(
    name = figures;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_case_studies, bench_fleet, bench_gentranseq, bench_snapshots,
        bench_solvers, bench_kde, bench_ablation_reward_weight,
        bench_ablation_action_space, bench_ablation_double_dqn,
        bench_ablation_defense_passes, bench_ablation_quantization
);
criterion_main!(figures);
